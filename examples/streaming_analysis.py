#!/usr/bin/env python3
"""Streaming analysis: chunked, checkpointable, bit-identical to batch.

Demonstrates the `repro.stream` layer end-to-end:

1. build a small Atlas scenario and analyze it the batch way,
2. replay the same scenario chunk-by-chunk through the incremental
   streaming engine and show the artifacts are *bit-identical*,
3. kill the streaming pass halfway, persist a checkpoint, resume it,
   and show the resumed pass still matches,
4. export the scenario as a run-stream file and re-analyze it lazily
   from disk (the path an arbitrarily long real feed would take).

Run:  python examples/streaming_analysis.py
"""

import tempfile
from pathlib import Path

from repro.stream import JsonlRunSource, run_atlas_stream, write_run_stream
from repro.workloads import (
    analyze_atlas_scenario,
    build_atlas_scenario,
    periodicity_for_scenario,
    stream_analyze_atlas_scenario,
)

CHUNK_HOURS = 24 * 14  # two-week chunks


def main() -> None:
    print("Building scenario (11 ISPs, 4 probes each, 1 simulated year)...")
    scenario = build_atlas_scenario(probes_per_as=4, years=1.0, seed=2020)
    batch = analyze_atlas_scenario(scenario, engine="np")
    periods = periodicity_for_scenario(scenario, engine="np")

    # 1. Plain streaming pass: any chunk size reproduces batch exactly.
    result = stream_analyze_atlas_scenario(scenario, chunk_hours=CHUNK_HOURS)
    stats = result.stats
    print(
        f"\nStreamed {stats.runs_seen} runs in {stats.chunks_folded} chunks "
        f"of {CHUNK_HOURS}h"
    )
    print(f"  table1 identical to batch: {result.analysis.table1 == batch.table1}")
    print(f"  table2 identical to batch: {result.analysis.table2 == batch.table2}")
    print(f"  figures identical to batch: "
          f"{(result.analysis.figure1, result.analysis.figure5) == (batch.figure1, batch.figure5)}")
    print(f"  periodicity identical:      "
          f"{(result.v4_periods, result.v6_periods) == periods}")

    with tempfile.TemporaryDirectory(prefix="repro-stream-example-") as tmp:
        # 2. Kill the pass halfway (state is checkpointed)...
        total = stats.chunks_folded
        killed = stream_analyze_atlas_scenario(
            scenario, chunk_hours=CHUNK_HOURS, checkpoint=tmp,
            stop_after_chunks=total // 2,
        )
        print(f"\nKilled a second pass after {total // 2}/{total} chunks "
              f"(returned {killed!r}; state persisted)")

        # ...then resume from the persisted checkpoint.
        resumed = stream_analyze_atlas_scenario(
            scenario, chunk_hours=CHUNK_HOURS, checkpoint=tmp, resume=True,
        )
        print(f"Resumed from chunk {resumed.stats.resumed_from_chunk}, folded "
              f"{resumed.stats.chunks_folded} remaining chunks")
        print(f"  resumed pass identical to batch: "
              f"{resumed.analysis == batch}")

        # 3. Export as a run-stream file and re-analyze lazily from disk.
        stream_path = Path(tmp) / "runs.jsonl"
        with stream_path.open("w") as stream:
            written = write_run_stream(scenario, stream)
        file_result = run_atlas_stream(JsonlRunSource(stream_path), CHUNK_HOURS)
        print(f"\nExported {written} runs "
              f"({stream_path.stat().st_size / 2**20:.1f} MiB), "
              f"re-analyzed lazily from disk")
        print(f"  file-streamed Table 1 identical to batch: "
              f"{file_result.analysis.table1 == batch.table1}")

    print("\nSame artifacts, bounded memory, kill-safe: the streaming layer "
          "in one screen.")


if __name__ == "__main__":
    main()
