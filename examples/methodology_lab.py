#!/usr/bin/env python3
"""Methodology lab: how measurement choices distort duration estimates.

The paper's duration numbers depend on methodological care: Section
3.2.1 replaces the naive histogram with the total time fraction, the
sandwiched-duration rule avoids censoring artifacts, and Section 3.2's
comparison with Moura et al. blames responsiveness scanning for
under-reporting.  This example reproduces all three effects on one
simulated ISP where the *truth* is known exactly:

1. naive PMF vs total time fraction on a mixed population;
2. censored vs sandwiched vs Kaplan-Meier estimation in a short window;
3. echo-based measurement vs a Zmap-style responsiveness scanner.

Run:  python examples/methodology_lab.py
"""

from repro.core.changes import all_observed_durations, sandwiched_durations
from repro.core.report import render_table
from repro.core.responsiveness import (
    ProbingConfig,
    estimate_sessions,
    true_assignment_durations,
    underestimation_factor,
)
from repro.core.survival import kaplan_meier
from repro.core.survival import observations_from_runs as survival_observations
from repro.core.timefraction import (
    cumulative_total_time_fraction,
    median_of_cdf,
    naive_duration_cdf,
)
from repro.netsim.profiles import profile_by_name
from repro.workloads import build_atlas_scenario

DAY = 24.0


def main() -> None:
    print("Simulating a Comcast-like ISP over a short 10-month window...")
    scenario = build_atlas_scenario(
        probes_per_as=40,
        years=0.85,
        seed=303,
        profiles=[profile_by_name("Comcast")],
        anomaly_fraction=0.0,
        bad_tag_fraction=0.0,
    )
    probes = scenario.probes

    # --- Effect 1: naive PMF vs total time fraction -----------------------
    # The paper's worked example (Section 3.2.1), slightly extended: one
    # CPE renumbered daily for a year, two CPEs renumbered monthly for a
    # year each.  Most of the *time* is spent in month-long assignments,
    # but 94% of the *samples* are day-long.
    print("\n[1] Weighting: naive histogram vs total time fraction")
    durations = [24.0] * 365 + [720.0] * 24
    naive_median = median_of_cdf(*naive_duration_cdf(durations))
    ttf_median = median_of_cdf(*cumulative_total_time_fraction(durations))
    print(render_table(
        ["metric", "median (h)"],
        [["naive PMF", f"{naive_median:.0f}"],
         ["total time fraction (Eq. 1)", f"{ttf_median:.0f}"]],
    ))
    print("The naive median sees only the daily renumberer; the TTF median\n"
          "weighs each duration by the time hosts actually spent in it.")

    # --- Effect 2: censoring ----------------------------------------------
    print("\n[2] Censoring: window-limited duration estimation")
    sandwiched, censored, km_observations = [], [], []
    for probe in probes:
        sandwiched.extend(float(d.hours) for d in sandwiched_durations(probe.v4_runs))
        censored.extend(float(h) for h in all_observed_durations(probe.v4_runs))
        km_observations.extend(
            survival_observations(probe.v4_runs, window_end=scenario.end_hour)
        )
    km_mean = kaplan_meier(km_observations).mean() if km_observations else float("nan")
    print(render_table(
        ["estimator", "n", "mean (days)"],
        [
            ["true (configured)", "-", "132"],
            ["all runs (censored)", len(censored), f"{sum(censored)/len(censored)/24:.0f}"],
            ["sandwiched only (paper)", len(sandwiched),
             f"{sum(sandwiched)/len(sandwiched)/24:.0f}"],
            ["Kaplan-Meier", len(km_observations), f"{km_mean/24:.0f}"],
        ],
    ))

    # --- Effect 3: responsiveness scanning --------------------------------
    print("\n[3] Vantage: echo measurement vs Zmap-style responsiveness")
    asn = scenario.isps["Comcast"].asn
    timelines = scenario.timelines[asn]
    truth = true_assignment_durations(timelines)
    estimated = estimate_sessions(
        timelines,
        end_hour=scenario.end_hour,
        config=ProbingConfig(loss_rate=0.03, tolerance_rounds=1),
        mean_up_hours=1200.0,
        mean_down_hours=10.0,
    )
    factor = underestimation_factor(estimated, truth)
    print(render_table(
        ["estimator", "n", "mean (days)"],
        [
            ["ground truth", len(truth), f"{sum(truth)/len(truth)/24:.0f}"],
            ["responsiveness runs", len(estimated),
             f"{sum(estimated)/len(estimated)/24:.0f}"],
        ],
    ))
    print(f"Responsiveness scanning under-reports by {factor:.1f}x — the paper's\n"
          "explanation for the gap to Moura et al.'s numbers.")


if __name__ == "__main__":
    main()
