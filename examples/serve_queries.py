#!/usr/bin/env python3
"""Serving layer: query address dynamics without re-running analysis.

Demonstrates the `repro.serve` subsystem end-to-end:

1. build a small Atlas scenario and stand up a `QueryEngine` over an
   LRU artifact registry — the analysis artifact is built exactly once
   and every later query is a registry hit,
2. ask all four query families (prefix stability, expected /64
   lifetime, dual-stack coverage, scan-hitlist generation) and show
   the batched answers are *bit-identical* to computing each quantity
   directly from the scenario with the pure-Python reference kernels,
3. serve the same queries through the in-process HTTP app
   (`ServeClient`) and dump the uniform component-stats table,
4. export the addressing-structure knowledge graph as JSONL.

Run:  python examples/serve_queries.py
"""

import json
import tempfile
from pathlib import Path

from repro.serve import (
    ArtifactRegistry,
    DualStackQuery,
    HitlistQuery,
    LifetimeQuery,
    QueryEngine,
    ServeApp,
    ServeClient,
    StabilityQuery,
    build_graph,
    compute_direct,
    observed_prefixes,
    result_to_dict,
    write_graph,
)
from repro.serve.server import status_rows
from repro.workloads import build_atlas_scenario


def main() -> None:
    print("Building scenario (11 ISPs, 3 probes each, 1 simulated year)...")
    scenario = build_atlas_scenario(probes_per_as=3, years=1.0, seed=2020)

    # 1. One engine, one artifact build, many queries.
    registry = ArtifactRegistry(name="example")
    engine = QueryEngine(scenario, registry=registry)

    v4 = observed_prefixes(scenario, 4, 24, limit=2)
    v6 = observed_prefixes(scenario, 6, 64, limit=2)
    queries = (
        [StabilityQuery(p) for p in v4 + v6]
        + [DualStackQuery(v4[0]), DualStackQuery(v6[0])]
        + [HitlistQuery(v6[0], budget=8)]
        + [LifetimeQuery("DTAG"), LifetimeQuery("Versatel")]
    )

    # 2. Batched answers == sequential answers == direct computation.
    batched = engine.run_batch(queries)
    sequential = [engine.run(q) for q in queries]
    direct = [compute_direct(scenario, q) for q in queries]
    print(f"\nAnswered {len(queries)} queries in one coalesced batch")
    print(f"  batched identical to sequential: {batched == sequential}")
    print(f"  batched identical to direct:     {batched == direct}")
    print(f"  artifact builds: {registry.stats.puts} "
          f"(hits {registry.stats.hits}, misses {registry.stats.misses})")

    for result in batched[: len(v4 + v6)]:
        print(f"  {result.prefix}: {result.probes_observed} probes, "
              f"{result.changes} changes, class {result.stability_class!r}, "
              f"period {result.period_hours}")
    lifetime = batched[-2]
    print(f"  DTAG /64 lifetime: mean {lifetime.mean_hours:.1f}h, "
          f"median {lifetime.median_hours:.1f}h "
          f"over {lifetime.durations} durations")
    hitlist = next(r for r in batched if getattr(r, "pool", None) is not None)
    print(f"  hitlist for {hitlist.prefix}: pool {hitlist.pool}, "
          f"{len(hitlist.candidates)} candidate /64s")

    # 3. The same answers over the JSON API (in-process, no socket).
    client = ServeClient(app=ServeApp(scenario, registry=registry))
    served = client.query({"kind": "stability", "prefix": str(v6[0])})
    print(f"\nHTTP-style answer matches in-process result: "
          f"{served == result_to_dict(engine.run(StabilityQuery(v6[0])))}")
    print("Component stats (the `repro serve --status` table):")
    for row in status_rows():
        print(f"  {row['component']:<18} hits={row['hits']} "
              f"misses={row['misses']} puts={row['puts']} "
              f"evictions={row['evictions']}")

    # 4. Knowledge-graph export.
    graph = build_graph(scenario)
    with tempfile.TemporaryDirectory(prefix="repro-serve-example-") as tmp:
        path = write_graph(graph, Path(tmp) / "graph.jsonl")
        first = path.read_text().splitlines()[0]
    nodes = ", ".join(f"{kind}={n}" for kind, n in sorted(graph.node_counts().items()))
    edges = ", ".join(f"{kind}={n}" for kind, n in sorted(graph.edge_counts().items()))
    print(f"\nKnowledge graph: {nodes}")
    print(f"                 {edges}")
    print(f"  first record: {json.dumps(json.loads(first), sort_keys=True)[:76]}...")


if __name__ == "__main__":
    main()
