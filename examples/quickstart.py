#!/usr/bin/env python3
"""Quickstart: simulate networks, measure them, analyze assignment dynamics.

Builds a small RIPE-Atlas-style measurement study over the paper's
eleven featured ISPs, then walks the core analysis pipeline:

1. sanitize raw probe data (Appendix A.1),
2. detect assignment changes and exact durations (Section 3.1),
3. compare IPv4/IPv6 duration distributions with the total time
   fraction metric (Section 3.2),
4. detect periodic renumbering.

Run:  python examples/quickstart.py
"""

from repro.core.periodicity import detect_periods
from repro.core.report import as_durations, render_table, table1_row
from repro.core.timefraction import (
    CANONICAL_LABELS,
    cumulative_total_time_fraction,
    evaluate_cdf,
)
from repro.workloads import build_atlas_scenario


def main() -> None:
    print("Building scenario (11 ISPs, 15 probes each, 2 simulated years)...")
    scenario = build_atlas_scenario(probes_per_as=15, years=2.0, seed=2020)

    report = scenario.report
    print(
        f"\nSanitization: {report.input_probes} probes in -> "
        f"{report.kept_probes} kept "
        f"(bad tags: {report.dropped_bad_tag}, atypical NAT: "
        f"{report.dropped_atypical_nat}, multihomed: {report.dropped_multihomed}, "
        f"short: {report.dropped_short}; virtual probes: "
        f"{report.virtual_probes_created})"
    )

    # Table-1-style overview.
    rows = []
    for name, isp in scenario.isps.items():
        probes = scenario.probes_in(isp.asn)
        row = table1_row(name, isp.asn, isp.config.country, probes)
        rows.append(
            [
                row.name,
                row.asn,
                row.all_probes,
                row.all_v4_changes,
                row.ds_probes,
                f"{row.ds_v4_changes} ({row.ds_v4_share_pct:.0f}%)",
                row.ds_v6_changes,
            ]
        )
    print()
    print(
        render_table(
            ["AS", "ASN", "probes", "v4 changes", "DS probes", "DS v4 changes", "v6 changes"],
            rows,
            title="Assignment changes observed per AS (cf. paper Table 1)",
        )
    )

    # Duration distributions and periodicity for two contrasting ISPs.
    for name in ("DTAG", "Comcast"):
        probes = scenario.probes_in(scenario.asn_of(name))
        durations = as_durations(probes)
        print(f"\n{name}:")
        for label, values in (
            ("IPv4 non-dual-stack", durations.v4_non_dual_stack),
            ("IPv4 dual-stack", durations.v4_dual_stack),
            ("IPv6 /64", durations.v6),
        ):
            if not values:
                print(f"  {label:22s} (no exact durations observed)")
                continue
            xs, ys = cumulative_total_time_fraction(values)
            grid = evaluate_cdf(xs, ys)
            day_value = grid[CANONICAL_LABELS.index("1d")]
            month_value = grid[CANONICAL_LABELS.index("1m")]
            print(
                f"  {label:22s} n={len(values):5d}  "
                f"time-mass <=1d: {day_value:5.1%}  <=1m: {month_value:5.1%}"
            )
            modes = detect_periods(values)
            if modes:
                print(f"  {'':22s} periodic renumbering detected: {modes[0]}")


if __name__ == "__main__":
    main()
