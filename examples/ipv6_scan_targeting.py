#!/usr/bin/env python3
"""Active probing: shrinking the IPv6 scan search space.

Section 5 / Section 6 application: a measurement target (e.g. a CPE
with a stable EUI-64 address) disappears after its delegated prefix is
renumbered.  Where should a scanner look for it?

The paper's answer, reproduced here per ISP:

1. the **pool boundary** — subsequent delegations come from the same
   internal pool (a /40 for DTAG), not from anywhere in the BGP
   announcement, so the search space shrinks from 2^(64-19) to
   2^(64-40) /64s;
2. the **common prefix length** of successive assignments narrows it
   further;
3. the **delegated prefix length** (trailing-zero inference) removes
   the low bits: if subscribers get /56s with zeroed tails, only one in
   256 /64s needs probing.

Run:  python examples/ipv6_scan_targeting.py
"""

import math

from repro.core.delegation import inferred_plen_distribution, per_probe_prefixes_from_runs
from repro.core.report import figure5_for_as, probe_v6_changes, render_table
from repro.core.spatial import unique_prefix_counts
from repro.workloads import build_atlas_scenario


def main() -> None:
    print("Simulating measurement study...")
    scenario = build_atlas_scenario(probes_per_as=18, years=3.0, seed=11)

    rows = []
    for name, isp in scenario.isps.items():
        probes = scenario.probes_in(isp.asn)
        histogram = figure5_for_as(probes)
        if histogram.total_changes < 10:
            continue

        # Modal CPL of successive assignments: where a renumbered CPE lands.
        modal_cpl = max(histogram.changes_by_cpl.items(), key=lambda item: item[1])[0]

        # Long-term pool boundary: the /plen at which probes stop
        # accumulating new unique prefixes (Fig. 8's insight).
        per_probe_unique = []
        for probe in probes:
            observed = [
                change.new_value for change in probe_v6_changes(probe)
            ]
            if len(observed) >= 3:
                per_probe_unique.append(unique_prefix_counts(observed))
        pool_plen = None
        for candidate in (48, 40, 32, 24):
            key = f"/{candidate}"
            few = [counts[key] for counts in per_probe_unique if key in counts]
            if few and sorted(few)[len(few) // 2] <= 3:  # median <= 3 uniques
                pool_plen = candidate
                break
        pool_text = f"/{pool_plen}" if pool_plen else "n/a"

        # Delegated prefix length (zero-bit inference).
        distribution = inferred_plen_distribution(per_probe_prefixes_from_runs(probes))
        delegated = (
            max(distribution.items(), key=lambda item: item[1])[0] if distribution else None
        )

        # Search-space reduction for re-finding an EUI-64 device after a
        # renumbering, relative to scanning the whole BGP announcement.
        announcement_plen = isp.v6_allocation.plen
        naive_bits = 64 - announcement_plen
        informed_plen = pool_plen if pool_plen else announcement_plen
        informed_bits = 64 - informed_plen
        if delegated is not None:
            informed_bits -= 64 - delegated  # only lowest /64 per delegation
        reduction = 2 ** (naive_bits - max(informed_bits, 0))
        rows.append(
            [
                name,
                f"/{announcement_plen}",
                pool_text,
                f"{modal_cpl}",
                f"/{delegated}" if delegated else "n/a",
                f"10^{math.log10(reduction):.1f}x" if reduction > 1 else "1x",
            ]
        )

    print()
    print(
        render_table(
            ["AS", "BGP alloc", "pool", "modal CPL", "delegated", "scan-space cut"],
            rows,
            title="IPv6 scan search-space reduction per ISP (cf. Sections 5.2/5.3)",
        )
    )
    print(
        "\nReading: in a DTAG-like ISP, knowing the /40 pool and the /56"
        "\ndelegation reduces re-finding a device from scanning 2^40 /64s"
        "\n(the whole announcement) to 2^16 candidate /64s."
    )


if __name__ == "__main__":
    main()
