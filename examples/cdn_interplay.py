#!/usr/bin/env python3
"""IPv4-IPv6 interplay from a CDN vantage point (Section 4).

Builds a world-wide RUM association dataset and reproduces the
section's headline observations:

* fixed-line associations are long-lived; mobile ones are ephemeral;
* mobile /24s multiplex tens of thousands of /64s (CGNAT), fixed /24s
  sit near the ~150-200 active-subscriber density;
* most mobile /64s nevertheless keep an affinity to a single /24;
* the ASN-mismatch filter removes cellular/WiFi switching artifacts.

Run:  python examples/cdn_interplay.py
"""

from repro.bgp.registry import RIR, AccessKind
from repro.core.associations import (
    association_durations,
    box_stats,
    fraction_degree_one,
    log_density,
    v4_degree_counts,
    v6_degree_counts,
    weighted_peak,
)
from repro.core.report import render_table
from repro.workloads import build_cdn_scenario


def main() -> None:
    print("Collecting CDN association dataset (a few seconds)...")
    scenario = build_cdn_scenario(
        days=150,
        seed=4,
        fixed_subscribers_per_registry=900,
        mobile_devices_per_registry=600,
        featured_subscribers=120,
        cross_network_noise=0.05,
    )
    dataset = scenario.dataset
    print(
        f"Collected {dataset.total_collected:,} associations; "
        f"discarded {dataset.discarded_asn_mismatch:,} with mismatching "
        f"origin ASNs; kept {dataset.total_kept:,}."
    )

    mobile = dataset.triples_by_kind(AccessKind.MOBILE)
    fixed = dataset.triples_by_kind(AccessKind.FIXED)

    # Association durations, fixed vs mobile (Figure 3's ALL columns).
    rows = []
    for label, triples in (("fixed", fixed), ("mobile", mobile)):
        stats = box_stats(association_durations(triples))
        rows.append(
            [label, stats.count, f"{stats.p5:.0f}", f"{stats.q1:.0f}",
             f"{stats.median:.0f}", f"{stats.q3:.0f}", f"{stats.p95:.0f}"]
        )
    print()
    print(
        render_table(
            ["class", "assocs", "p5", "q1", "median", "q3", "p95"],
            rows,
            title="Association durations in days (cf. Figure 3, ALL)",
        )
    )

    # Per-registry split.
    rows = []
    for rir in RIR:
        for kind, label in ((AccessKind.FIXED, "fixed"), (AccessKind.MOBILE, "mobile")):
            durations = association_durations(dataset.triples_by_rir(rir, kind))
            if not durations:
                continue
            stats = box_stats(durations)
            rows.append([f"{rir.value} {label}", f"{stats.median:.0f}", f"{stats.q3:.0f}"])
    print()
    print(render_table(["registry/class", "median (d)", "q3 (d)"], rows,
                       title="Durations by registry (cf. Figure 3)"))

    # Cardinality (Figure 4).
    print()
    for label, triples in (("mobile", mobile), ("fixed", fixed)):
        unique, hits = v4_degree_counts(triples)
        values = list(unique.values())
        weights = [hits[key] for key in unique]
        peak = weighted_peak(*log_density(values, weights=weights))
        degree_one = fraction_degree_one(v6_degree_counts(triples))
        print(
            f"{label:6s}: weighted peak {peak:9.0f} unique /64s per /24; "
            f"{degree_one:.0%} of /64s associate with exactly one /24"
        )
    print(
        "\nReading: mobile /24s are CGNAT egress points multiplexing 10^4+"
        "\ndevices, yet each device's /64 sticks to one egress /24; fixed"
        "\n/24s sit near the paper's 150-200 active-subscriber density."
    )


if __name__ == "__main__":
    main()
