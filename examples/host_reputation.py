#!/usr/bin/env python3
"""Host reputation: how long can a blocklist entry stay useful?

Section 6 of the paper: blocklists that keep an address after it has
been reassigned cause collateral damage to the innocent subscriber who
inherits it; blocklists that expire entries too early let bad actors
linger.  This example derives, per ISP:

* a **safe IPv4 blocklist TTL** — the time by which a configurable
  fraction of that ISP's assignments have already churned;
* the **IPv6 blocking granularity** — the prefix length that identifies
  exactly one subscriber (blocking a single /128 is useless when the
  host can re-draw its interface identifier at will; blocking a /48 in
  an ISP that delegates /56s takes out 256 households);
* the **escape set** — where a blocked subscriber can reappear
  (same /24? same BGP prefix? same /40 pool?).

Run:  python examples/host_reputation.py
"""

from repro.core.delegation import inferred_plen_distribution, per_probe_prefixes_from_runs
from repro.core.report import as_durations, render_table, table2_row
from repro.core.timefraction import cumulative_total_time_fraction
from repro.workloads import build_atlas_scenario


def ttl_for_quantile(durations, quantile: float) -> float:
    """Duration (hours) by which `quantile` of assigned time has churned."""
    xs, ys = cumulative_total_time_fraction(durations)
    for x, y in zip(xs, ys):
        if y >= quantile:
            return x
    return float("inf")


def format_hours(hours: float) -> str:
    if hours == float("inf"):
        return ">obs"
    if hours < 48:
        return f"{hours:.0f}h"
    if hours < 24 * 60:
        return f"{hours / 24:.0f}d"
    return f"{hours / (24 * 30):.0f}mo"


def main() -> None:
    print("Simulating measurement study (this takes a few seconds)...")
    scenario = build_atlas_scenario(probes_per_as=15, years=2.0, seed=7)

    rows = []
    for name, isp in scenario.isps.items():
        probes = scenario.probes_in(isp.asn)
        durations = as_durations(probes)
        v4 = durations.v4_dual_stack + durations.v4_non_dual_stack
        if not v4:
            continue

        # TTL: after this long, >=25% of assigned time has churned — a
        # conservative "entry may now hit an innocent subscriber" point.
        ttl = ttl_for_quantile(v4, 0.25)

        # IPv6 blocking granularity: the modal inferred subscriber prefix.
        per_probe = per_probe_prefixes_from_runs(probes)
        distribution = inferred_plen_distribution(per_probe)
        if distribution:
            modal_plen = max(distribution.items(), key=lambda item: item[1])[0]
            granularity = f"/{modal_plen}"
        else:
            granularity = "n/a"

        # Escape set: how often a renumbered v4 subscriber leaves the /24
        # and the BGP prefix entirely.
        rates = table2_row(probes, scenario.table)
        escape = (
            f"{rates.diff_slash24_pct:3.0f}% leave /24, "
            f"{rates.v4_diff_bgp_pct:3.0f}% leave BGP pfx"
        )
        rows.append([name, format_hours(ttl), granularity, escape])

    print()
    print(
        render_table(
            ["AS", "safe v4 TTL", "v6 block granularity", "v4 escape behaviour"],
            rows,
            title="Blocklist guidance derived from assignment dynamics",
        )
    )
    print(
        "\nReading: a 24h-renumbering ISP (DTAG) needs sub-day blocklist"
        "\nTTLs in IPv4, while /56-granular IPv6 blocking follows the"
        "\nsubscriber across interface-identifier changes. ISPs with high"
        "\nescape rates make /24-granular IPv4 blocking ineffective."
    )


if __name__ == "__main__":
    main()
