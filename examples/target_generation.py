#!/usr/bin/env python3
"""Target generation shoot-out: structure beats patterns and density.

The paper argues (Sections 2.3 and 6) that its addressing-structure
findings — pool boundaries, delegated prefix lengths, zero-filled /64s
— can augment IPv6 target-generation techniques like Entropy/IP and
6Gen.  This example stages the comparison end-to-end:

1. simulate an ISP with 400 subscriber lines; measure 30 of them the
   way RIPE Atlas would (their /64 assignment histories);
2. infer pool boundaries and the delegated prefix length from those 30
   measured lines (the paper's Section 5 techniques);
3. generate candidate targets with three strategies and score them
   against the *full* 400-line ground truth.

Run:  python examples/target_generation.py
"""

import random

from repro.bgp.registry import RIR, Registry
from repro.bgp.table import RoutingTable
from repro.core.delegation import inferred_subscriber_plen
from repro.core.pools import infer_pool_plen, pool_membership
from repro.core.report import render_table
from repro.core.targetgen import (
    DenseRegionGenerator,
    NibblePatternGenerator,
    StructureInformedGenerator,
    evaluate_generator,
)
from repro.netsim.cpe import CpeBehavior
from repro.netsim.isp import Isp, IspConfig, V4AddressingConfig, V6AddressingConfig
from repro.netsim.policy import ChangePolicy
from repro.netsim.sim import IspSimulation

DAY = 24.0


def build_isp():
    config = IspConfig(
        name="ScanTarget",
        asn=64950,
        country="XX",
        rir=RIR.RIPE,
        dual_stack_fraction=1.0,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.exponential(60 * DAY),
            policy_ds=ChangePolicy.exponential(60 * DAY),
            num_blocks=2,
            block_plen=20,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(45 * DAY),  # renumbers ~8x/year
            allocation_plen=32,
            pool_plen=42,
            num_pools=4,
            delegation_plen=56,
            cpe_mix=((CpeBehavior(lan_selection="zero"), 1.0),),
        ),
    )
    return Isp(config, Registry(), RoutingTable())


def main() -> None:
    print("Simulating 400 subscriber lines for 2 years...")
    isp = build_isp()
    timelines = IspSimulation(isp, 400, 730 * DAY, seed=21).run()

    # Ground truth: the /64 each line uses at the end of the window.
    active = [t.v6_lan[-1].value for t in timelines.values() if t.v6_lan]
    rng = random.Random(5)
    seeds = rng.sample(active, len(active) // 4)  # CDN-style partial view
    unknown = [prefix for prefix in active if prefix not in set(seeds)]
    print(f"{len(active)} active /64s; scanner knows {len(seeds)} seeds, "
          f"must find {len(unknown)} more.")

    # Structure inference from 30 measured lines (the Atlas-style view).
    measured = [timelines[sub_id] for sub_id in range(30)]
    histories = [
        [interval.value for interval in timeline.v6_lan] for timeline in measured
    ]
    pool_plen = infer_pool_plen(histories) or 40
    inferred = [
        inferred_subscriber_plen(list(dict.fromkeys(history)))
        for history in histories
        if len(set(history)) >= 2
    ]
    delegation_plen = max(set(inferred), key=inferred.count) if inferred else 64
    pools = sorted(pool_membership(seeds, pool_plen))
    print(f"Inferred structure: /{pool_plen} pools ({len(pools)} seen in seeds), "
          f"/{delegation_plen} delegations.")

    budget = 30000
    scores = {
        "structure-informed (this paper)": evaluate_generator(
            StructureInformedGenerator(pools, delegation_plen, seed=1).generate(budget),
            unknown,
        ),
        "nibble pattern (Entropy/IP-style)": evaluate_generator(
            NibblePatternGenerator(seeds, seed=1).generate(budget), unknown
        ),
        "dense regions (6Gen-style)": evaluate_generator(
            DenseRegionGenerator(seeds, region_plen=48).generate(budget), unknown
        ),
    }
    print()
    print(
        render_table(
            ["strategy", "candidates", "hits", "coverage", "hit rate"],
            [
                [name, score.candidates, score.hits,
                 f"{score.coverage:.1%}", f"{score.hit_rate:.2%}"]
                for name, score in scores.items()
            ],
            title=f"Finding the unknown 3/4 of the active set (budget {budget})",
        )
    )
    print(
        "\nReading: pattern and density baselines rediscover structure"
        "\nimplicitly and waste probes across the whole pool; enumerating"
        "\nthe zero-/64s of inferred delegations inside inferred pools is"
        "\nthe paper's findings applied directly."
    )


if __name__ == "__main__":
    main()
