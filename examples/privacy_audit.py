#!/usr/bin/env python3
"""Privacy audit: is truncation-based IPv6 anonymization safe?

Section 6 application.  Two findings with privacy consequences:

1. **Privacy addresses don't help against prefix tracking** — the /64
   network component identifies a subscriber for months even while the
   host rotates its interface identifier (RFC 4941).
2. **Anonymization by truncation is fallacious** — truncating to /48
   (as, e.g., Google Analytics does) aggregates 256 subscribers in an
   ISP that delegates /56s, but exactly ONE subscriber in an ISP that
   delegates whole /48s (Netcologne).

This example quantifies, per ISP, how long a /64 identifies one
subscriber and how many subscribers a /48-truncated address actually
hides among ("anonymity set").

Run:  python examples/privacy_audit.py
"""

from repro.core.delegation import inferred_plen_distribution, per_probe_prefixes_from_runs
from repro.core.report import as_durations, render_table
from repro.core.timefraction import cumulative_total_time_fraction, median_of_cdf
from repro.workloads import build_atlas_scenario

TRUNCATION_PLEN = 48  # the "anonymizing" truncation under audit


def main() -> None:
    print("Simulating measurement study...")
    scenario = build_atlas_scenario(probes_per_as=15, years=2.0, seed=13)

    rows = []
    for name, isp in scenario.isps.items():
        probes = scenario.probes_in(isp.asn)
        durations = as_durations(probes)
        if durations.v6:
            xs, ys = cumulative_total_time_fraction(durations.v6)
            median_hours = median_of_cdf(xs, ys)
            tracking = f"{median_hours / 24:.0f} days"
        else:
            tracking = "> observation"

        distribution = inferred_plen_distribution(per_probe_prefixes_from_runs(probes))
        if distribution:
            modal_plen = max(distribution.items(), key=lambda item: item[1])[0]
            # Subscribers per truncated /48: each holds one /modal_plen.
            if modal_plen >= TRUNCATION_PLEN:
                anonymity_set = 2 ** (modal_plen - TRUNCATION_PLEN)
            else:
                anonymity_set = 1  # delegation SHORTER than truncation
            verdict = "UNSAFE" if anonymity_set <= 1 else f"~{anonymity_set} subscribers"
        else:
            modal_plen, verdict = None, "unknown"

        rows.append(
            [
                name,
                tracking,
                f"/{modal_plen}" if modal_plen else "n/a",
                verdict,
            ]
        )

    print()
    print(
        render_table(
            ["AS", "/64 tracks subscriber for", "delegation", f"/{TRUNCATION_PLEN} anonymity set"],
            rows,
            title="Privacy audit: prefix tracking and truncation anonymization",
        )
    )
    print(
        "\nReading: a /48-truncating anonymizer leaks individual Netcologne"
        "\nsubscribers outright (they own whole /48s), while in /56-"
        "\ndelegating ISPs it hides a household among only 256. Tracking"
        "\ndurations of weeks to months mean /64s are effectively PII."
    )


if __name__ == "__main__":
    main()
