"""Table 1: overview of assignment changes per AS.

Paper shape: thousands of changes in periodically renumbering ASes
(DTAG, Versatel, Netcologne), far fewer in lease-renewing ones
(Comcast, Free SAS); the dual-stack share of v4 changes varies widely
(10 % for Orange up to ~83 % for Netcologne).
"""

from conftest import FEATURED_SIX

from repro.core.report import render_table, table1_row


def compute_table1(scenario):
    rows = []
    for name, isp in scenario.isps.items():
        probes = scenario.probes_in(isp.asn)
        rows.append(
            table1_row(
                name, isp.asn, isp.config.country, probes,
                columns=scenario.analysis_columns(isp.asn),
            )
        )
    return rows


def test_table1(benchmark, atlas_scenario, artifact_writer):
    rows = benchmark(compute_table1, atlas_scenario)
    by_name = {row.name: row for row in rows}

    rendered = render_table(
        ["AS", "ASN", "Country", "All probes", "All v4 changes",
         "DS probes", "DS v4 changes", "DS v6 changes"],
        [
            [row.name, row.asn, row.country, row.all_probes, row.all_v4_changes,
             row.ds_probes, f"{row.ds_v4_changes} ({row.ds_v4_share_pct:.0f}%)",
             row.ds_v6_changes]
            for row in rows
        ],
        title="Table 1: assignment changes observed per AS",
    )
    artifact_writer("table1", rendered)

    # Shape assertions.
    for name in FEATURED_SIX:
        assert by_name[name].all_probes > 0
        assert by_name[name].all_v4_changes > 0
    # Periodic renumberers produce at least an order of magnitude more
    # v4 changes than lease-renewing ISPs.
    assert by_name["DTAG"].all_v4_changes > 10 * by_name["Comcast"].all_v4_changes
    assert by_name["Versatel"].all_v4_changes > 10 * by_name["Free SAS"].all_v4_changes
    # Netcologne: DS probes responsible for the bulk of v4 changes (83%).
    assert by_name["Netcologne"].ds_v4_share_pct > 50
    # Orange: DS probes responsible for a small share (10%).
    assert by_name["Orange"].ds_v4_share_pct < 40
    # Synchronized periodic ISPs also renumber v6 in volume.
    assert by_name["Versatel"].ds_v6_changes > 1000
    assert by_name["Comcast"].ds_v6_changes < by_name["Versatel"].ds_v6_changes / 10
