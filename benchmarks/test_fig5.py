"""Figure 5: common prefix lengths of successive IPv6 /64 assignments.

Paper shape, per AS:

* DTAG: no changes with CPL < 24; bulk at CPL 41-47 (draws within a
  /40 pool); a visible cluster at CPL >= 56 from prefix-scrambling
  CPEs rotating /64s inside their /56 delegation;
* LGI: concentration around 44; Orange: 36-48; BT: bimodal.
"""

from conftest import FEATURED_SIX

from repro.core.report import figure5_for_as, render_table


def compute_figure5(scenario):
    return {
        name: figure5_for_as(
            scenario.probes_in(scenario.asn_of(name)),
            columns=scenario.analysis_columns(scenario.asn_of(name)),
        )
        for name in FEATURED_SIX
    }


def _bucket(histogram, low, high):
    """Total changes with low <= CPL < high."""
    return sum(count for cpl, count in histogram.changes_by_cpl.items() if low <= cpl < high)


def test_figure5(benchmark, atlas_scenario, artifact_writer):
    histograms = benchmark(compute_figure5, atlas_scenario)

    from repro.core.report import render_histogram

    lines = []
    for name, histogram in histograms.items():
        lines.append(f"\nFigure 5 ({name}): CPL of successive /64 assignments")
        rows = [
            [cpl, histogram.changes_by_cpl[cpl], histogram.probes_by_cpl.get(cpl, 0)]
            for cpl in sorted(histogram.changes_by_cpl)
        ]
        lines.append(render_table(["CPL", "changes", "probes"], rows))
        lines.append(render_histogram(histogram.changes_by_cpl, label="CPL "))
    artifact_writer("fig5", "\n".join(lines))

    dtag = histograms["DTAG"]
    assert dtag.total_changes > 100
    # No DTAG changes below CPL 24 (single contiguous allocation).
    assert _bucket(dtag, 0, 24) == 0
    # Bulk within the /40 pool (CPL 40..47).
    assert _bucket(dtag, 40, 48) / dtag.total_changes > 0.5
    # Scrambling CPEs: a visible cluster at CPL >= 56.
    assert _bucket(dtag, 56, 64) > 0

    # LGI concentrates at its /44 pool grain.
    lgi = histograms["LGI"]
    if lgi.total_changes >= 20:
        assert _bucket(lgi, 44, 56) / lgi.total_changes > 0.4

    # Orange: clusters between 36 and 48 (its /42 pools).
    orange = histograms["Orange"]
    if orange.total_changes >= 20:
        assert _bucket(orange, 36, 49) / orange.total_changes > 0.5
