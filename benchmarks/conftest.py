"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The
two input datasets (the Atlas measurement study and the CDN association
dataset) are built once per session at a scale that finishes in tens of
seconds on a laptop; the per-benchmark timed section is the *analysis*,
not the data generation.

Every benchmark writes its rendered artifact to
``benchmarks/results/<name>.txt`` so the reproduced tables/figures are
inspectable after the run regardless of pytest's output capturing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.workloads import build_atlas_scenario, build_cdn_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale knobs, overridable from the environment for quick runs.
ATLAS_PROBES_PER_AS = int(os.environ.get("REPRO_BENCH_PROBES", "40"))
ATLAS_YEARS = float(os.environ.get("REPRO_BENCH_YEARS", "4.0"))
CDN_DAYS = int(os.environ.get("REPRO_BENCH_CDN_DAYS", "150"))
CDN_FIXED = int(os.environ.get("REPRO_BENCH_CDN_FIXED", "1200"))
CDN_MOBILE = int(os.environ.get("REPRO_BENCH_CDN_MOBILE", "800"))
CDN_FEATURED = int(os.environ.get("REPRO_BENCH_CDN_FEATURED", "150"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2020"))


@pytest.fixture(scope="session")
def atlas_scenario():
    """The RIPE-Atlas-style measurement study (Sections 3 and 5)."""
    return build_atlas_scenario(
        probes_per_as=ATLAS_PROBES_PER_AS, years=ATLAS_YEARS, seed=SEED
    )


@pytest.fixture(scope="session")
def cdn_scenario():
    """The CDN association dataset (Sections 4 and 5.3)."""
    return build_cdn_scenario(
        days=CDN_DAYS,
        seed=SEED,
        fixed_subscribers_per_registry=CDN_FIXED,
        mobile_devices_per_registry=CDN_MOBILE,
        featured_subscribers=CDN_FEATURED,
    )


@pytest.fixture(scope="session")
def artifact_writer():
    """Write a named artifact to benchmarks/results/ (and echo it)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] written to {path}\n{text}")

    return write


#: The six ASes Figures 1, 2 and 5 feature.
FEATURED_SIX = ("DTAG", "Orange", "Comcast", "LGI", "BT", "Proximus")
