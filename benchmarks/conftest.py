"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The
two input datasets (the Atlas measurement study and the CDN association
dataset) are built once per session at a scale that finishes in tens of
seconds on a laptop; the per-benchmark timed section is the *analysis*,
not the data generation.

The builds go through the performance engine (``repro.perf``): they fan
out over ``REPRO_BENCH_WORKERS`` processes (default ``$REPRO_WORKERS``)
and, unless ``REPRO_BENCH_CACHE=0``, hit the content-addressed scenario
cache, so a warm session skips generation entirely.  Build wall-clock
and per-benchmark analysis durations are recorded into the repo-root
``BENCH_baseline.json`` perf artifact at session end.

The analyses themselves run through the engine selected by
``$REPRO_ANALYSIS_ENGINE`` (columnar NumPy by default; see
``repro.core.analysis_np``), and setting ``REPRO_PROFILE=1`` dumps
per-stage cProfile artifacts under ``benchmarks/results/``.

Every benchmark writes its rendered artifact to
``benchmarks/results/<name>.txt`` so the reproduced tables/figures are
inspectable after the run regardless of pytest's output capturing.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.core.report import resolve_engine
from repro.perf.cache import get_scenario_cache
from repro.perf.parallel import resolve_workers
from repro.perf.profiling import maybe_profile
from repro.perf.timing import StageTimer, write_baseline
from repro.workloads import build_atlas_scenario, build_cdn_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale knobs, overridable from the environment for quick runs.
ATLAS_PROBES_PER_AS = int(os.environ.get("REPRO_BENCH_PROBES", "40"))
ATLAS_YEARS = float(os.environ.get("REPRO_BENCH_YEARS", "4.0"))
CDN_DAYS = int(os.environ.get("REPRO_BENCH_CDN_DAYS", "150"))
CDN_FIXED = int(os.environ.get("REPRO_BENCH_CDN_FIXED", "1200"))
CDN_MOBILE = int(os.environ.get("REPRO_BENCH_CDN_MOBILE", "800"))
CDN_FEATURED = int(os.environ.get("REPRO_BENCH_CDN_FEATURED", "150"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2020"))

#: Performance-engine knobs.
BENCH_WORKERS = resolve_workers(
    int(raw) if (raw := os.environ.get("REPRO_BENCH_WORKERS", "").strip()) else None
)
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)

_BUILD_TIMER = StageTimer()
_BUILD_META: dict = {}
_ANALYSIS: dict = {}


def _timed_build(stage: str, builder, **kwargs):
    cache = get_scenario_cache()
    hits_before = cache.stats.hits
    with maybe_profile(stage):
        start = time.perf_counter()
        scenario = builder(workers=BENCH_WORKERS, cache=BENCH_CACHE, **kwargs)
        _BUILD_TIMER.record(stage, time.perf_counter() - start)
    _BUILD_META[stage] = {
        "workers": BENCH_WORKERS,
        "cache": (
            "hit" if BENCH_CACHE and cache.stats.hits > hits_before
            else "miss" if BENCH_CACHE else "off"
        ),
    }
    return scenario


@pytest.fixture(scope="session")
def atlas_scenario():
    """The RIPE-Atlas-style measurement study (Sections 3 and 5)."""
    return _timed_build(
        "atlas_scenario",
        build_atlas_scenario,
        probes_per_as=ATLAS_PROBES_PER_AS,
        years=ATLAS_YEARS,
        seed=SEED,
    )


@pytest.fixture(scope="session")
def cdn_scenario():
    """The CDN association dataset (Sections 4 and 5.3)."""
    return _timed_build(
        "cdn_scenario",
        build_cdn_scenario,
        days=CDN_DAYS,
        seed=SEED,
        fixed_subscribers_per_registry=CDN_FIXED,
        mobile_devices_per_registry=CDN_MOBILE,
        featured_subscribers=CDN_FEATURED,
    )


@pytest.fixture(scope="session")
def artifact_writer():
    """Write a named artifact to benchmarks/results/ (and echo it)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] written to {path}\n{text}")

    return write


def pytest_runtest_logreport(report):
    """Collect per-benchmark analysis wall-clock (the timed ``call`` phase)."""
    if report.when == "call" and report.passed:
        _ANALYSIS[report.nodeid] = round(report.duration, 4)


def pytest_sessionfinish(session, exitstatus):
    """Record this session's build/analysis timings in BENCH_baseline.json."""
    if not _BUILD_TIMER.as_dict():
        return  # nothing was built (e.g. collection-only or filtered run)
    build = {
        stage: {"seconds": seconds, **_BUILD_META.get(stage, {})}
        for stage, seconds in _BUILD_TIMER.as_dict().items()
    }
    write_baseline(
        "benchmark_session",
        {"build": build, "analysis": _ANALYSIS, "analysis_engine": resolve_engine()},
    )


#: The six ASes Figures 1, 2 and 5 feature.
FEATURED_SIX = ("DTAG", "Orange", "Comcast", "LGI", "BT", "Proximus")
