"""Section 3.2 text: do IPv4 and IPv6 changes happen simultaneously?

Paper shape: in DTAG, 90.6 % of assignment changes co-occur within the
same hour; in Comcast, most changes do NOT co-occur.
"""

from repro.core.dualstack import co_occurrence, merge_co_occurrence
from repro.core.report import probe_v4_changes, probe_v6_changes, render_table


def compute_cooccurrence(scenario):
    results = {}
    for name, isp in scenario.isps.items():
        parts = []
        for probe in scenario.probes_in(isp.asn):
            if not probe.dual_stack:
                continue
            parts.append(
                co_occurrence(probe_v4_changes(probe), probe_v6_changes(probe))
            )
        if parts:
            results[name] = merge_co_occurrence(parts)
    return results


def test_cooccurrence(benchmark, atlas_scenario, artifact_writer):
    results = benchmark(compute_cooccurrence, atlas_scenario)

    rows = [
        [
            name,
            summary.v4_changes,
            summary.v6_changes,
            f"{summary.v4_fraction:.1%}",
            f"{summary.v6_fraction:.1%}",
        ]
        for name, summary in results.items()
    ]
    artifact_writer(
        "cooccurrence",
        render_table(
            ["AS", "DS v4 changes", "v6 changes", "v4 w/ v6 same hour", "v6 w/ v4 same hour"],
            rows,
            title="v4/v6 change co-occurrence on dual-stack probes",
        ),
    )

    # DTAG: the vast majority of v6 changes co-occur with a v4 change.
    dtag = results["DTAG"]
    assert dtag.v6_fraction > 0.75
    # Comcast: changes are mostly independent.
    comcast = results["Comcast"]
    assert comcast.v4_fraction < 0.3
    assert comcast.v6_fraction < 0.3
    # Synchronized German ISPs behave like DTAG.
    assert results["Versatel"].v6_fraction > 0.75
