"""Section 3.2 text: consistent periodic renumbering detection.

Paper shape: well-defined IPv4 modes at 1 day (DTAG), 1.5 days
(Proximus), 1 week (Orange) and 2 weeks (BT) for non-dual-stack
probes; IPv6 24-hour renumbering in German ASes (DTAG, Versatel,
Netcologne); no periodicity in lease-renewing ISPs (Comcast).
"""

import pytest

from repro.core.report import render_table
from repro.workloads import periodicity_for_scenario


def compute_periodicity(scenario):
    # min_probes=2 keeps the detection meaningful at reduced benchmark
    # scales where an AS may only carry a couple of NDS probes.  The
    # detection runs through the $REPRO_ANALYSIS_ENGINE knob and reuses
    # the scenario's memoized column packs on the NumPy path.
    return periodicity_for_scenario(scenario, min_probes=2)


def test_periodicity(benchmark, atlas_scenario, artifact_writer):
    v4_periods, v6_periods = benchmark(compute_periodicity, atlas_scenario)

    rows = []
    for name in atlas_scenario.isps:
        rows.append(
            [
                name,
                f"{v4_periods[name]:g}h" if name in v4_periods else "-",
                f"{v6_periods[name]:g}h" if name in v6_periods else "-",
            ]
        )
    artifact_writer(
        "periodicity",
        render_table(
            ["AS", "v4 NDS period", "v6 period"],
            rows,
            title="Detected consistent periodic renumbering",
        ),
    )

    # IPv4 modes the paper reports for non-dual-stack probes.
    assert v4_periods.get("DTAG") == 24.0
    assert v4_periods.get("Proximus") == 36.0
    assert v4_periods.get("Orange") == 7 * 24.0
    assert v4_periods.get("BT") == 14 * 24.0
    # Lease-renewing ISPs show no consistent period.
    assert "Comcast" not in v4_periods
    assert "Free SAS" not in v4_periods
    # IPv6 24-hour renumbering in German periodic ASes.
    assert v6_periods.get("Versatel") == 24.0
    assert v6_periods.get("Netcologne") == 24.0
    assert v6_periods.get("DTAG") == 24.0
    # Stable-IPv6 ISPs show none.
    assert "Orange" not in v6_periods
    assert "Comcast" not in v6_periods


@pytest.mark.slow
def test_periodic_network_count_at_scale(benchmark, artifact_writer):
    """§3.2: "consistent periodic renumbering on 35 networks".

    The featured profiles cover only a handful of periodic ASes; with a
    long tail of 36 additional small periodic ISPs (periods from the
    paper's observed set: 12 h ... 2 weeks), the detector must flag
    (nearly) all of them and none of the lease-renewing controls.
    """
    from repro.netsim.profiles import periodic_cohort, profile_by_name
    from repro.workloads import build_atlas_scenario

    profiles = periodic_cohort(36) + [profile_by_name("Comcast"), profile_by_name("Free SAS")]
    scenario = build_atlas_scenario(
        probes_per_as=8,
        years=1.0,
        seed=555,
        profiles=profiles,
        anomaly_fraction=0.0,
        bad_tag_fraction=0.0,
    )

    detected = benchmark.pedantic(
        lambda: compute_periodicity(scenario)[0], rounds=1, iterations=1
    )
    periodic_names = {name for name in detected if name.startswith("Periodic-")}
    artifact_writer(
        "periodicity_scale",
        f"periodic networks detected: {len(periodic_names)} / 36 "
        f"(controls flagged: {sorted(set(detected) - periodic_names)})",
    )
    assert len(periodic_names) >= 33  # nearly all of the cohort
    assert "Comcast" not in detected
    assert "Free SAS" not in detected
