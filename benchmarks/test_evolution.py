"""Section 3.2 "Evolution over time": durations lengthen year over year.

Paper shape: breaking durations down by year shows (a) IPv6 > IPv4 and
dual-stack > non-dual-stack in every year, and (b) assignment durations
increasing over the years, especially in ISPs that used to renumber
aggressively (DTAG, Orange).

The default profiles are time-homogeneous (so the other figures stay
calibrated); this benchmark simulates an *evolving* DTAG-like ISP whose
lease policy is administratively lengthened twice — 24 h periods in
year 1, 3-day periods in year 2, week-long leases afterwards — and
checks the drift is recovered by the yearly breakdown.
"""

from repro.bgp.registry import RIR, Registry
from repro.bgp.table import RoutingTable
from repro.core.evolution import simulation_years, trend_slope, yearly_means
from repro.core.report import probe_v4_durations, render_table
from repro.netsim.cpe import CpeBehavior
from repro.netsim.isp import (
    Isp,
    IspConfig,
    PolicyEpoch,
    V4AddressingConfig,
    V6AddressingConfig,
)
from repro.netsim.policy import ChangePolicy
from repro.workloads import build_atlas_scenario

DAY = 24.0
YEAR = 365 * DAY


def evolving_profile() -> IspConfig:
    epochs = (
        PolicyEpoch(1 * YEAR, ChangePolicy.periodic(3 * DAY, jitter_hours=0.3),
                    ChangePolicy.periodic(3 * DAY, jitter_hours=0.3)),
        PolicyEpoch(2 * YEAR, ChangePolicy.periodic(7 * DAY, jitter_hours=0.5),
                    ChangePolicy.periodic(7 * DAY, jitter_hours=0.5)),
    )
    return IspConfig(
        name="EvolvingISP",
        asn=64790,
        country="DE",
        rir=RIR.RIPE,
        dual_stack_fraction=0.6,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.periodic(DAY, jitter_hours=0.2),
            policy_ds=ChangePolicy.periodic(DAY, jitter_hours=0.2),
            num_blocks=3,
            block_plen=18,
            epochs=epochs,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(8 * 30 * DAY),
            allocation_plen=32,
            pool_plen=40,
            num_pools=8,
            delegation_plen=56,
            sync_with_v4_prob=0.5,
            cpe_mix=((CpeBehavior(lan_selection="zero"), 1.0),),
        ),
    )


def compute_evolution(scenario):
    durations = []
    for probe in scenario.probes:
        durations.extend(probe_v4_durations(probe))
    return yearly_means(durations)


def test_evolution(benchmark, artifact_writer):
    scenario = build_atlas_scenario(
        probes_per_as=30,
        years=3.0,
        seed=404,
        profiles=[evolving_profile()],
        anomaly_fraction=0.0,
        bad_tag_fraction=0.0,
    )
    yearly = benchmark(compute_evolution, scenario)

    rows = [[year, f"{mean / 24:.1f}"] for year, mean in sorted(yearly.items())]
    artifact_writer(
        "evolution",
        render_table(
            ["year", "mean IPv4 duration (days)"],
            rows,
            title="Evolution over time: yearly mean durations in an evolving ISP",
        ),
    )

    years = sorted(yearly)
    assert len(years) >= 3
    assert set(years) <= set(simulation_years(scenario.end_hour))
    # Durations lengthen monotonically across the policy epochs.  Note
    # the simulation epoch is September 2014, so calendar years straddle
    # policy-epoch boundaries and mix adjacent regimes.
    means = [yearly[year] for year in years]
    assert all(a < b for a, b in zip(means, means[1:]))
    assert trend_slope(yearly) > 0
    # The first calendar year is pure 24 h policy; the last is pure
    # week-long leases.
    assert means[0] < 2 * DAY
    assert means[-1] > 4 * DAY
