"""Figure 9: inferred subscriber prefix lengths, all probes pooled.

Paper shape: about half of the probes expose zeroed bits before the
/64 boundary, with the strongest spike at the /56 boundary (the RIPE-690
recommended residential delegation) and a second accumulation at /64
(scrambling or /64-delegating deployments).
"""

from repro.core.delegation import inferred_plen_distribution_for_probes
from repro.core.report import render_table


def compute_figure9(scenario):
    return inferred_plen_distribution_for_probes(
        scenario.probes, columns=scenario.analysis_columns()
    )


def test_figure9(benchmark, atlas_scenario, artifact_writer):
    distribution = benchmark(compute_figure9, atlas_scenario)

    from repro.core.report import render_histogram

    rows = [[f"/{plen}", f"{pct:.1f}%"] for plen, pct in sorted(distribution.items())]
    artifact_writer(
        "fig9",
        render_table(
            ["inferred prefix length", "% of probes"],
            rows,
            title="Figure 9: inferred subscriber prefix lengths, all probes",
        )
        + "\n"
        + render_histogram(
            {plen: round(pct) for plen, pct in distribution.items()}, label="/"
        ),
    )

    assert distribution, "no eligible probes with assignment changes"
    # The /56 boundary is the single strongest spike below /60.
    below_60 = {plen: pct for plen, pct in distribution.items() if plen < 60}
    assert below_60 and max(below_60.items(), key=lambda item: item[1])[0] == 56
    # A substantial share of probes expose zero bits (inferable < /64).
    inferable = sum(pct for plen, pct in distribution.items() if plen < 64)
    assert inferable > 30
    # Netcologne's whole-/48 delegations are visible in the pooled data.
    assert distribution.get(48, 0) > 0
