"""§3.2 "Comparisons with prior work": Zmap-style durations under-report.

Paper claim: Moura et al.'s responsiveness-based estimates (e.g. 10 h
for Deutsche Telekom, 20 h for BT) are far below the durations the
Atlas echo data shows, "due to the Zmap-based technique's tendency to
under-report session durations".  This benchmark reproduces the
mechanism: the same ground truth, measured (a) via the echo pipeline
and (b) via a responsiveness scanner with realistic probe loss and CPE
downtime.
"""

from repro.core.report import render_table
from repro.core.responsiveness import (
    ProbingConfig,
    estimate_sessions,
    true_assignment_durations,
    underestimation_factor,
)

DAY = 24.0


def test_zmap_comparison(benchmark, atlas_scenario, artifact_writer):
    rows = []
    factors = {}

    def run_all():
        results = {}
        for name in ("Comcast", "BT"):
            asn = atlas_scenario.asn_of(name)
            timelines = atlas_scenario.timelines[asn]
            truth = true_assignment_durations(timelines)
            estimated = estimate_sessions(
                timelines,
                end_hour=min(atlas_scenario.end_hour, 180 * DAY),
                config=ProbingConfig(loss_rate=0.03, tolerance_rounds=1),
                mean_up_hours=1200.0,
                mean_down_hours=10.0,
                seed=5,
            )
            results[name] = (truth, estimated)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, (truth, estimated) in results.items():
        if not truth or not estimated:
            continue
        true_mean = sum(truth) / len(truth) / 24
        estimated_mean = sum(estimated) / len(estimated) / 24
        factor = underestimation_factor(estimated, truth)
        factors[name] = factor
        rows.append(
            [name, f"{true_mean:.1f}d", f"{estimated_mean:.1f}d", f"{factor:.1f}x"]
        )
    artifact_writer(
        "comparison_zmap",
        render_table(
            ["AS", "true mean duration", "Zmap-style estimate", "under-report factor"],
            rows,
            title="Responsiveness-based estimation vs ground truth (cf. Moura et al.)",
        ),
    )

    # The scanner must under-report substantially everywhere it ran.
    assert factors
    for name, factor in factors.items():
        assert factor > 1.5, f"{name}: expected substantial under-reporting"


def test_connection_logs_cross_validation(benchmark, atlas_scenario, artifact_writer):
    """The predecessor dataset agrees with IP echo on IPv4 dynamics.

    Padmanabhan et al.'s connection logs and this paper's echo data are
    different observations of the same ground truth; where both pin a
    holding between two changes, the measured durations must agree.
    """
    from repro.atlas.connlogs import exact_durations, sessions_from_timeline
    from repro.core.periodicity import detect_periods

    asn = atlas_scenario.asn_of("Orange")
    timelines = atlas_scenario.timelines[asn]

    def run_connlogs():
        durations = []
        for sub_id, timeline in timelines.items():
            sessions = sessions_from_timeline(
                sub_id, timeline, atlas_scenario.end_hour, seed=sub_id
            )
            durations.extend(exact_durations(sessions))
        return durations

    connlog_durations = benchmark.pedantic(run_connlogs, rounds=1, iterations=1)
    modes = detect_periods(connlog_durations, tolerance=2.0)
    artifact_writer(
        "comparison_connlogs",
        "Connection-log exact IPv4 durations (Orange): "
        f"n={len(connlog_durations)}, detected modes: "
        + (", ".join(str(mode) for mode in modes) if modes else "none"),
    )
    # The 1-week Orange mode is visible through the predecessor dataset too.
    assert any(mode.period_hours == 7 * 24.0 for mode in modes)
