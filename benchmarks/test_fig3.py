"""Figure 3: CDN association durations by Internet registry, fixed vs mobile.

Paper shape:

* fixed associations are long everywhere — global median ~2 months,
  ARIN the longest (~100-day median);
* mobile associations are ephemeral — 75 % last a day or less, with a
  tail to ~30 days;
* RIPE's mobile distribution is the outlier (EE Ltd.), with a p75 far
  above the other registries';
* fixed durations exceed mobile by well over an order of magnitude at
  the median (paper: ~60x).
"""

from repro.bgp.registry import RIR, AccessKind
from repro.core.associations import association_box_stats
from repro.core.report import render_table


def compute_figure3(scenario):
    dataset = scenario.dataset
    results = {}
    for kind, kind_label in ((AccessKind.FIXED, "fixed"), (AccessKind.MOBILE, "mobile")):
        results[("ALL", kind_label)] = association_box_stats(
            dataset.triples_by_kind(kind)
        )
        for rir in RIR:
            triples = dataset.triples_by_rir(rir, kind)
            if triples:
                results[(rir.value, kind_label)] = association_box_stats(triples)
    return results


def test_figure3(benchmark, cdn_scenario, artifact_writer):
    results = benchmark(compute_figure3, cdn_scenario)

    rows = [
        [f"{registry} {kind}", stats.count, f"{stats.p5:.0f}", f"{stats.q1:.0f}",
         f"{stats.median:.0f}", f"{stats.q3:.0f}", f"{stats.p95:.0f}"]
        for (registry, kind), stats in results.items()
    ]
    artifact_writer(
        "fig3",
        render_table(
            ["registry/class", "n", "p5", "q1", "median", "q3", "p95"],
            rows,
            title="Figure 3: association durations (days) by registry",
        ),
    )

    all_fixed = results[("ALL", "fixed")]
    all_mobile = results[("ALL", "mobile")]
    # Mobile: most associations last about a day.
    assert all_mobile.median <= 2
    assert all_mobile.q3 <= 5
    # Fixed: an order of magnitude (paper: ~60x) longer at the median.
    assert all_fixed.median / all_mobile.median >= 10
    # ARIN fixed is the most stable registry.
    arin = results[("ARIN", "fixed")]
    for rir in ("RIPE", "APNIC", "LACNIC", "AFRINIC"):
        assert arin.median >= results[(rir, "fixed")].median
    # RIPE mobile is the outlier with a fat tail (EE-like operator).
    ripe_mobile = results[("RIPE", "mobile")]
    for rir in ("ARIN", "APNIC", "LACNIC", "AFRINIC"):
        assert ripe_mobile.q3 > results[(rir, "mobile")].q3
