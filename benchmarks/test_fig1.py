"""Figure 1: cumulative total time fraction of assignment durations.

Three panels — IPv4 non-dual-stack, IPv4 dual-stack, IPv6 — for six
large ASes.  Paper shape:

* sharp IPv4-NDS modes at 1 day (DTAG), 1.5 days (Proximus), 1 week
  (Orange), 2 weeks (BT);
* dual-stack IPv4 durations longer than non-dual-stack in most ASes;
* IPv6 durations longest of all, months-long, except DTAG's 1-day
  renumbering.
"""

from conftest import FEATURED_SIX

from repro.core.report import as_durations, figure1_series, render_table
from repro.core.timefraction import CANONICAL_LABELS


def compute_figure1(scenario):
    panels = {}
    for name in FEATURED_SIX:
        asn = scenario.asn_of(name)
        probes = scenario.probes_in(asn)
        durations = as_durations(probes, columns=scenario.analysis_columns(asn))
        panels[name] = {
            "v4_nds": figure1_series(name, durations.v4_non_dual_stack),
            "v4_ds": figure1_series(name, durations.v4_dual_stack),
            "v6": figure1_series(name, durations.v6),
        }
    return panels


def _render(panels, key, title):
    rows = []
    for name, series_map in panels.items():
        series = series_map[key]
        rows.append(
            [name, f"{series.total_years:.1f}y"]
            + [f"{value:.2f}" for value in series.grid_values]
        )
    return render_table(["AS", "total"] + list(CANONICAL_LABELS), rows, title=title)


def test_figure1(benchmark, atlas_scenario, artifact_writer):
    panels = benchmark(compute_figure1, atlas_scenario)

    rendered = "\n\n".join(
        _render(panels, key, title)
        for key, title in (
            ("v4_nds", "Figure 1 (left): IPv4 non-dual-stack cumulative total time fraction"),
            ("v4_ds", "Figure 1 (middle): IPv4 dual-stack"),
            ("v6", "Figure 1 (right): IPv6 /64"),
        )
    )
    artifact_writer("fig1", rendered)

    index = {label: position for position, label in enumerate(CANONICAL_LABELS)}

    # IPv4-NDS periodic modes: DTAG at 1 day, Proximus <= 3 days,
    # Orange at 1 week, BT at 2 weeks.
    dtag = panels["DTAG"]["v4_nds"].grid_values
    assert dtag[index["1d"]] > 0.85
    orange = panels["Orange"]["v4_nds"].grid_values
    assert orange[index["1w"]] - orange[index["3d"]] > 0.5
    bt = panels["BT"]["v4_nds"].grid_values
    assert bt[index["2w"]] - bt[index["1w"]] > 0.5
    proximus = panels["Proximus"]["v4_nds"].grid_values
    assert proximus[index["3d"]] > 0.8

    # Dual-stack IPv4 lasts longer: mass at short durations shrinks.
    for name in ("DTAG", "Orange", "BT"):
        nds = panels[name]["v4_nds"].grid_values
        ds = panels[name]["v4_ds"].grid_values
        assert ds[index["2w"]] < nds[index["2w"]]

    # IPv6 is the most stable panel for the lease-renewing ASes: less
    # than half the assigned time sits in sub-month durations.
    for name in ("Comcast", "Orange", "LGI", "BT"):
        v6 = panels[name]["v6"].grid_values
        assert v6[index["1m"]] < 0.5
    # ... but DTAG renumbers IPv6 daily for a visible share of time.
    assert panels["DTAG"]["v6"].grid_values[index["1d"]] > 0.25
