"""Figure 7: trailing-zero frequencies in CDN /64s, per registry.

Paper shape: large inferable fractions everywhere except LACNIC
(ARIN 59 %, RIPE 79 %, APNIC 54 %, LACNIC 15 %, AFRINIC 83 %); RIPE and
AFRINIC dominated by the /56 boundary; mobile /64s show essentially no
trailing-zero structure (they ARE the delegation).
"""

from repro.bgp.registry import RIR, AccessKind
from repro.core.delegation import FIG7_BOUNDARIES, trailing_zero_profile
from repro.core.report import render_table
from repro.ip.prefix import IPv6Prefix


def compute_figure7(scenario):
    dataset = scenario.dataset
    profiles = {}
    for rir in RIR:
        keys = {t[2] for t in dataset.triples_by_rir(rir, AccessKind.FIXED)}
        profiles[rir.value] = trailing_zero_profile(IPv6Prefix(k, 64) for k in keys)
    mobile_keys = {t[2] for t in dataset.triples_by_kind(AccessKind.MOBILE)}
    profiles["mobile (all)"] = trailing_zero_profile(
        IPv6Prefix(k, 64) for k in mobile_keys
    )
    return profiles


def test_figure7(benchmark, cdn_scenario, artifact_writer):
    profiles = benchmark(compute_figure7, cdn_scenario)

    rows = [
        [label, profile.total, f"{profile.inferable_pct:.1f}%"]
        + [f"{profile.fraction_at(boundary):.2f}" for boundary in FIG7_BOUNDARIES]
        for label, profile in profiles.items()
    ]
    artifact_writer(
        "fig7",
        render_table(
            ["registry", "/64s", "inferable"] + [f"/{b}" for b in FIG7_BOUNDARIES],
            rows,
            title="Figure 7: trailing-zero inferred delegation lengths (fixed /64s)",
        ),
    )

    # Inferable fractions ordered as in the paper: AFRINIC/RIPE high,
    # LACNIC lowest by far.
    inferable = {label: profile.inferable_pct for label, profile in profiles.items()}
    assert inferable["LACNIC"] < 30
    for rir in ("ARIN", "RIPE", "APNIC", "AFRINIC"):
        assert inferable[rir] > 40
        assert inferable[rir] > inferable["LACNIC"]
    assert inferable["AFRINIC"] > 65
    assert inferable["RIPE"] > 60
    # RIPE and AFRINIC are /56-dominated.
    assert profiles["RIPE"].fraction_at(56) > profiles["RIPE"].fraction_at(60)
    assert profiles["AFRINIC"].fraction_at(56) > 0.4
    # Mobile /64s: no trailing-zero structure.
    assert inferable["mobile (all)"] < 15
