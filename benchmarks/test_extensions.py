"""Extension benchmarks: target generation, anonymization, vectorization.

These quantify the paper's forward-looking claims (Sections 2.3 and 6):
structure-informed target generation beats pattern/density baselines,
adaptive anonymization fixes truncation's failure mode, and the
vectorized analytics path scales the CDN analyses.
"""

import random

import numpy as np

from repro.core.anonymize import audit_networks
from repro.core.associations import association_durations
from repro.core.associations_np import association_durations_np, columns_from_triples
from repro.core.delegation import inferred_plen_distribution, per_probe_prefixes_from_runs
from repro.core.report import render_table
from repro.core.targetgen import (
    DenseRegionGenerator,
    NibblePatternGenerator,
    StructureInformedGenerator,
    evaluate_generator,
)
from repro.ip.prefix import IPv6Prefix


def _build_ground_truth(seed=11, num_pools=3, per_pool=120, delegation_plen=56):
    rng = random.Random(seed)
    allocation = IPv6Prefix.parse("2a00:500::/32")
    pools = [allocation.nth_subprefix(44, i * 333) for i in range(num_pools)]
    active = []
    for pool in pools:
        capacity = pool.num_subprefixes(delegation_plen)
        for index in rng.sample(range(capacity), per_pool):
            active.append(pool.nth_subprefix(delegation_plen, index).nth_subprefix(64, 0))
    return pools, active


def test_target_generation_comparison(benchmark, artifact_writer):
    """Structure-informed generation vs Entropy/IP- and 6Gen-style baselines."""
    pools, active = _build_ground_truth()
    rng = random.Random(7)
    seeds = rng.sample(active, len(active) // 2)  # scanner knows half the truth
    unknown = [prefix for prefix in active if prefix not in set(seeds)]
    budget = 3000

    def run_all():
        return {
            "structure-informed": evaluate_generator(
                StructureInformedGenerator(pools, 56, seed=1).generate(budget), unknown
            ),
            "nibble-pattern (Entropy/IP-style)": evaluate_generator(
                NibblePatternGenerator(seeds, seed=1).generate(budget), unknown
            ),
            "dense-region (6Gen-style)": evaluate_generator(
                DenseRegionGenerator(seeds, region_plen=48).generate(budget), unknown
            ),
        }

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, score.candidates, score.hits, f"{score.coverage:.1%}", f"{score.hit_rate:.2%}"]
        for name, score in scores.items()
    ]
    artifact_writer(
        "ext_targetgen",
        render_table(
            ["generator", "candidates", "hits", "coverage of unknown", "hit rate"],
            rows,
            title=f"Target generation at budget {budget} (/64 probes)",
        ),
    )
    informed = scores["structure-informed"]
    for name, score in scores.items():
        if name != "structure-informed":
            assert informed.coverage >= score.coverage
    assert informed.coverage > 0.1


def test_adaptive_anonymization(benchmark, atlas_scenario, artifact_writer):
    """Fixed /48 truncation vs delegation-aware adaptive truncation."""

    def run_audit():
        per_network = {}
        for name, isp in atlas_scenario.isps.items():
            probes = atlas_scenario.probes_in(isp.asn)
            per_probe = per_probe_prefixes_from_runs(probes)
            if not per_probe:
                continue
            distribution = inferred_plen_distribution(per_probe)
            if not distribution:
                continue
            delegation_plen = max(distribution.items(), key=lambda item: item[1])[0]
            per_network[name] = (delegation_plen, per_probe)
        return audit_networks(per_network, fixed_truncation=48, k=16)

    records = benchmark.pedantic(run_audit, rounds=1, iterations=1)
    rows = [
        [
            record["network"],
            f"/{record['delegation_plen']}",
            record["fixed_potential_anonymity"],
            f"{record['fixed_singleton_fraction']:.0%}",
            f"/{record['adaptive_plen']}",
            record["potential_anonymity"],
        ]
        for record in records
    ]
    artifact_writer(
        "ext_anonymize",
        render_table(
            ["AS", "delegation", "/48 max anonymity", "/48 observed singletons",
             "adaptive plen", "k guarantee"],
            rows,
            title="Anonymization audit: fixed /48 truncation vs adaptive (k=16)",
        ),
    )

    by_name = {record["network"]: record for record in records}
    # Netcologne delegates /48s: a /48-truncated aggregate can only ever
    # contain ONE subscriber — truncation is structurally identifying.
    if "Netcologne" in by_name:
        assert by_name["Netcologne"]["fixed_potential_anonymity"] == 1
        assert by_name["Netcologne"]["adaptive_plen"] <= 44
    # /56-delegating ISPs: a /48 aggregate spans up to 256 subscribers.
    if "Orange" in by_name:
        assert by_name["Orange"]["fixed_potential_anonymity"] == 256
    # Adaptive truncation always guarantees the k target by construction.
    for record in records:
        assert record["potential_anonymity"] >= 16


def test_cgnat_inference(benchmark, cdn_scenario, artifact_writer):
    """§4.3: high /64-per-/24 degrees identify CGNAT deployments.

    The classifier is scored against simulator ground truth: the /24s
    actually configured as CGNAT egress blocks in the mobile operators.
    """
    from repro.core.cgn import (
        classify_slash24s,
        estimate_multiplexing,
        score_against_truth,
    )

    triples = cdn_scenario.dataset.all_triples()
    verdicts = benchmark(classify_slash24s, triples)
    estimate = estimate_multiplexing(verdicts)

    # Ground truth: the first two /24s of each mobile ISP's blocks are
    # the CGNAT egress blocks (see MobilePopulation), *if observed*.
    classifier = cdn_scenario.dataset.classifier
    observed = set(verdicts)
    truth = {
        key
        for key in observed
        if classifier.kind_of_asn(classifier.asn_of_v4_key(key)) is not None
        and classifier.kind_of_asn(classifier.asn_of_v4_key(key)).value == "mobile"
    }
    precision, recall = score_against_truth(verdicts, truth)
    artifact_writer(
        "ext_cgn",
        f"CGNAT inference: {estimate.cgnat_slash24s} CGNAT /24s, "
        f"{estimate.plain_slash24s} plain, {estimate.undecided_slash24s} undecided; "
        f"median multiplexing factor {estimate.median_multiplexing_factor:.0f}; "
        f"precision {precision:.2f}, recall {recall:.2f}",
    )
    assert precision >= 0.95
    assert recall >= 0.95
    assert estimate.median_multiplexing_factor > 256 * 8


def test_vectorized_analytics(benchmark, cdn_scenario, artifact_writer):
    """NumPy path equivalence + speed on the full CDN dataset."""
    triples = cdn_scenario.dataset.all_triples()
    days, v4, v6 = columns_from_triples(triples)

    vectorized = benchmark(lambda: association_durations_np(days, v4, v6))

    import time

    start = time.perf_counter()
    reference = association_durations(triples)
    python_seconds = time.perf_counter() - start
    start = time.perf_counter()
    association_durations_np(days, v4, v6)
    numpy_seconds = time.perf_counter() - start

    assert sorted(reference) == sorted(int(x) for x in vectorized)
    artifact_writer(
        "ext_vectorized",
        render_table(
            ["implementation", f"{len(triples)} triples (s)"],
            [
                ["pure Python (reference)", f"{python_seconds:.3f}"],
                ["NumPy (vectorized)", f"{numpy_seconds:.3f}"],
            ],
            title="Association-duration analytics: reference vs vectorized",
        ),
    )
    assert numpy_seconds < python_seconds
