"""Figure 6: inferred subscriber-identifying prefix lengths per ISP.

Paper shape: strong /56 concentration for Orange, DTAG and Sky UK
(verified real-world delegation size); Kabel DE peaks at /62 (branded
CPEs request /62); Netcologne delegates whole /48s; DTAG also shows a
second spike at /64 caused by prefix-scrambling CPEs that defeat the
zero-bit method.
"""

from repro.core.delegation import inferred_plen_distribution_for_probes
from repro.core.report import render_table

FIG6_ISPS = (
    "DTAG", "Orange", "LGI", "Comcast", "Versatel",
    "Free SAS", "Kabel DE", "Netcologne", "BT", "Sky UK",
)


def compute_figure6(scenario):
    results = {}
    for name in FIG6_ISPS:
        asn = scenario.asn_of(name)
        probes = scenario.probes_in(asn)
        results[name] = inferred_plen_distribution_for_probes(
            probes, columns=scenario.analysis_columns(asn)
        )
    return results


def test_figure6(benchmark, atlas_scenario, artifact_writer):
    distributions = benchmark(compute_figure6, atlas_scenario)

    plens = sorted({plen for dist in distributions.values() for plen in dist})
    rows = [
        [name] + [f"{dist.get(plen, 0):.0f}%" for plen in plens]
        for name, dist in distributions.items()
    ]
    artifact_writer(
        "fig6",
        render_table(
            ["AS"] + [f"/{plen}" for plen in plens],
            rows,
            title="Figure 6: inferred subscriber prefix length (% of probes)",
        ),
    )

    def modal(name):
        dist = distributions[name]
        return max(dist.items(), key=lambda item: item[1])[0] if dist else None

    # Verified real-world delegation sizes.
    assert modal("Orange") in (55, 56)
    assert modal("Sky UK") in (55, 56)
    assert modal("Kabel DE") in (61, 62)
    assert modal("Netcologne") in (47, 48)
    # DTAG: both the /56 spike (zero-filling CPEs) and a /64-adjacent
    # spike (scrambling CPEs) are visible.
    dtag = distributions["DTAG"]
    assert dtag.get(56, 0) > 10
    assert sum(pct for plen, pct in dtag.items() if plen >= 62) > 10
    # Comcast delegates /60s.
    assert modal("Comcast") in (59, 60)
