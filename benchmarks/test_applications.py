"""Section 6 application benchmarks: blocklisting and rescan targeting.

Not figures from the paper's evaluation, but quantified versions of its
"Implications and Applications" discussion, run against simulator
ground truth:

* blocklist TTLs must follow per-ISP assignment durations — a TTL that
  is safe in a stable ISP causes collateral damage in a daily
  renumbering one;
* knowing the pool boundary and delegated prefix length turns IPv6
  re-finding from hopeless into near-certain under a modest budget.
"""

from repro.core.blocklist import BlocklistPolicy, evaluate_blocklist
from repro.core.hitlist import evaluate_rescan_plan, search_space_sizes
from repro.core.report import render_table
from repro.netsim.sim import IspSimulation

DAY = 24.0


def test_blocklist_ttl_tradeoff(benchmark, atlas_scenario, artifact_writer):
    """Evasion/collateral across TTLs for a periodic vs a stable ISP."""
    horizon = int(60 * DAY)
    rows = []

    def run_all():
        results = {}
        for name in ("DTAG", "Comcast"):
            asn = atlas_scenario.asn_of(name)
            timelines = atlas_scenario.timelines[asn]
            for ttl in (6.0, 3 * DAY, 30 * DAY):
                report = evaluate_blocklist(
                    timelines,
                    attacker_id=0,
                    policy=BlocklistPolicy(ttl_hours=ttl, v4_plen=24),
                    end_hour=horizon,
                )
                results[(name, ttl)] = report
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for (name, ttl), report in results.items():
        rows.append(
            [
                name,
                f"{ttl / 24:.2f}d",
                f"{report.evasion_rate:.1%}",
                f"{report.collateral_rate:.2%}",
                report.entries_added,
            ]
        )
    artifact_writer(
        "app_blocklist",
        render_table(
            ["AS", "TTL", "evasion", "collateral", "entries"],
            rows,
            title="Blocklist TTL trade-off (/24 blocking, 60 days)",
        ),
    )

    # In the daily-renumbering ISP, a month-long TTL wreaks collateral
    # damage; in the stable ISP the same TTL is nearly free.
    dtag_long = results[("DTAG", 30 * DAY)]
    comcast_long = results[("Comcast", 30 * DAY)]
    assert dtag_long.collateral_rate > 5 * max(comcast_long.collateral_rate, 1e-4)
    # Short TTLs cause little collateral anywhere.
    assert results[("DTAG", 6.0)].collateral_rate < dtag_long.collateral_rate


def test_mapping_validity(benchmark, atlas_scenario, artifact_writer):
    """Intro application: how long does an IP-keyed database stay correct?

    Per ISP and family, the half-life of a snapshot mapping — the single
    number behind "there exists an expectation that a host's IP address
    will persist for sufficient time".
    """
    from repro.core.mapping import compare_families

    at_hour = atlas_scenario.end_hour / 2

    def run_all():
        results = {}
        for name in ("DTAG", "Comcast", "Orange", "BT"):
            asn = atlas_scenario.asn_of(name)
            results[name] = compare_families(atlas_scenario.timelines[asn], at_hour)
        return results

    lives = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, by_family in lives.items():
        def fmt(hours):
            if hours == float("inf"):
                return ">window"
            return f"{hours / 24:.1f}d"

        rows.append([name, fmt(by_family.get(4, float("nan"))),
                     fmt(by_family.get(6, float("nan")))])
    artifact_writer(
        "app_mapping",
        render_table(
            ["AS", "IPv4 mapping half-life", "IPv6 /64 half-life"],
            rows,
            title="IP-keyed database validity half-life per ISP",
        ),
    )

    # DTAG's renumbering makes v4 mappings decay an order of magnitude
    # faster than Comcast's; IPv6 outlives IPv4 wherever the paper's
    # headline holds (the DS-stable minority softens DTAG's median at
    # small population scales).
    assert lives["DTAG"][4] < 15 * DAY
    assert lives["Comcast"][4] > 30 * DAY
    assert lives["Comcast"][4] > 4 * lives["DTAG"][4]
    for name in ("Comcast", "Orange", "BT"):
        assert lives[name][6] >= lives[name][4]


def test_rescan_targeting(benchmark, atlas_scenario, artifact_writer):
    """Hit rates for re-finding devices after renumbering, per budget."""
    asn = atlas_scenario.asn_of("Orange")  # /56 delegations, zero CPEs
    timelines = atlas_scenario.timelines[asn]
    histories = {
        str(sub_id): [interval.value for interval in timeline.v6_lan]
        for sub_id, timeline in timelines.items()
        if timeline.dual_stack
    }

    def run_all():
        return {
            budget: evaluate_rescan_plan(histories, budget=budget, seed=1)
            for budget in (16, 1 << 10, 1 << 14)
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    space = search_space_sizes(26, 42, 56)
    rows = [
        [budget, outcome.attempts, f"{outcome.hit_rate:.1%}", outcome.probes_spent]
        for budget, outcome in outcomes.items()
    ]
    artifact_writer(
        "app_rescan",
        render_table(
            ["budget (/64 probes)", "renumberings", "hit rate", "probes spent"],
            rows,
            title=(
                "Re-finding devices after renumbering (Orange-like ISP)\n"
                f"search space: BGP-only 2^{space.bgp_only.bit_length() - 1}, "
                f"pool 2^{space.with_pool.bit_length() - 1}, "
                f"informed 2^{space.with_delegation.bit_length() - 1} /64s"
            ),
        ),
    )

    if outcomes[16].attempts >= 5:
        # An informed exhaustive budget (2^14 >= pool/delegation space)
        # nearly always re-finds the device; 16 probes nearly never do.
        assert outcomes[1 << 14].hit_rate > 0.55
        assert outcomes[16].hit_rate < outcomes[1 << 14].hit_rate
