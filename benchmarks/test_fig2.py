"""Figure 2: CDN address-association durations for the featured ISPs.

Paper shape: association durations track the *shorter* of the two
stacks' assignment durations — DTAG and BT have median durations of
roughly 1-2 weeks; Comcast, Orange, LGI and Proximus sit at one to
several months.
"""

from conftest import FEATURED_SIX

from repro.core.associations import association_durations, box_stats, duration_cdf
from repro.core.report import render_table


def compute_figure2(scenario):
    results = {}
    for name in FEATURED_SIX:
        asn = scenario.featured_asns[name]
        durations = association_durations(scenario.dataset.triples_for(asn))
        results[name] = (box_stats(durations), duration_cdf(durations))
    return results


def test_figure2(benchmark, cdn_scenario, artifact_writer):
    results = benchmark(compute_figure2, cdn_scenario)

    rows = []
    for name, (stats, (xs, ys)) in results.items():
        rows.append(
            [name, stats.count, f"{stats.q1:.0f}", f"{stats.median:.0f}",
             f"{stats.q3:.0f}", f"{stats.p95:.0f}"]
        )
    artifact_writer(
        "fig2",
        render_table(
            ["AS", "associations", "q1 (d)", "median (d)", "q3 (d)", "p95 (d)"],
            rows,
            title="Figure 2: CDN association durations per featured ISP",
        ),
    )

    medians = {name: stats.median for name, (stats, _cdf) in results.items()}
    # DTAG and BT are the short end (days to ~2 weeks).
    assert medians["DTAG"] <= 21
    assert medians["BT"] <= 35
    # Stable ISPs hold associations for one to several months.
    for name in ("Comcast", "Orange", "LGI"):
        assert medians[name] >= 30
    # Ordering: the periodic renumberers lose to the stable ISPs.
    assert medians["DTAG"] < medians["Comcast"]
    assert medians["DTAG"] < medians["Orange"]
