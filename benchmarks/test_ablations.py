"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation contrasts the paper's methodological choice with the
naive alternative and quantifies the difference on the same data:

* **total time fraction vs naive PMF** — the naive duration histogram
  over-represents short-lease CPEs (Section 3.2.1's motivation);
* **sandwiched vs censored durations** — including first/last runs
  under-estimates durations;
* **ASN-mismatch filtering** — without it, cellular/WiFi switchers
  pollute the association dataset;
* **sanitization** — multihomed probes masquerade as hyper-dynamic
  assignment churn;
* **Patricia trie vs linear scan** — the LPM engine's asymptotic win.
"""

import random

import pytest

from repro.atlas.sanitize import sanitize
from repro.bgp.table import RoutingTable
from repro.core.changes import all_observed_durations, changes_from_runs, sandwiched_durations
from repro.core.report import as_durations, render_table
from repro.core.timefraction import (
    cumulative_total_time_fraction,
    median_of_cdf,
    naive_duration_cdf,
)
from repro.ip.addr import IPv4Address
from repro.ip.prefix import IPv4Prefix
from repro.ip.trie import PrefixTrie
from repro.workloads import build_cdn_scenario


def test_ablation_total_time_fraction(benchmark, atlas_scenario, artifact_writer):
    """Naive PMF vs Eq. 1 on a short+long mixed population (DTAG)."""
    probes = atlas_scenario.probes_in(atlas_scenario.asn_of("DTAG"))
    durations = as_durations(probes)
    v4 = durations.v4_non_dual_stack + durations.v4_dual_stack

    def compute():
        return (
            naive_duration_cdf(v4),
            cumulative_total_time_fraction(v4),
        )

    (naive_xs, naive_ys), (ttf_xs, ttf_ys) = benchmark(compute)
    naive_median = median_of_cdf(naive_xs, naive_ys)
    ttf_median = median_of_cdf(ttf_xs, ttf_ys)
    artifact_writer(
        "ablation_ttf",
        render_table(
            ["metric", "median duration (h)"],
            [["naive PMF", f"{naive_median:.0f}"], ["total time fraction", f"{ttf_median:.0f}"]],
            title="Ablation: naive duration PMF vs total time fraction (DTAG IPv4)",
        ),
    )
    # The naive median is dragged to the 24h renumberers; the
    # time-weighted median is at least as large, and the two metrics
    # disagree substantially on this mixed population.
    assert naive_median <= 25
    assert ttf_median >= naive_median


def test_ablation_censoring(benchmark, artifact_writer):
    """Censored (first/last run) durations vs sandwiched-only.

    Uses a deliberately short observation window (9 months) over an ISP
    whose true mean holding time is ~5 months, where censoring bites
    hardest: most runs touch the window edges.
    """
    from repro.netsim.profiles import profile_by_name
    from repro.workloads import build_atlas_scenario

    scenario = build_atlas_scenario(
        probes_per_as=40,
        years=0.75,
        seed=123,
        profiles=[profile_by_name("Comcast")],
        anomaly_fraction=0.0,
        bad_tag_fraction=0.0,
    )
    probes = scenario.probes

    def compute():
        sandwiched = []
        censored = []
        for probe in probes:
            sandwiched.extend(float(d.hours) for d in sandwiched_durations(probe.v4_runs))
            censored.extend(float(h) for h in all_observed_durations(probe.v4_runs))
        return sandwiched, censored

    sandwiched, censored = benchmark(compute)
    if not sandwiched:
        pytest.skip("no sandwiched durations in this scale")
    mean_sandwiched = sum(sandwiched) / len(sandwiched)
    mean_censored = sum(censored) / len(censored)

    # The principled fix: Kaplan-Meier over exact + right-censored runs.
    from repro.core.survival import kaplan_meier
    from repro.core.survival import observations_from_runs as survival_observations

    km_observations = []
    for probe in probes:
        km_observations.extend(
            survival_observations(probe.v4_runs, window_end=scenario.end_hour)
        )
    km_mean = kaplan_meier(km_observations).mean() if km_observations else 0.0

    true_mean_days = 4.4 * 30  # blend of the profile's 4/5-month policies
    artifact_writer(
        "ablation_censoring",
        render_table(
            ["population", "n", "mean duration (days)"],
            [
                ["true (configured) mean", "-", f"{true_mean_days:.0f}"],
                ["sandwiched only (paper)", len(sandwiched), f"{mean_sandwiched / 24:.1f}"],
                ["all runs (censored)", len(censored), f"{mean_censored / 24:.1f}"],
                ["Kaplan-Meier (restricted)", len(km_observations), f"{km_mean / 24:.1f}"],
            ],
            title="Ablation: censoring bias, 9-month window over ~4.4-month leases",
        ),
    )
    # Both plain estimators are window-limited: the censored population is
    # dominated by clipped first/last runs and the sandwiched set is
    # selection-biased toward short durations.  Kaplan-Meier uses the
    # censored mass and sits strictly above both.
    assert mean_censored / 24 < true_mean_days
    assert mean_sandwiched / 24 < true_mean_days  # short-window selection bias
    assert len(censored) > 1.2 * len(sandwiched)
    assert km_mean > mean_sandwiched
    assert km_mean > mean_censored


def test_ablation_asn_filter(benchmark, artifact_writer):
    """ASN-mismatch filtering vs raw associations under switching noise."""

    def build(filter_on: bool):
        return build_cdn_scenario(
            days=60,
            seed=77,
            fixed_subscribers_per_registry=150,
            mobile_devices_per_registry=150,
            featured_subscribers=40,
            include_featured_isps=False,
            cross_network_noise=0.15,
            filter_asn_mismatch=filter_on,
        )

    filtered = benchmark(build, True)
    unfiltered = build(False)
    kept_filtered = filtered.dataset.total_kept
    kept_unfiltered = unfiltered.dataset.total_kept
    artifact_writer(
        "ablation_asn_filter",
        render_table(
            ["configuration", "kept", "discarded"],
            [
                ["with ASN-mismatch filter", kept_filtered,
                 filtered.dataset.discarded_asn_mismatch],
                ["without filter", kept_unfiltered,
                 unfiltered.dataset.discarded_asn_mismatch],
            ],
            title="Ablation: Section 4.1 ASN-mismatch pre-processing",
        ),
    )
    # The filter must remove a visible share of associations (the
    # injected 15% switching noise on mobile populations).
    assert filtered.dataset.discarded_asn_mismatch > 0
    assert kept_unfiltered > kept_filtered
    removed = filtered.dataset.discarded_asn_mismatch
    assert removed / filtered.dataset.total_collected > 0.02


def test_ablation_sanitization(benchmark, atlas_scenario, artifact_writer):
    """Change counts with the Appendix A.1 pipeline on vs off."""

    def compute():
        sanitized_changes = sum(
            len(changes_from_runs(probe.v4_runs)) for probe in atlas_scenario.probes
        )
        raw_changes = sum(
            len(changes_from_runs(data.v4_runs)) for data in atlas_scenario.raw_probes
        )
        return sanitized_changes, raw_changes

    sanitized_changes, raw_changes = benchmark(compute)
    report = atlas_scenario.report
    artifact_writer(
        "ablation_sanitize",
        render_table(
            ["configuration", "probes", "v4 changes"],
            [
                ["raw platform output", report.input_probes, raw_changes],
                ["after sanitization", report.kept_probes, sanitized_changes],
            ],
            title="Ablation: Appendix A.1 sanitization",
        ),
    )
    # Multihomed flappers inflate raw change counts: the pipeline must
    # remove probes, and with them a disproportionate share of changes.
    assert report.kept_probes < report.input_probes
    assert sanitized_changes < raw_changes


def test_ablation_trie_vs_linear(benchmark, artifact_writer):
    """Longest-prefix match: Patricia trie vs linear scan."""
    rng = random.Random(5)
    prefixes = [IPv4Prefix(rng.getrandbits(32), rng.randint(8, 24)) for _ in range(4000)]
    trie = PrefixTrie(IPv4Prefix)
    for prefix in prefixes:
        trie.insert(prefix, prefix.plen)
    table = RoutingTable()
    addresses = [IPv4Address(rng.getrandbits(32)) for _ in range(2000)]
    del table

    def trie_lookups():
        return sum(1 for address in addresses if trie.longest_match(address) is not None)

    def linear_lookups():
        hits = 0
        for address in addresses:
            best = -1
            for prefix in prefixes:
                if prefix.plen > best and prefix.contains_address(address):
                    best = prefix.plen
            hits += best >= 0
        return hits

    trie_hits = benchmark(trie_lookups)

    import time

    start = time.perf_counter()
    linear_hits = linear_lookups()
    linear_seconds = time.perf_counter() - start
    assert trie_hits == linear_hits

    start = time.perf_counter()
    trie_lookups()
    trie_seconds = time.perf_counter() - start
    artifact_writer(
        "ablation_trie",
        render_table(
            ["engine", "2000 lookups over 4000 routes (s)"],
            [
                ["Patricia trie", f"{trie_seconds:.4f}"],
                ["linear scan", f"{linear_seconds:.4f}"],
            ],
            title="Ablation: LPM engine",
        ),
    )
    assert trie_seconds < linear_seconds
