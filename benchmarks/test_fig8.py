"""Figure 8: unique prefixes of each length observed per probe.

Paper shape: per probe, the number of unique /56s and /48s tracks the
number of unique /64s (every reassignment leaves both), but the number
of unique /40s collapses — 90 % of probes see three or fewer /40s over
their lifetime, and usually a single BGP prefix.  Assignments move
within a stable pool.
"""

from conftest import FEATURED_SIX

from repro.core.changes import v6_runs_to_prefix_runs
from repro.core.report import render_table
from repro.core.spatial import unique_prefix_cdf, unique_prefix_counts


def compute_figure8(scenario):
    results = {}
    for name in FEATURED_SIX:
        probes = scenario.probes_in(scenario.asn_of(name))
        per_probe = []
        for probe in probes:
            if not probe.v6_runs:
                continue
            observed = [run.value for run in v6_runs_to_prefix_runs(probe.v6_runs)]
            if len(observed) < 2:
                continue
            per_probe.append(unique_prefix_counts(observed, table=scenario.table))
        results[name] = per_probe
    return results


def _quantile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_figure8(benchmark, atlas_scenario, artifact_writer):
    results = benchmark(compute_figure8, atlas_scenario)

    lines = []
    for name, per_probe in results.items():
        if not per_probe:
            continue
        lines.append(f"\nFigure 8 ({name}): median unique prefixes per probe")
        keys = ["/64", "/56", "/48", "/40", "/32", "/24", "BGP"]
        medians = []
        for key in keys:
            values = [counts[key] for counts in per_probe if key in counts]
            medians.append(_quantile(values, 0.5) if values else "-")
        lines.append(render_table(keys, [medians]))
    artifact_writer("fig8", "\n".join(lines))

    for name in ("DTAG", "Orange", "BT"):
        per_probe = results[name]
        if len(per_probe) < 5:
            continue
        v64 = [counts["/64"] for counts in per_probe]
        v48 = [counts["/48"] for counts in per_probe]
        v40 = [counts["/40"] for counts in per_probe]
        bgp = [counts["BGP"] for counts in per_probe]
        # /48 counts track /64 counts (most reassignments leave the /48)
        # for the typical probe.  Two exceptions the data must tolerate:
        # heavy renumberers saturate (a /40 pool only contains 256 /48s)
        # and scrambling CPEs rotate /64s *inside* one delegation.
        ratios = sorted(
            counts["/48"] / min(256, counts["/64"]) for counts in per_probe
        )
        assert ratios[len(ratios) // 2] >= 0.5
        # ... but /40s collapse: 90% of probes see only a handful of
        # unique /40s (the paper reports <= 3 over ~5.7 years).
        assert _quantile(v40, 0.9) <= 4
        # Probes essentially never leave their BGP prefix in IPv6.
        assert _quantile(bgp, 0.9) <= 2

    # DTAG probes see many unique /64s (daily renumbering).
    dtag_v64 = [counts["/64"] for counts in results["DTAG"]]
    assert _quantile(dtag_v64, 0.5) > 50

    # The unique-prefix CDF helper produces monotone curves.
    xs, ys = unique_prefix_cdf(results["DTAG"], "/40")
    assert ys == sorted(ys)
    assert not ys or abs(ys[-1] - 1.0) < 1e-9
