"""Figure 4: distribution of IPv6 /64 associations per IPv4 /24.

Paper shape:

* mobile /24s are massively multiplexed: the hit-weighted density
  peaks around 10^4-10^5 unique /64s per /24 (CGNAT);
* fixed /24s peak at 150-200 unique /64s — the typical count of active
  addresses in a residential /24;
* despite the multiplexing, 87 % of mobile /64s associate with exactly
  one /24 (device-to-egress affinity).
"""

from repro.bgp.registry import AccessKind
from repro.core.associations import (
    fraction_degree_one,
    log_density,
    v4_degree_counts,
    v6_degree_counts,
    weighted_peak,
)
from repro.core.report import render_table


def compute_figure4(scenario):
    results = {}
    for kind, label in ((AccessKind.MOBILE, "mobile"), (AccessKind.FIXED, "fixed")):
        triples = scenario.dataset.triples_by_kind(kind)
        unique, hits = v4_degree_counts(triples)
        values = list(unique.values())
        weights = [hits[key] for key in unique]
        results[label] = {
            "unique_density": log_density(values),
            "weighted_density": log_density(values, weights=weights),
            "weighted_peak": weighted_peak(*log_density(values, weights=weights)),
            "unique_peak": weighted_peak(*log_density(values)),
            "v6_degree_one": fraction_degree_one(v6_degree_counts(triples)),
            "num_slash24s": len(unique),
        }
    return results


def test_figure4(benchmark, cdn_scenario, artifact_writer):
    results = benchmark(compute_figure4, cdn_scenario)

    rows = [
        [
            label,
            data["num_slash24s"],
            f"{data['unique_peak']:.0f}",
            f"{data['weighted_peak']:.0f}",
            f"{data['v6_degree_one']:.0%}",
        ]
        for label, data in results.items()
    ]
    artifact_writer(
        "fig4",
        render_table(
            ["class", "/24s", "unique-density peak", "weighted peak", "/64s with degree 1"],
            rows,
            title="Figure 4: /64-per-/24 association degree",
        ),
    )

    mobile, fixed = results["mobile"], results["fixed"]
    # Mobile multiplexing: weighted peak multiple orders of magnitude
    # above fixed (paper: ~80,000 vs ~150-200; our scaled world: >=10x).
    assert mobile["weighted_peak"] > 1_000
    assert mobile["weighted_peak"] > 20 * fixed["weighted_peak"]
    # Fixed peak near the residential active-density band.
    assert 50 <= fixed["weighted_peak"] <= 700
    # Affinity: the vast majority of mobile /64s see exactly one /24.
    assert mobile["v6_degree_one"] > 0.8
