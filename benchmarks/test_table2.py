"""Table 2: assignment changes across /24 and BGP-prefix boundaries.

Paper shape: IPv4 changes usually land in a different /24 (94-100 % in
most ASes; Comcast/LGI lower at ~49-59 %) and often a different BGP
prefix (14-72 %); IPv6 changes almost never leave the BGP prefix
(0-10 % — Free SAS the outlier at 42 %).
"""

from repro.core.report import render_table, table2_row


def compute_table2(scenario):
    return {
        name: table2_row(
            scenario.probes_in(isp.asn),
            scenario.table,
            columns=scenario.analysis_columns(isp.asn),
        )
        for name, isp in scenario.isps.items()
    }


def test_table2(benchmark, atlas_scenario, artifact_writer):
    rates = benchmark(compute_table2, atlas_scenario)

    rows = [
        [
            name,
            row.v4_changes,
            f"{row.diff_slash24_pct:.0f}%",
            f"{row.v4_diff_bgp_pct:.0f}%",
            row.v6_changes,
            f"{row.v6_diff_bgp_pct:.0f}%",
        ]
        for name, row in rates.items()
    ]
    artifact_writer(
        "table2",
        render_table(
            ["AS", "v4 changes", "Diff /24", "Diff BGP (v4)", "v6 changes", "Diff BGP (v6)"],
            rows,
            title="Table 2: changes across /24 and BGP prefixes",
        ),
    )

    # v4 changes usually leave the /24 in randomly-drawing ISPs ...
    for name in ("DTAG", "Orange", "BT", "Netcologne"):
        assert rates[name].diff_slash24_pct > 80
    # ... but far less often in sticky-/24 ISPs.
    assert rates["Comcast"].diff_slash24_pct < 70
    # v6 changes rarely cross BGP prefixes in single-announcement ISPs.
    for name in ("DTAG", "Orange", "BT", "Proximus"):
        if rates[name].v6_changes >= 10:
            assert rates[name].v6_diff_bgp_pct < 15
    # Free SAS announces more-specifics: its v6 changes cross BGP often.
    if rates["Free SAS"].v6_changes >= 10:
        assert rates["Free SAS"].v6_diff_bgp_pct > 20
    # Within each AS, v6 crosses BGP prefixes less often than v4 does.
    for name, row in rates.items():
        if row.v4_changes >= 20 and row.v6_changes >= 20:
            assert row.v6_diff_bgp_pct <= row.v4_diff_bgp_pct + 5
