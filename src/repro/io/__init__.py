"""Serialization of measurement records (JSONL and CSV)."""

from repro.io.records import (
    parse_association_line,
    parse_echo_run_line,
    read_association_csv,
    read_echo_records,
    read_echo_runs,
    write_association_csv,
    write_echo_records,
    write_echo_runs,
)

__all__ = [
    "parse_association_line",
    "parse_echo_run_line",
    "read_association_csv",
    "read_echo_records",
    "read_echo_runs",
    "write_association_csv",
    "write_echo_records",
    "write_echo_runs",
]
