"""Serialization of measurement records (JSONL and CSV)."""

from repro.io.records import (
    read_association_csv,
    read_echo_records,
    read_echo_runs,
    write_association_csv,
    write_echo_records,
    write_echo_runs,
)

__all__ = [
    "read_association_csv",
    "read_echo_records",
    "read_echo_runs",
    "write_association_csv",
    "write_echo_records",
    "write_echo_runs",
]
