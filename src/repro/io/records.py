"""Record (de)serialization.

Echo records and runs round-trip through JSON Lines; association triples
through a compact CSV.  These formats let the analysis pipeline consume
externally produced data (e.g. a converter from the real RIPE Atlas
archives) and let the benchmarks persist generated datasets.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, TextIO

from repro.atlas.echo import EchoRecord, EchoRun
from repro.core.associations import Triple
from repro.ip.addr import parse_address


class RecordFormatError(ValueError):
    """Raised on malformed serialized records."""


# -- echo records (hourly) ---------------------------------------------------


def write_echo_records(records: Iterable[EchoRecord], stream: TextIO) -> int:
    """Write hourly echo records as JSONL; returns the line count."""
    count = 0
    for record in records:
        stream.write(
            json.dumps(
                {
                    "prb_id": record.probe_id,
                    "hour": record.hour,
                    "af": record.family,
                    "x_client_ip": str(record.client_ip),
                    "src_addr": str(record.src_addr),
                },
                separators=(",", ":"),
            )
        )
        stream.write("\n")
        count += 1
    return count


def read_echo_records(stream: TextIO) -> Iterator[EchoRecord]:
    """Parse JSONL hourly echo records (inverse of :func:`write_echo_records`)."""
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            yield EchoRecord(
                probe_id=int(data["prb_id"]),
                hour=int(data["hour"]),
                family=int(data["af"]),
                client_ip=parse_address(data["x_client_ip"]),
                src_addr=parse_address(data["src_addr"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RecordFormatError(f"line {lineno}: {exc}") from exc


# -- echo runs (run-length encoded) -------------------------------------------


def write_echo_runs(runs: Iterable[EchoRun], stream: TextIO) -> int:
    """Write run-length-encoded echo data as JSONL."""
    count = 0
    for run in runs:
        stream.write(
            json.dumps(
                {
                    "prb_id": run.probe_id,
                    "af": run.family,
                    "value": str(run.value),
                    "first": run.first,
                    "last": run.last,
                    "observed": run.observed,
                    "max_gap": run.max_gap,
                },
                separators=(",", ":"),
            )
        )
        stream.write("\n")
        count += 1
    return count


def parse_echo_run_line(line: str, lineno: int = 1) -> EchoRun:
    """Parse a single JSONL echo-run line (one entry of :func:`write_echo_runs`)."""
    try:
        data = json.loads(line)
        return EchoRun(
            probe_id=int(data["prb_id"]),
            family=int(data["af"]),
            value=parse_address(data["value"]),
            first=int(data["first"]),
            last=int(data["last"]),
            observed=int(data["observed"]),
            max_gap=int(data.get("max_gap", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RecordFormatError(f"line {lineno}: {exc}") from exc


def read_echo_runs(stream: TextIO) -> Iterator[EchoRun]:
    """Parse JSONL echo runs (inverse of :func:`write_echo_runs`)."""
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        yield parse_echo_run_line(line, lineno)


# -- association triples -----------------------------------------------------

_CSV_HEADER = "day,v4_slash24,v6_slash64"


def write_association_csv(triples: Iterable[Triple], stream: TextIO) -> int:
    """Write association triples as CSV with integer keys in hex."""
    stream.write(_CSV_HEADER + "\n")
    count = 0
    for day, v4_key, v6_key in triples:
        stream.write(f"{day},{v4_key:08x},{v6_key:032x}\n")
        count += 1
    return count


def parse_association_line(line: str, lineno: int = 2) -> Triple:
    """Parse a single CSV triple row (one entry of :func:`write_association_csv`)."""
    fields = line.split(",")
    if len(fields) != 3:
        raise RecordFormatError(f"line {lineno}: expected 3 fields")
    try:
        return (int(fields[0]), int(fields[1], 16), int(fields[2], 16))
    except ValueError as exc:
        raise RecordFormatError(f"line {lineno}: {exc}") from exc


def read_association_csv(stream: TextIO) -> Iterator[Triple]:
    """Lazily parse the CSV produced by :func:`write_association_csv`.

    Yields triples one at a time so arbitrarily long association feeds can be
    consumed in bounded memory (the streaming layer chunks this iterator).
    The header is validated when the first triple is requested.
    """
    header = stream.readline().strip()
    if header != _CSV_HEADER:
        raise RecordFormatError(f"unexpected header {header!r}")
    for lineno, line in enumerate(stream, start=2):
        line = line.strip()
        if not line:
            continue
        yield parse_association_line(line, lineno)


__all__ = [
    "RecordFormatError",
    "parse_association_line",
    "parse_echo_run_line",
    "read_association_csv",
    "read_echo_records",
    "read_echo_runs",
    "write_association_csv",
    "write_echo_records",
    "write_echo_runs",
]
