"""Cross-process trace propagation: one trace, many processes.

A :class:`TraceContext` is the serializable half of a span — the trace
id plus the id of the span that was open when work left the process.
The process-pool entry points in :mod:`repro.perf.parallel` capture one
via :func:`current_trace_context` right before fanning out, ship it to
every worker through the pool initializer (:func:`set_worker_context`),
and each task wraps itself in a ``pool/task`` span carrying the
context's ids.  The worker's finished span trees travel back with the
task result (:meth:`repro.obs.trace.Tracer.pop_roots`) and the parent
grafts them under its live tree (:func:`adopt_worker_spans`), so a
``--telemetry`` dump or ``trace_*.jsonl`` export shows **one coherent
tree** spanning the parent and every pool worker.

Wire format (documented in ``docs/data-formats.md``): the header string
``repro1-<trace_id>-<parent_span_id>`` — version tag, 16-hex-char trace
id, and the parent span id (``<pid hex>-<counter hex>``) — plus an
equivalent ``{"trace_id", "parent_span_id"}`` JSON object form.
Everything here is a no-op while telemetry is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: Version tag leading the textual trace-context header.
CONTEXT_VERSION = "repro1"


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of an open span: trace id + parent span id.

    ``parent_span_id`` is ``""`` when the context was captured with no
    span open (the remote spans then stitch in as roots).
    """

    trace_id: str
    parent_span_id: str = ""

    def to_header(self) -> str:
        """The ``repro1-<trace_id>-<parent_span_id>`` header string."""
        return f"{CONTEXT_VERSION}-{self.trace_id}-{self.parent_span_id}"

    @classmethod
    def from_header(cls, header: str) -> "TraceContext":
        """Parse a header string (raises ``ValueError`` when malformed)."""
        version, _, rest = str(header).partition("-")
        if version != CONTEXT_VERSION or not rest:
            raise ValueError(f"not a {CONTEXT_VERSION} trace-context header: {header!r}")
        trace_id, _, parent = rest.partition("-")
        if not trace_id:
            raise ValueError(f"trace-context header missing trace id: {header!r}")
        return cls(trace_id=trace_id, parent_span_id=parent)

    def to_dict(self) -> Dict[str, str]:
        """JSON object form of this context."""
        return {"trace_id": self.trace_id, "parent_span_id": self.parent_span_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "TraceContext":
        """Parse the JSON object form (raises ``ValueError`` when malformed)."""
        trace_id = payload.get("trace_id")
        if not trace_id:
            raise ValueError(f"trace context missing trace_id: {payload!r}")
        return cls(
            trace_id=str(trace_id),
            parent_span_id=str(payload.get("parent_span_id") or ""),
        )


def current_trace_context() -> Optional[TraceContext]:
    """The context of the innermost open span (None while disabled).

    Captured by the pool fan-out sites immediately before spawning
    workers, so stitched worker spans name the span that was live at
    hand-off time.
    """
    from repro.obs import get_tracer, telemetry_enabled

    if not telemetry_enabled():
        return None
    tracer = get_tracer()
    current = tracer.current()
    parent_id = current.span_id if current is not None and current.span_id else ""
    return TraceContext(trace_id=tracer.trace_id, parent_span_id=parent_id)


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------

#: The context installed by the pool initializer in this worker process.
_WORKER_CONTEXT: Optional[TraceContext] = None


def set_worker_context(context: Optional[TraceContext]) -> None:
    """Install the parent's trace context in this worker process.

    Called from pool initializers after telemetry is mirrored; also
    re-tags the worker tracer with the parent's trace id so every
    export from this process names the same trace.
    """
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    if context is not None:
        from repro.obs import get_tracer

        get_tracer().trace_id = context.trace_id


def get_worker_context() -> Optional[TraceContext]:
    """The trace context installed in this worker (None outside pools)."""
    return _WORKER_CONTEXT


def context_attrs(context: Optional[TraceContext]) -> Dict[str, str]:
    """Span attributes advertising ``context`` ({} when None)."""
    if context is None:
        return {}
    attrs = {"trace_id": context.trace_id}
    if context.parent_span_id:
        attrs["parent_span_id"] = context.parent_span_id
    return attrs


def adopt_worker_spans(nodes: Optional[Sequence[dict]]) -> List:
    """Stitch a worker's span buffer under the span open on this thread.

    The parent-side half of propagation: pool result merges pass each
    task's shipped buffer here as the result drains, so adoption order
    follows submission order and the stitched tree is deterministic
    regardless of worker scheduling.  No-op for empty buffers or while
    telemetry is disabled.
    """
    from repro.obs import get_tracer, telemetry_enabled

    if not nodes or not telemetry_enabled():
        return []
    return get_tracer().adopt(nodes)


__all__ = [
    "CONTEXT_VERSION",
    "TraceContext",
    "adopt_worker_spans",
    "context_attrs",
    "current_trace_context",
    "get_worker_context",
    "set_worker_context",
]
