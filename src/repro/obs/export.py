"""Prometheus text exposition of a metrics snapshot (and its parser).

:func:`render_prometheus` turns a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict into the
Prometheus text exposition format 0.0.4 — the payload behind
``GET /metrics?format=prometheus`` in :mod:`repro.serve`.  Mapping:

* dotted instrument names become ``repro_``-prefixed underscore names
  (``serve.query.seconds`` → ``repro_serve_query_seconds``), with the
  original dotted name preserved in the ``# HELP`` line;
* the registry's ``"k=v,k2=v2"`` series keys become label sets
  (values escaped per the exposition spec);
* counters and gauges map directly; histograms with declared bounds
  map to native histograms (``_bucket{le="..."}`` cumulative tallies +
  ``_sum`` + ``_count``); base-2 exponent histograms have no fixed
  ``le`` grid and map to summaries (``_sum`` + ``_count`` only).

:func:`parse_prometheus` is the inverse reader used by the round-trip
tests (and handy against any 0.0.4 payload): it returns per-family
``{"type", "help", "samples"}`` dicts, where samples are
``(sample_name, labels, value)`` triples in document order.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

#: Content-Type of the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix namespacing every exported metric family.
METRIC_PREFIX = "repro"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(dotted: str) -> str:
    """The exposition name of a dotted instrument name."""
    return f"{METRIC_PREFIX}_{_NAME_OK.sub('_', dotted.replace('.', '_'))}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _labels_from_key(key: str) -> Dict[str, str]:
    """Decode the registry's ``k=v,k2=v2`` series key ({} for "")."""
    if not key:
        return {}
    labels = {}
    for part in key.split(","):
        name, _, value = part.partition("=")
        labels[name] = value
    return labels


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    number = float(value)
    return repr(int(number)) if number == int(number) else repr(number)


def render_prometheus(snapshot: Optional[dict] = None) -> str:
    """The exposition-format rendering of ``snapshot``.

    ``snapshot`` defaults to the live registry's current state.  The
    registry's ``overflow`` cardinality bucket is exported with an
    explicit ``overflow="true"`` label so capped series stay visible.
    """
    if snapshot is None:
        from repro.obs import get_registry

        snapshot = get_registry().snapshot()

    lines: List[str] = []

    def _series_labels(key: str) -> Dict[str, str]:
        from repro.obs.metrics import OVERFLOW_LABEL

        if key == OVERFLOW_LABEL:
            return {"overflow": "true"}
        return _labels_from_key(key)

    for name in sorted(snapshot.get("counters", {})):
        series = snapshot["counters"][name]
        family = metric_name(name)
        lines.append(f"# HELP {family} counter {name}")
        lines.append(f"# TYPE {family} counter")
        for key in sorted(series):
            lines.append(f"{family}{_render_labels(_series_labels(key))} {_fmt(series[key])}")

    for name in sorted(snapshot.get("gauges", {})):
        series = snapshot["gauges"][name]
        family = metric_name(name)
        lines.append(f"# HELP {family} gauge {name}")
        lines.append(f"# TYPE {family} gauge")
        for key in sorted(series):
            lines.append(f"{family}{_render_labels(_series_labels(key))} {_fmt(series[key])}")

    for name in sorted(snapshot.get("histograms", {})):
        series = snapshot["histograms"][name]
        family = metric_name(name)
        bounded = any("bounds" in data for data in series.values())
        kind = "histogram" if bounded else "summary"
        lines.append(f"# HELP {family} {kind} {name}")
        lines.append(f"# TYPE {family} {kind}")
        for key in sorted(series):
            data = series[key]
            labels = _series_labels(key)
            if "bounds" in data:
                for bound in data["bounds"]:
                    bucket_labels = dict(labels, le=_fmt(float(bound)))
                    tally = data["buckets"].get(bound, data["buckets"].get(float(bound), 0))
                    lines.append(
                        f"{family}_bucket{_render_labels(bucket_labels)} {_fmt(tally)}"
                    )
            rendered = _render_labels(labels)
            lines.append(f"{family}_sum{rendered} {_fmt(data['sum'])}")
            lines.append(f"{family}_count{rendered} {_fmt(data['count'])}")

    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Parse a 0.0.4 exposition document into per-family dicts.

    Returns ``{family_name: {"type": str, "help": str, "samples":
    [(sample_name, labels, value), ...]}}``.  ``_bucket``/``_sum``/
    ``_count`` samples attach to their base family.  Raises
    ``ValueError`` on lines that are neither comments nor samples.
    """
    families: Dict[str, dict] = {}

    def _family(name: str) -> dict:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and trimmed in families:
                base = trimmed
                break
        return families.setdefault(base, {"type": "untyped", "help": "", "samples": []})

    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                family = families.setdefault(
                    parts[2], {"type": "untyped", "help": "", "samples": []}
                )
                if parts[1] == "TYPE":
                    family["type"] = parts[3] if len(parts) > 3 else "untyped"
                else:
                    family["help"] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line {lineno}: {line!r}")
        labels = {
            found.group("name"): _unescape_label(found.group("value"))
            for found in _LABEL.finditer(match.group("labels") or "")
        }
        _family(match.group("name"))["samples"].append(
            (match.group("name"), labels, _parse_value(match.group("value")))
        )
    return families


__all__ = [
    "METRIC_PREFIX",
    "PROMETHEUS_CONTENT_TYPE",
    "metric_name",
    "parse_prometheus",
    "render_prometheus",
]
