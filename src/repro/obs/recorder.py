"""In-memory flight recorder + slow-query log for long-lived services.

Two bounded, thread-safe buffers back the live observability plane in
:mod:`repro.serve`:

* :class:`FlightRecorder` — a ring buffer of the last N completed
  request records (trace id, duration, status, and the request's
  serialized span tree).  Oldest entries evict first; every record
  carries a monotonically increasing ``seq`` so eviction order is
  checkable.  Served by ``GET /debug/trace``.
* :class:`SlowQueryLog` — a threshold-gated structured log: requests
  at or above ``threshold_ms`` are kept in their own ring buffer *and*
  emitted as a warning through the ``repro.serve.slow`` logger, so
  slow queries surface both in-band (``GET /debug/slow``) and in the
  operator's log stream.

Neither buffer touches the metrics/tracing switch: they are owned by
the serve app, sized at construction, and drop data only by ring
eviction — a long-lived process cannot grow them without bound.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.log import get_logger


class FlightRecorder:
    """Ring buffer of the last ``capacity`` completed request records."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._recorded = 0

    def record(
        self,
        name: str,
        duration_s: float,
        *,
        trace_id: str = "",
        status: str = "ok",
        attrs: Optional[dict] = None,
        spans: Optional[List[dict]] = None,
    ) -> dict:
        """Append one completed request; returns the stored record."""
        entry = {
            "name": name,
            "duration_ms": round(duration_s * 1e3, 3),
            "trace_id": trace_id,
            "status": status,
            "unix_time": round(time.time(), 3),
        }
        if attrs:
            entry["attrs"] = dict(attrs)
        if spans:
            entry["spans"] = list(spans)
        with self._lock:
            self._seq += 1
            self._recorded += 1
            entry["seq"] = self._seq
            self._entries.append(entry)
        return entry

    def entries(self, limit: Optional[int] = None) -> List[dict]:
        """Retained records, oldest first (``limit`` keeps the newest)."""
        with self._lock:
            out = list(self._entries)
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    def stats(self) -> Dict[str, int]:
        """Capacity / retained / total-recorded / evicted tallies."""
        with self._lock:
            retained = len(self._entries)
            recorded = self._recorded
        return {
            "capacity": self.capacity,
            "retained": retained,
            "recorded": recorded,
            "evicted": recorded - retained,
        }

    def clear(self) -> None:
        """Drop retained entries (sequence numbers keep advancing)."""
        with self._lock:
            self._entries.clear()


class SlowQueryLog:
    """Keeps (and logs) requests slower than ``threshold_ms``."""

    def __init__(self, threshold_ms: float = 250.0, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"slow-query log capacity must be >= 1, got {capacity}")
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        self._entries: Deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seen = 0
        self._logger = get_logger("repro.serve.slow")

    def observe(
        self,
        name: str,
        duration_s: float,
        *,
        trace_id: str = "",
        detail: Optional[dict] = None,
    ) -> Optional[dict]:
        """Record the request iff it crossed the threshold.

        Returns the structured entry when kept, else ``None``.
        """
        duration_ms = duration_s * 1e3
        if duration_ms < self.threshold_ms:
            return None
        entry = {
            "name": name,
            "duration_ms": round(duration_ms, 3),
            "threshold_ms": self.threshold_ms,
            "trace_id": trace_id,
            "unix_time": round(time.time(), 3),
        }
        if detail:
            entry["detail"] = dict(detail)
        with self._lock:
            self._seen += 1
            entry["seq"] = self._seen
            self._entries.append(entry)
        self._logger.warning(
            "slow query name=%s duration_ms=%.3f threshold_ms=%.1f trace_id=%s",
            name,
            duration_ms,
            self.threshold_ms,
            trace_id or "-",
        )
        return entry

    def entries(self, limit: Optional[int] = None) -> List[dict]:
        """Retained slow-query entries, oldest first."""
        with self._lock:
            out = list(self._entries)
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    def stats(self) -> Dict[str, float]:
        """Threshold / capacity / seen / retained tallies."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "capacity": self.capacity,
                "seen": self._seen,
                "retained": len(self._entries),
            }


__all__ = ["FlightRecorder", "SlowQueryLog"]
