"""Structured logging for the ``repro.*`` logger hierarchy.

Every subsystem logs through :func:`get_logger` (``get_logger("cache")``
-> the stdlib logger ``repro.cache``), so one call to
:func:`configure_logging` controls the whole pipeline.  The formatter is
key=value structured: anything passed via ``extra={...}`` is appended as
``key=value`` pairs after the message, e.g.::

    2026-08-06T12:00:00 INFO repro.atlas.sanitize probes sanitized kept=61 dropped=14

Level selection, most specific wins:

1. an explicit ``verbosity`` argument (the CLI's ``-v``/``-q`` count:
   0 -> WARNING, 1 -> INFO, >=2 -> DEBUG, negative -> ERROR);
2. ``$REPRO_LOG`` — a level name (``debug``, ``info``, ...) or number;
3. the default, WARNING.

The handler attaches to the ``repro`` root logger with
``propagate=False`` left untouched, so embedding applications that
already configure stdlib logging are unaffected unless they opt in.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment override for the default log level (name or number).
LOG_ENV = "REPRO_LOG"

#: The root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

#: logging.LogRecord attributes that are plumbing, not user data.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro.<name>`` logger (the ``repro`` root for ``""``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + ".") or name == ROOT_LOGGER:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class KeyValueFormatter(logging.Formatter):
    """``ts LEVEL logger message key=value ...`` (extras appended)."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        """Render ``record`` with any ``extra={...}`` fields as key=value."""
        message = record.getMessage()
        pairs = [
            f"{key}={_scalar(value)}"
            for key, value in sorted(record.__dict__.items())
            if key not in _RESERVED
        ]
        head = (
            f"{self.formatTime(record)} {record.levelname} {record.name} {message}"
        )
        line = head + (" " + " ".join(pairs) if pairs else "")
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def _scalar(value) -> str:
    text = str(value)
    if " " in text or "=" in text:
        return repr(text)
    return text


def level_from_env(default: int = logging.WARNING) -> int:
    """The level ``$REPRO_LOG`` asks for (``default`` when unset/bad)."""
    raw = os.environ.get(LOG_ENV, "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    resolved = logging.getLevelName(raw.upper())
    return resolved if isinstance(resolved, int) else default


def level_from_verbosity(verbosity: int) -> int:
    """CLI ``-v``/``-q`` count -> logging level."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: Optional[int] = None,
    stream=None,
    level: Optional[int] = None,
) -> logging.Logger:
    """Attach one key=value handler to the ``repro`` hierarchy.

    Safe to call repeatedly (the CLI calls it per invocation): the
    previously installed handler is replaced, not stacked.  Returns the
    configured root logger.
    """
    root = get_logger()
    if level is None:
        level = (
            level_from_verbosity(verbosity)
            if verbosity is not None and verbosity != 0
            else level_from_env()
        )
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    handler.set_name("repro-obs")
    for existing in list(root.handlers):
        if existing.get_name() == "repro-obs":
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(level)
    return root


__all__ = [
    "LOG_ENV",
    "KeyValueFormatter",
    "configure_logging",
    "get_logger",
    "level_from_env",
    "level_from_verbosity",
]
