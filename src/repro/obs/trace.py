"""Hierarchical tracing spans: wall time, nesting, attributes.

A :class:`Tracer` keeps a stack of open spans (per thread) and a list of
finished root spans.  ``tracer.span("analysis/table1", network="DTAG")``
is a context manager: entering pushes a child of the innermost open
span, exiting records its wall-clock duration.  Exceptions propagate
untouched but mark the span with ``error=<type>``.

Finished trees are exportable three ways:

* :meth:`Tracer.as_dicts` — nested JSON-ready dicts (the
  ``--telemetry`` dump's ``spans`` section);
* :meth:`Tracer.export_jsonl` — one JSON object per span, depth-first,
  with ``path``/``depth`` columns (the ``benchmarks/results/trace_*``
  artifact format, see ``docs/data-formats.md``);
* :meth:`Tracer.render_tree` — an indented plain-text tree for
  terminals.

Timing uses ``time.perf_counter`` only; spans never touch the RNG, so
tracing any pipeline stage cannot perturb a seeded simulation.

Cross-process stitching: every span carries a ``span_id`` (assigned by
its tracer when pushed, ``"<pid hex>-<counter hex>"``), finished trees
round-trip through :meth:`Span.as_dict` / :meth:`Span.from_dict`, and
:meth:`Tracer.adopt` grafts serialized trees — e.g. a worker process's
span buffer shipped back with its results — under the span currently
open on this thread.  :meth:`Tracer.detach` is the worker-side reset: a
forked pool worker inherits the parent's finished roots and open stack,
and must drop both so it only ever ships spans *it* recorded.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence


class Span:
    """One timed, attributed node of a trace tree."""

    __slots__ = ("name", "attrs", "children", "start", "end", "span_id", "_t0")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.children: List[Span] = []
        self.start: Optional[float] = None  # seconds since tracer epoch
        self.end: Optional[float] = None
        self.span_id: Optional[str] = None
        self._t0: float = 0.0

    @property
    def duration(self) -> float:
        """Wall-clock seconds this span was open (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict:
        """Nested JSON-ready form of this span and its children."""
        node = {
            "name": self.name,
            "start": round(self.start, 6) if self.start is not None else None,
            "duration": round(self.duration, 6),
        }
        if self.span_id is not None:
            node["span_id"] = self.span_id
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node

    @classmethod
    def from_dict(cls, node: dict) -> "Span":
        """Rebuild a finished span tree from its :meth:`as_dict` form.

        The inverse used by :meth:`Tracer.adopt` to stitch worker span
        buffers into the parent tree; timings are taken verbatim (a
        forked worker shares the parent's ``perf_counter`` epoch, so
        its offsets land on the same timeline).
        """
        span = cls(str(node.get("name", "")), node.get("attrs"))
        span.span_id = node.get("span_id")
        start = node.get("start")
        duration = node.get("duration") or 0.0
        if start is not None:
            span.start = float(start)
            span.end = float(start) + float(duration)
        span.children = [cls.from_dict(child) for child in node.get("children", ())]
        return span


class _ActiveSpan:
    """Context manager binding one :class:`Span` to a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id.

    Drawn from ``os.urandom`` — never the seeded ``random`` module — so
    minting ids cannot perturb a simulation's RNG draw order.
    """
    return os.urandom(8).hex()


class Tracer:
    """Collects span trees; one instance per telemetry state."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: List[Span] = []
        self.trace_id = new_trace_id()
        self._local = threading.local()
        self._ids = itertools.count(1)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """A context manager opening ``name`` under the current span."""
        return _ActiveSpan(self, Span(name, attrs))

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if span.span_id is None:
            span.span_id = f"{os.getpid():x}-{next(self._ids):x}"
        span._t0 = time.perf_counter()
        span.start = span._t0 - self.epoch
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = time.perf_counter() - self.epoch
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            # A span opened with nothing on the stack is a root; child
            # spans already live in their parent's ``children``.
            self.roots.append(span)

    def reset(self) -> None:
        """Drop finished trees and restart the epoch (open spans survive)."""
        self.roots.clear()
        self.epoch = time.perf_counter()
        self.trace_id = new_trace_id()

    def detach(self) -> None:
        """Worker-side reset: drop inherited roots *and* this thread's stack.

        A forked pool worker starts with a copy of the parent tracer —
        finished roots it must not re-ship, and possibly an open span
        stack it is not actually inside.  After ``detach`` every span
        the worker records becomes a fresh root, which is exactly what
        :meth:`pop_roots` ships back for stitching.  The epoch is kept:
        under ``fork`` the parent's ``perf_counter`` origin is valid in
        the child, so stitched offsets share one timeline.
        """
        self.roots.clear()
        self._local.stack = []

    def pop_roots(self, baseline: int = 0) -> List[dict]:
        """Serialize and remove finished roots beyond index ``baseline``.

        The worker-side half of span stitching: a pool task snapshots
        ``len(tracer.roots)`` before running, then pops everything the
        task added — the buffer that travels back with the result.
        """
        spans = [span.as_dict() for span in self.roots[baseline:]]
        del self.roots[baseline:]
        return spans

    def adopt(self, nodes: Sequence[dict], parent: Optional[Span] = None) -> List[Span]:
        """Graft serialized span trees into this tracer's live tree.

        Each node (a :meth:`Span.as_dict` dict) becomes a child of
        ``parent``, else of the span currently open on this thread,
        else a new root.  Returns the adopted spans.
        """
        if parent is None:
            parent = self.current()
        adopted = [Span.from_dict(node) for node in nodes]
        if parent is not None:
            parent.children.extend(adopted)
        else:
            self.roots.extend(adopted)
        return adopted

    # -- exports --------------------------------------------------------------

    def as_dicts(self) -> List[dict]:
        """Finished root spans as nested JSON-ready dicts."""
        return [root.as_dict() for root in self.roots]

    def walk(self) -> Iterator[tuple]:
        """Yield ``(span, depth, path)`` depth-first over finished trees."""

        def _walk(span: Span, depth: int, prefix: str):
            path = f"{prefix}/{span.name}" if prefix else span.name
            yield span, depth, path
            for child in span.children:
                yield from _walk(child, depth + 1, path)

        for root in self.roots:
            yield from _walk(root, 0, "")

    def export_jsonl(self, path) -> Path:
        """Write one JSON line per finished span (depth-first) to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as stream:
            for span, depth, span_path in self.walk():
                record = {
                    "name": span.name,
                    "path": span_path,
                    "depth": depth,
                    "start": round(span.start, 6) if span.start is not None else None,
                    "duration": round(span.duration, 6),
                    "trace_id": self.trace_id,
                }
                if span.span_id is not None:
                    record["span_id"] = span.span_id
                if span.attrs:
                    record["attrs"] = {
                        key: _jsonable(value) for key, value in span.attrs.items()
                    }
                stream.write(json.dumps(record, sort_keys=True) + "\n")
        return target

    def render_tree(self) -> str:
        """Indented plain-text rendering of every finished span tree."""
        lines = []
        for span, depth, _path in self.walk():
            attrs = (
                " [" + ", ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
                if span.attrs
                else ""
            )
            lines.append(f"{'  ' * depth}{span.name}  {span.duration * 1e3:.2f}ms{attrs}")
        return "\n".join(lines)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


__all__ = ["Span", "Tracer", "new_trace_id"]
