"""Hierarchical tracing spans: wall time, nesting, attributes.

A :class:`Tracer` keeps a stack of open spans (per thread) and a list of
finished root spans.  ``tracer.span("analysis/table1", network="DTAG")``
is a context manager: entering pushes a child of the innermost open
span, exiting records its wall-clock duration.  Exceptions propagate
untouched but mark the span with ``error=<type>``.

Finished trees are exportable three ways:

* :meth:`Tracer.as_dicts` — nested JSON-ready dicts (the
  ``--telemetry`` dump's ``spans`` section);
* :meth:`Tracer.export_jsonl` — one JSON object per span, depth-first,
  with ``path``/``depth`` columns (the ``benchmarks/results/trace_*``
  artifact format, see ``docs/data-formats.md``);
* :meth:`Tracer.render_tree` — an indented plain-text tree for
  terminals.

Timing uses ``time.perf_counter`` only; spans never touch the RNG, so
tracing any pipeline stage cannot perturb a seeded simulation.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional


class Span:
    """One timed, attributed node of a trace tree."""

    __slots__ = ("name", "attrs", "children", "start", "end", "_t0")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.children: List[Span] = []
        self.start: Optional[float] = None  # seconds since tracer epoch
        self.end: Optional[float] = None
        self._t0: float = 0.0

    @property
    def duration(self) -> float:
        """Wall-clock seconds this span was open (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict:
        """Nested JSON-ready form of this span and its children."""
        node = {
            "name": self.name,
            "start": round(self.start, 6) if self.start is not None else None,
            "duration": round(self.duration, 6),
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node


class _ActiveSpan:
    """Context manager binding one :class:`Span` to a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects span trees; one instance per telemetry state."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: List[Span] = []
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """A context manager opening ``name`` under the current span."""
        return _ActiveSpan(self, Span(name, attrs))

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span._t0 = time.perf_counter()
        span.start = span._t0 - self.epoch
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = time.perf_counter() - self.epoch
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            # A span opened with nothing on the stack is a root; child
            # spans already live in their parent's ``children``.
            self.roots.append(span)

    def reset(self) -> None:
        """Drop finished trees and restart the epoch (open spans survive)."""
        self.roots.clear()
        self.epoch = time.perf_counter()

    # -- exports --------------------------------------------------------------

    def as_dicts(self) -> List[dict]:
        """Finished root spans as nested JSON-ready dicts."""
        return [root.as_dict() for root in self.roots]

    def walk(self) -> Iterator[tuple]:
        """Yield ``(span, depth, path)`` depth-first over finished trees."""

        def _walk(span: Span, depth: int, prefix: str):
            path = f"{prefix}/{span.name}" if prefix else span.name
            yield span, depth, path
            for child in span.children:
                yield from _walk(child, depth + 1, path)

        for root in self.roots:
            yield from _walk(root, 0, "")

    def export_jsonl(self, path) -> Path:
        """Write one JSON line per finished span (depth-first) to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as stream:
            for span, depth, span_path in self.walk():
                record = {
                    "name": span.name,
                    "path": span_path,
                    "depth": depth,
                    "start": round(span.start, 6) if span.start is not None else None,
                    "duration": round(span.duration, 6),
                }
                if span.attrs:
                    record["attrs"] = {
                        key: _jsonable(value) for key, value in span.attrs.items()
                    }
                stream.write(json.dumps(record, sort_keys=True) + "\n")
        return target

    def render_tree(self) -> str:
        """Indented plain-text rendering of every finished span tree."""
        lines = []
        for span, depth, _path in self.walk():
            attrs = (
                " [" + ", ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
                if span.attrs
                else ""
            )
            lines.append(f"{'  ' * depth}{span.name}  {span.duration * 1e3:.2f}ms{attrs}")
        return "\n".join(lines)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


__all__ = ["Span", "Tracer"]
