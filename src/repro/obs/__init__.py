"""Unified telemetry: tracing spans, a metrics registry, structured logs.

One process-global :class:`TelemetryState` owns a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.Tracer`.  Instrumented code calls the guarded
module-level helpers — :func:`span`, :func:`metric_inc`,
:func:`metric_observe`, :func:`metric_gauge` — which are **no-ops while
telemetry is disabled** (a single attribute check, no allocation), so
hot paths can be instrumented unconditionally: the benchmarked overhead
of the disabled fast path is within noise, and enabling telemetry never
touches RNG draw order or artifact bytes
(:func:`repro.perf.verify.telemetry_invariance_diffs` enforces this).

Enabling:

* ``REPRO_TELEMETRY=1`` in the environment (read at import and by
  worker processes), or
* :func:`enable_telemetry` / the :func:`telemetry` context manager, or
* the CLI's ``--telemetry PATH`` flag, which also dumps the full span
  tree + metrics snapshot as JSON on exit.

Structured logging (:mod:`repro.obs.log`) is independent of the
metrics/tracing switch: ``repro.*`` loggers always exist and are wired
to ``-v``/``-q``/``$REPRO_LOG`` by :func:`~repro.obs.log.configure_logging`.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Optional

from repro.obs.log import (
    LOG_ENV,
    KeyValueFormatter,
    configure_logging,
    get_logger,
    level_from_env,
    level_from_verbosity,
)
from repro.obs.metrics import MetricsRegistry, subtract_snapshots
from repro.obs.trace import Span, Tracer

#: Environment switch: truthy values enable metrics + tracing at import.
TELEMETRY_ENV = "REPRO_TELEMETRY"

_TRUTHY = ("1", "true", "yes", "on")

#: Headline counters pre-registered at zero on enable, so every
#: telemetry dump carries them even when a stage never ran.
CORE_COUNTERS = (
    "collection.records_generated",
    "sanitize.probes_dropped",
    "cache.hits",
    "cache.misses",
    "stream.chunks_processed",
    "pool.tasks",
)

#: Latency histograms declared with explicit cumulative bucket bounds on
#: enable (seconds; a ``+Inf`` edge is appended automatically).  The
#: grid spans 100µs to ~1 minute, wide enough for serve queries, stream
#: chunk folds and store shard kernels alike, and identical in every
#: process so fork-shipped worker deltas merge bucket-for-bucket.
LATENCY_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0,
)

LATENCY_HISTOGRAMS = (
    "serve.query.seconds",
    "serve.batch.seconds",
    "stream.chunk.seconds",
    "store.shard.seconds",
)


class TelemetryState:
    """The process-global enabled flag + registry + tracer triple."""

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()


_STATE = TelemetryState()


class _NoopSpan:
    """Reusable do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


def telemetry_enabled() -> bool:
    """Whether metrics and tracing are currently recording."""
    return _STATE.enabled


def enable_telemetry(reset: bool = False) -> TelemetryState:
    """Turn metrics + tracing on (``reset=True`` clears prior data)."""
    if reset:
        _STATE.registry.reset()
        _STATE.tracer.reset()
    for name in CORE_COUNTERS:
        _STATE.registry.register(name)
    for name in LATENCY_HISTOGRAMS:
        _STATE.registry.declare_histogram(name, LATENCY_BOUNDS)
    _STATE.enabled = True
    return _STATE


def disable_telemetry() -> None:
    """Stop recording (already-collected spans/metrics are retained)."""
    _STATE.enabled = False


class telemetry:
    """Context manager temporarily toggling telemetry (tests, verify)."""

    def __init__(self, enabled: bool = True, reset: bool = False) -> None:
        self._target = enabled
        self._reset = reset
        self._previous = False

    def __enter__(self) -> TelemetryState:
        self._previous = _STATE.enabled
        if self._target:
            enable_telemetry(reset=self._reset)
        else:
            disable_telemetry()
        return _STATE

    def __exit__(self, exc_type, exc, tb) -> bool:
        _STATE.enabled = self._previous
        return False


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry (live even when disabled)."""
    return _STATE.registry


def get_tracer() -> Tracer:
    """The process-global tracer (live even when disabled)."""
    return _STATE.tracer


# -- guarded fast-path helpers (the only calls on hot paths) ------------------


def span(name: str, **attrs):
    """Open a traced span, or a shared no-op when telemetry is off."""
    if not _STATE.enabled:
        return _NOOP_SPAN
    return _STATE.tracer.span(name, **attrs)


def metric_inc(name: str, value: float = 1, **labels) -> None:
    """Increment a counter (no-op while telemetry is disabled)."""
    if _STATE.enabled:
        _STATE.registry.inc(name, value, **labels)


def metric_observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation (no-op while disabled)."""
    if _STATE.enabled:
        _STATE.registry.observe(name, value, **labels)


def metric_gauge(name: str, value: float, **labels) -> None:
    """Set a gauge (no-op while telemetry is disabled)."""
    if _STATE.enabled:
        _STATE.registry.set_gauge(name, value, **labels)


# -- exports ------------------------------------------------------------------


def telemetry_snapshot() -> dict:
    """JSON-ready dump of the span trees + metrics collected so far."""
    return {
        "enabled": _STATE.enabled,
        "trace_id": _STATE.tracer.trace_id,
        "spans": _STATE.tracer.as_dicts(),
        "metrics": _STATE.registry.snapshot(),
    }


def dump_telemetry(path, extra: Optional[dict] = None) -> Path:
    """Write :func:`telemetry_snapshot` (plus ``extra`` keys) to ``path``.

    Crash-safe: the payload lands in a same-directory temp file first
    and is moved into place with an atomic ``os.replace`` (the
    ``CheckpointStore`` durability contract), so an interrupted dump
    never leaves a truncated JSON document at ``path``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = telemetry_snapshot()
    if extra:
        payload.update(extra)
    scratch = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    try:
        scratch.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(scratch, target)
    finally:
        if scratch.exists():
            scratch.unlink()
    return target


def export_trace(stage: str, path=None) -> Path:
    """Write the collected span trees as ``trace_<stage>.jsonl``.

    Defaults to ``benchmarks/results/trace_<stage>.jsonl`` under the
    repository root (CWD when the package is installed outside a
    checkout — see :func:`repro.perf.timing.repo_root`).
    """
    if path is None:
        from repro.perf.timing import repo_root

        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", stage).strip("_") or "trace"
        path = repo_root() / "benchmarks" / "results" / f"trace_{slug}.jsonl"
    return _STATE.tracer.export_jsonl(path)


if os.environ.get(TELEMETRY_ENV, "").strip().lower() in _TRUTHY:
    enable_telemetry()


__all__ = [
    "CORE_COUNTERS",
    "LATENCY_BOUNDS",
    "LATENCY_HISTOGRAMS",
    "LOG_ENV",
    "TELEMETRY_ENV",
    "KeyValueFormatter",
    "MetricsRegistry",
    "Span",
    "TelemetryState",
    "Tracer",
    "configure_logging",
    "disable_telemetry",
    "dump_telemetry",
    "enable_telemetry",
    "export_trace",
    "get_logger",
    "get_registry",
    "get_tracer",
    "level_from_env",
    "level_from_verbosity",
    "metric_gauge",
    "metric_inc",
    "metric_observe",
    "span",
    "subtract_snapshots",
    "telemetry",
    "telemetry_enabled",
    "telemetry_snapshot",
]
