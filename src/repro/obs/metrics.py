"""Process-global metrics: labeled counters, gauges and histograms.

The registry is a plain dict machine with no background threads and no
third-party dependencies.  Instruments are addressed by a dotted name
plus optional labels (``registry.inc("cache.hits")``,
``registry.inc("sanitize.probes_dropped", reason="bad_tag")``); every
labeled increment also feeds the instrument's unlabeled total, so
dashboards can read ``sanitize.probes_dropped`` without enumerating
label sets.

Snapshots are plain JSON-ready dicts, and two snapshots can be
subtracted (:func:`subtract_snapshots`) or merged back into a registry
(:meth:`MetricsRegistry.merge`) — the mechanism
:mod:`repro.perf.parallel` uses to ship worker-process metrics back to
the parent across the process-pool boundary.

Instrument semantics:

* **counter** — monotonically increasing float/int sum;
* **gauge** — last-written value (merge keeps the incoming value);
* **histogram** — count/sum/min/max plus buckets.  By default buckets
  are base-2 exponent tallies (bucket ``k`` holds observations in
  ``[2**k, 2**(k+1))``); a histogram declared with explicit bounds via
  :meth:`MetricsRegistry.declare_histogram` instead keeps
  **cumulative** buckets keyed by float upper bound (Prometheus ``le``
  semantics: bucket ``b`` counts every observation ``<= b``, with a
  ``+Inf`` bound always present).  Cumulative storage keeps merge and
  subtract plain bucket-wise addition/subtraction, so the fork-safe
  worker-delta round trip holds for both kinds.

Label cardinality is capped per instrument (``max_label_sets``, default
64): once an instrument has that many distinct labeled series, further
new label sets collapse into a single ``overflow`` series — unbounded
per-probe/per-shard labels cannot grow a long-lived serve process's
memory without bound.  The key ``"overflow"`` cannot collide with a
real label set because encoded label keys always contain ``=``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

LabelKey = Tuple[str, ...]

#: Series key absorbing label sets beyond an instrument's cardinality cap.
OVERFLOW_LABEL = "overflow"

#: Default cap on distinct labeled series per instrument.
DEFAULT_MAX_LABEL_SETS = 64


def _label_key(labels: Dict[str, object]) -> str:
    """Stable ``k=v,k2=v2`` encoding of one label set ("" when empty)."""
    if not labels:
        return ""
    return ",".join(f"{key}={labels[key]}" for key in sorted(labels))


def _bucket(value: float) -> int:
    """Base-2 exponent bucket of a non-negative observation."""
    if value <= 0:
        return -1074  # subnormal floor: everything <= 0 shares one bucket
    return math.frexp(value)[1] - 1


class MetricsRegistry:
    """Counters, gauges and histograms addressed by name + labels."""

    def __init__(self, max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        self.max_label_sets = max_label_sets
        self._counters: Dict[str, Dict[str, float]] = {}
        self._gauges: Dict[str, Dict[str, float]] = {}
        self._histograms: Dict[str, Dict[str, dict]] = {}
        self._bounds: Dict[str, Tuple[float, ...]] = {}

    def _admit(self, series: dict, key: str) -> str:
        """``key``, or ``overflow`` once the instrument hit its label cap."""
        if not key or key in series:
            return key
        labeled = sum(1 for existing in series if existing and existing != OVERFLOW_LABEL)
        if labeled < self.max_label_sets:
            return key
        return OVERFLOW_LABEL

    # -- instruments ----------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to counter ``name`` (and its labeled series)."""
        series = self._counters.setdefault(name, {"": 0})
        series[""] = series.get("", 0) + value
        if labels:
            key = self._admit(series, _label_key(labels))
            series[key] = series.get(key, 0) + value

    def register(self, name: str) -> None:
        """Ensure counter ``name`` exists (at zero) in every snapshot."""
        self._counters.setdefault(name, {"": 0})

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        series = self._gauges.setdefault(name, {})
        series[self._admit(series, _label_key(labels))] = value

    def declare_histogram(self, name: str, bounds: Sequence[float]) -> None:
        """Give histogram ``name`` explicit cumulative bucket bounds.

        ``bounds`` are upper edges in seconds (or any unit); they are
        sorted and a ``+Inf`` edge is appended if missing.  Every later
        :meth:`observe` of ``name`` tallies into cumulative ``le``
        buckets instead of base-2 exponent buckets.  Redeclaring with
        identical bounds is a no-op; changing bounds after observations
        exist raises, because existing cumulative tallies cannot be
        re-bucketed.
        """
        edges = sorted(float(bound) for bound in bounds)
        if not edges or edges[-1] != math.inf:
            edges.append(math.inf)
        declared = tuple(edges)
        existing = self._bounds.get(name)
        if existing is not None and existing != declared:
            if name in self._histograms:
                raise ValueError(
                    f"histogram {name!r} already has observations with bounds {existing}"
                )
        self._bounds[name] = declared

    def histogram_bounds(self, name: str) -> Optional[Tuple[float, ...]]:
        """Declared cumulative bounds of ``name`` (None → base-2 buckets)."""
        return self._bounds.get(name)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record ``value`` into histogram ``name``."""
        series = self._histograms.setdefault(name, {})
        key = self._admit(series, _label_key(labels))
        bounds = self._bounds.get(name)
        data = series.get(key)
        if data is None:
            data = series[key] = {
                "count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {},
            }
            if bounds is not None:
                data["bounds"] = list(bounds)
                data["buckets"] = {bound: 0 for bound in bounds}
        data["count"] += 1
        data["sum"] += value
        data["min"] = value if data["min"] is None else min(data["min"], value)
        data["max"] = value if data["max"] is None else max(data["max"], value)
        buckets = data["buckets"]
        if bounds is not None:
            # Cumulative ``le`` semantics: every bound >= value counts it.
            for bound in bounds:
                if value <= bound:
                    buckets[bound] += 1
        else:
            bucket = _bucket(value)
            buckets[bucket] = buckets.get(bucket, 0) + 1

    # -- reads ----------------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, {}).get(_label_key(labels), 0)

    def gauge(self, name: str, **labels) -> Optional[float]:
        """Current value of gauge ``name`` (None when never set)."""
        return self._gauges.get(name, {}).get(_label_key(labels))

    def snapshot(self) -> dict:
        """JSON-ready copy of every instrument's current state."""
        return {
            "counters": {
                name: dict(series) for name, series in self._counters.items()
            },
            "gauges": {name: dict(series) for name, series in self._gauges.items()},
            "histograms": {
                name: {
                    key: {**data, "buckets": dict(data["buckets"])}
                    for key, data in series.items()
                }
                for name, series in self._histograms.items()
            },
        }

    # -- cross-process plumbing -----------------------------------------------

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram tallies add; gauges take the incoming
        value (the child observed it later).  ``None`` merges nothing,
        so call sites can pass worker deltas through unconditionally.
        """
        if not snapshot:
            return
        for name, series in snapshot.get("counters", {}).items():
            target = self._counters.setdefault(name, {"": 0})
            for key, value in series.items():
                key = self._admit(target, key)
                target[key] = target.get(key, 0) + value
        for name, series in snapshot.get("gauges", {}).items():
            target = self._gauges.setdefault(name, {})
            for key, value in series.items():
                target[self._admit(target, key)] = value
        for name, series in snapshot.get("histograms", {}).items():
            target = self._histograms.setdefault(name, {})
            for key, data in series.items():
                key = self._admit(target, key)
                mine = target.get(key)
                if mine is None:
                    target[key] = {**data, "buckets": dict(data["buckets"])}
                    continue
                mine["count"] += data["count"]
                mine["sum"] += data["sum"]
                for edge in ("min", "max"):
                    theirs = data[edge]
                    if theirs is not None:
                        pick = min if edge == "min" else max
                        mine[edge] = (
                            theirs if mine[edge] is None else pick(mine[edge], theirs)
                        )
                # Cumulative (bounded) and exponent buckets both merge by
                # plain bucket-wise addition.
                for bucket, count in data["buckets"].items():
                    mine["buckets"][bucket] = mine["buckets"].get(bucket, 0) + count

    def reset(self) -> None:
        """Drop every instrument (used when (re-)enabling telemetry)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._bounds.clear()


def subtract_snapshots(after: dict, before: dict) -> dict:
    """The metric activity between two snapshots of one registry.

    Counter and histogram tallies subtract (series absent from
    ``before`` pass through); gauges keep the ``after`` value.  This is
    how a forked worker — whose registry starts as a copy of the
    parent's — reports only *its own* work back across the pool.
    """
    delta: dict = {"counters": {}, "gauges": dict(after.get("gauges", {})), "histograms": {}}
    for name, series in after.get("counters", {}).items():
        base = before.get("counters", {}).get(name, {})
        out = {
            key: value - base.get(key, 0)
            for key, value in series.items()
            if value - base.get(key, 0)
        }
        if out:
            delta["counters"][name] = out
    for name, series in after.get("histograms", {}).items():
        base = before.get("histograms", {}).get(name, {})
        out = {}
        for key, data in series.items():
            prior = base.get(key)
            if prior is None:
                out[key] = {**data, "buckets": dict(data["buckets"])}
                continue
            count = data["count"] - prior["count"]
            if not count:
                continue
            out[key] = {
                "count": count,
                "sum": data["sum"] - prior["sum"],
                # Extremes are not invertible from two snapshots; the
                # after-side bounds still bound the delta's observations.
                "min": data["min"],
                "max": data["max"],
                # Cumulative (bounded) and exponent buckets both subtract
                # bucket-wise; declared-bound buckets keep zero tallies so
                # the delta's bucket grid matches its declaration.
                "buckets": {
                    bucket: tally - prior["buckets"].get(bucket, 0)
                    for bucket, tally in data["buckets"].items()
                    if "bounds" in data or tally - prior["buckets"].get(bucket, 0)
                },
            }
            if "bounds" in data:
                out[key]["bounds"] = list(data["bounds"])
        if out:
            delta["histograms"][name] = out
    return delta


__all__ = [
    "DEFAULT_MAX_LABEL_SETS",
    "MetricsRegistry",
    "OVERFLOW_LABEL",
    "subtract_snapshots",
]
