"""RIPE Atlas platform substrate.

Produces synthetic "IP echo" measurement data with the same semantics as
the RIPE Atlas datasets the paper uses (measurement ids 12027/13027):
every hour, every probe reports the publicly visible IPv4 address and
IPv6 address that reached the echo server (``X-Client-IP``), along with
the locally configured source address (``src_addr``).

The platform supports two output encodings:

* **hourly records** (:class:`~repro.atlas.echo.EchoRecord`) — full
  fidelity, one record per probe per hour per family;
* **runs** (:class:`~repro.atlas.echo.EchoRun`) — run-length-encoded
  streaks of identical reported values, byte-for-byte equivalent to
  what change detection extracts from the hourly records (the test
  suite verifies the equivalence).

The data-sanitization pipeline of Appendix A.1 lives in
:mod:`repro.atlas.sanitize`.
"""

from repro.atlas.echo import TEST_ADDRESS, EchoRecord, EchoRun, runs_from_hourly
from repro.atlas.platform import AtlasPlatform, ProbeData, ProbeSpec
from repro.atlas.probe import BAD_TAGS, Probe
from repro.atlas.sanitize import SanitizationReport, SanitizedProbe, sanitize

__all__ = [
    "AtlasPlatform",
    "BAD_TAGS",
    "EchoRecord",
    "EchoRun",
    "Probe",
    "ProbeData",
    "ProbeSpec",
    "SanitizationReport",
    "SanitizedProbe",
    "TEST_ADDRESS",
    "runs_from_hourly",
    "sanitize",
]
