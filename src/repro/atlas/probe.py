"""Probe metadata.

A :class:`Probe` mirrors the RIPE Atlas registry attributes the paper's
sanitization pipeline consumes: user-supplied tags, the home AS, and
dual-stack capability.  Synthetic deployment attributes (which
simulated subscriber line the probe sits on, anomaly injection) live in
:class:`repro.atlas.platform.ProbeSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

#: Tags whose presence disqualifies a probe from the residential study
#: (Appendix A.1, "Bad tag probes").
BAD_TAGS: FrozenSet[str] = frozenset({"multihomed", "datacentre", "core", "system-anchor"})


@dataclass(frozen=True)
class Probe:
    """Registry-visible probe attributes."""

    probe_id: int
    asn: int
    tags: Tuple[str, ...] = field(default_factory=tuple)
    dual_stack: bool = True

    def __post_init__(self) -> None:
        if self.probe_id < 0:
            raise ValueError(f"probe_id must be non-negative, got {self.probe_id}")

    @property
    def has_bad_tag(self) -> bool:
        return any(tag in BAD_TAGS for tag in self.tags)


__all__ = ["BAD_TAGS", "Probe"]
