"""Converter from real RIPE Atlas "IP echo" results to :class:`EchoRecord`.

The public datasets behind the paper are RIPE Atlas HTTP measurements
12027 (IPv4) and 13027 (IPv6): every hour each probe issues an HTTP GET
against an echo server that reflects the publicly visible client
address in an ``X-Client-IP`` response header.

This module converts the measurement-result JSON into the pipeline's
:class:`~repro.atlas.echo.EchoRecord` schema so the *real* archives can
be analyzed with the exact code that processes the simulated data.  It
is deliberately tolerant about where the echoed address lives:

1. an ``X-Client-IP: <addr>`` line in the result's ``header`` list
   (the measurement's configured behaviour);
2. a pre-extracted ``x_client_ip`` field (some processed dumps);
3. absent both, the record is skipped and counted.

Timestamps are Unix seconds and are mapped onto the simulation clock
(hours since 2014-09-01 00:00 UTC, the paper's window start), floored
to the hour.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.atlas.echo import EchoRecord
from repro.ip.addr import AddressError, parse_address
from repro.netsim.clock import SIM_EPOCH


@dataclass
class ConversionStats:
    """What happened during a conversion run."""

    seen: int = 0
    converted: int = 0
    missing_client_ip: int = 0
    unparseable: int = 0
    errors: List[str] = field(default_factory=list)


def _extract_client_ip(entry: dict) -> Optional[str]:
    if "x_client_ip" in entry:
        return entry["x_client_ip"]
    for header in entry.get("header", []) or []:
        name, _sep, value = str(header).partition(":")
        if name.strip().lower() == "x-client-ip":
            return value.strip()
    return None


def _hour_of(timestamp: int) -> int:
    moment = datetime.fromtimestamp(int(timestamp), tz=timezone.utc)
    return int((moment - SIM_EPOCH).total_seconds() // 3600)


def convert_result(result: dict, stats: ConversionStats) -> Iterator[EchoRecord]:
    """Convert one measurement-result object (may carry several attempts)."""
    prb_id = result.get("prb_id")
    timestamp = result.get("timestamp")
    if prb_id is None or timestamp is None:
        stats.unparseable += 1
        stats.errors.append("result missing prb_id/timestamp")
        return
    for entry in result.get("result", []) or []:
        stats.seen += 1
        family = entry.get("af")
        if family not in (4, 6):
            stats.unparseable += 1
            continue
        client_text = _extract_client_ip(entry)
        if client_text is None:
            stats.missing_client_ip += 1
            continue
        src_text = entry.get("src_addr", client_text)
        try:
            client_ip = parse_address(client_text)
            src_addr = parse_address(src_text)
        except AddressError as exc:
            stats.unparseable += 1
            stats.errors.append(str(exc))
            continue
        if client_ip.family != family:
            stats.unparseable += 1
            continue
        yield EchoRecord(
            probe_id=int(prb_id),
            hour=_hour_of(timestamp),
            family=int(family),
            client_ip=client_ip,
            src_addr=src_addr,
        )


def convert_results(
    source: Union[TextIO, Iterable[dict]],
) -> tuple[List[EchoRecord], ConversionStats]:
    """Convert a JSONL stream or an iterable of result dicts.

    Returns the records (unsorted — sort by (probe, family, hour)
    before run-length encoding) and conversion statistics.
    """
    stats = ConversionStats()
    records: List[EchoRecord] = []
    if hasattr(source, "read"):
        iterator: Iterable[dict] = (
            json.loads(line) for line in source if line.strip()  # type: ignore[union-attr]
        )
    else:
        iterator = source
    for result in iterator:
        records.extend(convert_result(result, stats))
    stats.converted = len(records)
    return records, stats


__all__ = ["ConversionStats", "convert_result", "convert_results"]
