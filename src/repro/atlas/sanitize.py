"""The Appendix A.1 data-sanitization pipeline.

Given raw per-probe echo data (:class:`~repro.atlas.platform.ProbeData`)
and a routing table, :func:`sanitize` applies, in order:

1. **Test-address removal** — drop all runs reporting 193.0.0.78, the
   RIPE NCC address probes carry before being shipped to volunteers.
2. **Unrouted removal** — drop runs whose value has no origin AS.
3. **Bad-tag filter** — drop probes tagged ``multihomed``,
   ``datacentre``, ``core`` or ``system-anchor``.
4. **Atypical-NAT filter** — drop probes whose IPv4 ``src_addr`` is
   public, or whose IPv6 ``src_addr`` differs from the echoed address.
5. **Multihoming filter** — drop probes whose reported values or origin
   ASes *alternate* (value at run *i* equals the value at run *i − 2*,
   or the AS sequence revisits an earlier AS).
6. **Virtual-probe splitting** — probes that switch AS once and never
   return (owner changed ISP) are split into one virtual probe per AS.
7. **Short-duration filter** — (virtual) probes observed for less than
   a month are dropped.

The output is a list of :class:`SanitizedProbe` plus a
:class:`SanitizationReport` with per-filter counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.atlas.echo import TEST_ADDRESS, EchoRun
from repro.atlas.platform import ProbeData
from repro.bgp.table import RoutingTable
from repro.obs import get_logger, metric_inc, span, telemetry_enabled

_log = get_logger("atlas.sanitize")

#: Minimum observed span (hours) for a probe to be usable (one month).
MIN_SPAN_HOURS = 30 * 24

#: Number of value reversions (run i equals run i-2) that flags a probe
#: as multihomed.
REVERSION_THRESHOLD = 2


@dataclass
class SanitizedProbe:
    """One (possibly virtual) probe that survived sanitization."""

    probe_id: str  # "1234" or "1234#2" for the 2nd virtual probe
    asn: int
    dual_stack: bool
    v4_runs: List[EchoRun]
    v6_runs: List[EchoRun]

    @property
    def v4_span(self) -> int:
        return _span(self.v4_runs)

    @property
    def v6_span(self) -> int:
        return _span(self.v6_runs)


@dataclass
class SanitizationReport:
    """Why probes (or records) were removed."""

    input_probes: int = 0
    kept_probes: int = 0
    virtual_probes_created: int = 0
    dropped_bad_tag: int = 0
    dropped_atypical_nat: int = 0
    dropped_multihomed: int = 0
    dropped_short: int = 0
    test_address_runs_removed: int = 0
    unrouted_runs_removed: int = 0
    notes: List[str] = field(default_factory=list)


def _span(runs: Sequence[EchoRun]) -> int:
    if not runs:
        return 0
    return runs[-1].last - runs[0].first + 1


def _count_reversions(runs: Sequence[EchoRun]) -> int:
    return sum(
        1
        for index in range(2, len(runs))
        if runs[index].value == runs[index - 2].value
        and runs[index].value != runs[index - 1].value
    )


def _as_sequence(
    runs: Sequence[EchoRun], table: RoutingTable
) -> List[Tuple[int, int]]:
    """Collapsed (asn, first_hour) sequence of the probe's runs."""
    sequence: List[Tuple[int, int]] = []
    for run in runs:
        asn = table.origin_asn(run.value)
        if asn is None:
            continue
        if not sequence or sequence[-1][0] != asn:
            sequence.append((asn, run.first))
    return sequence


def _alternates(sequence: Sequence[Tuple[int, int]]) -> bool:
    """True when an AS appears, disappears, and reappears."""
    seen = set()
    previous: Optional[int] = None
    for asn, _first in sequence:
        if asn in seen and asn != previous:
            return True
        seen.add(asn)
        previous = asn
    return False


def _strip_runs(
    runs: Sequence[EchoRun], table: RoutingTable, report: SanitizationReport
) -> List[EchoRun]:
    kept: List[EchoRun] = []
    for run in runs:
        if run.value == TEST_ADDRESS:
            report.test_address_runs_removed += 1
            continue
        if table.origin_asn(run.value) is None:
            report.unrouted_runs_removed += 1
            continue
        kept.append(run)
    return kept


def _split_hours(
    v4_sequence: Sequence[Tuple[int, int]], v6_sequence: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Boundaries where the probe moved AS, merged across both families.

    Returns a list of ``(asn, start_hour)`` entries sorted by hour, with
    consecutive duplicates collapsed.
    """
    merged = sorted(list(v4_sequence) + list(v6_sequence), key=lambda item: item[1])
    collapsed: List[Tuple[int, int]] = []
    for asn, first in merged:
        if not collapsed or collapsed[-1][0] != asn:
            collapsed.append((asn, first))
    return collapsed


def sanitize(
    probes: Sequence[ProbeData],
    table: RoutingTable,
    min_span_hours: int = MIN_SPAN_HOURS,
    reversion_threshold: int = REVERSION_THRESHOLD,
) -> Tuple[List[SanitizedProbe], SanitizationReport]:
    """Run the full Appendix A.1 pipeline; see the module docstring."""
    with span("collection/sanitize", probes=len(probes)):
        report = SanitizationReport(input_probes=len(probes))
        survivors = _sanitize(probes, table, min_span_hours, reversion_threshold, report)
    report.kept_probes = len(survivors)
    if telemetry_enabled():
        metric_inc("sanitize.probes_input", report.input_probes)
        metric_inc("sanitize.probes_kept", report.kept_probes)
        metric_inc("sanitize.virtual_probes", report.virtual_probes_created)
        for reason in ("bad_tag", "atypical_nat", "multihomed", "short"):
            dropped = getattr(report, f"dropped_{reason}")
            if dropped:
                metric_inc("sanitize.probes_dropped", dropped, reason=reason)
        if report.test_address_runs_removed:
            metric_inc(
                "sanitize.runs_removed",
                report.test_address_runs_removed,
                reason="test_address",
            )
        if report.unrouted_runs_removed:
            metric_inc(
                "sanitize.runs_removed", report.unrouted_runs_removed, reason="unrouted"
            )
    _log.info(
        "probes sanitized",
        extra={
            "input": report.input_probes,
            "kept": report.kept_probes,
            "virtual": report.virtual_probes_created,
            "bad_tag": report.dropped_bad_tag,
            "atypical_nat": report.dropped_atypical_nat,
            "multihomed": report.dropped_multihomed,
            "short": report.dropped_short,
            "runs_removed": report.test_address_runs_removed
            + report.unrouted_runs_removed,
        },
    )
    return survivors, report


def _sanitize(
    probes: Sequence[ProbeData],
    table: RoutingTable,
    min_span_hours: int,
    reversion_threshold: int,
    report: SanitizationReport,
) -> List[SanitizedProbe]:
    """The per-probe filter cascade (counts accumulate on ``report``)."""
    survivors: List[SanitizedProbe] = []

    for data in probes:
        if data.probe.has_bad_tag:
            report.dropped_bad_tag += 1
            continue
        if data.v4_src_public or data.v6_src_mismatch:
            report.dropped_atypical_nat += 1
            continue

        v4_runs = _strip_runs(data.v4_runs, table, report)
        v6_runs = _strip_runs(data.v6_runs, table, report)

        if (
            _count_reversions(v4_runs) >= reversion_threshold
            or _count_reversions(v6_runs) >= reversion_threshold
        ):
            report.dropped_multihomed += 1
            continue

        v4_sequence = _as_sequence(v4_runs, table)
        v6_sequence = _as_sequence(v6_runs, table)
        if _alternates(v4_sequence) or _alternates(v6_sequence):
            report.dropped_multihomed += 1
            continue

        segments = _split_hours(v4_sequence, v6_sequence)
        if _alternates(segments):
            report.dropped_multihomed += 1
            continue

        pieces = _cut_into_virtual_probes(data, v4_runs, v6_runs, segments)
        if len(pieces) > 1:
            report.virtual_probes_created += len(pieces)
        for probe_id, asn, piece_v4, piece_v6 in pieces:
            if max(_span(piece_v4), _span(piece_v6)) < min_span_hours:
                report.dropped_short += 1
                continue
            dual_stack = _span(piece_v6) >= min_span_hours and _span(piece_v4) >= min_span_hours
            survivors.append(
                SanitizedProbe(
                    probe_id=probe_id,
                    asn=asn,
                    dual_stack=dual_stack,
                    v4_runs=piece_v4,
                    v6_runs=piece_v6,
                )
            )

    return survivors


def _cut_into_virtual_probes(
    data: ProbeData,
    v4_runs: List[EchoRun],
    v6_runs: List[EchoRun],
    segments: List[Tuple[int, int]],
) -> List[Tuple[str, int, List[EchoRun], List[EchoRun]]]:
    """One (id, asn, v4, v6) tuple per AS segment of the probe's life."""
    if not segments:
        return []
    if len(segments) == 1:
        return [(str(data.probe.probe_id), segments[0][0], v4_runs, v6_runs)]
    pieces = []
    boundaries = [first for _asn, first in segments[1:]] + [None]
    start: Optional[int] = None
    for index, ((asn, _first), end) in enumerate(zip(segments, boundaries)):
        piece_v4 = [run for run in v4_runs if _in_piece(run, start, end)]
        piece_v6 = [run for run in v6_runs if _in_piece(run, start, end)]
        pieces.append((f"{data.probe.probe_id}#{index}", asn, piece_v4, piece_v6))
        start = end
    return pieces


def _in_piece(run: EchoRun, start: Optional[int], end: Optional[int]) -> bool:
    if start is not None and run.first < start:
        return False
    if end is not None and run.first >= end:
        return False
    return True


__all__ = [
    "MIN_SPAN_HOURS",
    "REVERSION_THRESHOLD",
    "SanitizationReport",
    "SanitizedProbe",
    "sanitize",
]
