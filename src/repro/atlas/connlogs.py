"""The RIPE Atlas "connection logs" dataset (the paper's predecessor).

Padmanabhan et al. (2016) studied IPv4 dynamics through Atlas
*connection logs*: every probe keeps a long-lived TCP connection to its
controller, and the logs record, per session, the probe's public IPv4
address with connect/disconnect timestamps.  An address change tears
the connection down, so consecutive sessions with different addresses
pinpoint changes.

The paper moved to the "IP echo" dataset because connection logs (a)
carry no IPv6 and (b) excluded dual-stacked probes in the prior study.
This module generates connection-log sessions from the same subscriber
timelines the echo platform observes, so the two datasets can be
cross-validated: IPv4 durations derived from either must agree wherever
both observe the change boundaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.ip.addr import IPv4Address
from repro.netsim.sim import SubscriberTimeline


@dataclass(frozen=True)
class ConnectionSession:
    """One controller connection: [connected, disconnected) with one address."""

    probe_id: int
    address: IPv4Address
    connected: float
    disconnected: float

    def __post_init__(self) -> None:
        if self.disconnected <= self.connected:
            raise ValueError("session must have positive length")

    @property
    def duration(self) -> float:
        return self.disconnected - self.connected


def sessions_from_timeline(
    probe_id: int,
    timeline: SubscriberTimeline,
    end_hour: float,
    mean_up_hours: float = 2500.0,
    mean_down_hours: float = 10.0,
    seed: int = 0,
) -> List[ConnectionSession]:
    """Connection-log sessions for one probe.

    A session ends when the probe goes down *or* its address changes
    (the address change resets the TCP connection); it resumes when the
    probe is back up, reporting the then-current address.
    """
    rng = random.Random((seed << 12) ^ probe_id)
    uptime: List[Tuple[float, float]] = []
    now = 0.0
    while now < end_hour:
        up_end = min(now + rng.expovariate(1.0 / mean_up_hours), end_hour)
        if up_end > now:
            uptime.append((now, up_end))
        now = up_end + (rng.expovariate(1.0 / mean_down_hours) if mean_down_hours else 0.0)

    sessions: List[ConnectionSession] = []
    interval_index = 0
    intervals = timeline.v4
    for up_start, up_end in uptime:
        while interval_index < len(intervals) and intervals[interval_index].end <= up_start:
            interval_index += 1
        cursor = interval_index
        while cursor < len(intervals) and intervals[cursor].start < up_end:
            interval = intervals[cursor]
            start = max(up_start, interval.start)
            end = min(up_end, interval.end)
            if end > start:
                sessions.append(
                    ConnectionSession(
                        probe_id=probe_id,
                        address=interval.value,
                        connected=start,
                        disconnected=end,
                    )
                )
            cursor += 1
    return sessions


def detect_changes(sessions: Sequence[ConnectionSession]) -> List[Tuple[float, IPv4Address, IPv4Address]]:
    """(time, old, new) address changes visible in the session log."""
    changes = []
    for previous, current in zip(sessions, sessions[1:]):
        if current.address != previous.address:
            changes.append((current.connected, previous.address, current.address))
    return changes


def exact_durations(
    sessions: Sequence[ConnectionSession],
    max_gap_hours: float = 0.25,
) -> List[float]:
    """Exact assignment durations visible in the session log.

    Consecutive sessions with the same address merge (reconnection
    without a change).  A merged holding is exact when both of its
    boundaries are address changes with a reconnect gap of at most
    ``max_gap_hours`` (a longer gap means the change time is unknown).
    """
    if not sessions:
        return []
    # Merge same-address streaks into holdings.
    holdings: List[Tuple[float, float, IPv4Address, float]] = []  # start, end, addr, max_gap
    start = sessions[0].connected
    end = sessions[0].disconnected
    address = sessions[0].address
    worst_gap = 0.0
    boundaries: List[float] = []  # reconnect gap at each holding boundary
    for session in sessions[1:]:
        if session.address == address:
            worst_gap = max(worst_gap, session.connected - end)
            end = session.disconnected
        else:
            holdings.append((start, end, address, worst_gap))
            boundaries.append(session.connected - end)
            start, end, address, worst_gap = (
                session.connected, session.disconnected, session.address, 0.0
            )
    holdings.append((start, end, address, worst_gap))

    durations: List[float] = []
    for index in range(1, len(holdings) - 1):
        gap_before = boundaries[index - 1]
        gap_after = boundaries[index]
        if gap_before <= max_gap_hours and gap_after <= max_gap_hours:
            start, end, _address, _gap = holdings[index]
            durations.append(end - start)
    return durations


__all__ = ["ConnectionSession", "detect_changes", "exact_durations", "sessions_from_timeline"]
