"""IP echo measurement records.

An :class:`EchoRecord` is one hourly measurement: the address the echo
server saw (``client_ip``) and the address the probe itself was
configured with (``src_addr``).  For a typical residential IPv4 probe
behind NAT, ``client_ip`` is the CPE's public address while ``src_addr``
is an RFC 1918 address; in IPv6 the two coincide.

:class:`EchoRun` is the run-length-encoded form: a maximal streak of
consecutive measurements reporting the same ``client_ip`` value.  Runs
carry enough bookkeeping (first/last observed hour, number of observed
hours, largest internal observation gap) for the paper's duration
analysis to decide whether the streak was *continuously observed*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.ip.addr import IPAddress, IPv4Address

#: The RIPE NCC address probes report while being tested before shipping;
#: Appendix A.1 removes all records carrying it.
TEST_ADDRESS = IPv4Address.parse("193.0.0.78")

#: RFC 1918 private ranges, used to recognize typical NATed probes.
_PRIVATE_V4 = (
    (0x0A000000, 0xFF000000),  # 10.0.0.0/8
    (0xAC100000, 0xFFF00000),  # 172.16.0.0/12
    (0xC0A80000, 0xFFFF0000),  # 192.168.0.0/16
)


def is_private_v4(address: IPv4Address) -> bool:
    """True when ``address`` falls in an RFC 1918 range."""
    value = int(address)
    return any((value & mask) == network for network, mask in _PRIVATE_V4)


@dataclass(frozen=True)
class EchoRecord:
    """One hourly IP echo measurement."""

    probe_id: int
    hour: int
    family: int  # 4 or 6
    client_ip: IPAddress
    src_addr: IPAddress

    def __post_init__(self) -> None:
        if self.family not in (4, 6):
            raise ValueError(f"family must be 4 or 6, got {self.family}")


@dataclass(frozen=True)
class EchoRun:
    """A maximal streak of measurements reporting the same client value.

    ``first``/``last`` are the first and last hours (inclusive) at which
    the value was observed; ``observed`` counts the hours actually
    measured within that span and ``max_gap`` is the largest number of
    consecutive missing hours inside the span (0 when fully observed).
    """

    probe_id: int
    family: int
    value: IPAddress
    first: int
    last: int
    observed: int
    max_gap: int = 0

    def __post_init__(self) -> None:
        if self.last < self.first:
            raise ValueError(f"run ends ({self.last}) before it starts ({self.first})")
        span = self.last - self.first + 1
        if not 1 <= self.observed <= span:
            raise ValueError(f"observed={self.observed} impossible for span {span}")

    @property
    def span(self) -> int:
        """Hours from first to last observation, inclusive."""
        return self.last - self.first + 1

    def fully_observed(self, max_gap: int = 0) -> bool:
        """Whether no internal observation gap exceeds ``max_gap`` hours."""
        return self.max_gap <= max_gap


def runs_from_hourly(records: Iterable[EchoRecord]) -> List[EchoRun]:
    """Collapse one probe's single-family hourly records into runs.

    ``records`` must be sorted by hour and belong to a single
    (probe, family) series; adjacent records with equal ``client_ip``
    (even across measurement gaps) belong to the same run, exactly as a
    change detector scanning the hourly series would conclude.
    """
    runs: List[EchoRun] = []
    current: Optional[dict] = None
    previous_hour: Optional[int] = None
    for record in records:
        if previous_hour is not None and record.hour <= previous_hour:
            raise ValueError(
                f"records out of order: hour {record.hour} after {previous_hour}"
            )
        if current is not None and record.client_ip == current["value"]:
            gap = record.hour - current["last"] - 1
            if gap > current["max_gap"]:
                current["max_gap"] = gap
            current["last"] = record.hour
            current["observed"] += 1
        else:
            if current is not None:
                runs.append(_close_run(current))
            current = {
                "probe_id": record.probe_id,
                "family": record.family,
                "value": record.client_ip,
                "first": record.hour,
                "last": record.hour,
                "observed": 1,
                "max_gap": 0,
            }
        previous_hour = record.hour
    if current is not None:
        runs.append(_close_run(current))
    return runs


def _close_run(state: dict) -> EchoRun:
    return EchoRun(
        probe_id=state["probe_id"],
        family=state["family"],
        value=state["value"],
        first=state["first"],
        last=state["last"],
        observed=state["observed"],
        max_gap=state["max_gap"],
    )


def merge_adjacent_equal(runs: Iterable[EchoRun]) -> Iterator[EchoRun]:
    """Merge consecutive runs with equal values into one run.

    The simulator can emit back-to-back runs of the same value when an
    intervening assignment went completely unobserved; a change detector
    reading hourly data cannot tell these apart, so the platform merges
    them before handing data to the analysis.
    """
    pending: Optional[EchoRun] = None
    for run in runs:
        if pending is not None and run.value == pending.value:
            gap = run.first - pending.last - 1
            pending = EchoRun(
                probe_id=pending.probe_id,
                family=pending.family,
                value=pending.value,
                first=pending.first,
                last=run.last,
                observed=pending.observed + run.observed,
                max_gap=max(pending.max_gap, run.max_gap, gap),
            )
        else:
            if pending is not None:
                yield pending
            pending = run
    if pending is not None:
        yield pending


__all__ = [
    "EchoRecord",
    "EchoRun",
    "TEST_ADDRESS",
    "is_private_v4",
    "merge_adjacent_equal",
    "runs_from_hourly",
]
