"""The Atlas measurement platform: turns subscriber timelines into echo data.

:class:`AtlasPlatform` hosts a set of simulated networks (ISP +
subscriber timelines) and "deploys" probes onto subscriber lines
according to :class:`ProbeSpec`.  For each probe it produces IP echo
data in two equivalent encodings — hourly :class:`EchoRecord` streams
and run-length :class:`EchoRun` lists.

The platform also injects the deployment anomalies Appendix A.1 is
designed to catch:

``test_prefix``
    The probe reports RIPE NCC's test address (193.0.0.78) for its
    first hours, as probes did before shipping to volunteers.
``public_v4_src``
    The probe is not behind a NAT: its IPv4 ``src_addr`` equals its
    public address ("atypical NAT" filter).
``v6_src_mismatch``
    The probe's IPv6 ``src_addr`` differs from the echoed address.
``multihomed``
    The probe flaps between two upstream networks.
``as_move``
    The probe's owner switches ISP mid-deployment (handled by virtual
    probe splitting, not filtering).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.atlas.echo import (
    TEST_ADDRESS,
    EchoRecord,
    EchoRun,
    merge_adjacent_equal,
)
from repro.atlas.probe import Probe
from repro.ip.addr import IPAddress, IPv4Address, IPv6Address
from repro.netsim.cpe import eui64_iid
from repro.netsim.isp import Isp
from repro.netsim.sim import SubscriberTimeline

ANOMALIES = ("none", "test_prefix", "public_v4_src", "v6_src_mismatch", "multihomed", "as_move")

#: Constant RFC 1918 source address reported by typical NATed probes.
_PRIVATE_SRC = IPv4Address.parse("192.168.1.2")
#: ULA source reported by probes with mismatching IPv6 configuration.
_ULA_SRC = IPv6Address.parse("fd00::2")

Segment = Tuple[int, int, IPAddress]  # [start_hour, end_hour) reporting value
Window = Tuple[int, int]  # [start_hour, end_hour) of observation


IID_MODES = ("eui64", "privacy")


@dataclass(frozen=True)
class ProbeSpec:
    """Where and how one probe is deployed.

    ``iid_mode`` selects the host part of the probe's IPv6 addresses:
    ``"eui64"`` (stable MAC-derived, the real RIPE Atlas behaviour) or
    ``"privacy"`` (RFC 4941 temporary IIDs rotated every
    ``iid_rotation_hours``).
    """

    probe_id: int
    asn: int
    subscriber_id: int
    tags: Tuple[str, ...] = field(default_factory=tuple)
    join_hour: int = 0
    leave_hour: Optional[int] = None
    anomaly: str = "none"
    secondary: Optional[Tuple[int, int]] = None  # (asn, subscriber_id)
    mean_up_hours: float = 2500.0
    mean_down_hours: float = 10.0
    iid_mode: str = "eui64"
    iid_rotation_hours: int = 7 * 24

    def __post_init__(self) -> None:
        if self.anomaly not in ANOMALIES:
            raise ValueError(f"unknown anomaly {self.anomaly!r}; expected one of {ANOMALIES}")
        if self.anomaly in ("multihomed", "as_move") and self.secondary is None:
            raise ValueError(f"anomaly {self.anomaly!r} requires a secondary attachment")
        if self.iid_mode not in IID_MODES:
            raise ValueError(f"unknown iid_mode {self.iid_mode!r}; expected one of {IID_MODES}")
        if self.iid_rotation_hours < 1:
            raise ValueError("iid_rotation_hours must be >= 1")


@dataclass
class ProbeData:
    """Everything the sanitization pipeline needs for one probe."""

    probe: Probe
    spec: ProbeSpec
    v4_runs: List[EchoRun]
    v6_runs: List[EchoRun]
    v4_src_public: bool = False
    v6_src_mismatch: bool = False


class AtlasPlatform:
    """Deploys probes on simulated networks and measures them hourly."""

    def __init__(
        self,
        networks: Dict[int, Tuple[Isp, Dict[int, SubscriberTimeline]]],
        end_hour: int,
        seed: int = 0,
    ) -> None:
        if end_hour <= 0:
            raise ValueError("end_hour must be positive")
        self._networks = networks
        self.end_hour = int(end_hour)
        self._seed = seed

    # -- deployment helpers ------------------------------------------------

    def _rng_for(self, spec: ProbeSpec) -> random.Random:
        return random.Random((self._seed << 24) ^ (spec.probe_id * 2654435761 % (1 << 31)))

    def _timeline(self, asn: int, subscriber_id: int) -> SubscriberTimeline:
        isp, timelines = self._networks[asn]
        del isp
        return timelines[subscriber_id]

    def _leave(self, spec: ProbeSpec) -> int:
        leave = self.end_hour if spec.leave_hour is None else min(spec.leave_hour, self.end_hour)
        if leave <= spec.join_hour:
            raise ValueError(
                f"probe {spec.probe_id}: leave hour {leave} <= join hour {spec.join_hour}"
            )
        return leave

    # -- observation windows -------------------------------------------------

    def observation_windows(self, spec: ProbeSpec) -> List[Window]:
        """Hours during which the probe was up, as [start, end) int ranges.

        Probe uptime follows an alternating renewal process (exponential
        up-times, exponential down-times), quantized to whole hours.
        """
        rng = self._rng_for(spec)
        join, leave = spec.join_hour, self._leave(spec)
        windows: List[Window] = []
        now = float(join)
        while now < leave:
            up = rng.expovariate(1.0 / spec.mean_up_hours)
            window_start = int(-(-now // 1))  # ceil
            window_end = min(int(-(-(now + up) // 1)), leave)
            if window_end > window_start:
                windows.append((window_start, window_end))
            now += up
            now += rng.expovariate(1.0 / spec.mean_down_hours)
        return _normalize_windows(windows, leave)

    # -- assignment segments ---------------------------------------------------

    def _segments_for(
        self, spec: ProbeSpec, family: int, rng: random.Random
    ) -> List[Segment]:
        """The value the probe would report at each hour, as segments."""
        segments = self._base_segments_for(spec, family, rng)
        if family == 6 and spec.iid_mode == "privacy":
            segments = _rotate_privacy_iids(segments, spec)
        return segments

    def _base_segments_for(
        self, spec: ProbeSpec, family: int, rng: random.Random
    ) -> List[Segment]:
        join, leave = spec.join_hour, self._leave(spec)
        # Uplink flaps and ISP moves are physical events: they hit both
        # address families at the same instant, so their times come from
        # a dedicated per-probe stream (identical for family 4 and 6).
        event_rng = random.Random((self._seed << 20) ^ (spec.probe_id * 0x9E3779B1) ^ 0xA5)
        if spec.anomaly == "multihomed":
            attachments = [(spec.asn, spec.subscriber_id), spec.secondary]
            segments: List[Segment] = []
            now = join
            active = 0
            while now < leave:
                flap = max(1, int(event_rng.expovariate(1.0 / 36.0)))
                window_end = min(now + flap, leave)
                segments.extend(
                    self._clip_timeline(attachments[active], family, now, window_end, spec)
                )
                active = 1 - active
                now = window_end
            return segments
        if spec.anomaly == "as_move":
            switch = join + max(1, int((leave - join) * (0.3 + 0.4 * event_rng.random())))
            first = self._clip_timeline((spec.asn, spec.subscriber_id), family, join, switch, spec)
            second = self._clip_timeline(spec.secondary, family, switch, leave, spec)
            return first + second
        segments = self._clip_timeline((spec.asn, spec.subscriber_id), family, join, leave, spec)
        if spec.anomaly == "test_prefix" and family == 4:
            test_until = min(join + 24 * (3 + rng.randrange(5)), leave)
            segments = [(join, test_until, TEST_ADDRESS)] + [
                (max(start, test_until), end, value)
                for start, end, value in segments
                if end > test_until
            ]
        return segments

    def _clip_timeline(
        self,
        attachment: Tuple[int, int],
        family: int,
        clip_start: int,
        clip_end: int,
        spec: ProbeSpec,
    ) -> List[Segment]:
        asn, subscriber_id = attachment
        timeline = self._timeline(asn, subscriber_id)
        intervals = timeline.v4 if family == 4 else timeline.v6_lan
        segments: List[Segment] = []
        for interval in intervals:
            start = max(_ceil(interval.start), clip_start)
            end = min(_ceil(interval.end), clip_end)
            if end <= start:
                continue
            if family == 4:
                value: IPAddress = interval.value
            else:
                iid = eui64_iid((spec.probe_id * 0x10001 + asn) & ((1 << 48) - 1))
                value = IPv6Address(int(interval.value.network) | iid)
            segments.append((start, end, value))
        return segments

    # -- outputs -----------------------------------------------------------------

    def probe_data(self, spec: ProbeSpec) -> ProbeData:
        """Run-length-encoded echo data plus probe metadata."""
        rng = self._rng_for(spec)
        windows = self.observation_windows(spec)
        rng_segments = random.Random(rng.getrandbits(32))
        timeline = self._timeline(spec.asn, spec.subscriber_id)
        dual_stack = timeline.dual_stack

        v4_segments = self._segments_for(spec, 4, rng_segments)
        v4_runs = _segments_to_runs(spec.probe_id, 4, v4_segments, windows)
        v6_runs: List[EchoRun] = []
        if dual_stack:
            v6_segments = self._segments_for(spec, 6, rng_segments)
            v6_runs = _segments_to_runs(spec.probe_id, 6, v6_segments, windows)

        probe = Probe(
            probe_id=spec.probe_id, asn=spec.asn, tags=spec.tags, dual_stack=dual_stack
        )
        return ProbeData(
            probe=probe,
            spec=spec,
            v4_runs=v4_runs,
            v6_runs=v6_runs,
            v4_src_public=spec.anomaly == "public_v4_src",
            v6_src_mismatch=spec.anomaly == "v6_src_mismatch",
        )

    def hourly_records(self, spec: ProbeSpec) -> Iterator[EchoRecord]:
        """Full-fidelity hourly echo records (both families, hour-major)."""
        rng = self._rng_for(spec)
        windows = self.observation_windows(spec)
        rng_segments = random.Random(rng.getrandbits(32))
        timeline = self._timeline(spec.asn, spec.subscriber_id)

        v4_segments = self._segments_for(spec, 4, rng_segments)
        v6_segments = (
            self._segments_for(spec, 6, rng_segments) if timeline.dual_stack else []
        )
        v4_cursor = _SegmentCursor(v4_segments)
        v6_cursor = _SegmentCursor(v6_segments)
        for window_start, window_end in windows:
            for hour in range(window_start, window_end):
                v4_value = v4_cursor.value_at(hour)
                if v4_value is not None:
                    src = v4_value if spec.anomaly == "public_v4_src" else _PRIVATE_SRC
                    yield EchoRecord(spec.probe_id, hour, 4, v4_value, src)
                v6_value = v6_cursor.value_at(hour)
                if v6_value is not None:
                    src = _ULA_SRC if spec.anomaly == "v6_src_mismatch" else v6_value
                    yield EchoRecord(spec.probe_id, hour, 6, v6_value, src)


class _SegmentCursor:
    """Monotone lookup of the segment value covering increasing hours."""

    def __init__(self, segments: Sequence[Segment]) -> None:
        self._segments = segments
        self._index = 0

    def value_at(self, hour: int) -> Optional[IPAddress]:
        while self._index < len(self._segments) and self._segments[self._index][1] <= hour:
            self._index += 1
        if self._index < len(self._segments):
            start, _end, value = self._segments[self._index]
            if start <= hour:
                return value
        return None


def _privacy_iid(probe_id: int, rotation_index: int) -> int:
    """Deterministic RFC 4941-style temporary IID for one rotation period."""
    rng = random.Random((probe_id << 32) ^ rotation_index ^ 0x4941)
    while True:
        iid = rng.getrandbits(64)
        # Avoid the (2^-16) chance of impersonating an EUI-64 shape and
        # the all-zero/small-integer ranges.
        if (iid >> 24) & 0xFFFF != 0xFFFE and iid >= (1 << 16):
            return iid


def _rotate_privacy_iids(segments: List[Segment], spec: ProbeSpec) -> List[Segment]:
    """Split v6 segments at IID-rotation boundaries with fresh IIDs."""
    rotation = spec.iid_rotation_hours
    rotated: List[Segment] = []
    prefix_mask = ~((1 << 64) - 1)
    for start, end, value in segments:
        prefix_bits = int(value) & prefix_mask
        cursor = start
        while cursor < end:
            index = (cursor - spec.join_hour) // rotation
            boundary = spec.join_hour + (index + 1) * rotation
            piece_end = min(end, boundary)
            iid = _privacy_iid(spec.probe_id, index)
            rotated.append((cursor, piece_end, IPv6Address(prefix_bits | iid)))
            cursor = piece_end
    return rotated


def _ceil(x: float) -> int:
    return int(-(-x // 1))


def _normalize_windows(windows: List[Window], limit: int) -> List[Window]:
    """Sort, clip, and merge overlapping/adjacent windows."""
    merged: List[Window] = []
    for start, end in sorted(windows):
        start, end = max(0, start), min(end, limit)
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _intersect(start: int, end: int, windows: Sequence[Window]) -> List[Window]:
    """Subranges of [start, end) covered by the observation windows."""
    result: List[Window] = []
    for window_start, window_end in windows:
        if window_end <= start:
            continue
        if window_start >= end:
            break
        result.append((max(start, window_start), min(end, window_end)))
    return result


def _segments_to_runs(
    probe_id: int,
    family: int,
    segments: Sequence[Segment],
    windows: Sequence[Window],
) -> List[EchoRun]:
    runs: List[EchoRun] = []
    for start, end, value in segments:
        observed = _intersect(start, end, windows)
        if not observed:
            continue
        first = observed[0][0]
        last = observed[-1][1] - 1
        total = sum(b - a for a, b in observed)
        max_gap = 0
        for (_, left_end), (right_start, _) in zip(observed, observed[1:]):
            max_gap = max(max_gap, right_start - left_end)
        runs.append(
            EchoRun(
                probe_id=probe_id,
                family=family,
                value=value,
                first=first,
                last=last,
                observed=total,
                max_gap=max_gap,
            )
        )
    return list(merge_adjacent_equal(runs))


__all__ = ["ANOMALIES", "AtlasPlatform", "ProbeData", "ProbeSpec"]
