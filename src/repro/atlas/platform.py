"""The Atlas measurement platform: turns subscriber timelines into echo data.

:class:`AtlasPlatform` hosts a set of simulated networks (ISP +
subscriber timelines) and "deploys" probes onto subscriber lines
according to :class:`ProbeSpec`.  For each probe it produces IP echo
data in two equivalent encodings — hourly :class:`EchoRecord` streams
and run-length :class:`EchoRun` lists.

The platform also injects the deployment anomalies Appendix A.1 is
designed to catch:

``test_prefix``
    The probe reports RIPE NCC's test address (193.0.0.78) for its
    first hours, as probes did before shipping to volunteers.
``public_v4_src``
    The probe is not behind a NAT: its IPv4 ``src_addr`` equals its
    public address ("atypical NAT" filter).
``v6_src_mismatch``
    The probe's IPv6 ``src_addr`` differs from the echoed address.
``multihomed``
    The probe flaps between two upstream networks.
``as_move``
    The probe's owner switches ISP mid-deployment (handled by virtual
    probe splitting, not filtering).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.atlas.echo import (
    TEST_ADDRESS,
    EchoRecord,
    EchoRun,
    merge_adjacent_equal,
)
from repro.atlas.probe import Probe
from repro.core.engine import FALLBACK_ERRORS, resolve_engine
from repro.ip.addr import IPAddress, IPv4Address, IPv6Address
from repro.netsim.cpe import eui64_iid
from repro.netsim.isp import Isp
from repro.netsim.sim import SubscriberTimeline
from repro.obs import get_logger, metric_inc, telemetry_enabled

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    np = None

_log = get_logger("atlas.platform")

_M64 = (1 << 64) - 1

ANOMALIES = ("none", "test_prefix", "public_v4_src", "v6_src_mismatch", "multihomed", "as_move")

#: Constant RFC 1918 source address reported by typical NATed probes.
_PRIVATE_SRC = IPv4Address.parse("192.168.1.2")
#: ULA source reported by probes with mismatching IPv6 configuration.
_ULA_SRC = IPv6Address.parse("fd00::2")

Segment = Tuple[int, int, IPAddress]  # [start_hour, end_hour) reporting value
Window = Tuple[int, int]  # [start_hour, end_hour) of observation


IID_MODES = ("eui64", "privacy")


@dataclass(frozen=True)
class ProbeSpec:
    """Where and how one probe is deployed.

    ``iid_mode`` selects the host part of the probe's IPv6 addresses:
    ``"eui64"`` (stable MAC-derived, the real RIPE Atlas behaviour) or
    ``"privacy"`` (RFC 4941 temporary IIDs rotated every
    ``iid_rotation_hours``).
    """

    probe_id: int
    asn: int
    subscriber_id: int
    tags: Tuple[str, ...] = field(default_factory=tuple)
    join_hour: int = 0
    leave_hour: Optional[int] = None
    anomaly: str = "none"
    secondary: Optional[Tuple[int, int]] = None  # (asn, subscriber_id)
    mean_up_hours: float = 2500.0
    mean_down_hours: float = 10.0
    iid_mode: str = "eui64"
    iid_rotation_hours: int = 7 * 24

    def __post_init__(self) -> None:
        if self.anomaly not in ANOMALIES:
            raise ValueError(f"unknown anomaly {self.anomaly!r}; expected one of {ANOMALIES}")
        if self.anomaly in ("multihomed", "as_move") and self.secondary is None:
            raise ValueError(f"anomaly {self.anomaly!r} requires a secondary attachment")
        if self.iid_mode not in IID_MODES:
            raise ValueError(f"unknown iid_mode {self.iid_mode!r}; expected one of {IID_MODES}")
        if self.iid_rotation_hours < 1:
            raise ValueError("iid_rotation_hours must be >= 1")


@dataclass
class ProbeData:
    """Everything the sanitization pipeline needs for one probe."""

    probe: Probe
    spec: ProbeSpec
    v4_runs: List[EchoRun]
    v6_runs: List[EchoRun]
    v4_src_public: bool = False
    v6_src_mismatch: bool = False


class AtlasPlatform:
    """Deploys probes on simulated networks and measures them hourly."""

    def __init__(
        self,
        networks: Dict[int, Tuple[Isp, Dict[int, SubscriberTimeline]]],
        end_hour: int,
        seed: int = 0,
    ) -> None:
        if end_hour <= 0:
            raise ValueError("end_hour must be positive")
        self._networks = networks
        self.end_hour = int(end_hour)
        self._seed = seed
        # Per-(asn, subscriber, family) packed timeline intervals for the
        # columnar collection path; derived data, dropped on pickling.
        self._packed_intervals: Dict[Tuple[int, int, int], "_PackedIntervals"] = {}

    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        state["_packed_intervals"] = {}
        return state

    # -- deployment helpers ------------------------------------------------

    def _rng_for(self, spec: ProbeSpec) -> random.Random:
        return random.Random((self._seed << 24) ^ (spec.probe_id * 2654435761 % (1 << 31)))

    def _timeline(self, asn: int, subscriber_id: int) -> SubscriberTimeline:
        isp, timelines = self._networks[asn]
        del isp
        return timelines[subscriber_id]

    def _leave(self, spec: ProbeSpec) -> int:
        leave = self.end_hour if spec.leave_hour is None else min(spec.leave_hour, self.end_hour)
        if leave <= spec.join_hour:
            raise ValueError(
                f"probe {spec.probe_id}: leave hour {leave} <= join hour {spec.join_hour}"
            )
        return leave

    # -- observation windows -------------------------------------------------

    def observation_windows(self, spec: ProbeSpec) -> List[Window]:
        """Hours during which the probe was up, as [start, end) int ranges.

        Probe uptime follows an alternating renewal process (exponential
        up-times, exponential down-times), quantized to whole hours.
        """
        rng = self._rng_for(spec)
        join, leave = spec.join_hour, self._leave(spec)
        windows: List[Window] = []
        now = float(join)
        while now < leave:
            up = rng.expovariate(1.0 / spec.mean_up_hours)
            window_start = int(-(-now // 1))  # ceil
            window_end = min(int(-(-(now + up) // 1)), leave)
            if window_end > window_start:
                windows.append((window_start, window_end))
            now += up
            now += rng.expovariate(1.0 / spec.mean_down_hours)
        return _normalize_windows(windows, leave)

    # -- assignment segments ---------------------------------------------------

    def _segments_for(
        self, spec: ProbeSpec, family: int, rng: random.Random
    ) -> List[Segment]:
        """The value the probe would report at each hour, as segments."""
        segments = self._base_segments_for(spec, family, rng)
        if family == 6 and spec.iid_mode == "privacy":
            segments = _rotate_privacy_iids(segments, spec)
        return segments

    def _base_segments_for(
        self, spec: ProbeSpec, family: int, rng: random.Random
    ) -> List[Segment]:
        join, leave = spec.join_hour, self._leave(spec)
        # Uplink flaps and ISP moves are physical events: they hit both
        # address families at the same instant, so their times come from
        # a dedicated per-probe stream (identical for family 4 and 6).
        event_rng = random.Random((self._seed << 20) ^ (spec.probe_id * 0x9E3779B1) ^ 0xA5)
        if spec.anomaly == "multihomed":
            attachments = [(spec.asn, spec.subscriber_id), spec.secondary]
            segments: List[Segment] = []
            now = join
            active = 0
            while now < leave:
                flap = max(1, int(event_rng.expovariate(1.0 / 36.0)))
                window_end = min(now + flap, leave)
                segments.extend(
                    self._clip_timeline(attachments[active], family, now, window_end, spec)
                )
                active = 1 - active
                now = window_end
            return segments
        if spec.anomaly == "as_move":
            switch = join + max(1, int((leave - join) * (0.3 + 0.4 * event_rng.random())))
            first = self._clip_timeline((spec.asn, spec.subscriber_id), family, join, switch, spec)
            second = self._clip_timeline(spec.secondary, family, switch, leave, spec)
            return first + second
        segments = self._clip_timeline((spec.asn, spec.subscriber_id), family, join, leave, spec)
        if spec.anomaly == "test_prefix" and family == 4:
            test_until = min(join + 24 * (3 + rng.randrange(5)), leave)
            segments = [(join, test_until, TEST_ADDRESS)] + [
                (max(start, test_until), end, value)
                for start, end, value in segments
                if end > test_until
            ]
        return segments

    def _clip_timeline(
        self,
        attachment: Tuple[int, int],
        family: int,
        clip_start: int,
        clip_end: int,
        spec: ProbeSpec,
    ) -> List[Segment]:
        asn, subscriber_id = attachment
        timeline = self._timeline(asn, subscriber_id)
        intervals = timeline.v4 if family == 4 else timeline.v6_lan
        segments: List[Segment] = []
        for interval in intervals:
            start = max(_ceil(interval.start), clip_start)
            end = min(_ceil(interval.end), clip_end)
            if end <= start:
                continue
            if family == 4:
                value: IPAddress = interval.value
            else:
                iid = eui64_iid((spec.probe_id * 0x10001 + asn) & ((1 << 48) - 1))
                value = IPv6Address(int(interval.value.network) | iid)
            segments.append((start, end, value))
        return segments

    # -- outputs -----------------------------------------------------------------

    def probe_data(self, spec: ProbeSpec, engine: Optional[str] = None) -> ProbeData:
        """Run-length-encoded echo data plus probe metadata.

        Dispatched through the analysis-engine knob: the ``"np"`` engine
        clips packed timeline-interval arrays with searchsorted slices
        and run-length-encodes them with vectorized window intersection
        — bit-identical runs, identical RNG draw order — instead of the
        per-interval Python loops of the reference path.
        """
        if np is not None and resolve_engine(engine) == "np":
            try:
                return self._record_collection(spec, self._probe_data_np(spec))
            except FALLBACK_ERRORS as exc:
                metric_inc("collection.engine_fallbacks", stage="probe_data")
                _log.debug(
                    "np probe_data fell back to python",
                    extra={"probe": spec.probe_id, "error": type(exc).__name__},
                )
        return self._record_collection(spec, self._probe_data_py(spec))

    def _record_collection(self, spec: ProbeSpec, data: ProbeData) -> ProbeData:
        """Tally per-probe collection telemetry (no-op when disabled)."""
        if telemetry_enabled():
            metric_inc("collection.probes_collected")
            metric_inc(
                "collection.records_generated", len(data.v4_runs) + len(data.v6_runs)
            )
            if spec.anomaly != "none":
                metric_inc("collection.anomalies", kind=spec.anomaly)
        return data

    def _probe_data_py(self, spec: ProbeSpec) -> ProbeData:
        """Pure-Python reference collection path."""
        rng = self._rng_for(spec)
        windows = self.observation_windows(spec)
        rng_segments = random.Random(rng.getrandbits(32))
        timeline = self._timeline(spec.asn, spec.subscriber_id)
        dual_stack = timeline.dual_stack

        v4_segments = self._segments_for(spec, 4, rng_segments)
        v4_runs = _segments_to_runs(spec.probe_id, 4, v4_segments, windows)
        v6_runs: List[EchoRun] = []
        if dual_stack:
            v6_segments = self._segments_for(spec, 6, rng_segments)
            v6_runs = _segments_to_runs(spec.probe_id, 6, v6_segments, windows)

        probe = Probe(
            probe_id=spec.probe_id, asn=spec.asn, tags=spec.tags, dual_stack=dual_stack
        )
        return ProbeData(
            probe=probe,
            spec=spec,
            v4_runs=v4_runs,
            v6_runs=v6_runs,
            v4_src_public=spec.anomaly == "public_v4_src",
            v6_src_mismatch=spec.anomaly == "v6_src_mismatch",
        )

    def _probe_data_np(self, spec: ProbeSpec) -> ProbeData:
        """Columnar collection path (same RNG stream as the reference)."""
        rng = self._rng_for(spec)
        windows = self.observation_windows(spec)
        rng_segments = random.Random(rng.getrandbits(32))
        timeline = self._timeline(spec.asn, spec.subscriber_id)
        dual_stack = timeline.dual_stack

        v4_runs = _runs_from_arrays(
            spec.probe_id, 4, self._run_arrays_for(spec, 4, rng_segments, windows)
        )
        v6_runs: List[EchoRun] = []
        if dual_stack:
            v6_runs = _runs_from_arrays(
                spec.probe_id, 6, self._run_arrays_for(spec, 6, rng_segments, windows)
            )

        probe = Probe(
            probe_id=spec.probe_id, asn=spec.asn, tags=spec.tags, dual_stack=dual_stack
        )
        return ProbeData(
            probe=probe,
            spec=spec,
            v4_runs=v4_runs,
            v6_runs=v6_runs,
            v4_src_public=spec.anomaly == "public_v4_src",
            v6_src_mismatch=spec.anomaly == "v6_src_mismatch",
        )

    def run_columns(self, specs: Sequence[ProbeSpec], family: int):
        """CSR run columns of many probes, packed straight from timelines.

        Returns a :class:`repro.core.analysis_np.RunColumns` over
        ``specs`` (one slice per spec, in order) without materializing
        per-hour :class:`EchoRecord` streams or per-run
        :class:`EchoRun` objects — the collection-side columnar fast
        path.  Dual-stack gating matches :meth:`probe_data`: a spec on a
        v4-only subscriber line contributes an empty IPv6 slice.
        """
        if np is None:
            raise RuntimeError("run_columns requires numpy")
        from repro.core.analysis_np import RunColumns

        per_probe: List[Tuple[np.ndarray, ...]] = []
        for spec in specs:
            rng = self._rng_for(spec)
            windows = self.observation_windows(spec)
            rng_segments = random.Random(rng.getrandbits(32))
            if family == 6 and not self._timeline(spec.asn, spec.subscriber_id).dual_stack:
                per_probe.append(_EMPTY_RUN_ARRAYS)
                continue
            per_probe.append(self._run_arrays_for(spec, family, rng_segments, windows))

        counts = np.fromiter(
            (len(arrays[0]) for arrays in per_probe), dtype=np.int64, count=len(per_probe)
        )
        offsets = np.zeros(len(per_probe) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        def cat(index: int, dtype) -> np.ndarray:
            if not per_probe:
                return np.empty(0, dtype=dtype)
            return np.concatenate([arrays[index] for arrays in per_probe]).astype(dtype)

        return RunColumns(
            offsets=offsets,
            first=cat(0, np.int64),
            last=cat(1, np.int64),
            observed=cat(2, np.int64),
            max_gap=cat(3, np.int64),
            value_hi=cat(4, np.uint64),
            value_lo=cat(5, np.uint64),
        )

    # -- columnar collection internals ------------------------------------

    def _packed_for(self, asn: int, subscriber_id: int, family: int) -> "_PackedIntervals":
        key = (asn, subscriber_id, family)
        packed = self._packed_intervals.get(key)
        if packed is None:
            timeline = self._timeline(asn, subscriber_id)
            intervals = timeline.v4 if family == 4 else timeline.v6_lan
            packed = _pack_intervals(intervals, family)
            self._packed_intervals[key] = packed
        return packed

    def _clip_arrays_for(
        self,
        attachment: Tuple[int, int],
        family: int,
        clip_start: int,
        clip_end: int,
        spec: ProbeSpec,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Array form of :meth:`_clip_timeline`: (starts, ends, hi, lo)."""
        asn, subscriber_id = attachment
        packed = self._packed_for(asn, subscriber_id, family)
        low = int(np.searchsorted(packed.cend, clip_start, side="right"))
        high = int(np.searchsorted(packed.cstart, clip_end, side="left"))
        starts = np.maximum(packed.cstart[low:high], clip_start)
        ends = np.minimum(packed.cend[low:high], clip_end)
        keep = ends > starts
        value_hi = packed.value_hi[low:high][keep]
        value_lo = packed.value_lo[low:high][keep]
        if family == 6:
            iid = eui64_iid((spec.probe_id * 0x10001 + asn) & ((1 << 48) - 1))
            value_lo = value_lo | np.uint64(iid)
        return starts[keep], ends[keep], value_hi, value_lo

    def _segment_arrays_for(
        self, spec: ProbeSpec, family: int, rng: random.Random
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Array form of :meth:`_segments_for`, same event-RNG stream."""
        if family == 6 and spec.iid_mode == "privacy":
            # Privacy-IID rotation is inherently per-segment; reuse the
            # reference segmentation and pack its output.
            return _pack_segments(self._segments_for(spec, family, rng))
        join, leave = spec.join_hour, self._leave(spec)
        event_rng = random.Random((self._seed << 20) ^ (spec.probe_id * 0x9E3779B1) ^ 0xA5)
        if spec.anomaly == "multihomed":
            attachments = [(spec.asn, spec.subscriber_id), spec.secondary]
            parts = []
            now = join
            active = 0
            while now < leave:
                flap = max(1, int(event_rng.expovariate(1.0 / 36.0)))
                window_end = min(now + flap, leave)
                parts.append(
                    self._clip_arrays_for(attachments[active], family, now, window_end, spec)
                )
                active = 1 - active
                now = window_end
            return tuple(np.concatenate(column) for column in zip(*parts))
        if spec.anomaly == "as_move":
            switch = join + max(1, int((leave - join) * (0.3 + 0.4 * event_rng.random())))
            first = self._clip_arrays_for((spec.asn, spec.subscriber_id), family, join, switch, spec)
            second = self._clip_arrays_for(spec.secondary, family, switch, leave, spec)
            return tuple(np.concatenate(column) for column in zip(first, second))
        starts, ends, value_hi, value_lo = self._clip_arrays_for(
            (spec.asn, spec.subscriber_id), family, join, leave, spec
        )
        if spec.anomaly == "test_prefix" and family == 4:
            test_until = min(join + 24 * (3 + rng.randrange(5)), leave)
            keep = ends > test_until
            starts = np.maximum(starts[keep], test_until)
            ends = ends[keep]
            value_hi = value_hi[keep]
            value_lo = value_lo[keep]
            starts = np.concatenate((np.array([join], dtype=np.int64), starts))
            ends = np.concatenate((np.array([test_until], dtype=np.int64), ends))
            value_hi = np.concatenate((np.zeros(1, dtype=np.uint64), value_hi))
            value_lo = np.concatenate(
                (np.array([int(TEST_ADDRESS)], dtype=np.uint64), value_lo)
            )
        return starts, ends, value_hi, value_lo

    def _run_arrays_for(
        self,
        spec: ProbeSpec,
        family: int,
        rng: random.Random,
        windows: Sequence[Window],
    ) -> Tuple[np.ndarray, ...]:
        """Merged run arrays (first, last, observed, max_gap, hi, lo)."""
        segments = self._segment_arrays_for(spec, family, rng)
        return _merge_equal_run_arrays(*_segments_to_run_arrays(*segments, windows))

    def hourly_records(self, spec: ProbeSpec) -> Iterator[EchoRecord]:
        """Full-fidelity hourly echo records (both families, hour-major)."""
        rng = self._rng_for(spec)
        windows = self.observation_windows(spec)
        rng_segments = random.Random(rng.getrandbits(32))
        timeline = self._timeline(spec.asn, spec.subscriber_id)

        v4_segments = self._segments_for(spec, 4, rng_segments)
        v6_segments = (
            self._segments_for(spec, 6, rng_segments) if timeline.dual_stack else []
        )
        v4_cursor = _SegmentCursor(v4_segments)
        v6_cursor = _SegmentCursor(v6_segments)
        for window_start, window_end in windows:
            for hour in range(window_start, window_end):
                v4_value = v4_cursor.value_at(hour)
                if v4_value is not None:
                    src = v4_value if spec.anomaly == "public_v4_src" else _PRIVATE_SRC
                    yield EchoRecord(spec.probe_id, hour, 4, v4_value, src)
                v6_value = v6_cursor.value_at(hour)
                if v6_value is not None:
                    src = _ULA_SRC if spec.anomaly == "v6_src_mismatch" else v6_value
                    yield EchoRecord(spec.probe_id, hour, 6, v6_value, src)


class _SegmentCursor:
    """Monotone lookup of the segment value covering increasing hours."""

    def __init__(self, segments: Sequence[Segment]) -> None:
        self._segments = segments
        self._index = 0

    def value_at(self, hour: int) -> Optional[IPAddress]:
        while self._index < len(self._segments) and self._segments[self._index][1] <= hour:
            self._index += 1
        if self._index < len(self._segments):
            start, _end, value = self._segments[self._index]
            if start <= hour:
                return value
        return None


def _privacy_iid(probe_id: int, rotation_index: int) -> int:
    """Deterministic RFC 4941-style temporary IID for one rotation period."""
    rng = random.Random((probe_id << 32) ^ rotation_index ^ 0x4941)
    while True:
        iid = rng.getrandbits(64)
        # Avoid the (2^-16) chance of impersonating an EUI-64 shape and
        # the all-zero/small-integer ranges.
        if (iid >> 24) & 0xFFFF != 0xFFFE and iid >= (1 << 16):
            return iid


def _rotate_privacy_iids(segments: List[Segment], spec: ProbeSpec) -> List[Segment]:
    """Split v6 segments at IID-rotation boundaries with fresh IIDs."""
    rotation = spec.iid_rotation_hours
    rotated: List[Segment] = []
    prefix_mask = ~((1 << 64) - 1)
    for start, end, value in segments:
        prefix_bits = int(value) & prefix_mask
        cursor = start
        while cursor < end:
            index = (cursor - spec.join_hour) // rotation
            boundary = spec.join_hour + (index + 1) * rotation
            piece_end = min(end, boundary)
            iid = _privacy_iid(spec.probe_id, index)
            rotated.append((cursor, piece_end, IPv6Address(prefix_bits | iid)))
            cursor = piece_end
    return rotated


def _ceil(x: float) -> int:
    return int(-(-x // 1))


def _normalize_windows(windows: List[Window], limit: int) -> List[Window]:
    """Sort, clip, and merge overlapping/adjacent windows."""
    merged: List[Window] = []
    for start, end in sorted(windows):
        start, end = max(0, start), min(end, limit)
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _intersect(start: int, end: int, windows: Sequence[Window]) -> List[Window]:
    """Subranges of [start, end) covered by the observation windows."""
    result: List[Window] = []
    for window_start, window_end in windows:
        if window_end <= start:
            continue
        if window_start >= end:
            break
        result.append((max(start, window_start), min(end, window_end)))
    return result


# -- columnar collection helpers ----------------------------------------------


@dataclass
class _PackedIntervals:
    """One subscriber timeline's intervals, hour-ceiled and packed."""

    cstart: np.ndarray  # int64, ceil(interval.start)
    cend: np.ndarray  # int64, ceil(interval.end)
    value_hi: np.ndarray  # uint64
    value_lo: np.ndarray  # uint64 (v6: network low bits, IID OR'd in later)


def _pack_intervals(intervals: Sequence, family: int) -> _PackedIntervals:
    """Pack assignment intervals for searchsorted clipping.

    Raises ``ValueError`` on out-of-order intervals (the reference path
    has no ordering requirement, so the caller falls back to it).
    """
    count = len(intervals)
    cstart = np.fromiter((_ceil(i.start) for i in intervals), dtype=np.int64, count=count)
    cend = np.fromiter((_ceil(i.end) for i in intervals), dtype=np.int64, count=count)
    if np.any(cstart[1:] < cstart[:-1]) or np.any(cend[1:] < cend[:-1]):
        raise ValueError("timeline intervals are not time-ordered")
    if family == 4:
        values = [int(interval.value) for interval in intervals]
    else:
        values = [int(interval.value.network) for interval in intervals]
    return _PackedIntervals(
        cstart=cstart,
        cend=cend,
        value_hi=np.fromiter((v >> 64 for v in values), dtype=np.uint64, count=count),
        value_lo=np.fromiter((v & _M64 for v in values), dtype=np.uint64, count=count),
    )


def _pack_segments(
    segments: Sequence[Segment],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack reference (start, end, value) segments into column arrays."""
    count = len(segments)
    starts = np.fromiter((s for s, _, _ in segments), dtype=np.int64, count=count)
    ends = np.fromiter((e for _, e, _ in segments), dtype=np.int64, count=count)
    values = [int(value) for _, _, value in segments]
    value_hi = np.fromiter((v >> 64 for v in values), dtype=np.uint64, count=count)
    value_lo = np.fromiter((v & _M64 for v in values), dtype=np.uint64, count=count)
    return starts, ends, value_hi, value_lo


_EMPTY_RUN_ARRAYS: Tuple[np.ndarray, ...] = () if np is None else (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.uint64),
    np.empty(0, dtype=np.uint64),
)


def _segments_to_run_arrays(
    seg_starts: np.ndarray,
    seg_ends: np.ndarray,
    value_hi: np.ndarray,
    value_lo: np.ndarray,
    windows: Sequence[Window],
) -> Tuple[np.ndarray, ...]:
    """Vectorized :func:`_segments_to_runs` minus the final merge.

    For each segment, two searchsorteds find the first/last overlapping
    observation window; ``observed`` is a prefix-sum difference with the
    two outer windows' clipped edges subtracted, and ``max_gap`` is the
    maximum inter-window gap fully inside the segment's window range
    (clipping never changes interior gaps).
    """
    if len(seg_starts) == 0 or not windows:
        return _EMPTY_RUN_ARRAYS
    window_count = len(windows)
    wstart = np.fromiter((w[0] for w in windows), dtype=np.int64, count=window_count)
    wend = np.fromiter((w[1] for w in windows), dtype=np.int64, count=window_count)
    cumlen = np.zeros(window_count + 1, dtype=np.int64)
    np.cumsum(wend - wstart, out=cumlen[1:])

    first_window = np.searchsorted(wend, seg_starts, side="right")
    last_window = np.searchsorted(wstart, seg_ends, side="left") - 1
    keep = last_window >= first_window
    starts = seg_starts[keep]
    ends = seg_ends[keep]
    a = first_window[keep]
    b = last_window[keep]

    first = np.maximum(starts, wstart[a])
    last = np.minimum(ends, wend[b]) - 1
    observed = (
        cumlen[b + 1]
        - cumlen[a]
        - np.maximum(0, starts - wstart[a])
        - np.maximum(0, wend[b] - ends)
    )
    max_gap = np.zeros(len(starts), dtype=np.int64)
    gaps = wstart[1:] - wend[:-1]
    for index in range(window_count - 1):
        inside = (a <= index) & (index < b)
        np.maximum(max_gap, np.where(inside, gaps[index], 0), out=max_gap)
    return first, last, observed, max_gap, value_hi[keep], value_lo[keep]


def _merge_equal_run_arrays(
    first: np.ndarray,
    last: np.ndarray,
    observed: np.ndarray,
    max_gap: np.ndarray,
    value_hi: np.ndarray,
    value_lo: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Vectorized :func:`repro.atlas.echo.merge_adjacent_equal` for one
    probe's run arrays (summed ``observed``, gap-absorbing ``max_gap``)."""
    count = len(first)
    if count == 0:
        return _EMPTY_RUN_ARRAYS
    same_as_previous = np.zeros(count, dtype=bool)
    same_as_previous[1:] = (value_hi[1:] == value_hi[:-1]) & (value_lo[1:] == value_lo[:-1])
    group_starts = np.flatnonzero(~same_as_previous)
    group_ends = np.append(group_starts[1:], count) - 1
    join_gap = np.zeros(count, dtype=np.int64)
    join_gap[1:] = first[1:] - last[:-1] - 1
    candidate = np.where(same_as_previous, np.maximum(max_gap, join_gap), max_gap)
    return (
        first[group_starts],
        last[group_ends],
        np.add.reduceat(observed, group_starts),
        np.maximum.reduceat(candidate, group_starts),
        value_hi[group_starts],
        value_lo[group_starts],
    )


def _runs_from_arrays(
    probe_id: int, family: int, arrays: Tuple[np.ndarray, ...]
) -> List[EchoRun]:
    """Materialize merged run arrays as the reference's EchoRun list."""
    first, last, observed, max_gap, value_hi, value_lo = arrays
    value_of = (
        (lambda hi, lo: IPv4Address(int(lo)))
        if family == 4
        else (lambda hi, lo: IPv6Address((int(hi) << 64) | int(lo)))
    )
    return [
        EchoRun(
            probe_id=probe_id,
            family=family,
            value=value_of(hi, lo),
            first=int(f),
            last=int(l),
            observed=int(o),
            max_gap=int(g),
        )
        for f, l, o, g, hi, lo in zip(first, last, observed, max_gap, value_hi, value_lo)
    ]


def _segments_to_runs(
    probe_id: int,
    family: int,
    segments: Sequence[Segment],
    windows: Sequence[Window],
) -> List[EchoRun]:
    runs: List[EchoRun] = []
    for start, end, value in segments:
        observed = _intersect(start, end, windows)
        if not observed:
            continue
        first = observed[0][0]
        last = observed[-1][1] - 1
        total = sum(b - a for a, b in observed)
        max_gap = 0
        for (_, left_end), (right_start, _) in zip(observed, observed[1:]):
            max_gap = max(max_gap, right_start - left_end)
        runs.append(
            EchoRun(
                probe_id=probe_id,
                family=family,
                value=value,
                first=first,
                last=last,
                observed=total,
                max_gap=max_gap,
            )
        )
    return list(merge_adjacent_equal(runs))


__all__ = ["ANOMALIES", "AtlasPlatform", "ProbeData", "ProbeSpec"]
