"""The total time fraction metric (Section 3.2.1, Equation 1).

A naive histogram of assignment durations over-represents CPEs with
short durations: a CPE renumbered daily contributes 365 samples per
year while one renumbered monthly contributes 12.  The paper instead
weighs each duration ``d`` by the *time* spent in assignments of that
duration::

    f_p(d) = n(d) * d / sum(D)

where ``D`` is the set of observed durations and ``n(d)`` the number of
occurrences of duration ``d``.  ``f_p(d)`` is the probability that a
CPE observed at a uniformly random time is inside an assignment of
duration ``d``.

The cumulative form (plotted throughout Figure 1) is provided both at
the data's own support points and evaluated on the paper's canonical
x-grid from 1 hour to 4 years.
"""

from __future__ import annotations

import bisect
from collections import Counter
from typing import Dict, List, Sequence, Tuple

HOUR = 1.0
DAY = 24.0
WEEK = 7 * DAY
MONTH = 30 * DAY
YEAR = 365 * DAY

#: The x-axis tick durations used by Figure 1 (in hours).
CANONICAL_GRID: Tuple[float, ...] = (
    1 * HOUR,
    6 * HOUR,
    12 * HOUR,
    1 * DAY,
    3 * DAY,
    1 * WEEK,
    2 * WEEK,
    1 * MONTH,
    3 * MONTH,
    6 * MONTH,
    1 * YEAR,
    4 * YEAR,
)

#: Human-readable labels matching :data:`CANONICAL_GRID`.
CANONICAL_LABELS: Tuple[str, ...] = (
    "1h", "6h", "12h", "1d", "3d", "1w", "2w", "1m", "3m", "6m", "1y", "4y",
)


def total_time_fraction(durations: Sequence[float]) -> Dict[float, float]:
    """Equation 1: duration -> fraction of total assigned time."""
    if not durations:
        return {}
    if any(duration <= 0 for duration in durations):
        raise ValueError("durations must be positive")
    total = float(sum(durations))
    counts = Counter(durations)
    return {
        duration: count * duration / total
        for duration, count in sorted(counts.items())
    }


def cumulative_total_time_fraction(
    durations: Sequence[float],
) -> Tuple[List[float], List[float]]:
    """The cumulative total time fraction curve at the data's support.

    Returns ``(xs, ys)`` where ``ys[i]`` is the fraction of total
    assigned time spent in assignments of duration ``<= xs[i]``.
    """
    fractions = total_time_fraction(durations)
    xs: List[float] = []
    ys: List[float] = []
    cumulative = 0.0
    for duration, fraction in fractions.items():
        cumulative += fraction
        xs.append(duration)
        ys.append(cumulative)
    if ys:
        # Guard against floating-point drift: the curve ends at exactly 1.
        ys[-1] = 1.0
    return xs, ys


def evaluate_cdf(
    xs: Sequence[float], ys: Sequence[float], grid: Sequence[float] = CANONICAL_GRID
) -> List[float]:
    """Sample a step CDF at the given grid points (right-continuous)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    values = []
    for point in grid:
        index = bisect.bisect_right(xs, point)
        values.append(ys[index - 1] if index else 0.0)
    return values


def naive_duration_cdf(durations: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Conventional (unweighted) duration CDF — the ablation baseline."""
    if not durations:
        return [], []
    counts = Counter(durations)
    total = len(durations)
    xs, ys = [], []
    cumulative = 0
    for duration, count in sorted(counts.items()):
        cumulative += count
        xs.append(duration)
        ys.append(cumulative / total)
    return xs, ys


def total_duration_years(durations: Sequence[float]) -> float:
    """Total assigned time in years (the parenthesized numbers in Fig. 1)."""
    return sum(durations) / YEAR


def median_of_cdf(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The x at which a step CDF crosses 0.5 (NaN for empty input)."""
    for x, y in zip(xs, ys):
        if y >= 0.5:
            return x
    return float("nan")


__all__ = [
    "CANONICAL_GRID",
    "CANONICAL_LABELS",
    "cumulative_total_time_fraction",
    "evaluate_cdf",
    "median_of_cdf",
    "naive_duration_cdf",
    "total_duration_years",
    "total_time_fraction",
]
