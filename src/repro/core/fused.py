"""Fused single-pass analysis engine over buffer-backed run packs.

The per-kernel columnar engine (:mod:`repro.core.analysis_np`) re-walks
the same CSR run columns once per artifact — change tables, duration
tables, dual-stack masks, periodicity reductions and crossing lookups
each traverse the pack independently, so end-to-end report wall time is
bounded by redundant memory traffic.  This module fuses them: **one**
cache-friendly traversal per address family computes every per-probe
intermediate at once —

- change events *and* their boundary gaps (the run-gap array is shared
  between the change table and the sandwiched-duration test),
- exact sandwiched durations and their dual-stack split,
- Eq. 1 total-time-fraction inputs (the duration-hour populations),
- per-probe periodicity flags over the canonical candidate periods,
- CPL histogram contributions of the v6 prefix changes, and
- /24 + BGP boundary-crossing flags per change (the routing-table
  interval index is built **once** per table, not once per AS).

The result is a :class:`FusedProbeStats` struct-of-arrays covering the
whole population; per-AS artifacts then fall out as boolean-mask
reductions (``asn`` column → probe mask → change/duration masks), which
is bit-identical to re-analyzing each AS's probes separately because
every artifact is per-probe local and masking a probe-major pack
preserves per-AS relative order.

Dispatched as ``engine="fused"`` through :mod:`repro.core.engine`; the
parity contract with ``"np"`` and ``"py"`` is enforced by
``repro.perf.verify.fused_engine_diffs`` and the randomized tests in
``tests/test_fused.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bgp.table import RoutingTable
from repro.core import analysis_np as anp
from repro.core.periodicity import CANONICAL_PERIODS
from repro.core.report import AsDurations, Figure1Series, Table1Row
from repro.core.spatial import CplHistogram, CrossingRates
from repro.core.timefraction import CANONICAL_GRID
from repro.obs import metric_inc, span


@dataclass
class FusedProbeStats:
    """All per-probe intermediates of one population, from one fused pass.

    Struct-of-arrays over the *whole* population: per-probe columns
    (``asn``, ``dual``, change counts), the global change/duration
    tables of both families, pre-derived duration hours and dual-stack
    splits, and the CPL of every v6 prefix change.  Per-AS artifacts are
    boolean-mask reductions over these arrays — see the
    ``*_from_stats`` assemblers below.
    """

    plen: int
    n_probes: int
    asn: np.ndarray  # int64 (n_probes,): AS of each probe (-1 unknown)
    dual: np.ndarray  # bool (n_probes,): dual_stack flag
    v4_change_counts: np.ndarray  # int64 (n_probes,)
    v6_change_counts: np.ndarray  # int64 (n_probes,): /plen prefix changes
    v4_changes: anp.ChangeColumns
    v6_changes: anp.ChangeColumns  # /plen prefix changes
    v4_durations: anp.DurationColumns
    v6_durations: anp.DurationColumns
    v4_duration_hours: np.ndarray  # float64 per v4 duration
    v6_duration_hours: np.ndarray  # float64 per v6 duration
    v4_duration_dual: np.ndarray  # bool per v4 duration (dual-stack split)
    v6_cpl: np.ndarray  # int64 per v6 change
    _crossings: Optional[tuple] = field(default=None, repr=False, compare=False)
    _period_flags: dict = field(default_factory=dict, repr=False, compare=False)

    def crossings(self, table: RoutingTable) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-change crossing flags ``(v4 /24, v4 BGP, v6 BGP)``.

        The routing table's interval indexes are built once per table
        (cached on the stats), then every change of every AS is matched
        in one vectorized lookup — the per-kernel engine rebuilds the
        index per AS.
        """
        cached = self._crossings
        if cached is not None and cached[0] is table:
            return cached[1], cached[2], cached[3]
        if self.plen > 64:
            raise ValueError("fused crossings support plen <= 64 only")
        ch4, ch6 = self.v4_changes, self.v6_changes
        diff24 = ((ch4.old_lo ^ ch4.new_lo) >> np.uint64(8)) != 0
        index4 = anp._route_interval_index(table, family=4)
        old4 = index4.lookup(ch4.old_lo)
        new4 = index4.lookup(ch4.new_lo)
        bgp4 = (old4 == -1) | (old4 != new4)
        index6 = anp._route_interval_index(table, family=6, max_plen=self.plen)
        old6 = index6.lookup(ch6.old_hi)
        new6 = index6.lookup(ch6.new_hi)
        bgp6 = (old6 == -1) | (old6 != new6)
        self._crossings = (table, diff24, bgp4, bgp6)
        return diff24, bgp4, bgp6

    def period_flags(
        self,
        candidate_periods: Sequence[float] = CANONICAL_PERIODS,
        tolerance: float = 1.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-probe periodicity flag matrices ``(v4 NDS, v6)``.

        Computed once over the global duration populations (cached per
        knob set); per-network period detection reduces these rows, so
        N networks share one bincount pass instead of running one each.
        """
        key = (tuple(candidate_periods), float(tolerance))
        cached = self._period_flags.get(key)
        if cached is None:
            nds = ~self.v4_duration_dual
            flags4 = anp.probe_period_flags(
                self.v4_duration_hours[nds],
                self.v4_durations.probe_index[nds],
                self.n_probes,
                candidate_periods,
                tolerance,
            )
            flags6 = anp.probe_period_flags(
                self.v6_duration_hours,
                self.v6_durations.probe_index,
                self.n_probes,
                candidate_periods,
                tolerance,
            )
            cached = self._period_flags[key] = (flags4, flags6)
        return cached


def _family_pass(
    cols: anp.RunColumns,
) -> Tuple[np.ndarray, anp.ChangeColumns, anp.DurationColumns]:
    """One traversal over a packed family: change counts, the change
    table and the exact sandwiched durations share a single run-gap
    array and one pair of first/last-run masks (the per-kernel engine
    recomputes each of these per artifact)."""
    counts = np.diff(cols.offsets)
    change_counts = np.maximum(counts - 1, 0)
    n = cols.n_runs
    if n == 0:
        empty_i = np.empty(0, dtype=np.int64)
        empty_u = np.empty(0, dtype=np.uint64)
        changes = anp.ChangeColumns(
            probe_index=empty_i,
            hour=empty_i.copy(),
            old_hi=empty_u,
            old_lo=empty_u.copy(),
            new_hi=empty_u.copy(),
            new_lo=empty_u.copy(),
            boundary_gap=empty_i.copy(),
        )
        durations = anp.DurationColumns(
            probe_index=empty_i.copy(), start=empty_i.copy(), end=empty_i.copy()
        )
        return change_counts, changes, durations
    probe_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    first_mask = np.zeros(n, dtype=bool)
    first_mask[cols.offsets[:-1][counts > 0]] = True
    last_mask = np.zeros(n, dtype=bool)
    last_mask[cols.offsets[1:][counts > 0] - 1] = True
    # gap[k] = unobserved hours before run k; only within-probe entries
    # are ever read (first runs are masked out of both consumers).
    gap = np.zeros(n, dtype=np.int64)
    gap[1:] = cols.first[1:] - cols.last[:-1] - 1
    current = np.flatnonzero(~first_mask)
    changes = anp.ChangeColumns(
        probe_index=probe_of[current],
        hour=cols.first[current],
        old_hi=cols.value_hi[current - 1],
        old_lo=cols.value_lo[current - 1],
        new_hi=cols.value_hi[current],
        new_lo=cols.value_lo[current],
        boundary_gap=gap[current],
    )
    gap_after = np.zeros(n, dtype=np.int64)
    gap_after[:-1] = gap[1:]
    exact = ~first_mask & ~last_mask & (gap <= 0) & (gap_after <= 0)
    index = np.flatnonzero(exact)
    durations = anp.DurationColumns(
        probe_index=probe_of[index], start=cols.first[index], end=cols.last[index]
    )
    return change_counts, changes, durations


def fused_probe_stats(columns: anp.ProbeColumns) -> FusedProbeStats:
    """Run the fused pass over a pack (memoized on the pack's cache).

    Touches each family's columns once: v4 address runs, then the
    /``plen``-rekeyed v6 prefix runs, with the dual-stack mask and v6
    CPLs derived in the same traversal.  Crossing flags are added
    lazily per routing table via :meth:`FusedProbeStats.crossings`.
    """

    def build() -> FusedProbeStats:
        with span("analysis/fused/pass", probes=columns.n_probes):
            metric_inc("analysis.fused.probes", columns.n_probes)
            v4 = columns.v4()
            v6_prefix = columns.v6_prefix()
            counts4, changes4, durations4 = _family_pass(v4)
            counts6, changes6, durations6 = _family_pass(v6_prefix)
            duration_dual = anp.dual_stack_mask(columns.v6(), durations4)
            return FusedProbeStats(
                plen=columns.plen,
                n_probes=columns.n_probes,
                asn=columns.asns(),
                dual=columns.dual_flags(),
                v4_change_counts=counts4,
                v6_change_counts=counts6,
                v4_changes=changes4,
                v6_changes=changes6,
                v4_durations=durations4,
                v6_durations=durations6,
                v4_duration_hours=(durations4.end - durations4.start + 1).astype(float),
                v6_duration_hours=(durations6.end - durations6.start + 1).astype(float),
                v4_duration_dual=duration_dual,
                v6_cpl=anp.cpl_of_changes(changes6, columns.plen),
            )

    return columns._get("fused_stats", build)


# ---------------------------------------------------------------------------
# Per-AS artifact assembly: boolean-mask reductions over the stats
# ---------------------------------------------------------------------------


def _as_sel(stats: FusedProbeStats, sel: Optional[np.ndarray]) -> np.ndarray:
    """Normalize a probe selector to a bool column (None = all probes)."""
    if sel is None:
        return np.ones(stats.n_probes, dtype=bool)
    return np.asarray(sel, dtype=bool)


def table1_from_stats(
    stats: FusedProbeStats,
    name: str,
    asn: int,
    country: str,
    sel: Optional[np.ndarray] = None,
) -> Table1Row:
    """Table 1 row of the selected probes (change-count reductions)."""
    sel = _as_sel(stats, sel)
    dual_sel = sel & stats.dual
    return Table1Row(
        name=name,
        asn=asn,
        country=country,
        all_probes=int(np.count_nonzero(sel)),
        all_v4_changes=int(stats.v4_change_counts[sel].sum()),
        ds_probes=int(np.count_nonzero(dual_sel)),
        ds_v4_changes=int(stats.v4_change_counts[dual_sel].sum()),
        ds_v6_changes=int(stats.v6_change_counts[dual_sel].sum()),
    )


def as_durations_from_stats(
    stats: FusedProbeStats, sel: Optional[np.ndarray] = None
) -> AsDurations:
    """Figure 1 duration populations of the selected probes.

    Masking the probe-major global duration tables preserves the
    per-probe concatenation order of the reference implementation.
    """
    sel = _as_sel(stats, sel)
    in4 = sel[stats.v4_durations.probe_index]
    in6 = sel[stats.v6_durations.probe_index]
    dual = stats.v4_duration_dual
    return AsDurations(
        v4_non_dual_stack=stats.v4_duration_hours[in4 & ~dual].tolist(),
        v4_dual_stack=stats.v4_duration_hours[in4 & dual].tolist(),
        v6=stats.v6_duration_hours[in6].tolist(),
    )


def _series(label: str, durations: np.ndarray) -> Figure1Series:
    """Eq. 1 cumulative-TTF curve on the canonical grid (np kernels)."""
    xs, ys = anp.cumulative_ttf_columns(durations)
    return Figure1Series(
        label=label,
        total_years=anp.total_duration_years_np(durations),
        grid_values=tuple(
            float(v) for v in anp.evaluate_cdf_columns(xs, ys, CANONICAL_GRID)
        ),
    )


def figure1_from_stats(
    stats: FusedProbeStats, name: str, sel: Optional[np.ndarray] = None
) -> Dict[str, Figure1Series]:
    """The three Figure 1 curves (v4 NDS, v4 DS, v6) of the selection."""
    sel = _as_sel(stats, sel)
    in4 = sel[stats.v4_durations.probe_index]
    in6 = sel[stats.v6_durations.probe_index]
    dual = stats.v4_duration_dual
    return {
        "v4_nds": _series(
            f"{name} IPv4 non-dual-stack", stats.v4_duration_hours[in4 & ~dual]
        ),
        "v4_ds": _series(f"{name} IPv4 dual-stack", stats.v4_duration_hours[in4 & dual]),
        "v6": _series(f"{name} IPv6", stats.v6_duration_hours[in6]),
    }


def figure5_from_stats(
    stats: FusedProbeStats, sel: Optional[np.ndarray] = None
) -> CplHistogram:
    """Figure 5 CPL histogram of the selected probes' v6 changes."""
    sel = _as_sel(stats, sel)
    mask = sel[stats.v6_changes.probe_index]
    if not mask.any():
        return CplHistogram(changes_by_cpl={}, probes_by_cpl={})
    cpls = stats.v6_cpl[mask]
    values, counts = np.unique(cpls, return_counts=True)
    changes_by_cpl = {int(v): int(c) for v, c in zip(values, counts)}
    pair_keys = stats.v6_changes.probe_index[mask] * np.int64(129) + cpls
    probe_cpls = np.unique(pair_keys) % 129
    probe_values, probe_counts = np.unique(probe_cpls, return_counts=True)
    probes_by_cpl = {int(v): int(c) for v, c in zip(probe_values, probe_counts)}
    return CplHistogram(changes_by_cpl=changes_by_cpl, probes_by_cpl=probes_by_cpl)


def table2_from_stats(
    stats: FusedProbeStats,
    table: RoutingTable,
    sel: Optional[np.ndarray] = None,
) -> CrossingRates:
    """Table 2 crossing rates of the selected probes' changes."""
    diff24, bgp4, bgp6 = stats.crossings(table)
    sel = _as_sel(stats, sel)
    in4 = sel[stats.v4_changes.probe_index]
    in6 = sel[stats.v6_changes.probe_index]
    return CrossingRates(
        v4_changes=int(np.count_nonzero(in4)),
        v4_diff_slash24=int(np.count_nonzero(diff24 & in4)),
        v4_diff_bgp=int(np.count_nonzero(bgp4 & in4)),
        v6_changes=int(np.count_nonzero(in6)),
        v6_diff_bgp=int(np.count_nonzero(bgp6 & in6)),
    )


def network_periods_from_stats(
    stats: FusedProbeStats,
    sel: Optional[np.ndarray] = None,
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_probes: int = 3,
) -> Tuple[Optional[float], Optional[float]]:
    """Consistent ``(v4 NDS, v6)`` periods of the selected probes.

    Reduces the globally computed per-probe flag matrices: a probe
    outside the selection contributes no flags, so the per-AS counts
    equal re-running the detection over that AS's probes alone.
    """
    flags4, flags6 = stats.period_flags(candidate_periods, tolerance)
    sel = _as_sel(stats, sel)

    def first_period(flags: np.ndarray) -> Optional[float]:
        exhibiting = flags[sel].sum(axis=0)
        for j, period in enumerate(candidate_periods):
            if int(exhibiting[j]) >= min_probes:
                return float(period)
        return None

    return first_period(flags4), first_period(flags6)


# ---------------------------------------------------------------------------
# Scenario-level assembly (all ASes from one pass)
# ---------------------------------------------------------------------------


def fused_analysis_artifacts(
    columns: anp.ProbeColumns,
    groups: Sequence[Tuple[str, int, str]],
    table: Optional[RoutingTable] = None,
) -> Dict[str, Dict[str, object]]:
    """Every AS's Table 1/2 + Figure 1/5 artifacts from one fused pass.

    ``groups`` is ``(name, asn, country)`` per AS; probes are selected
    by the pack's ``asn`` column.  Returns per-artifact dicts keyed by
    AS name (``table2`` only when ``table`` is given).
    """
    stats = fused_probe_stats(columns)
    table1: Dict[str, object] = {}
    table2: Dict[str, object] = {}
    figure1: Dict[str, object] = {}
    figure5: Dict[str, object] = {}
    for name, asn, country in groups:
        sel = stats.asn == asn
        with span(
            "analysis/fused/network", network=name, probes=int(np.count_nonzero(sel))
        ):
            table1[name] = table1_from_stats(stats, name, asn, country, sel)
            figure1[name] = figure1_from_stats(stats, name, sel)
            figure5[name] = figure5_from_stats(stats, sel)
            if table is not None:
                table2[name] = table2_from_stats(stats, table, sel)
    return {
        "table1": table1,
        "table2": table2,
        "figure1": figure1,
        "figure5": figure5,
    }


def fused_network_periods(
    columns: anp.ProbeColumns,
    groups: Sequence[Tuple[str, int, str]],
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_probes: int = 3,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Section 3.2 consistent periods for every AS from one fused pass.

    Same contract as :func:`repro.core.report.periodic_networks`:
    ``(v4_nds_periods, v6_periods)`` keyed by network name, omitting
    networks with no consistent period.
    """
    stats = fused_probe_stats(columns)
    v4_periods: Dict[str, float] = {}
    v6_periods: Dict[str, float] = {}
    for name, asn, _country in groups:
        sel = stats.asn == asn
        with span(
            "analysis/fused/periodicity", network=name, probes=int(np.count_nonzero(sel))
        ):
            v4_period, v6_period = network_periods_from_stats(
                stats, sel, candidate_periods, tolerance, min_probes
            )
        if v4_period is not None:
            v4_periods[name] = v4_period
        if v6_period is not None:
            v6_periods[name] = v6_period
    return v4_periods, v6_periods


def periodic_networks_fused(
    probes_by_network: Dict[str, Sequence],
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_probes: int = 3,
    columns_by_network: Optional[Dict[str, anp.ProbeColumns]] = None,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Fused counterpart of ``report.periodic_networks`` (one pack per
    network, per-probe flags from each pack's fused stats)."""
    v4_periods: Dict[str, float] = {}
    v6_periods: Dict[str, float] = {}
    for name, probes in probes_by_network.items():
        columns = (columns_by_network or {}).get(name)
        if columns is None or columns.plen != 64:
            columns = anp.ProbeColumns(probes)
        stats = fused_probe_stats(columns)
        with span(
            "analysis/fused/periodicity", network=name, probes=stats.n_probes
        ):
            v4_period, v6_period = network_periods_from_stats(
                stats, None, candidate_periods, tolerance, min_probes
            )
        if v4_period is not None:
            v4_periods[name] = v4_period
        if v6_period is not None:
            v6_periods[name] = v6_period
    return v4_periods, v6_periods


__all__ = [
    "FusedProbeStats",
    "as_durations_from_stats",
    "figure1_from_stats",
    "figure5_from_stats",
    "fused_analysis_artifacts",
    "fused_network_periods",
    "fused_probe_stats",
    "network_periods_from_stats",
    "periodic_networks_fused",
    "table1_from_stats",
    "table2_from_stats",
]
