"""The paper's analysis library.

Everything here is dataset-agnostic: it consumes echo runs
(:class:`~repro.atlas.echo.EchoRun`), sanitized probes, or CDN
association tuples, regardless of whether they came from the bundled
simulators or from real measurement archives in the same schema.

Modules map one-to-one onto the paper's analyses:

=====================  =====================================================
Module                 Paper section
=====================  =====================================================
``changes``            3.1 — change detection, sandwiched exact durations
``timefraction``       3.2.1 — total time fraction metric (Eq. 1)
``periodicity``        3.2 — periodic renumbering detection
``dualstack``          3.2 — DS/NDS split, v4/v6 change co-occurrence
``associations``       4 — CDN association durations and cardinality
``spatial``            5.1/5.2 — CPL, BGP crossings, unique-prefix counts
``pools``              5.2 — address-pool boundary inference
``delegation``         5.3 — delegated-prefix inference (Atlas + CDN)
``evolution``          3.2 — year-over-year duration drift
``blocklist``          6 — blocklist TTL/granularity evaluation
``hitlist``            6 — rescan planning after renumbering
``targetgen``          2.3/6 — target-generation baselines + informed
``anonymize``          6 — truncation anonymization audit
``associations_np``    vectorized variant of ``associations``
``analysis_np``        columnar engine behind ``changes``/``timefraction``/
                       ``periodicity``/``spatial`` (``engine="np"``)
``report``             rendering of the paper's tables
=====================  =====================================================
"""

from repro.core.changes import (
    AssignmentObservation,
    ChangeEvent,
    Duration,
    changes_from_runs,
    observations_from_runs,
    sandwiched_durations,
    v6_runs_to_prefix_runs,
)
from repro.core.timefraction import (
    CANONICAL_GRID,
    cumulative_total_time_fraction,
    naive_duration_cdf,
    total_time_fraction,
)

__all__ = [
    "AssignmentObservation",
    "CANONICAL_GRID",
    "ChangeEvent",
    "Duration",
    "changes_from_runs",
    "cumulative_total_time_fraction",
    "naive_duration_cdf",
    "observations_from_runs",
    "sandwiched_durations",
    "total_time_fraction",
    "v6_runs_to_prefix_runs",
]
