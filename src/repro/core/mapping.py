"""IP-to-host mapping validity decay (the paper's motivating question).

The introduction frames the whole study around one expectation: systems
from geolocation databases to host-reputation services assume "that a
host's IP address will persist for sufficient time".  Given ground-truth
timelines, this module measures exactly how long that expectation
holds:

* :func:`snapshot` — the address→subscriber (and /64→subscriber)
  mapping a database would capture at one instant;
* :func:`validity_curve` — the fraction of those mappings still correct
  as a function of elapsed time (both "same holder" and the stricter
  "held continuously" variant);
* :func:`half_life` — the time at which half the snapshot has decayed,
  a single per-ISP number an operator can act on.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.sim import AssignmentInterval, SubscriberTimeline


@dataclass(frozen=True)
class MappingEntry:
    """One database row: a value (address or /64 key) bound to a holder."""

    value: int
    subscriber_id: int
    valid_until: float  # ground truth: when this binding actually ended


def _interval_at(intervals: Sequence[AssignmentInterval], hour: float) -> Optional[AssignmentInterval]:
    starts = [interval.start for interval in intervals]
    index = bisect.bisect_right(starts, hour) - 1
    if index < 0:
        return None
    interval = intervals[index]
    return interval if interval.start <= hour < interval.end else None


def snapshot(
    timelines: Dict[int, SubscriberTimeline],
    at_hour: float,
    family: int = 4,
) -> List[MappingEntry]:
    """The mapping a database built at ``at_hour`` would contain."""
    if family not in (4, 6):
        raise ValueError("family must be 4 or 6")
    entries: List[MappingEntry] = []
    for subscriber_id, timeline in timelines.items():
        intervals = timeline.v4 if family == 4 else timeline.v6_lan
        interval = _interval_at(intervals, at_hour)
        if interval is None:
            continue
        value = int(interval.value) if family == 4 else int(interval.value.network)
        entries.append(
            MappingEntry(
                value=value,
                subscriber_id=subscriber_id,
                valid_until=interval.end,
            )
        )
    return entries


def validity_curve(
    entries: Sequence[MappingEntry],
    at_hour: float,
    horizons: Sequence[float],
) -> List[Tuple[float, float]]:
    """Fraction of mappings still valid after each horizon (hours).

    A mapping is valid at ``at_hour + h`` when the binding captured in
    the snapshot was still continuously held at that time — the
    assumption IP-keyed databases silently make.
    """
    if not entries:
        raise ValueError("snapshot is empty")
    curve = []
    for horizon in sorted(horizons):
        if horizon < 0:
            raise ValueError("horizons must be non-negative")
        valid = sum(1 for entry in entries if entry.valid_until > at_hour + horizon)
        curve.append((horizon, valid / len(entries)))
    return curve


def half_life(entries: Sequence[MappingEntry], at_hour: float) -> float:
    """Hours until half the snapshot's bindings have churned (inf if never)."""
    if not entries:
        raise ValueError("snapshot is empty")
    remaining = sorted(entry.valid_until - at_hour for entry in entries)
    midpoint = len(remaining) // 2
    value = remaining[midpoint] if len(remaining) % 2 else remaining[midpoint - 1]
    return float(value) if value != float("inf") else float("inf")


def compare_families(
    timelines: Dict[int, SubscriberTimeline],
    at_hour: float,
) -> Dict[int, float]:
    """Half-life per family — the paper's "IPv6 outlasts IPv4" in one dict."""
    result = {}
    for family in (4, 6):
        entries = snapshot(timelines, at_hour, family=family)
        if entries:
            result[family] = half_life(entries, at_hour)
    return result


__all__ = ["MappingEntry", "compare_families", "half_life", "snapshot", "validity_curve"]
