"""Interface-identifier (IID) analysis (Sections 2.1 and 6).

The low 64 bits of an IPv6 address — the IID — carry their own privacy
story, orthogonal to the prefix dynamics the paper measures:

* **EUI-64** IIDs embed the interface MAC (with ``ff:fe`` in the middle
  and the U/L bit flipped): stable forever and *globally* trackable
  across prefix changes.  RFC 8064 recommends against them, yet the
  paper observes they remain widespread (RIPE Atlas probes use them
  deliberately).
* **privacy** IIDs (RFC 4941) are random and rotate; only the prefix
  identifies the subscriber — which is exactly why the paper's finding
  that /64 prefixes are stable for months matters.
* **small-integer** IIDs (``::1``, ``::2``) indicate manual assignment
  (routers, servers).

This module classifies IIDs, measures their stability across a probe's
address history, and quantifies cross-prefix trackability — the
"devices with EUI-64 addresses will be trackable across network
address changes" observation.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.ip.addr import IPv6Address


class IidKind(enum.Enum):
    """Coarse classification of an interface identifier."""

    EUI64 = "eui64"
    SMALL_INTEGER = "small-integer"
    ALL_ZERO = "all-zero"
    OTHER = "other"  # random-looking: privacy addresses, DHCPv6, opaque


#: IIDs numerically below this threshold count as manually assigned.
SMALL_INTEGER_LIMIT = 1 << 16


def iid_of(address: IPv6Address) -> int:
    """The low 64 bits of an address."""
    return int(address) & ((1 << 64) - 1)


def classify_iid(iid: int) -> IidKind:
    """Classify a 64-bit interface identifier."""
    if not 0 <= iid < (1 << 64):
        raise ValueError(f"IID out of range: {iid:#x}")
    if iid == 0:
        return IidKind.ALL_ZERO
    if (iid >> 24) & 0xFFFF == 0xFFFE:
        return IidKind.EUI64
    if iid < SMALL_INTEGER_LIMIT:
        return IidKind.SMALL_INTEGER
    return IidKind.OTHER


def mac_from_eui64(iid: int) -> int:
    """Recover the 48-bit MAC address from an EUI-64 IID.

    Inverse of :func:`repro.netsim.cpe.eui64_iid`; raises when the IID
    is not EUI-64-shaped.
    """
    if classify_iid(iid) is not IidKind.EUI64:
        raise ValueError(f"not an EUI-64 IID: {iid:#x}")
    flipped = iid ^ (1 << 57)  # undo the U/L bit flip
    upper = (flipped >> 40) & 0xFFFFFF
    lower = flipped & 0xFFFFFF
    return (upper << 24) | lower


@dataclass(frozen=True)
class IidProfile:
    """IID behaviour of one host's observed addresses."""

    kinds: Tuple[IidKind, ...]
    distinct_iids: int
    observations: int

    @property
    def dominant_kind(self) -> IidKind:
        return Counter(self.kinds).most_common(1)[0][0]

    @property
    def stable(self) -> bool:
        """One IID across all observations."""
        return self.distinct_iids == 1

    @property
    def trackable_across_prefixes(self) -> bool:
        """A stable non-trivial IID re-identifies the host after renumbering."""
        return self.stable and self.dominant_kind in (IidKind.EUI64, IidKind.SMALL_INTEGER)


def profile_addresses(addresses: Sequence[IPv6Address]) -> IidProfile:
    """Profile one host's address sequence."""
    if not addresses:
        raise ValueError("addresses must not be empty")
    iids = [iid_of(address) for address in addresses]
    return IidProfile(
        kinds=tuple(classify_iid(iid) for iid in iids),
        distinct_iids=len(set(iids)),
        observations=len(iids),
    )


def kind_distribution(addresses: Iterable[IPv6Address]) -> Dict[IidKind, float]:
    """Fraction of addresses per IID kind across a population."""
    counter: Counter = Counter()
    total = 0
    for address in addresses:
        counter[classify_iid(iid_of(address))] += 1
        total += 1
    if not total:
        return {}
    return {kind: count / total for kind, count in counter.items()}


def cross_prefix_tracking_sets(
    per_host_addresses: Dict[str, Sequence[IPv6Address]],
) -> Dict[int, List[str]]:
    """Group hosts by stable trackable IID: who can be followed across prefixes.

    Returns IID -> host ids; entries with more than one host indicate an
    IID collision (e.g. cloned MAC), entries with one host and multiple
    distinct prefixes are the paper's trackability risk realized.
    """
    groups: Dict[int, List[str]] = {}
    for host, addresses in per_host_addresses.items():
        if not addresses:
            continue
        profile = profile_addresses(list(addresses))
        if profile.trackable_across_prefixes:
            groups.setdefault(iid_of(addresses[0]), []).append(host)
    return groups


__all__ = [
    "IidKind",
    "IidProfile",
    "SMALL_INTEGER_LIMIT",
    "classify_iid",
    "cross_prefix_tracking_sets",
    "iid_of",
    "kind_distribution",
    "mac_from_eui64",
    "profile_addresses",
]
