"""Assignment-change detection and exact duration inference (Section 3.1).

The paper detects a change whenever the reported IPv4 address (or IPv6
/64 prefix) differs from the previously reported one, and measures the
*exact* duration of an assignment only when it is **sandwiched** between
two changes — i.e. both its start and its end were pinned down by
adjacent measurements reporting different values.

Working definitions over run-length-encoded echo data:

* a **change** happens between two consecutive runs (their values differ
  by construction);
* a run is **sandwiched** when it is neither the first nor the last run
  of its probe's series *and* both boundary measurement gaps are within
  ``max_boundary_gap`` hours (0 = the change is pinned to one hour);
* its duration is ``last - first + 1`` hours — the hourly-granularity
  span over which the value was continuously reported.  Internal
  observation gaps up to ``max_internal_gap`` are tolerated because the
  same value was re-observed after the gap (``None`` = no limit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.atlas.echo import EchoRun, merge_adjacent_equal
from repro.ip.addr import IPAddress, IPv6Address
from repro.ip.prefix import IPPrefix, IPv6Prefix

Value = Union[IPAddress, IPPrefix]


@dataclass(frozen=True)
class ChangeEvent:
    """One detected assignment change."""

    probe_id: int
    family: int
    hour: int  # first hour at which the new value was observed
    old_value: Value
    new_value: Value
    boundary_gap: int  # unobserved hours between old and new value


@dataclass(frozen=True)
class Duration:
    """One exact (sandwiched) assignment duration."""

    probe_id: int
    family: int
    value: Value
    start: int
    end: int  # inclusive last hour

    @property
    def hours(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class AssignmentObservation:
    """A run annotated with sandwiching/duration usability."""

    run: EchoRun
    sandwiched: bool
    exact: bool  # sandwiched and observation gaps within tolerance

    @property
    def hours(self) -> int:
        return self.run.span


def v6_runs_to_prefix_runs(runs: Sequence[EchoRun], plen: int = 64) -> List[EchoRun]:
    """Re-key IPv6 runs from full addresses to their /plen prefix.

    The paper analyzes the 64-bit network component: two addresses with
    different interface identifiers but the same /64 are the *same*
    assignment.  Adjacent runs that collapse to the same prefix are
    merged.
    """
    rekeyed = []
    for run in runs:
        if not isinstance(run.value, IPv6Address):
            raise TypeError(f"expected IPv6 address runs, got {type(run.value).__name__}")
        rekeyed.append(
            EchoRun(
                probe_id=run.probe_id,
                family=run.family,
                value=IPv6Prefix(run.value, plen),
                first=run.first,
                last=run.last,
                observed=run.observed,
                max_gap=run.max_gap,
            )
        )
    return list(merge_adjacent_equal(rekeyed))


def changes_from_runs(runs: Sequence[EchoRun]) -> List[ChangeEvent]:
    """All changes in one probe's single-family run series."""
    changes = []
    for previous, current in zip(runs, runs[1:]):
        changes.append(
            ChangeEvent(
                probe_id=current.probe_id,
                family=current.family,
                hour=current.first,
                old_value=previous.value,
                new_value=current.value,
                boundary_gap=current.first - previous.last - 1,
            )
        )
    return changes


def observations_from_runs(
    runs: Sequence[EchoRun],
    max_boundary_gap: int = 0,
    max_internal_gap: Optional[int] = None,
) -> List[AssignmentObservation]:
    """Annotate each run with whether it yields an exact duration."""
    observations = []
    for index, run in enumerate(runs):
        sandwiched = 0 < index < len(runs) - 1
        exact = sandwiched
        if sandwiched:
            gap_before = run.first - runs[index - 1].last - 1
            gap_after = runs[index + 1].first - run.last - 1
            if gap_before > max_boundary_gap or gap_after > max_boundary_gap:
                exact = False
            if max_internal_gap is not None and run.max_gap > max_internal_gap:
                exact = False
        observations.append(AssignmentObservation(run=run, sandwiched=sandwiched, exact=exact))
    return observations


def sandwiched_durations(
    runs: Sequence[EchoRun],
    max_boundary_gap: int = 0,
    max_internal_gap: Optional[int] = None,
) -> List[Duration]:
    """Exact assignment durations per the paper's methodology."""
    durations = []
    for observation in observations_from_runs(runs, max_boundary_gap, max_internal_gap):
        if not observation.exact:
            continue
        run = observation.run
        durations.append(
            Duration(
                probe_id=run.probe_id,
                family=run.family,
                value=run.value,
                start=run.first,
                end=run.last,
            )
        )
    return durations


def all_observed_durations(runs: Sequence[EchoRun]) -> List[int]:
    """Spans of *every* run, censored ones included (ablation baseline).

    Including first/last runs under-measures their true durations
    (left/right censoring); the ablation benchmark quantifies the bias
    this introduces relative to :func:`sandwiched_durations`.
    """
    return [run.span for run in runs]


__all__ = [
    "AssignmentObservation",
    "ChangeEvent",
    "Duration",
    "all_observed_durations",
    "changes_from_runs",
    "observations_from_runs",
    "sandwiched_durations",
    "v6_runs_to_prefix_runs",
]
