"""Survival analysis of assignment durations (methodological extension).

The paper restricts exact-duration analysis to *sandwiched* assignments
— both endpoints observed — and discards censored runs.  That is
unbiased for the shape of the distribution only when censoring is rare;
in short observation windows, both the censored histogram (biased low)
and the sandwiched-only sample (selection-biased toward short
durations) mis-estimate the true distribution, as the censoring
ablation demonstrates.

The standard remedy is the **Kaplan-Meier product-limit estimator**,
which consumes exact *and* right-censored observations together:

    S(t) = prod over event times t_i <= t of (1 - d_i / n_i)

where ``d_i`` counts completed durations at ``t_i`` and ``n_i`` the
population still at risk.  :func:`km_from_runs` builds the observation
set directly from echo runs: interior and left-complete runs contribute
exact durations; runs truncated by the window's end contribute
right-censored ones.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.atlas.echo import EchoRun


@dataclass(frozen=True)
class SurvivalObservation:
    """One duration observation: exact (event) or right-censored."""

    hours: float
    event: bool  # True = the assignment was seen to end

    def __post_init__(self) -> None:
        if self.hours <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class SurvivalCurve:
    """A Kaplan-Meier survival estimate S(t)."""

    times: Tuple[float, ...]  # event times, ascending
    survival: Tuple[float, ...]  # S(t) just after each event time

    def at(self, t: float) -> float:
        """S(t): probability an assignment lasts longer than ``t``."""
        value = 1.0
        for time, s in zip(self.times, self.survival):
            if time > t:
                break
            value = s
        return value

    def median(self) -> float:
        """Smallest event time where S drops to <= 0.5 (NaN if never)."""
        for time, s in zip(self.times, self.survival):
            if s <= 0.5:
                return time
        return float("nan")

    def mean(self) -> float:
        """Restricted mean survival time (area under S up to the last event)."""
        area = 0.0
        previous_time = 0.0
        previous_s = 1.0
        for time, s in zip(self.times, self.survival):
            area += previous_s * (time - previous_time)
            previous_time, previous_s = time, s
        return area


def kaplan_meier(observations: Sequence[SurvivalObservation]) -> SurvivalCurve:
    """The product-limit estimator over exact + right-censored durations."""
    if not observations:
        raise ValueError("no observations")
    events: Counter = Counter()
    censored: Counter = Counter()
    for observation in observations:
        if observation.event:
            events[observation.hours] += 1
        else:
            censored[observation.hours] += 1
    all_times = sorted(set(events) | set(censored))
    at_risk = len(observations)
    times: List[float] = []
    survival: List[float] = []
    current = 1.0
    for time in all_times:
        deaths = events.get(time, 0)
        if deaths and at_risk > 0:
            current *= 1.0 - deaths / at_risk
            times.append(time)
            survival.append(current)
        at_risk -= deaths + censored.get(time, 0)
    if not times:
        # All observations censored: S stays at 1 through the last time.
        return SurvivalCurve(times=(all_times[-1],), survival=(1.0,))
    return SurvivalCurve(times=tuple(times), survival=tuple(survival))


def observations_from_runs(
    runs: Sequence[EchoRun], window_end: int
) -> List[SurvivalObservation]:
    """Build survival observations from one probe's run series.

    * interior runs (a different value observed before and after) are
      exact events;
    * the last run, when it extends to the observation window's end, is
      right-censored at its observed span;
    * the first run is dropped entirely (left-censored: its start is
      unknown, and Kaplan-Meier cannot absorb left-censoring).
    """
    observations: List[SurvivalObservation] = []
    for index, run in enumerate(runs):
        if index == 0:
            continue
        if index < len(runs) - 1:
            observations.append(SurvivalObservation(hours=float(run.span), event=True))
        else:
            is_censored = run.last >= window_end - 1
            observations.append(
                SurvivalObservation(hours=float(run.span), event=not is_censored)
            )
    return observations


__all__ = [
    "SurvivalCurve",
    "SurvivalObservation",
    "kaplan_meier",
    "observations_from_runs",
]
