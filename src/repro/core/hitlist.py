"""IPv6 rescan planning: re-finding hosts after renumbering (Section 6).

Active IPv6 measurement keeps *hitlists* of responsive targets; when a
subscriber's delegated prefix is renumbered, the target vanishes and
the scanner must search for it.  The paper's spatial findings bound the
search space:

=====================  ==========================================
knowledge              candidate /64s to probe
=====================  ==========================================
BGP announcement only  2^(64 - announcement_plen)
+ pool boundary        2^(64 - pool_plen)
+ delegation length    2^(delegation_plen - pool_plen)   (zero-CPE)
=====================  ==========================================

:func:`plan_rescan` turns a probe's observation history into a concrete
candidate list under a probe budget, and :func:`evaluate_rescan_plan`
scores strategies against simulator ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.delegation import inferred_subscriber_plen
from repro.ip.prefix import IPv6Prefix, common_prefix_len


@dataclass(frozen=True)
class SearchSpace:
    """Candidate-set sizes under increasing knowledge."""

    bgp_only: int
    with_pool: int
    with_delegation: int

    @property
    def reduction_factor(self) -> float:
        return self.bgp_only / self.with_delegation if self.with_delegation else float("inf")


def search_space_sizes(
    announcement_plen: int,
    pool_plen: int,
    delegation_plen: int,
    cpe_zeroes: bool = True,
) -> SearchSpace:
    """How many /64s must be probed to re-find a device, per knowledge level."""
    if not 0 <= announcement_plen <= pool_plen <= delegation_plen <= 64:
        raise ValueError("need announcement <= pool <= delegation <= 64")
    bgp_only = 1 << (64 - announcement_plen)
    with_pool = 1 << (64 - pool_plen)
    if cpe_zeroes:
        # Only the zero /64 of each delegation is live.
        with_delegation = 1 << (delegation_plen - pool_plen)
    else:
        with_delegation = with_pool
    return SearchSpace(bgp_only=bgp_only, with_pool=with_pool, with_delegation=with_delegation)


@dataclass(frozen=True)
class RescanPlan:
    """A concrete ordered candidate list for one renumbered subscriber."""

    pool: Optional[IPv6Prefix]
    delegation_plen: int
    candidates: tuple

    def __len__(self) -> int:
        return len(self.candidates)

    def would_find(self, new_lan: IPv6Prefix) -> bool:
        """Whether probing this plan would hit ``new_lan``."""
        return new_lan in self.candidates


def infer_structure(
    history: Sequence[IPv6Prefix],
    recent: int = 8,
) -> tuple:
    """(pool prefix, delegated plen) inferred from one probe's /64 history.

    The pool is estimated as the common prefix of the most recent
    ``recent`` distinct observations — robust against the rare
    administrative pool switch, which would otherwise widen the common
    prefix to the whole allocation.  With uniform draws from the true
    pool the estimate converges from above within a handful of
    observations (expected overshoot well under 1 bit at ``recent=8``).
    """
    if not history:
        raise ValueError("history must not be empty")
    distinct = list(dict.fromkeys(history))
    window = distinct[-max(1, recent):]
    pool_plen = min(prefix.plen for prefix in window)
    for prefix in window[1:]:
        pool_plen = min(pool_plen, common_prefix_len(window[0], prefix))
    pool = window[-1].supernet(pool_plen)
    delegation_plen = max(pool_plen, inferred_subscriber_plen(distinct) or 64)
    return pool, delegation_plen


def plan_rescan(
    history: Sequence[IPv6Prefix],
    budget: int,
    seed: int = 0,
) -> RescanPlan:
    """Build a candidate list of at most ``budget`` /64s.

    Candidates are the zero-/64s of delegations sampled uniformly from
    the inferred pool (the device keeps the zero /64 across
    renumberings when its CPE zero-fills — the structure Section 5.3
    detects).  With a budget covering the whole delegation space the
    plan is exhaustive and deterministic.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    pool, delegation_plen = infer_structure(history)
    total = pool.num_subprefixes(delegation_plen)
    rng = random.Random(seed)
    if budget >= total:
        indices = range(total)
    else:
        indices = rng.sample(range(total), budget)
    candidates = tuple(
        pool.nth_subprefix(delegation_plen, index).supernet(delegation_plen).nth_subprefix(64, 0)
        for index in indices
    )
    return RescanPlan(pool=pool, delegation_plen=delegation_plen, candidates=candidates)


@dataclass
class RescanOutcome:
    """Aggregate result of evaluating rescans over many renumberings."""

    attempts: int = 0
    hits: int = 0
    probes_spent: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.attempts if self.attempts else 0.0


def evaluate_rescan_plan(
    histories: Dict[str, Sequence[IPv6Prefix]],
    budget: int,
    seed: int = 0,
) -> RescanOutcome:
    """For each probe, plan from all-but-last observations and test on the last.

    A probe participates when it has at least three observed /64s (two
    to infer structure from, one to re-find).
    """
    outcome = RescanOutcome()
    for index, (probe_id, history) in enumerate(sorted(histories.items())):
        distinct = list(dict.fromkeys(history))
        if len(distinct) < 3:
            continue
        training, target = distinct[:-1], distinct[-1]
        plan = plan_rescan(training, budget, seed=seed + index)
        outcome.attempts += 1
        outcome.probes_spent += len(plan)
        if plan.would_find(target):
            outcome.hits += 1
    return outcome


__all__ = [
    "RescanOutcome",
    "RescanPlan",
    "SearchSpace",
    "evaluate_rescan_plan",
    "infer_structure",
    "plan_rescan",
    "search_space_sizes",
]
