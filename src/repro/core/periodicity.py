"""Periodic-renumbering detection (Section 3.2).

The paper reports "well-defined modes" in per-AS duration distributions
— 24 h for DTAG, 1.5 days for Proximus, 1 week for Orange, 2 weeks for
BT — and counts networks with *consistent* periodic renumbering.

The detector works on the total-time-fraction weighting: a candidate
period is a detected mode when the fraction of total assigned time
spent in durations within ``tolerance`` hours of the period exceeds
``min_mass``.  The per-probe variant then requires a minimum number of
probes individually exhibiting the mode before declaring the *network*
a consistent periodic renumberer — one flapping probe must not tag a
whole AS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

DAY = 24.0

#: Candidate renumbering periods (hours) the paper observes in the wild:
#: 12 h, 24 h, 36 h, 48 h, 1 week, 2 weeks.
CANONICAL_PERIODS: Tuple[float, ...] = (12.0, 24.0, 36.0, 48.0, 7 * DAY, 14 * DAY)


@dataclass(frozen=True)
class PeriodicMode:
    """One detected periodic-renumbering mode."""

    period_hours: float
    mass: float  # fraction of total assigned time within the mode
    count: int  # number of durations within the mode

    def __str__(self) -> str:
        return f"{self.period_hours:g}h (mass={self.mass:.2f}, n={self.count})"


def detect_periods(
    durations: Sequence[float],
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_mass: float = 0.15,
) -> List[PeriodicMode]:
    """Detected periodic modes in a duration population, strongest first."""
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if not durations:
        return []
    total = float(sum(durations))
    modes = []
    for period in candidate_periods:
        in_mode = [d for d in durations if abs(d - period) <= tolerance]
        if not in_mode:
            continue
        mass = sum(in_mode) / total
        if mass >= min_mass:
            modes.append(PeriodicMode(period_hours=period, mass=mass, count=len(in_mode)))
    modes.sort(key=lambda mode: -mode.mass)
    return modes


def probe_exhibits_period(
    durations: Sequence[float],
    period: float,
    tolerance: float = 1.0,
    min_mass: float = 0.5,
    min_count: int = 3,
) -> bool:
    """Whether one probe's durations are dominated by the given period."""
    if not durations:
        return False
    in_mode = [d for d in durations if abs(d - period) <= tolerance]
    if len(in_mode) < min_count:
        return False
    return sum(in_mode) / sum(durations) >= min_mass


def consistent_periodic_networks(
    durations_by_network: Dict[str, Dict[str, List[float]]],
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_probes: int = 3,
) -> Dict[str, float]:
    """Networks with consistent periodic renumbering, as the paper counts them.

    ``durations_by_network`` maps network name -> probe id -> durations.
    A network qualifies when at least ``min_probes`` of its probes
    individually exhibit the same period; the detected period (hours) is
    returned per qualifying network.
    """
    detected: Dict[str, float] = {}
    for network, by_probe in durations_by_network.items():
        for period in candidate_periods:
            probes_with_mode = sum(
                1
                for durations in by_probe.values()
                if probe_exhibits_period(durations, period, tolerance)
            )
            if probes_with_mode >= min_probes:
                detected[network] = period
                break
    return detected


__all__ = [
    "CANONICAL_PERIODS",
    "PeriodicMode",
    "consistent_periodic_networks",
    "detect_periods",
    "probe_exhibits_period",
]
