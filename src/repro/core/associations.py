"""CDN association analysis (Section 4).

The CDN dataset is a stream of ``(day, IPv4 /24, IPv6 /64)`` association
tuples.  For memory efficiency at millions of tuples, all functions here
operate on plain integer triples ``(day, v4_key, v6_key)`` where the
keys are the integer network addresses of the /24 and /64 (the
:mod:`repro.cdn.rum` schema converts to and from rich types).

Analyses:

* :func:`association_durations` — the period over which a /64 kept
  reporting the same /24 (Figures 2 and 3);
* :func:`box_stats` — the five-number summaries of Figure 3;
* :func:`v4_degree_distribution` — unique and hit-weighted /64-per-/24
  densities (Figure 4);
* :func:`v6_degree_counts` — the inverse connectivity, supporting the
  "87 % of mobile /64s have degree 1" observation.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Triple = Tuple[int, int, int]  # (day, v4_/24_key, v6_/64_key)


def association_durations(records: Iterable[Triple]) -> List[int]:
    """Durations (days) of stable /64 -> /24 associations.

    For each /64, its reports are scanned in day order; a new
    association run starts whenever the reported /24 differs from the
    previous one.  A run's duration is ``last_day - first_day + 1`` —
    runs truncated by the observation window are included, exactly as in
    the paper (which notes the 5-month cap).
    """
    by_v6: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    for day, v4_key, v6_key in records:
        by_v6[v6_key].append((day, v4_key))
    durations: List[int] = []
    for reports in by_v6.values():
        reports.sort()
        run_start = reports[0][0]
        run_v4 = reports[0][1]
        last_day = reports[0][0]
        for day, v4_key in reports[1:]:
            if v4_key != run_v4:
                durations.append(last_day - run_start + 1)
                run_start, run_v4 = day, v4_key
            last_day = day
        durations.append(last_day - run_start + 1)
    return durations


def duration_cdf(durations: Sequence[int]) -> Tuple[List[int], List[float]]:
    """Plain CDF over association durations (Figure 2 curves)."""
    if not durations:
        return [], []
    counts = Counter(durations)
    total = len(durations)
    xs: List[int] = []
    ys: List[float] = []
    cumulative = 0
    for value, count in sorted(counts.items()):
        cumulative += count
        xs.append(value)
        ys.append(cumulative / total)
    return xs, ys


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used by the Figure 3 box plot."""

    p5: float
    q1: float
    median: float
    q3: float
    p95: float
    count: int

    def as_tuple(self) -> Tuple[float, float, float, float, float]:
        """(p5, q1, median, q3, p95) in order."""
        return (self.p5, self.q1, self.median, self.q3, self.p95)


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile on pre-sorted data."""
    if not ordered:
        raise ValueError("cannot take percentile of empty data")
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high or ordered[low] == ordered[high]:
        return float(ordered[low])
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def box_stats(values: Sequence[float]) -> BoxStats:
    """5th/25th/50th/75th/95th percentiles of a sample."""
    ordered = sorted(values)
    return BoxStats(
        p5=_percentile(ordered, 0.05),
        q1=_percentile(ordered, 0.25),
        median=_percentile(ordered, 0.50),
        q3=_percentile(ordered, 0.75),
        p95=_percentile(ordered, 0.95),
        count=len(ordered),
    )


def association_box_stats(records: Iterable[Triple], engine: Optional[str] = None) -> BoxStats:
    """Five-number summary of the association durations of ``records``.

    The Figure 3 composition (:func:`association_durations` piped into
    :func:`box_stats`), dispatched through the analysis-engine knob: the
    ``"np"`` engine runs the columnar
    :func:`repro.core.associations_np.association_durations_np` +
    ``box_stats_np`` pair, bit-identical to the pure-Python reference.
    """
    from repro.core.engine import FALLBACK_ERRORS, resolve_engine

    materialized = records if isinstance(records, Sequence) else list(records)
    if resolve_engine(engine) == "np":
        try:
            from repro.core.associations_np import (
                association_durations_np,
                box_stats_np,
                columns_from_triples,
            )

            return box_stats_np(
                association_durations_np(*columns_from_triples(materialized))
            )
        except ImportError:  # pragma: no cover - numpy probe passed already
            pass
        except FALLBACK_ERRORS:
            pass
    return box_stats(association_durations(materialized))


def v4_degree_counts(records: Iterable[Triple]) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Per-/24: number of distinct /64s and total hits.

    Returns ``(unique_by_v4, hits_by_v4)``.
    """
    seen: Dict[int, set] = defaultdict(set)
    hits: Counter = Counter()
    for _day, v4_key, v6_key in records:
        seen[v4_key].add(v6_key)
        hits[v4_key] += 1
    return {k: len(v) for k, v in seen.items()}, dict(hits)


def v6_degree_counts(records: Iterable[Triple]) -> Dict[int, int]:
    """Per-/64: number of distinct associated /24s (inverse connectivity)."""
    seen: Dict[int, set] = defaultdict(set)
    for _day, v4_key, v6_key in records:
        seen[v6_key].add(v4_key)
    return {k: len(v) for k, v in seen.items()}


def fraction_degree_one(degree_counts: Dict[int, int]) -> float:
    """Fraction of keys with connectivity exactly 1."""
    if not degree_counts:
        return 0.0
    return sum(1 for degree in degree_counts.values() if degree == 1) / len(degree_counts)


def log_density(
    values: Sequence[float],
    weights: Sequence[float] = (),
    bins_per_decade: int = 5,
) -> Tuple[List[float], List[float]]:
    """Histogram density over log10-spaced bins (the Figure 4 x-axis).

    Returns ``(bin_centers, densities)`` where densities sum to 1.
    Optional ``weights`` (same length) produce the hit-weighted variant.
    """
    if weights and len(weights) != len(values):
        raise ValueError("weights must match values in length")
    if not values:
        return [], []
    if any(value <= 0 for value in values):
        raise ValueError("log_density requires positive values")
    bucket_weights: Counter = Counter()
    for index, value in enumerate(values):
        bucket = math.floor(math.log10(value) * bins_per_decade)
        bucket_weights[bucket] += weights[index] if weights else 1.0
    total = sum(bucket_weights.values())
    centers: List[float] = []
    densities: List[float] = []
    for bucket in sorted(bucket_weights):
        centers.append(10 ** ((bucket + 0.5) / bins_per_decade))
        densities.append(bucket_weights[bucket] / total)
    return centers, densities


def weighted_peak(centers: Sequence[float], densities: Sequence[float]) -> float:
    """The bin center with maximum density (NaN for empty input)."""
    if not centers:
        return float("nan")
    best = max(range(len(centers)), key=lambda index: densities[index])
    return centers[best]


__all__ = [
    "BoxStats",
    "Triple",
    "association_box_stats",
    "association_durations",
    "box_stats",
    "duration_cdf",
    "fraction_degree_one",
    "log_density",
    "v4_degree_counts",
    "v6_degree_counts",
    "weighted_peak",
]
