"""Carrier-grade NAT inference from association data (Section 4.3).

The paper reads CGNAT deployment off the /64-per-/24 degree
distribution: "IPv4 prefixes with high IPv6 connectivity degrees are
indicative of IPv4 multiplexing through techniques such as CGNATs",
with mobile /24s multiplexing tens of thousands of /64s while fixed
/24s top out near the ~256 addresses they physically contain.

:func:`classify_slash24s` turns that observation into a detector: a /24
whose distinct-/64 degree exceeds what its 256 addresses could host
(times a churn allowance) must be multiplexing.  The classifier is
evaluated against simulator ground truth (which /24s really are CGNAT
egress blocks) in the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.core.associations import Triple, v4_degree_counts


class NatClass(enum.Enum):
    """Verdict for one IPv4 /24."""

    CGNAT = "cgnat"
    PLAIN = "plain"
    UNDECIDED = "undecided"  # too few observations to call


@dataclass(frozen=True)
class CgnVerdict:
    """Classification of one /24."""

    v4_key: int
    unique_v6: int
    hits: int
    verdict: NatClass


#: A /24 holds 256 addresses; with 1:1 NAT each hosts one /64 at a time.
#: Subscriber churn lets distinct /64s exceed 256 over a long window, so
#: the detector allows this multiple before calling CGNAT.
DEFAULT_CHURN_ALLOWANCE = 8.0

#: Below this many observations a /24 is left undecided.
DEFAULT_MIN_HITS = 32


def classify_slash24s(
    records: Iterable[Triple],
    churn_allowance: float = DEFAULT_CHURN_ALLOWANCE,
    min_hits: int = DEFAULT_MIN_HITS,
) -> Dict[int, CgnVerdict]:
    """Classify every observed /24 as CGNAT / plain / undecided."""
    if churn_allowance <= 0:
        raise ValueError("churn_allowance must be positive")
    if min_hits < 1:
        raise ValueError("min_hits must be >= 1")
    unique, hits = v4_degree_counts(records)
    threshold = 256 * churn_allowance
    verdicts: Dict[int, CgnVerdict] = {}
    for v4_key, degree in unique.items():
        observations = hits[v4_key]
        if observations < min_hits:
            verdict = NatClass.UNDECIDED
        elif degree > threshold:
            verdict = NatClass.CGNAT
        else:
            verdict = NatClass.PLAIN
        verdicts[v4_key] = CgnVerdict(
            v4_key=v4_key, unique_v6=degree, hits=observations, verdict=verdict
        )
    return verdicts


@dataclass(frozen=True)
class MultiplexingEstimate:
    """Aggregate multiplexing statistics of the CGNAT-classified /24s."""

    cgnat_slash24s: int
    plain_slash24s: int
    undecided_slash24s: int
    median_multiplexing_factor: float  # distinct /64s per CGNAT /24

    @property
    def cgnat_fraction(self) -> float:
        decided = self.cgnat_slash24s + self.plain_slash24s
        return self.cgnat_slash24s / decided if decided else 0.0


def estimate_multiplexing(verdicts: Dict[int, CgnVerdict]) -> MultiplexingEstimate:
    """Summarize a classification run."""
    cgnat = sorted(
        v.unique_v6 for v in verdicts.values() if v.verdict is NatClass.CGNAT
    )
    plain = sum(1 for v in verdicts.values() if v.verdict is NatClass.PLAIN)
    undecided = sum(1 for v in verdicts.values() if v.verdict is NatClass.UNDECIDED)
    median = float(cgnat[len(cgnat) // 2]) if cgnat else 0.0
    return MultiplexingEstimate(
        cgnat_slash24s=len(cgnat),
        plain_slash24s=plain,
        undecided_slash24s=undecided,
        median_multiplexing_factor=median,
    )


def score_against_truth(
    verdicts: Dict[int, CgnVerdict], cgnat_keys: Iterable[int]
) -> Tuple[float, float]:
    """(precision, recall) of the CGNAT verdicts against ground truth."""
    truth = set(cgnat_keys)
    flagged = {key for key, v in verdicts.items() if v.verdict is NatClass.CGNAT}
    if not flagged:
        return (0.0, 0.0 if truth else 1.0)
    precision = len(flagged & truth) / len(flagged)
    recall = len(flagged & truth) / len(truth) if truth else 1.0
    return precision, recall


__all__ = [
    "CgnVerdict",
    "DEFAULT_CHURN_ALLOWANCE",
    "DEFAULT_MIN_HITS",
    "MultiplexingEstimate",
    "NatClass",
    "classify_slash24s",
    "estimate_multiplexing",
    "score_against_truth",
]
