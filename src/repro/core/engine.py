"""The analysis-engine knob shared by every columnar/pure-Python split.

Both the report layer (:mod:`repro.core.report`) and the collection
layer (:mod:`repro.atlas.platform`) offer two bit-identical
implementations of their hot paths: a pure-Python reference and a
columnar NumPy fast path.  This module owns the single knob selecting
between them, so layers below the report can resolve the engine without
importing it (the report layer imports the sanitization pipeline, which
imports the platform — a cycle if the knob lived in ``report``).
"""

from __future__ import annotations

import os
from typing import Optional

try:
    import numpy  # noqa: F401  (availability probe only)

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _HAS_NUMPY = False

#: Environment override for the default analysis engine
#: ("np", "py" or "fused").
ENGINE_ENV = "REPRO_ANALYSIS_ENGINE"

#: Engines accepted by :func:`resolve_engine`.  "fused" is the
#: single-pass engine of :mod:`repro.core.fused`; like "np" it degrades
#: to "py" when NumPy is unavailable.
ENGINES = ("np", "py", "fused")

#: Errors on which a NumPy fast path silently falls back to the
#: reference (unpackable value types, out-of-range integers); genuine
#: input errors re-raise identically from the reference path.
FALLBACK_ERRORS = (TypeError, ValueError, OverflowError)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Effective analysis engine: explicit value, else the environment,
    else ``"np"`` when NumPy is available.  The columnar engines
    (``"np"``, ``"fused"``) degrade to ``"py"`` without NumPy."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "").strip().lower() or None
    if engine is None:
        return "np" if _HAS_NUMPY else "py"
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine in ("np", "fused") and not _HAS_NUMPY:
        return "py"
    return engine


__all__ = ["ENGINE_ENV", "ENGINES", "FALLBACK_ERRORS", "resolve_engine"]
