"""Year-over-year evolution of assignment durations (Section 3.2).

The paper breaks durations down by calendar year and finds (a) the
overall orderings hold in every year — IPv6 longer than IPv4,
dual-stack IPv4 longer than non-dual-stack — and (b) durations in all
categories have drifted upward over the years, especially in ISPs that
used to renumber aggressively (DTAG, Orange).

A duration is attributed to the year containing its midpoint, the
convention that keeps multi-month assignments from being counted twice.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.core.changes import Duration
from repro.netsim.clock import HOURS_PER_YEAR, SIM_EPOCH, hours_to_datetime


def year_of_duration(duration: Duration) -> int:
    """Calendar year containing the duration's midpoint."""
    midpoint = (duration.start + duration.end) / 2.0
    return hours_to_datetime(midpoint).year


def durations_by_year(durations: Sequence[Duration]) -> Dict[int, List[float]]:
    """Group exact durations by calendar year of their midpoint."""
    by_year: Dict[int, List[float]] = defaultdict(list)
    for duration in durations:
        by_year[year_of_duration(duration)].append(float(duration.hours))
    return dict(sorted(by_year.items()))


def yearly_means(durations: Sequence[Duration]) -> Dict[int, float]:
    """Mean duration (hours) per year; the paper's upward-drift signal."""
    return {
        year: sum(values) / len(values)
        for year, values in durations_by_year(durations).items()
    }


def trend_slope(yearly: Dict[int, float]) -> float:
    """Least-squares slope of mean duration vs year (hours per year).

    Positive slope = durations lengthening over time, the paper's
    finding for DTAG and Orange.  Returns 0.0 with fewer than 2 years.
    """
    if len(yearly) < 2:
        return 0.0
    years = sorted(yearly)
    n = len(years)
    mean_x = sum(years) / n
    mean_y = sum(yearly[year] for year in years) / n
    numerator = sum((year - mean_x) * (yearly[year] - mean_y) for year in years)
    denominator = sum((year - mean_x) ** 2 for year in years)
    return numerator / denominator if denominator else 0.0


def simulation_years(end_hour: float) -> List[int]:
    """The calendar years covered by a simulation window."""
    first = SIM_EPOCH.year
    last = hours_to_datetime(max(0.0, end_hour - 1)).year
    return list(range(first, last + 1))


def hours_in_year(year: int) -> float:
    """Nominal hours used for per-year normalization (ignores leap days)."""
    del year
    return float(HOURS_PER_YEAR)


__all__ = [
    "durations_by_year",
    "hours_in_year",
    "simulation_years",
    "trend_slope",
    "year_of_duration",
    "yearly_means",
]
