"""Blocklist simulation: collateral damage vs evasion (Section 6).

Host-reputation systems block traffic from addresses (or prefixes)
observed misbehaving.  Two failure modes trade off against each other:

* **evasion** — the entry outlives nothing: the actor is renumbered and
  operates unblocked from a fresh address;
* **collateral damage** — the entry outlives the assignment: an
  innocent subscriber inherits the blocked address (IPv4), or shares
  the blocked prefix (IPv6 blocked coarser than one subscriber).

:func:`evaluate_blocklist` plays a blocklist policy against simulator
ground truth (subscriber timelines), producing exactly these two
quantities — the analysis behind the paper's guidance that blocklist
TTLs must follow per-ISP assignment durations and that IPv6 blocking
granularity must match the delegated prefix length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.ip.addr import IPAddress, IPv4Address
from repro.ip.prefix import IPPrefix, IPv4Prefix, IPv6Prefix
from repro.netsim.sim import AssignmentInterval, SubscriberTimeline


@dataclass(frozen=True)
class BlocklistPolicy:
    """How the defender blocks.

    ``v4_plen``/``v6_plen`` are the blocking granularities (32 = exact
    address); ``ttl_hours`` is how long entries stay listed;
    ``detection_delay_hours`` models the reporting pipeline between a
    malicious flow and the entry appearing.
    """

    ttl_hours: float
    v4_plen: int = 32
    v6_plen: int = 64
    detection_delay_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.ttl_hours <= 0:
            raise ValueError("ttl_hours must be positive")
        if not 0 <= self.v4_plen <= 32:
            raise ValueError("v4_plen out of range")
        if not 0 <= self.v6_plen <= 64:
            raise ValueError("v6_plen out of range")
        if self.detection_delay_hours < 0:
            raise ValueError("detection_delay_hours must be non-negative")


class Blocklist:
    """A TTL-expiring set of blocked prefixes."""

    def __init__(self) -> None:
        self._entries: Dict[IPPrefix, float] = {}
        self.entries_added = 0

    def add(self, prefix: IPPrefix, now: float, ttl: float) -> None:
        """List ``prefix`` until ``now + ttl`` (extends shorter entries)."""
        expiry = now + ttl
        if self._entries.get(prefix, -1.0) < expiry:
            self._entries[prefix] = expiry
            self.entries_added += 1

    def prune(self, now: float) -> None:
        """Drop entries that have expired by ``now``."""
        self._entries = {p: exp for p, exp in self._entries.items() if exp > now}

    def active_entries(self, now: float) -> int:
        """Number of entries still live at ``now``."""
        return sum(1 for expiry in self._entries.values() if expiry > now)

    def blocks(self, value: Union[IPAddress, IPPrefix], now: float) -> bool:
        """Whether ``value`` is covered by an unexpired entry."""
        for prefix, expiry in self._entries.items():
            if expiry <= now:
                continue
            if isinstance(value, IPPrefix):
                if prefix.contains_prefix(value) or value.contains_prefix(prefix):
                    return True
            elif prefix.contains_address(value):
                return True
        return False


@dataclass
class BlocklistReport:
    """Outcome of one blocklist evaluation."""

    attack_hours: int = 0
    blocked_attack_hours: int = 0
    innocent_hours: int = 0
    collateral_hours: int = 0
    entries_added: int = 0

    @property
    def evasion_rate(self) -> float:
        """Fraction of attack hours the actor operated unblocked."""
        if not self.attack_hours:
            return 0.0
        return 1.0 - self.blocked_attack_hours / self.attack_hours

    @property
    def collateral_rate(self) -> float:
        """Fraction of innocent subscriber-hours wrongly blocked."""
        if not self.innocent_hours:
            return 0.0
        return self.collateral_hours / self.innocent_hours


def _value_at(intervals: Sequence[AssignmentInterval], hour: float, cursor: List[int]):
    index = cursor[0]
    while index < len(intervals) and intervals[index].end <= hour:
        index += 1
    cursor[0] = index
    if index < len(intervals) and intervals[index].start <= hour:
        return intervals[index].value
    return None


def _blocking_key(value, policy: BlocklistPolicy) -> IPPrefix:
    if isinstance(value, IPv4Address):
        return IPv4Prefix(int(value), policy.v4_plen)
    if isinstance(value, IPv6Prefix):
        return IPv6Prefix(value.network, min(policy.v6_plen, value.plen))
    raise TypeError(f"cannot block {type(value).__name__}")


def evaluate_blocklist(
    timelines: Dict[int, SubscriberTimeline],
    attacker_id: int,
    policy: BlocklistPolicy,
    end_hour: int,
    family: int = 4,
    step_hours: int = 1,
) -> BlocklistReport:
    """Play ``policy`` against ground truth.

    The attacker (subscriber ``attacker_id``) attacks every hour; each
    unblocked attack is detected and its source blocked after the
    configured delay.  Every other subscriber is innocent; an innocent
    subscriber-hour counts as collateral when their current assignment
    is covered by a live entry.
    """
    if attacker_id not in timelines:
        raise KeyError(f"unknown attacker subscriber {attacker_id}")
    if family not in (4, 6):
        raise ValueError("family must be 4 or 6")

    def intervals_of(timeline: SubscriberTimeline) -> Sequence[AssignmentInterval]:
        return timeline.v4 if family == 4 else timeline.v6_lan

    blocklist = Blocklist()
    report = BlocklistReport()
    attacker_intervals = intervals_of(timelines[attacker_id])
    innocents = {
        sub_id: intervals_of(timeline)
        for sub_id, timeline in timelines.items()
        if sub_id != attacker_id and intervals_of(timeline)
    }
    attacker_cursor = [0]
    innocent_cursors = {sub_id: [0] for sub_id in innocents}
    pending: List[tuple] = []  # (activation_hour, prefix)

    for hour in range(0, int(end_hour), step_hours):
        # Activate entries whose detection delay elapsed.
        still_pending = []
        for activation, prefix in pending:
            if activation <= hour:
                blocklist.add(prefix, hour, policy.ttl_hours)
            else:
                still_pending.append((activation, prefix))
        pending = still_pending

        attacker_value = _value_at(attacker_intervals, hour, attacker_cursor)
        if attacker_value is not None:
            report.attack_hours += 1
            if blocklist.blocks(attacker_value, hour):
                report.blocked_attack_hours += 1
            else:
                key = _blocking_key(attacker_value, policy)
                if policy.detection_delay_hours:
                    pending.append((hour + policy.detection_delay_hours, key))
                else:
                    blocklist.add(key, hour, policy.ttl_hours)
                    report.blocked_attack_hours += 0  # this hour got through

        for sub_id, intervals in innocents.items():
            value = _value_at(intervals, hour, innocent_cursors[sub_id])
            if value is None:
                continue
            report.innocent_hours += 1
            if blocklist.blocks(value, hour):
                report.collateral_hours += 1

    report.entries_added = blocklist.entries_added
    return report


__all__ = ["Blocklist", "BlocklistPolicy", "BlocklistReport", "evaluate_blocklist"]
