"""Spatial analysis of assignments (Sections 5.1 and 5.2).

* :func:`cpl_histogram` — common prefix lengths between *successive*
  IPv6 /64 assignments, with the per-probe coverage counts shown as the
  blue bars of Figure 5;
* :func:`crossing_rates` — how often changes land in a different /24
  (IPv4) or a different routed BGP prefix (both families): Table 2;
* :func:`unique_prefix_counts` — how many distinct prefixes of each
  length a probe observed over its lifetime: Figure 8.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.table import RoutingTable
from repro.core.changes import ChangeEvent
from repro.ip.addr import IPv4Address
from repro.ip.prefix import IPPrefix, IPv4Prefix, common_prefix_len


@dataclass(frozen=True)
class CplHistogram:
    """Figure 5 data for one AS."""

    changes_by_cpl: Dict[int, int]  # orange bars
    probes_by_cpl: Dict[int, int]  # blue bars: probes with >= 1 change at that CPL

    @property
    def total_changes(self) -> int:
        return sum(self.changes_by_cpl.values())


def cpl_of_change(change: ChangeEvent) -> int:
    """CPL between the old and new value of one change."""
    return common_prefix_len(change.old_value, change.new_value)


def cpl_histogram(changes_by_probe: Dict[str, Sequence[ChangeEvent]]) -> CplHistogram:
    """Aggregate per-probe v6 prefix changes into the Figure 5 histogram."""
    change_counter: Counter = Counter()
    probe_counter: Counter = Counter()
    for _probe_id, changes in changes_by_probe.items():
        cpls = {cpl_of_change(change) for change in changes}
        for change in changes:
            change_counter[cpl_of_change(change)] += 1
        for cpl in cpls:
            probe_counter[cpl] += 1
    return CplHistogram(
        changes_by_cpl=dict(sorted(change_counter.items())),
        probes_by_cpl=dict(sorted(probe_counter.items())),
    )


@dataclass(frozen=True)
class CrossingRates:
    """Table 2 row for one AS."""

    v4_changes: int
    v4_diff_slash24: int
    v4_diff_bgp: int
    v6_changes: int
    v6_diff_bgp: int

    @property
    def diff_slash24_pct(self) -> float:
        return 100.0 * self.v4_diff_slash24 / self.v4_changes if self.v4_changes else 0.0

    @property
    def v4_diff_bgp_pct(self) -> float:
        return 100.0 * self.v4_diff_bgp / self.v4_changes if self.v4_changes else 0.0

    @property
    def v6_diff_bgp_pct(self) -> float:
        return 100.0 * self.v6_diff_bgp / self.v6_changes if self.v6_changes else 0.0


def crossing_rates(
    v4_changes: Iterable[ChangeEvent],
    v6_changes: Iterable[ChangeEvent],
    table: RoutingTable,
) -> CrossingRates:
    """Fractions of changes crossing /24 and BGP-prefix boundaries."""
    v4_total = v4_diff24 = v4_diffbgp = 0
    for change in v4_changes:
        old, new = change.old_value, change.new_value
        if not isinstance(old, IPv4Address) or not isinstance(new, IPv4Address):
            raise TypeError("v4_changes must carry IPv4 addresses")
        v4_total += 1
        if IPv4Prefix(int(old), 24) != IPv4Prefix(int(new), 24):
            v4_diff24 += 1
        if not table.same_bgp_prefix(old, new):
            v4_diffbgp += 1
    v6_total = v6_diffbgp = 0
    for change in v6_changes:
        v6_total += 1
        if not table.same_bgp_prefix(change.old_value, change.new_value):
            v6_diffbgp += 1
    return CrossingRates(
        v4_changes=v4_total,
        v4_diff_slash24=v4_diff24,
        v4_diff_bgp=v4_diffbgp,
        v6_changes=v6_total,
        v6_diff_bgp=v6_diffbgp,
    )


#: Prefix lengths Figure 8 counts unique prefixes at.
FIG8_PLENS: Tuple[int, ...] = (64, 56, 48, 40, 32, 24, 16)


def unique_prefix_counts(
    observed: Sequence[IPPrefix],
    plens: Sequence[int] = FIG8_PLENS,
    table: Optional[RoutingTable] = None,
) -> Dict[str, int]:
    """Unique prefixes of each length covering a probe's observed /64s.

    Returns a mapping like ``{"/64": 12, "/56": 12, ..., "BGP": 1}``;
    the BGP entry (requiring ``table``) counts distinct routed prefixes.
    """
    counts: Dict[str, int] = {}
    for plen in plens:
        seen = set()
        for prefix in observed:
            if plen > prefix.plen:
                raise ValueError(f"cannot truncate /{prefix.plen} to longer /{plen}")
            seen.add(prefix.supernet(plen))
        counts[f"/{plen}"] = len(seen)
    if table is not None:
        routed = set()
        for prefix in observed:
            match = table.routed_prefix_of_prefix(prefix)
            if match is not None:
                routed.add(match)
        counts["BGP"] = len(routed)
    return counts


def unique_prefix_cdf(
    per_probe_counts: Sequence[Dict[str, int]], key: str
) -> Tuple[List[int], List[float]]:
    """CDF over probes of the unique-prefix count at one length (Fig. 8)."""
    values = sorted(counts[key] for counts in per_probe_counts if key in counts)
    if not values:
        return [], []
    xs: List[int] = []
    ys: List[float] = []
    total = len(values)
    for index, value in enumerate(values, start=1):
        if xs and xs[-1] == value:
            ys[-1] = index / total
        else:
            xs.append(value)
            ys.append(index / total)
    return xs, ys


__all__ = [
    "CplHistogram",
    "CrossingRates",
    "FIG8_PLENS",
    "cpl_histogram",
    "cpl_of_change",
    "crossing_rates",
    "unique_prefix_cdf",
    "unique_prefix_counts",
]
