"""Delegated-prefix inference (Section 5.3) — "finding the zero bits".

Two techniques:

* **RIPE Atlas (multi-assignment)** — for one subscriber, intersect the
  trailing-zero patterns of *all* /64s the probe ever reported: the
  number of bits immediately before the /64 boundary that are zero in
  every observation.  ``64 - zero_bits`` is the inferred delegated
  prefix length (Figures 6 and 9).
* **CDN (single-address, nibble-aligned)** — classify each /64 by its
  longest streak of zeros across consecutive nibble boundaries,
  yielding inferred delegation lengths of /60, /56, /52, /48
  (Figure 7).

Both can be fooled: scrambling CPEs hide the real delegation (DTAG's
/64 spike), and with very few observations trailing zeros can occur by
chance — the caveats the paper spells out.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ip.prefix import IPv6Prefix


def inferred_subscriber_plen(observed: Sequence[IPv6Prefix]) -> Optional[int]:
    """Inferred prefix length identifying one subscriber (Atlas method).

    ``observed`` is the set of /64s a probe reported.  Returns ``None``
    for empty input.  The paper applies this to probes with at least one
    assignment change (two or more distinct /64s); the caller enforces
    that requirement.
    """
    zero_bits: Optional[int] = None
    for prefix in observed:
        if prefix.plen != 64:
            raise ValueError(f"expected /64 prefixes, got /{prefix.plen}")
        bits = prefix.trailing_zero_bits()
        zero_bits = bits if zero_bits is None else min(zero_bits, bits)
    if zero_bits is None:
        return None
    return 64 - zero_bits


def inferred_plen_distribution(
    per_probe_prefixes: Dict[str, Sequence[IPv6Prefix]],
    min_distinct: int = 2,
) -> Dict[int, float]:
    """Percentage of probes per inferred prefix length (Figures 6 and 9).

    Only probes with at least ``min_distinct`` distinct /64s (i.e. at
    least one assignment change) participate.
    """
    counter: Counter = Counter()
    eligible = 0
    for prefixes in per_probe_prefixes.values():
        distinct = set(prefixes)
        if len(distinct) < min_distinct:
            continue
        eligible += 1
        plen = inferred_subscriber_plen(sorted(distinct))
        counter[plen] += 1
    if not eligible:
        return {}
    return {
        plen: 100.0 * count / eligible for plen, count in sorted(counter.items())
    }


#: The nibble-aligned boundaries Figure 7 reports.
FIG7_BOUNDARIES: Tuple[int, ...] = (48, 52, 56, 60)


def nibble_aligned_inferred_plen(prefix: IPv6Prefix) -> int:
    """CDN method: inferred delegation length from nibble-aligned zeros.

    A /64 whose last 4 network bits are zero infers /60, the last 8 bits
    /56, and so on; fewer than 4 trailing zero bits infers /64 (nothing
    detectable).
    """
    if prefix.plen != 64:
        raise ValueError(f"expected a /64, got /{prefix.plen}")
    nibbles = prefix.trailing_zero_bits() // 4
    return 64 - 4 * nibbles


@dataclass(frozen=True)
class TrailingZeroProfile:
    """Figure 7 data for one registry/population of /64s."""

    total: int
    by_boundary: Dict[int, int]  # inferred plen -> count (48/52/56/60 only)

    @property
    def inferable(self) -> int:
        return sum(self.by_boundary.values())

    @property
    def inferable_pct(self) -> float:
        return 100.0 * self.inferable / self.total if self.total else 0.0

    def fraction_at(self, boundary: int) -> float:
        """Fraction of all /64s whose inferred delegation is ``boundary``."""
        return self.by_boundary.get(boundary, 0) / self.total if self.total else 0.0


def trailing_zero_profile(
    prefixes: Iterable[IPv6Prefix],
    boundaries: Sequence[int] = FIG7_BOUNDARIES,
) -> TrailingZeroProfile:
    """Classify a /64 population by longest nibble-aligned zero streak.

    Prefixes whose inferred length is shorter than the shortest boundary
    (an improbably long zero run) are folded into that shortest
    boundary, matching the paper's per-boundary grouping.
    """
    shortest = min(boundaries)
    counter: Counter = Counter()
    total = 0
    for prefix in prefixes:
        total += 1
        plen = nibble_aligned_inferred_plen(prefix)
        if plen >= 64:
            continue  # nothing inferable
        plen = max(plen, shortest)
        if plen in boundaries:
            counter[plen] += 1
    return TrailingZeroProfile(total=total, by_boundary=dict(sorted(counter.items())))


def trailing_zero_profile_np(
    v6_upper_keys, boundaries: Sequence[int] = FIG7_BOUNDARIES
) -> TrailingZeroProfile:
    """Vectorized :func:`trailing_zero_profile` over packed /64 keys.

    ``v6_upper_keys`` holds each /64's upper 64 network bits as uint64
    (the columnar packing the numpy kernels and the triple store use).
    A /64's trailing-zero bits equal the trailing zeros of its upper-64
    word (64 when zero), so the whole classification is one
    trailing-zero pass plus a ``bincount`` — bit-identical to the
    per-prefix reference loop.  Safe on empty populations.
    """
    import numpy as np

    from repro.core.analysis_np import _trailing_zeros_u64

    keys = np.asarray(v6_upper_keys, dtype=np.uint64)
    total = len(keys)
    if total == 0:
        return TrailingZeroProfile(total=0, by_boundary={})
    shortest = min(boundaries)
    nibbles = _trailing_zeros_u64(keys) // 4
    plens = 64 - 4 * nibbles
    plens = plens[plens < 64]  # nothing inferable at /64
    plens = np.maximum(plens, shortest)
    counts = np.bincount(plens, minlength=65)
    by_boundary = {
        int(boundary): int(counts[boundary])
        for boundary in sorted(boundaries)
        if boundary < len(counts) and counts[boundary]
    }
    return TrailingZeroProfile(total=total, by_boundary=by_boundary)


def per_probe_prefixes_from_runs(
    probes: Iterable, plen: int = 64
) -> Dict[str, List[IPv6Prefix]]:
    """Collect each sanitized probe's observed /64s (helper for Figs 6/9)."""
    from repro.core.changes import v6_runs_to_prefix_runs

    result: Dict[str, List[IPv6Prefix]] = {}
    for probe in probes:
        if not probe.v6_runs:
            continue
        runs = v6_runs_to_prefix_runs(probe.v6_runs, plen)
        result[probe.probe_id] = [run.value for run in runs]
    return result


def inferred_plen_distribution_for_probes(
    probes: Iterable,
    min_distinct: int = 2,
    plen: int = 64,
    engine: Optional[str] = None,
    columns=None,
) -> Dict[int, float]:
    """Figures 6/9 end to end: per-probe /``plen`` prefixes from the
    sanitized probes' v6 runs, then the inferred-delegation histogram.

    Dispatched through the analysis-engine knob: the ``"np"`` engine
    runs :func:`repro.core.analysis_np.inferred_plen_counts_np` over a
    shared :class:`~repro.core.analysis_np.ProbeColumns` pack
    (``columns``, when the caller already holds one for these probes),
    bit-identical to the pure-Python composition of
    :func:`per_probe_prefixes_from_runs` + :func:`inferred_plen_distribution`.
    """
    from repro.core.engine import FALLBACK_ERRORS, resolve_engine

    materialized = probes if isinstance(probes, Sequence) else list(probes)
    if resolve_engine(engine) == "np":
        try:
            from repro.core.analysis_np import ProbeColumns, inferred_plen_counts_np

            if plen != 64:
                # The reference rejects non-/64 prefixes; let it raise.
                raise ValueError(f"expected /64 prefixes, got /{plen}")
            if columns is None or columns.plen != plen:
                columns = ProbeColumns(materialized, plen=plen)
            eligible, counts = inferred_plen_counts_np(
                columns.v6_prefix(), plen=plen, min_distinct=min_distinct
            )
            if not eligible:
                return {}
            return {
                length: 100.0 * count / eligible
                for length, count in sorted(counts.items())
            }
        except ImportError:  # pragma: no cover - numpy probe passed already
            pass
        except FALLBACK_ERRORS:
            pass
    return inferred_plen_distribution(
        per_probe_prefixes_from_runs(materialized, plen), min_distinct
    )


__all__ = [
    "FIG7_BOUNDARIES",
    "TrailingZeroProfile",
    "inferred_plen_distribution",
    "inferred_plen_distribution_for_probes",
    "inferred_subscriber_plen",
    "nibble_aligned_inferred_plen",
    "per_probe_prefixes_from_runs",
    "trailing_zero_profile",
    "trailing_zero_profile_np",
]
