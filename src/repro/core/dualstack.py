"""Dual-stack analysis (Section 3.2).

Two analyses live here:

* **DS/NDS splitting** — a probe's IPv4 duration counts as *dual-stack*
  when the probe was consistently reporting IPv6 measurements over the
  same period; otherwise it is non-dual-stack.  The paper finds DS IPv4
  durations to be systematically longer.
* **Co-occurrence** — whether IPv4 and IPv6 changes happen in the same
  hour (90.6 % of DTAG changes do; Comcast's mostly do not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.atlas.echo import EchoRun
from repro.core.changes import ChangeEvent, Duration


def v6_coverage_fraction(
    v6_runs: Sequence[EchoRun], start: int, end: int
) -> float:
    """Fraction of hours in [start, end] covered by IPv6 observations."""
    if end < start:
        raise ValueError("end before start")
    span = end - start + 1
    covered = 0
    for run in v6_runs:
        overlap_start = max(run.first, start)
        overlap_end = min(run.last, end)
        if overlap_end >= overlap_start:
            covered += overlap_end - overlap_start + 1
    return min(1.0, covered / span)


def split_durations_by_stack(
    v4_durations: Sequence[Duration],
    v6_runs: Sequence[EchoRun],
    min_coverage: float = 0.9,
) -> Tuple[List[Duration], List[Duration]]:
    """Partition one probe's IPv4 durations into (dual_stack, non_dual_stack).

    A duration is dual-stack when IPv6 measurements cover at least
    ``min_coverage`` of its span — the paper's "consistently reporting
    IPv6 during the same period".
    """
    dual: List[Duration] = []
    non_dual: List[Duration] = []
    for duration in v4_durations:
        if v6_runs and v6_coverage_fraction(v6_runs, duration.start, duration.end) >= min_coverage:
            dual.append(duration)
        else:
            non_dual.append(duration)
    return dual, non_dual


@dataclass(frozen=True)
class CoOccurrence:
    """Summary of v4/v6 change simultaneity for a probe population."""

    v4_changes: int
    v6_changes: int
    co_occurring_v4: int  # v4 changes with a v6 change within the window
    co_occurring_v6: int

    @property
    def v4_fraction(self) -> float:
        return self.co_occurring_v4 / self.v4_changes if self.v4_changes else 0.0

    @property
    def v6_fraction(self) -> float:
        return self.co_occurring_v6 / self.v6_changes if self.v6_changes else 0.0


def co_occurrence(
    v4_changes: Sequence[ChangeEvent],
    v6_changes: Sequence[ChangeEvent],
    window_hours: int = 1,
) -> CoOccurrence:
    """How often v4 and v6 changes land within ``window_hours`` of each other.

    The paper counts changes "in the same hour"; with hourly sampling
    that is a window of one hour.
    """
    if window_hours < 0:
        raise ValueError("window_hours must be non-negative")
    v4_hours = sorted(change.hour for change in v4_changes)
    v6_hours = sorted(change.hour for change in v6_changes)

    def count_matched(hours: List[int], others: List[int]) -> int:
        import bisect

        matched = 0
        for hour in hours:
            index = bisect.bisect_left(others, hour - window_hours)
            if index < len(others) and others[index] <= hour + window_hours:
                matched += 1
        return matched

    return CoOccurrence(
        v4_changes=len(v4_hours),
        v6_changes=len(v6_hours),
        co_occurring_v4=count_matched(v4_hours, v6_hours),
        co_occurring_v6=count_matched(v6_hours, v4_hours),
    )


def merge_co_occurrence(parts: Sequence[CoOccurrence]) -> CoOccurrence:
    """Aggregate per-probe co-occurrence counts into a population summary."""
    return CoOccurrence(
        v4_changes=sum(p.v4_changes for p in parts),
        v6_changes=sum(p.v6_changes for p in parts),
        co_occurring_v4=sum(p.co_occurring_v4 for p in parts),
        co_occurring_v6=sum(p.co_occurring_v6 for p in parts),
    )


__all__ = [
    "CoOccurrence",
    "co_occurrence",
    "merge_co_occurrence",
    "split_durations_by_stack",
    "v6_coverage_fraction",
]
