"""Address-pool boundary inference (Section 5.2).

The paper observes that, although IPv6 BGP announcements are huge,
subsequent delegations to one subscriber stay inside a much smaller
internal pool (often a /40).  Two inference angles are implemented:

* :func:`infer_pool_plen` — the shortest prefix length at which the
  typical probe stops accumulating unique prefixes (the Figure 8
  collapse point);
* :func:`pool_membership` — group an AS's observed /64s by candidate
  pool prefix, exposing pool sizes and occupancy for the
  reputation/anonymization aggregation use case of Section 6.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.ip.prefix import IPv6Prefix

#: Candidate pool prefix lengths, shortest last (checked longest-first).
CANDIDATE_POOL_PLENS = (48, 44, 42, 40, 36, 32, 28, 24)


def infer_pool_plen(
    per_probe_prefixes: Sequence[Sequence[IPv6Prefix]],
    max_unique: int = 3,
    min_changes: int = 3,
    candidates: Sequence[int] = CANDIDATE_POOL_PLENS,
) -> Optional[int]:
    """The longest prefix length that contains a typical probe's history.

    For each candidate length (longest first) the median number of
    unique covering prefixes across eligible probes is computed; the
    first candidate with a median of at most ``max_unique`` is the
    inferred pool grain.  Probes with fewer than ``min_changes``
    distinct /64s are skipped (nothing to localize).  ``None`` when no
    candidate qualifies or no probe is eligible.
    """
    eligible = [
        list(dict.fromkeys(prefixes))
        for prefixes in per_probe_prefixes
        if len(set(prefixes)) >= min_changes
    ]
    if not eligible:
        return None
    for plen in candidates:
        uniques = []
        for prefixes in eligible:
            covering = {prefix.supernet(min(plen, prefix.plen)) for prefix in prefixes}
            uniques.append(len(covering))
        uniques.sort()
        if uniques[len(uniques) // 2] <= max_unique:
            return plen
    return None


def pool_membership(
    observed: Sequence[IPv6Prefix], pool_plen: int
) -> Dict[IPv6Prefix, List[IPv6Prefix]]:
    """Group observed prefixes by their length-``pool_plen`` pool."""
    pools: Dict[IPv6Prefix, List[IPv6Prefix]] = defaultdict(list)
    for prefix in observed:
        pools[prefix.supernet(min(pool_plen, prefix.plen))].append(prefix)
    return dict(pools)


def pool_summary(
    observed: Sequence[IPv6Prefix], pool_plen: int, delegation_plen: int
) -> List[dict]:
    """Per-pool occupancy summary for aggregation/anonymization sizing.

    Each entry reports the pool prefix, how many distinct delegations
    were observed inside it, and the fraction of the pool's capacity
    that represents (at ``delegation_plen`` granularity).
    """
    if delegation_plen < pool_plen:
        raise ValueError("delegation_plen must not be shorter than pool_plen")
    summaries = []
    for pool, members in sorted(pool_membership(observed, pool_plen).items()):
        delegations = {member.supernet(min(delegation_plen, member.plen)) for member in members}
        capacity = 1 << (delegation_plen - pool_plen)
        summaries.append(
            {
                "pool": pool,
                "observed_delegations": len(delegations),
                "capacity": capacity,
                "occupancy": len(delegations) / capacity,
            }
        )
    return summaries


__all__ = [
    "CANDIDATE_POOL_PLENS",
    "infer_pool_plen",
    "pool_membership",
    "pool_summary",
]
