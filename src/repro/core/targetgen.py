"""IPv6 target generation baselines (Section 2.3 related work).

The paper positions its findings as input to *target generation* for
active IPv6 scanning and cites two families of techniques.  Both are
implemented here as baselines, plus the structure-informed generator
the paper's findings enable, so they can be compared on simulator
ground truth:

* :class:`NibblePatternGenerator` — an Entropy/IP-flavoured model: learn
  the per-nibble value distribution of a seed set (assuming nibble
  independence) and sample fresh addresses from it;
* :class:`DenseRegionGenerator` — a 6Gen-flavoured approach: find the
  densest prefixes ("regions") in the seed set and enumerate their
  neighbourhoods, spending the probe budget proportionally to density;
* :class:`StructureInformedGenerator` — the paper's contribution in
  generator form: use the inferred pool boundary and delegated prefix
  length to enumerate exactly the zero-/64s a zero-filling deployment
  can occupy.

All generators emit /64 prefixes (the paper's unit of account) and are
scored by :func:`evaluate_generator` against a ground-truth set of
active /64s.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from repro.ip.prefix import IPv6Prefix


def _check_seeds(seeds: Sequence[IPv6Prefix]) -> None:
    if not seeds:
        raise ValueError("seed set must not be empty")
    for seed in seeds:
        if seed.plen != 64:
            raise ValueError(f"seeds must be /64s, got /{seed.plen}")


class NibblePatternGenerator:
    """Entropy/IP-style per-nibble frequency model over the /64 bits.

    Learns, for each of the 16 network nibbles, the distribution of
    values observed in the seed set, then samples candidate /64s by
    drawing each nibble independently.  Captures vertical structure
    (fixed prefixes, zero tails) but not cross-nibble correlation —
    exactly the trade-off the literature reports.
    """

    def __init__(self, seeds: Sequence[IPv6Prefix], seed: int = 0) -> None:
        _check_seeds(seeds)
        self._rng = random.Random(seed)
        self._columns: List[List[tuple]] = []
        counters = [Counter() for _ in range(16)]
        for prefix in seeds:
            network = int(prefix.network) >> 64
            for position in range(16):
                nibble = (network >> (60 - 4 * position)) & 0xF
                counters[position][nibble] += 1
        for counter in counters:
            total = sum(counter.values())
            self._columns.append(
                [(value, count / total) for value, count in sorted(counter.items())]
            )

    def _draw_nibble(self, column: List[tuple]) -> int:
        roll = self._rng.random()
        cumulative = 0.0
        for value, probability in column:
            cumulative += probability
            if roll < cumulative:
                return value
        return column[-1][0]

    def generate(self, budget: int) -> List[IPv6Prefix]:
        """Up to ``budget`` distinct candidate /64s."""
        if budget < 1:
            raise ValueError("budget must be >= 1")
        candidates: Set[int] = set()
        attempts = 0
        while len(candidates) < budget and attempts < budget * 20:
            attempts += 1
            network = 0
            for column in self._columns:
                network = (network << 4) | self._draw_nibble(column)
            candidates.add(network << 64)
        return [IPv6Prefix(value, 64) for value in sorted(candidates)]


class DenseRegionGenerator:
    """6Gen-style: enumerate around the densest seed regions.

    Seeds are grouped at ``region_plen``; regions are ranked by seed
    count and the budget is spent enumerating each region's /64s in
    order (low addresses first — where zero-filled deployments live),
    proportionally to region density.
    """

    def __init__(self, seeds: Sequence[IPv6Prefix], region_plen: int = 48) -> None:
        _check_seeds(seeds)
        if not 0 <= region_plen <= 64:
            raise ValueError("region_plen out of range")
        self.region_plen = region_plen
        regions: Dict[IPv6Prefix, int] = defaultdict(int)
        for prefix in seeds:
            regions[prefix.supernet(region_plen)] += 1
        self._regions = sorted(regions.items(), key=lambda item: (-item[1], item[0]))

    @property
    def num_regions(self) -> int:
        return len(self._regions)

    def generate(self, budget: int) -> List[IPv6Prefix]:
        """Up to ``budget`` candidates, densest regions first."""
        if budget < 1:
            raise ValueError("budget must be >= 1")
        total_seeds = sum(count for _region, count in self._regions)
        candidates: List[IPv6Prefix] = []
        seen: Set[IPv6Prefix] = set()
        for region, count in self._regions:
            share = max(1, round(budget * count / total_seeds))
            capacity = region.num_subprefixes(64)
            for index in range(min(share, capacity)):
                candidate = region.nth_subprefix(64, index)
                if candidate not in seen:
                    seen.add(candidate)
                    candidates.append(candidate)
                if len(candidates) >= budget:
                    return candidates
        return candidates


class StructureInformedGenerator:
    """The paper's findings as a generator: pools × delegations × zero /64s.

    Given the inferred pool prefixes and the delegated prefix length,
    the only /64s a zero-filling deployment can occupy are the zero
    /64s of each delegation; enumerate them (sampled under budget).
    """

    def __init__(
        self,
        pools: Sequence[IPv6Prefix],
        delegation_plen: int,
        seed: int = 0,
    ) -> None:
        if not pools:
            raise ValueError("at least one pool required")
        for pool in pools:
            if pool.plen > delegation_plen:
                raise ValueError("delegation must not be shorter than the pool")
        if delegation_plen > 64:
            raise ValueError("delegation_plen must be <= 64")
        self._pools = list(pools)
        self.delegation_plen = delegation_plen
        self._rng = random.Random(seed)

    def generate(self, budget: int) -> List[IPv6Prefix]:
        """Up to ``budget`` zero-/64 candidates across the pools."""
        if budget < 1:
            raise ValueError("budget must be >= 1")
        per_pool = [pool.num_subprefixes(self.delegation_plen) for pool in self._pools]
        total = sum(per_pool)
        candidates: List[IPv6Prefix] = []
        for pool, capacity in zip(self._pools, per_pool):
            share = min(capacity, max(1, round(budget * capacity / total)))
            if share >= capacity:
                indices: Iterable[int] = range(capacity)
            else:
                indices = sorted(self._rng.sample(range(capacity), share))
            for index in indices:
                candidates.append(pool.nth_subprefix(self.delegation_plen, index).nth_subprefix(64, 0))
                if len(candidates) >= budget:
                    return candidates
        return candidates


@dataclass(frozen=True)
class GeneratorScore:
    """Hit statistics of one generator run."""

    candidates: int
    hits: int
    active_total: int

    @property
    def hit_rate(self) -> float:
        """Fraction of candidates that were live (probing efficiency)."""
        return self.hits / self.candidates if self.candidates else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of the active set discovered."""
        return self.hits / self.active_total if self.active_total else 0.0


def evaluate_generator(
    candidates: Sequence[IPv6Prefix],
    active: Iterable[IPv6Prefix],
) -> GeneratorScore:
    """Score candidates against the ground-truth set of active /64s."""
    active_set = set(active)
    hits = sum(1 for candidate in candidates if candidate in active_set)
    return GeneratorScore(candidates=len(candidates), hits=hits, active_total=len(active_set))


__all__ = [
    "DenseRegionGenerator",
    "GeneratorScore",
    "NibblePatternGenerator",
    "StructureInformedGenerator",
    "evaluate_generator",
]
