"""IPv6 anonymization auditing and adaptive aggregation (Section 6).

The paper shows that anonymization-by-truncation at a fixed boundary
(e.g. /48, as common analytics products do) is fallacious: the
anonymity it provides depends on the ISP's delegation practice — a /48
aggregate is 256 households in a /56-delegating ISP but a *single*
subscriber in one that delegates whole /48s.

This module provides:

* :func:`anonymity_sets` — audit a truncation boundary: how many
  distinct subscribers fall into each truncated aggregate;
* :func:`audit_truncation` — the k-anonymity verdict per network;
* :func:`adaptive_truncation_plen` — the paper's remedy: pick the
  truncation per network from the inferred delegated prefix length so
  every aggregate spans at least ``k`` subscriber delegations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.ip.prefix import IPv6Prefix


def anonymity_sets(
    subscriber_prefixes: Dict[str, Sequence[IPv6Prefix]],
    truncation_plen: int,
) -> Dict[IPv6Prefix, set]:
    """Map each truncated aggregate to the subscribers it contains.

    ``subscriber_prefixes`` maps a subscriber id to the /64s observed
    for that subscriber; each /64 is truncated to ``truncation_plen``.
    """
    if not 0 <= truncation_plen <= 64:
        raise ValueError("truncation_plen out of range")
    aggregates: Dict[IPv6Prefix, set] = defaultdict(set)
    for subscriber, prefixes in subscriber_prefixes.items():
        for prefix in prefixes:
            aggregates[prefix.supernet(min(truncation_plen, prefix.plen))].add(subscriber)
    return dict(aggregates)


@dataclass(frozen=True)
class TruncationAudit:
    """k-anonymity audit of one truncation boundary."""

    truncation_plen: int
    aggregates: int
    singletons: int  # aggregates identifying exactly one subscriber
    min_set_size: int
    median_set_size: float

    @property
    def singleton_fraction(self) -> float:
        return self.singletons / self.aggregates if self.aggregates else 0.0

    def is_k_anonymous(self, k: int) -> bool:
        """Whether every aggregate contains at least ``k`` subscribers."""
        return self.aggregates > 0 and self.min_set_size >= k


def audit_truncation(
    subscriber_prefixes: Dict[str, Sequence[IPv6Prefix]],
    truncation_plen: int,
) -> TruncationAudit:
    """Audit how well truncation at ``truncation_plen`` anonymizes."""
    sets = anonymity_sets(subscriber_prefixes, truncation_plen)
    sizes = sorted(len(subscribers) for subscribers in sets.values())
    if not sizes:
        return TruncationAudit(truncation_plen, 0, 0, 0, 0.0)
    median = (
        sizes[len(sizes) // 2]
        if len(sizes) % 2
        else (sizes[len(sizes) // 2 - 1] + sizes[len(sizes) // 2]) / 2
    )
    return TruncationAudit(
        truncation_plen=truncation_plen,
        aggregates=len(sizes),
        singletons=sum(1 for size in sizes if size == 1),
        min_set_size=sizes[0],
        median_set_size=float(median),
    )


def adaptive_truncation_plen(delegation_plen: int, k: int) -> int:
    """Per-network truncation that guarantees >= k delegations per aggregate.

    With subscribers holding /``delegation_plen`` delegations, a
    truncation boundary ``b`` aggregates ``2^(delegation_plen - b)``
    potential subscribers; the longest boundary achieving at least
    ``k`` is returned (never negative).
    """
    if not 0 <= delegation_plen <= 64:
        raise ValueError("delegation_plen out of range")
    if k < 1:
        raise ValueError("k must be >= 1")
    bits_needed = (k - 1).bit_length()  # ceil(log2(k))
    return max(0, delegation_plen - bits_needed)


def audit_networks(
    per_network: Dict[str, Tuple[int, Dict[str, Sequence[IPv6Prefix]]]],
    fixed_truncation: int = 48,
    k: int = 16,
) -> List[dict]:
    """Compare fixed vs adaptive truncation across networks.

    ``per_network`` maps network name to ``(inferred delegation plen,
    subscriber prefix map)``.  Returns one audit record per network.
    """
    records = []
    for network, (delegation_plen, subscribers) in sorted(per_network.items()):
        fixed = audit_truncation(subscribers, fixed_truncation)
        adaptive_plen = adaptive_truncation_plen(delegation_plen, k)
        adaptive = audit_truncation(subscribers, adaptive_plen)
        records.append(
            {
                "network": network,
                "delegation_plen": delegation_plen,
                "fixed_plen": fixed_truncation,
                # Empirical singleton share depends on how densely the
                # sample covers the space; the *structural* anonymity is
                # how many subscribers an aggregate can possibly contain.
                "fixed_singleton_fraction": fixed.singleton_fraction,
                "fixed_potential_anonymity": 1
                << max(0, delegation_plen - min(fixed_truncation, delegation_plen)),
                "adaptive_plen": adaptive_plen,
                "adaptive_singleton_fraction": adaptive.singleton_fraction,
                "potential_anonymity": 1 << max(0, delegation_plen - adaptive_plen),
            }
        )
    return records


__all__ = [
    "TruncationAudit",
    "adaptive_truncation_plen",
    "anonymity_sets",
    "audit_networks",
    "audit_truncation",
]
