"""Figure/table assembly: from sanitized probes to the paper's artifacts.

This module is the bridge between the low-level analyses and the
benchmark harness: each ``figureN_*`` / ``tableN`` function computes the
data behind one of the paper's artifacts, and ``render_table`` produces
the ASCII form the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atlas.sanitize import SanitizedProbe
from repro.bgp.table import RoutingTable
from repro.core.changes import (
    ChangeEvent,
    Duration,
    changes_from_runs,
    sandwiched_durations,
    v6_runs_to_prefix_runs,
)
from repro.core.dualstack import split_durations_by_stack
from repro.core.spatial import CplHistogram, CrossingRates, cpl_histogram, crossing_rates
from repro.core.timefraction import (
    CANONICAL_GRID,
    cumulative_total_time_fraction,
    evaluate_cdf,
    total_duration_years,
)


# -- per-probe plumbing -------------------------------------------------------


def probe_v4_changes(probe: SanitizedProbe) -> List[ChangeEvent]:
    """IPv4 assignment changes of one sanitized probe."""
    return changes_from_runs(probe.v4_runs)


def probe_v6_changes(probe: SanitizedProbe, plen: int = 64) -> List[ChangeEvent]:
    """IPv6 /plen prefix changes of one sanitized probe."""
    return changes_from_runs(v6_runs_to_prefix_runs(probe.v6_runs, plen))


def probe_v4_durations(probe: SanitizedProbe) -> List[Duration]:
    """Exact IPv4 assignment durations of one sanitized probe."""
    return sandwiched_durations(probe.v4_runs)


def probe_v6_durations(probe: SanitizedProbe, plen: int = 64) -> List[Duration]:
    """Exact IPv6 /plen assignment durations of one sanitized probe."""
    return sandwiched_durations(v6_runs_to_prefix_runs(probe.v6_runs, plen))


@dataclass
class AsDurations:
    """Per-AS duration populations split the way Figure 1 needs."""

    v4_non_dual_stack: List[float] = field(default_factory=list)
    v4_dual_stack: List[float] = field(default_factory=list)
    v6: List[float] = field(default_factory=list)


def as_durations(probes: Sequence[SanitizedProbe]) -> AsDurations:
    """Collect and stack-split exact durations for one AS's probes."""
    result = AsDurations()
    for probe in probes:
        v4_durations = probe_v4_durations(probe)
        dual, non_dual = split_durations_by_stack(v4_durations, probe.v6_runs)
        result.v4_dual_stack.extend(float(d.hours) for d in dual)
        result.v4_non_dual_stack.extend(float(d.hours) for d in non_dual)
        result.v6.extend(float(d.hours) for d in probe_v6_durations(probe))
    return result


# -- Table 1 ------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    name: str
    asn: int
    country: str
    all_probes: int
    all_v4_changes: int
    ds_probes: int
    ds_v4_changes: int
    ds_v6_changes: int

    @property
    def ds_v4_share_pct(self) -> float:
        if not self.all_v4_changes:
            return 0.0
        return 100.0 * self.ds_v4_changes / self.all_v4_changes


def table1_row(
    name: str,
    asn: int,
    country: str,
    probes: Sequence[SanitizedProbe],
) -> Table1Row:
    """Aggregate one AS's probes into its Table 1 row."""
    all_v4 = ds_v4 = ds_v6 = ds_probes = 0
    for probe in probes:
        v4_changes = len(probe_v4_changes(probe))
        all_v4 += v4_changes
        if probe.dual_stack:
            ds_probes += 1
            ds_v4 += v4_changes
            ds_v6 += len(probe_v6_changes(probe))
    return Table1Row(
        name=name,
        asn=asn,
        country=country,
        all_probes=len(probes),
        all_v4_changes=all_v4,
        ds_probes=ds_probes,
        ds_v4_changes=ds_v4,
        ds_v6_changes=ds_v6,
    )


# -- Figure 1 ------------------------------------------------------------------


@dataclass(frozen=True)
class Figure1Series:
    """One cumulative total-time-fraction curve."""

    label: str
    total_years: float
    grid_values: Tuple[float, ...]  # CDF sampled at CANONICAL_GRID

    def value_at(self, index: int) -> float:
        """The CDF value at CANONICAL_GRID[index]."""
        return self.grid_values[index]


def figure1_series(label: str, durations: Sequence[float]) -> Figure1Series:
    """One cumulative-TTF curve sampled on the canonical grid."""
    xs, ys = cumulative_total_time_fraction(durations)
    return Figure1Series(
        label=label,
        total_years=total_duration_years(durations),
        grid_values=tuple(evaluate_cdf(xs, ys, CANONICAL_GRID)),
    )


def figure1_for_as(name: str, probes: Sequence[SanitizedProbe]) -> Dict[str, Figure1Series]:
    """The three Figure 1 curves (v4 NDS, v4 DS, v6) for one AS."""
    durations = as_durations(probes)
    return {
        "v4_nds": figure1_series(f"{name} IPv4 non-dual-stack", durations.v4_non_dual_stack),
        "v4_ds": figure1_series(f"{name} IPv4 dual-stack", durations.v4_dual_stack),
        "v6": figure1_series(f"{name} IPv6", durations.v6),
    }


# -- Table 2 and Figure 5 -----------------------------------------------------


def table2_row(probes: Sequence[SanitizedProbe], table: RoutingTable) -> CrossingRates:
    """Aggregate one AS's probes into its Table 2 crossing rates."""
    v4_changes: List[ChangeEvent] = []
    v6_changes: List[ChangeEvent] = []
    for probe in probes:
        v4_changes.extend(probe_v4_changes(probe))
        v6_changes.extend(probe_v6_changes(probe))
    return crossing_rates(v4_changes, v6_changes, table)


def figure5_for_as(probes: Sequence[SanitizedProbe]) -> CplHistogram:
    """The Figure 5 CPL histogram for one AS's probes."""
    by_probe = {probe.probe_id: probe_v6_changes(probe) for probe in probes}
    return cpl_histogram(by_probe)


# -- rendering ----------------------------------------------------------------


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (the benchmarks' output format)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in cells)) if cells else len(header)
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(
    counts: Dict[int, int],
    title: Optional[str] = None,
    width: int = 50,
    label: str = "",
) -> str:
    """ASCII bar rendering of an integer-keyed histogram.

    Used by the benchmark artifacts to make Figure 5/6-style
    distributions legible in plain text.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    lines = []
    if title:
        lines.append(title)
    if not counts:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(counts.values())
    key_width = max(len(str(key)) for key in counts)
    for key in sorted(counts):
        value = counts[key]
        bar = "#" * max(1 if value else 0, round(width * value / peak))
        lines.append(f"{label}{key:>{key_width}}  {bar} {value}")
    return "\n".join(lines)


def render_cdf(
    xs: Sequence[float],
    ys: Sequence[float],
    title: Optional[str] = None,
    width: int = 50,
) -> str:
    """ASCII rendering of a step CDF (x -> cumulative fraction)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = []
    if title:
        lines.append(title)
    if not xs:
        lines.append("(empty)")
        return "\n".join(lines)
    for x, y in zip(xs, ys):
        bar = "=" * round(width * y)
        lines.append(f"{x:>10g}  {bar}| {y:.2f}")
    return "\n".join(lines)


__all__ = [
    "AsDurations",
    "Figure1Series",
    "Table1Row",
    "as_durations",
    "figure1_for_as",
    "figure1_series",
    "figure5_for_as",
    "probe_v4_changes",
    "probe_v4_durations",
    "probe_v6_changes",
    "probe_v6_durations",
    "render_cdf",
    "render_histogram",
    "render_table",
    "table1_row",
    "table2_row",
]
