"""Figure/table assembly: from sanitized probes to the paper's artifacts.

This module is the bridge between the low-level analyses and the
benchmark harness: each ``figureN_*`` / ``tableN`` function computes the
data behind one of the paper's artifacts, and ``render_table`` produces
the ASCII form the benchmarks print.

Every analysis entry point takes an ``engine="np"|"py"|"fused"`` knob
choosing between the pure-Python reference kernels, the per-kernel
columnar NumPy engine (:mod:`repro.core.analysis_np`), and the fused
single-pass engine (:mod:`repro.core.fused`).  The default
(``engine=None``) reads ``$REPRO_ANALYSIS_ENGINE`` and otherwise picks
``"np"`` whenever NumPy is importable; all engines produce bit-identical
artifacts (the parity tests enforce this), and the columnar paths fall
back to the reference automatically on inputs they cannot pack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atlas.sanitize import SanitizedProbe
from repro.bgp.table import RoutingTable
from repro.core.changes import (
    ChangeEvent,
    Duration,
    changes_from_runs,
    sandwiched_durations,
    v6_runs_to_prefix_runs,
)
from repro.core.dualstack import split_durations_by_stack
from repro.core.engine import ENGINE_ENV, resolve_engine
from repro.core.engine import FALLBACK_ERRORS as _FALLBACK_ERRORS
from repro.core.periodicity import CANONICAL_PERIODS, consistent_periodic_networks
from repro.core.spatial import CplHistogram, CrossingRates, cpl_histogram, crossing_rates
from repro.core.timefraction import (
    CANONICAL_GRID,
    cumulative_total_time_fraction,
    evaluate_cdf,
    total_duration_years,
)
from repro.obs import get_logger, metric_inc

try:
    from repro.core import analysis_np as _anp
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _anp = None

_log = get_logger("core.report")


def _note_fallback(artifact: str, exc: BaseException) -> None:
    """Record one np-engine fallback to the reference path."""
    metric_inc("analysis.fallbacks", artifact=artifact)
    _log.debug(
        "np engine fell back to python",
        extra={"artifact": artifact, "error": type(exc).__name__},
    )


def _note_fused_fallback(artifact: str, exc: BaseException) -> None:
    """Record one fused-engine fallback to the reference path."""
    metric_inc("analysis.fused.fallbacks", artifact=artifact)
    _log.debug(
        "fused engine fell back to python",
        extra={"artifact": artifact, "error": type(exc).__name__},
    )


def _fused_stats(probes, plen: int = 64, columns=None):
    """Fused stats for a probe population (pack reused when supplied)."""
    from repro.core import fused as _fused

    if columns is None or columns.plen != plen:
        columns = _anp.ProbeColumns(probes, plen=plen)
    return _fused.fused_probe_stats(columns)


# -- per-probe plumbing -------------------------------------------------------


def probe_v4_changes(probe: SanitizedProbe) -> List[ChangeEvent]:
    """IPv4 assignment changes of one sanitized probe."""
    return changes_from_runs(probe.v4_runs)


def probe_v6_changes(probe: SanitizedProbe, plen: int = 64) -> List[ChangeEvent]:
    """IPv6 /plen prefix changes of one sanitized probe."""
    return changes_from_runs(v6_runs_to_prefix_runs(probe.v6_runs, plen))


def probe_v4_durations(probe: SanitizedProbe) -> List[Duration]:
    """Exact IPv4 assignment durations of one sanitized probe."""
    return sandwiched_durations(probe.v4_runs)


def probe_v6_durations(probe: SanitizedProbe, plen: int = 64) -> List[Duration]:
    """Exact IPv6 /plen assignment durations of one sanitized probe."""
    return sandwiched_durations(v6_runs_to_prefix_runs(probe.v6_runs, plen))


@dataclass
class AsDurations:
    """Per-AS duration populations split the way Figure 1 needs."""

    v4_non_dual_stack: List[float] = field(default_factory=list)
    v4_dual_stack: List[float] = field(default_factory=list)
    v6: List[float] = field(default_factory=list)


def as_durations(
    probes: Sequence[SanitizedProbe],
    engine: Optional[str] = None,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> AsDurations:
    """Collect and stack-split exact durations for one AS's probes.

    ``columns`` optionally supplies a pre-packed (memoized)
    :class:`~repro.core.analysis_np.ProbeColumns` for these probes so
    the NumPy path reuses one pack across artifacts.
    """
    resolved = resolve_engine(engine)
    if resolved == "fused":
        try:
            from repro.core import fused as _fused

            return _fused.as_durations_from_stats(_fused_stats(probes, columns=columns))
        except _FALLBACK_ERRORS as exc:
            _note_fused_fallback("as_durations", exc)
    elif resolved == "np":
        try:
            return _as_durations_np(probes, columns=columns)
        except _FALLBACK_ERRORS as exc:
            _note_fallback("as_durations", exc)
    result = AsDurations()
    for probe in probes:
        v4_durations = probe_v4_durations(probe)
        dual, non_dual = split_durations_by_stack(v4_durations, probe.v6_runs)
        result.v4_dual_stack.extend(float(d.hours) for d in dual)
        result.v4_non_dual_stack.extend(float(d.hours) for d in non_dual)
        result.v6.extend(float(d.hours) for d in probe_v6_durations(probe))
    return result


def _as_durations_np(
    probes: Sequence[SanitizedProbe],
    plen: int = 64,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> AsDurations:
    """Columnar :func:`as_durations`: one kernel pass per population.

    Probe-major run order of the columnar tables reproduces the
    reference's per-probe ``extend`` ordering exactly.
    """
    if columns is None or columns.plen != plen:
        columns = _anp.ProbeColumns(probes, plen=plen)
    v4_durations = columns.v4_durations()
    dual = columns.dual_mask()
    v4_hours = v4_durations.hours().astype(float)
    v6_hours = columns.v6_prefix_durations().hours()
    return AsDurations(
        v4_non_dual_stack=v4_hours[~dual].tolist(),
        v4_dual_stack=v4_hours[dual].tolist(),
        v6=v6_hours.astype(float).tolist(),
    )


# -- Table 1 ------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    name: str
    asn: int
    country: str
    all_probes: int
    all_v4_changes: int
    ds_probes: int
    ds_v4_changes: int
    ds_v6_changes: int

    @property
    def ds_v4_share_pct(self) -> float:
        if not self.all_v4_changes:
            return 0.0
        return 100.0 * self.ds_v4_changes / self.all_v4_changes


def table1_row(
    name: str,
    asn: int,
    country: str,
    probes: Sequence[SanitizedProbe],
    engine: Optional[str] = None,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> Table1Row:
    """Aggregate one AS's probes into its Table 1 row."""
    resolved = resolve_engine(engine)
    if resolved == "fused":
        try:
            from repro.core import fused as _fused

            return _fused.table1_from_stats(
                _fused_stats(probes, columns=columns), name, asn, country
            )
        except _FALLBACK_ERRORS as exc:
            _note_fused_fallback("table1", exc)
    elif resolved == "np":
        try:
            return _table1_row_np(name, asn, country, probes, columns=columns)
        except _FALLBACK_ERRORS as exc:
            _note_fallback("table1", exc)
    all_v4 = ds_v4 = ds_v6 = ds_probes = 0
    for probe in probes:
        v4_changes = len(probe_v4_changes(probe))
        all_v4 += v4_changes
        if probe.dual_stack:
            ds_probes += 1
            ds_v4 += v4_changes
            ds_v6 += len(probe_v6_changes(probe))
    return Table1Row(
        name=name,
        asn=asn,
        country=country,
        all_probes=len(probes),
        all_v4_changes=all_v4,
        ds_probes=ds_probes,
        ds_v4_changes=ds_v4,
        ds_v6_changes=ds_v6,
    )


def _table1_row_np(
    name: str,
    asn: int,
    country: str,
    probes: Sequence[SanitizedProbe],
    plen: int = 64,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> Table1Row:
    """Columnar :func:`table1_row`: change counts from run counts.

    Change counts are per-probe independent, so summing the shared
    pack's v6 counts over the dual-stack flags equals the reference's
    dual-stack-only aggregation.
    """
    import numpy as np

    if columns is None or columns.plen != plen:
        columns = _anp.ProbeColumns(probes, plen=plen)
    v4_counts = columns.v4_change_counts()
    dual = columns.dual_flags()
    ds_v6 = int(columns.v6_prefix_change_counts()[dual].sum())
    return Table1Row(
        name=name,
        asn=asn,
        country=country,
        all_probes=len(probes),
        all_v4_changes=int(v4_counts.sum()),
        ds_probes=int(np.count_nonzero(dual)),
        ds_v4_changes=int(v4_counts[dual].sum()),
        ds_v6_changes=ds_v6,
    )


# -- Figure 1 ------------------------------------------------------------------


@dataclass(frozen=True)
class Figure1Series:
    """One cumulative total-time-fraction curve."""

    label: str
    total_years: float
    grid_values: Tuple[float, ...]  # CDF sampled at CANONICAL_GRID

    def value_at(self, index: int) -> float:
        """The CDF value at CANONICAL_GRID[index]."""
        return self.grid_values[index]


def figure1_series(
    label: str, durations: Sequence[float], engine: Optional[str] = None
) -> Figure1Series:
    """One cumulative-TTF curve sampled on the canonical grid."""
    if resolve_engine(engine) in ("np", "fused"):
        try:
            return _figure1_series_np(label, durations)
        except _FALLBACK_ERRORS as exc:
            _note_fallback("figure1", exc)
    xs, ys = cumulative_total_time_fraction(durations)
    return Figure1Series(
        label=label,
        total_years=total_duration_years(durations),
        grid_values=tuple(evaluate_cdf(xs, ys, CANONICAL_GRID)),
    )


def _figure1_series_np(label: str, durations: Sequence[float]) -> Figure1Series:
    """Columnar :func:`figure1_series` (Eq. 1 + CDF + grid sampling)."""
    xs, ys = _anp.cumulative_ttf_columns(durations)
    return Figure1Series(
        label=label,
        total_years=_anp.total_duration_years_np(durations),
        grid_values=tuple(
            float(v) for v in _anp.evaluate_cdf_columns(xs, ys, CANONICAL_GRID)
        ),
    )


def figure1_for_as(
    name: str,
    probes: Sequence[SanitizedProbe],
    engine: Optional[str] = None,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> Dict[str, Figure1Series]:
    """The three Figure 1 curves (v4 NDS, v4 DS, v6) for one AS."""
    durations = as_durations(probes, engine=engine, columns=columns)
    return {
        "v4_nds": figure1_series(
            f"{name} IPv4 non-dual-stack", durations.v4_non_dual_stack, engine=engine
        ),
        "v4_ds": figure1_series(
            f"{name} IPv4 dual-stack", durations.v4_dual_stack, engine=engine
        ),
        "v6": figure1_series(f"{name} IPv6", durations.v6, engine=engine),
    }


# -- Table 2 and Figure 5 -----------------------------------------------------


def table2_row(
    probes: Sequence[SanitizedProbe],
    table: RoutingTable,
    engine: Optional[str] = None,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> CrossingRates:
    """Aggregate one AS's probes into its Table 2 crossing rates."""
    resolved = resolve_engine(engine)
    if resolved == "fused":
        try:
            from repro.core import fused as _fused

            return _fused.table2_from_stats(_fused_stats(probes, columns=columns), table)
        except _FALLBACK_ERRORS as exc:
            _note_fused_fallback("table2", exc)
    elif resolved == "np":
        try:
            return _table2_row_np(probes, table, columns=columns)
        except _FALLBACK_ERRORS as exc:
            _note_fallback("table2", exc)
    v4_changes: List[ChangeEvent] = []
    v6_changes: List[ChangeEvent] = []
    for probe in probes:
        v4_changes.extend(probe_v4_changes(probe))
        v6_changes.extend(probe_v6_changes(probe))
    return crossing_rates(v4_changes, v6_changes, table)


def _table2_row_np(
    probes: Sequence[SanitizedProbe],
    table: RoutingTable,
    plen: int = 64,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> CrossingRates:
    """Columnar :func:`table2_row`: bit-level /24 tests, interval-index
    BGP longest-prefix matching."""
    if columns is None or columns.plen != plen:
        columns = _anp.ProbeColumns(probes, plen=plen)
    return _anp.crossing_rates_np(
        columns.v4_changes(),
        columns.v6_prefix_changes(),
        table,
        v6_plen=plen,
    )


def figure5_for_as(
    probes: Sequence[SanitizedProbe],
    engine: Optional[str] = None,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> CplHistogram:
    """The Figure 5 CPL histogram for one AS's probes."""
    resolved = resolve_engine(engine)
    if resolved == "fused":
        try:
            from repro.core import fused as _fused

            return _fused.figure5_from_stats(_fused_stats(probes, columns=columns))
        except _FALLBACK_ERRORS as exc:
            _note_fused_fallback("figure5", exc)
    elif resolved == "np":
        try:
            return _figure5_for_as_np(probes, columns=columns)
        except _FALLBACK_ERRORS as exc:
            _note_fallback("figure5", exc)
    by_probe = {probe.probe_id: probe_v6_changes(probe) for probe in probes}
    return cpl_histogram(by_probe)


def _figure5_for_as_np(
    probes: Sequence[SanitizedProbe],
    plen: int = 64,
    columns: Optional["_anp.ProbeColumns"] = None,
) -> CplHistogram:
    """Columnar :func:`figure5_for_as` (vectorized CPL-of-change)."""
    if columns is None or columns.plen != plen:
        columns = _anp.ProbeColumns(probes, plen=plen)
    return _anp.cpl_histogram_np(columns.v6_prefix(), plen)


# -- Section 3.2 periodicity ---------------------------------------------------


def periodic_networks(
    probes_by_network: Dict[str, Sequence[SanitizedProbe]],
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_probes: int = 3,
    engine: Optional[str] = None,
    columns_by_network: Optional[Dict[str, "_anp.ProbeColumns"]] = None,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Consistent periodic renumbering per network (Section 3.2 text).

    Returns ``(v4_nds_periods, v6_periods)``: for each network, the
    first candidate period exhibited by at least ``min_probes`` probes —
    over IPv4 non-dual-stack exact durations and IPv6 /64 prefix
    durations respectively; networks with no consistent period are
    absent.  The NumPy engine replaces the reference's per-probe
    duration extraction and O(periods x probes x durations) mode
    counting with per-network bincount reductions over the (optionally
    memoized) :class:`~repro.core.analysis_np.ProbeColumns` packs.
    """
    resolved = resolve_engine(engine)
    if resolved == "fused":
        try:
            from repro.core import fused as _fused

            return _fused.periodic_networks_fused(
                probes_by_network,
                candidate_periods,
                tolerance,
                min_probes,
                columns_by_network,
            )
        except _FALLBACK_ERRORS as exc:
            _note_fused_fallback("periodicity", exc)
    elif resolved == "np":
        try:
            return _periodic_networks_np(
                probes_by_network,
                candidate_periods,
                tolerance,
                min_probes,
                columns_by_network,
            )
        except _FALLBACK_ERRORS as exc:
            _note_fallback("periodicity", exc)
    v4_nds: Dict[str, Dict[str, List[float]]] = {}
    v6: Dict[str, Dict[str, List[float]]] = {}
    for name, probes in probes_by_network.items():
        v4_map: Dict[str, List[float]] = {}
        v6_map: Dict[str, List[float]] = {}
        for probe in probes:
            durations = probe_v4_durations(probe)
            _dual, non_dual = split_durations_by_stack(durations, probe.v6_runs)
            if non_dual:
                v4_map[probe.probe_id] = [float(d.hours) for d in non_dual]
            v6_durations = probe_v6_durations(probe)
            if v6_durations:
                v6_map[probe.probe_id] = [float(d.hours) for d in v6_durations]
        v4_nds[name] = v4_map
        v6[name] = v6_map
    return (
        consistent_periodic_networks(
            v4_nds,
            candidate_periods=candidate_periods,
            tolerance=tolerance,
            min_probes=min_probes,
        ),
        consistent_periodic_networks(
            v6,
            candidate_periods=candidate_periods,
            tolerance=tolerance,
            min_probes=min_probes,
        ),
    )


def _periodic_networks_np(
    probes_by_network: Dict[str, Sequence[SanitizedProbe]],
    candidate_periods: Sequence[float],
    tolerance: float,
    min_probes: int,
    columns_by_network: Optional[Dict[str, "_anp.ProbeColumns"]] = None,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Columnar :func:`periodic_networks`, one pack per network."""
    v4_periods: Dict[str, float] = {}
    v6_periods: Dict[str, float] = {}
    for name, probes in probes_by_network.items():
        columns = (columns_by_network or {}).get(name)
        if columns is None or columns.plen != 64:
            columns = _anp.ProbeColumns(probes)
        v4_durations = columns.v4_durations()
        non_dual = ~columns.dual_mask()
        period = _anp.consistent_network_period(
            v4_durations.hours().astype(float)[non_dual],
            v4_durations.probe_index[non_dual],
            columns.n_probes,
            candidate_periods,
            tolerance,
            min_probes,
        )
        if period is not None:
            v4_periods[name] = period
        v6_durations = columns.v6_prefix_durations()
        period = _anp.consistent_network_period(
            v6_durations.hours().astype(float),
            v6_durations.probe_index,
            columns.n_probes,
            candidate_periods,
            tolerance,
            min_probes,
        )
        if period is not None:
            v6_periods[name] = period
    return v4_periods, v6_periods


# -- rendering ----------------------------------------------------------------


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (the benchmarks' output format)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in cells)) if cells else len(header)
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(
    counts: Dict[int, int],
    title: Optional[str] = None,
    width: int = 50,
    label: str = "",
) -> str:
    """ASCII bar rendering of an integer-keyed histogram.

    Used by the benchmark artifacts to make Figure 5/6-style
    distributions legible in plain text.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    lines = []
    if title:
        lines.append(title)
    if not counts:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(counts.values())
    key_width = max(len(str(key)) for key in counts)
    for key in sorted(counts):
        value = counts[key]
        bar = "#" * max(1 if value else 0, round(width * value / peak))
        lines.append(f"{label}{key:>{key_width}}  {bar} {value}")
    return "\n".join(lines)


def render_cdf(
    xs: Sequence[float],
    ys: Sequence[float],
    title: Optional[str] = None,
    width: int = 50,
) -> str:
    """ASCII rendering of a step CDF (x -> cumulative fraction)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = []
    if title:
        lines.append(title)
    if not xs:
        lines.append("(empty)")
        return "\n".join(lines)
    for x, y in zip(xs, ys):
        bar = "=" * round(width * y)
        lines.append(f"{x:>10g}  {bar}| {y:.2f}")
    return "\n".join(lines)


__all__ = [
    "AsDurations",
    "ENGINE_ENV",
    "Figure1Series",
    "Table1Row",
    "as_durations",
    "resolve_engine",
    "figure1_for_as",
    "figure1_series",
    "figure5_for_as",
    "periodic_networks",
    "probe_v4_changes",
    "probe_v4_durations",
    "probe_v6_changes",
    "probe_v6_durations",
    "render_cdf",
    "render_histogram",
    "render_table",
    "table1_row",
    "table2_row",
]
