"""Figure/table assembly: from sanitized probes to the paper's artifacts.

This module is the bridge between the low-level analyses and the
benchmark harness: each ``figureN_*`` / ``tableN`` function computes the
data behind one of the paper's artifacts, and ``render_table`` produces
the ASCII form the benchmarks print.

Every analysis entry point takes an ``engine="np"|"py"`` knob choosing
between the pure-Python reference kernels and the columnar NumPy engine
(:mod:`repro.core.analysis_np`).  The default (``engine=None``) reads
``$REPRO_ANALYSIS_ENGINE`` and otherwise picks ``"np"`` whenever NumPy
is importable; the two engines produce bit-identical artifacts (the
parity tests enforce this), and the NumPy path falls back to the
reference automatically on inputs it cannot pack columnar.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atlas.sanitize import SanitizedProbe
from repro.bgp.table import RoutingTable
from repro.core.changes import (
    ChangeEvent,
    Duration,
    changes_from_runs,
    sandwiched_durations,
    v6_runs_to_prefix_runs,
)
from repro.core.dualstack import split_durations_by_stack
from repro.core.spatial import CplHistogram, CrossingRates, cpl_histogram, crossing_rates
from repro.core.timefraction import (
    CANONICAL_GRID,
    cumulative_total_time_fraction,
    evaluate_cdf,
    total_duration_years,
)

try:
    from repro.core import analysis_np as _anp
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _anp = None

#: Environment override for the default analysis engine ("np" or "py").
ENGINE_ENV = "REPRO_ANALYSIS_ENGINE"

#: Errors on which the NumPy path silently falls back to the reference
#: (unpackable value types, out-of-range integers); genuine input errors
#: re-raise identically from the reference path.
_FALLBACK_ERRORS = (TypeError, ValueError, OverflowError)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Effective analysis engine: explicit value, else the environment,
    else ``"np"`` when NumPy is available."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "").strip().lower() or None
    if engine is None:
        return "np" if _anp is not None else "py"
    if engine not in ("np", "py"):
        raise ValueError(f"engine must be 'np' or 'py', got {engine!r}")
    if engine == "np" and _anp is None:
        return "py"
    return engine


# -- per-probe plumbing -------------------------------------------------------


def probe_v4_changes(probe: SanitizedProbe) -> List[ChangeEvent]:
    """IPv4 assignment changes of one sanitized probe."""
    return changes_from_runs(probe.v4_runs)


def probe_v6_changes(probe: SanitizedProbe, plen: int = 64) -> List[ChangeEvent]:
    """IPv6 /plen prefix changes of one sanitized probe."""
    return changes_from_runs(v6_runs_to_prefix_runs(probe.v6_runs, plen))


def probe_v4_durations(probe: SanitizedProbe) -> List[Duration]:
    """Exact IPv4 assignment durations of one sanitized probe."""
    return sandwiched_durations(probe.v4_runs)


def probe_v6_durations(probe: SanitizedProbe, plen: int = 64) -> List[Duration]:
    """Exact IPv6 /plen assignment durations of one sanitized probe."""
    return sandwiched_durations(v6_runs_to_prefix_runs(probe.v6_runs, plen))


@dataclass
class AsDurations:
    """Per-AS duration populations split the way Figure 1 needs."""

    v4_non_dual_stack: List[float] = field(default_factory=list)
    v4_dual_stack: List[float] = field(default_factory=list)
    v6: List[float] = field(default_factory=list)


def as_durations(
    probes: Sequence[SanitizedProbe], engine: Optional[str] = None
) -> AsDurations:
    """Collect and stack-split exact durations for one AS's probes."""
    if resolve_engine(engine) == "np":
        try:
            return _as_durations_np(probes)
        except _FALLBACK_ERRORS:
            pass
    result = AsDurations()
    for probe in probes:
        v4_durations = probe_v4_durations(probe)
        dual, non_dual = split_durations_by_stack(v4_durations, probe.v6_runs)
        result.v4_dual_stack.extend(float(d.hours) for d in dual)
        result.v4_non_dual_stack.extend(float(d.hours) for d in non_dual)
        result.v6.extend(float(d.hours) for d in probe_v6_durations(probe))
    return result


def _as_durations_np(probes: Sequence[SanitizedProbe], plen: int = 64) -> AsDurations:
    """Columnar :func:`as_durations`: one kernel pass per population.

    Probe-major run order of the columnar tables reproduces the
    reference's per-probe ``extend`` ordering exactly.
    """
    from repro.ip.addr import IPv6Address

    v4_cols = _anp.columns_from_runs([probe.v4_runs for probe in probes])
    v4_durations = _anp.duration_table(v4_cols)
    v6_cols = _anp.columns_from_runs(
        [probe.v6_runs for probe in probes], value_type=IPv6Address
    )
    dual = _anp.dual_stack_mask(v6_cols, v4_durations)
    v4_hours = v4_durations.hours().astype(float)
    v6_hours = _anp.duration_table(_anp.rekey_v6_runs(v6_cols, plen)).hours()
    return AsDurations(
        v4_non_dual_stack=v4_hours[~dual].tolist(),
        v4_dual_stack=v4_hours[dual].tolist(),
        v6=v6_hours.astype(float).tolist(),
    )


# -- Table 1 ------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    name: str
    asn: int
    country: str
    all_probes: int
    all_v4_changes: int
    ds_probes: int
    ds_v4_changes: int
    ds_v6_changes: int

    @property
    def ds_v4_share_pct(self) -> float:
        if not self.all_v4_changes:
            return 0.0
        return 100.0 * self.ds_v4_changes / self.all_v4_changes


def table1_row(
    name: str,
    asn: int,
    country: str,
    probes: Sequence[SanitizedProbe],
    engine: Optional[str] = None,
) -> Table1Row:
    """Aggregate one AS's probes into its Table 1 row."""
    if resolve_engine(engine) == "np":
        try:
            return _table1_row_np(name, asn, country, probes)
        except _FALLBACK_ERRORS:
            pass
    all_v4 = ds_v4 = ds_v6 = ds_probes = 0
    for probe in probes:
        v4_changes = len(probe_v4_changes(probe))
        all_v4 += v4_changes
        if probe.dual_stack:
            ds_probes += 1
            ds_v4 += v4_changes
            ds_v6 += len(probe_v6_changes(probe))
    return Table1Row(
        name=name,
        asn=asn,
        country=country,
        all_probes=len(probes),
        all_v4_changes=all_v4,
        ds_probes=ds_probes,
        ds_v4_changes=ds_v4,
        ds_v6_changes=ds_v6,
    )


def _table1_row_np(
    name: str,
    asn: int,
    country: str,
    probes: Sequence[SanitizedProbe],
    plen: int = 64,
) -> Table1Row:
    """Columnar :func:`table1_row`: change counts from run counts."""
    import numpy as np

    from repro.ip.addr import IPv6Address

    v4_counts = _anp.change_counts(
        _anp.columns_from_runs([probe.v4_runs for probe in probes])
    )
    dual = np.fromiter(
        (probe.dual_stack for probe in probes), dtype=bool, count=len(probes)
    )
    ds_probes = [probe for probe in probes if probe.dual_stack]
    v6_cols = _anp.columns_from_runs(
        [probe.v6_runs for probe in ds_probes], value_type=IPv6Address
    )
    ds_v6 = int(_anp.change_counts(_anp.rekey_v6_runs(v6_cols, plen)).sum())
    return Table1Row(
        name=name,
        asn=asn,
        country=country,
        all_probes=len(probes),
        all_v4_changes=int(v4_counts.sum()),
        ds_probes=int(np.count_nonzero(dual)),
        ds_v4_changes=int(v4_counts[dual].sum()),
        ds_v6_changes=ds_v6,
    )


# -- Figure 1 ------------------------------------------------------------------


@dataclass(frozen=True)
class Figure1Series:
    """One cumulative total-time-fraction curve."""

    label: str
    total_years: float
    grid_values: Tuple[float, ...]  # CDF sampled at CANONICAL_GRID

    def value_at(self, index: int) -> float:
        """The CDF value at CANONICAL_GRID[index]."""
        return self.grid_values[index]


def figure1_series(
    label: str, durations: Sequence[float], engine: Optional[str] = None
) -> Figure1Series:
    """One cumulative-TTF curve sampled on the canonical grid."""
    if resolve_engine(engine) == "np":
        try:
            return _figure1_series_np(label, durations)
        except _FALLBACK_ERRORS:
            pass
    xs, ys = cumulative_total_time_fraction(durations)
    return Figure1Series(
        label=label,
        total_years=total_duration_years(durations),
        grid_values=tuple(evaluate_cdf(xs, ys, CANONICAL_GRID)),
    )


def _figure1_series_np(label: str, durations: Sequence[float]) -> Figure1Series:
    """Columnar :func:`figure1_series` (Eq. 1 + CDF + grid sampling)."""
    xs, ys = _anp.cumulative_ttf_columns(durations)
    return Figure1Series(
        label=label,
        total_years=_anp.total_duration_years_np(durations),
        grid_values=tuple(
            float(v) for v in _anp.evaluate_cdf_columns(xs, ys, CANONICAL_GRID)
        ),
    )


def figure1_for_as(
    name: str, probes: Sequence[SanitizedProbe], engine: Optional[str] = None
) -> Dict[str, Figure1Series]:
    """The three Figure 1 curves (v4 NDS, v4 DS, v6) for one AS."""
    durations = as_durations(probes, engine=engine)
    return {
        "v4_nds": figure1_series(
            f"{name} IPv4 non-dual-stack", durations.v4_non_dual_stack, engine=engine
        ),
        "v4_ds": figure1_series(
            f"{name} IPv4 dual-stack", durations.v4_dual_stack, engine=engine
        ),
        "v6": figure1_series(f"{name} IPv6", durations.v6, engine=engine),
    }


# -- Table 2 and Figure 5 -----------------------------------------------------


def table2_row(
    probes: Sequence[SanitizedProbe],
    table: RoutingTable,
    engine: Optional[str] = None,
) -> CrossingRates:
    """Aggregate one AS's probes into its Table 2 crossing rates."""
    if resolve_engine(engine) == "np":
        try:
            return _table2_row_np(probes, table)
        except _FALLBACK_ERRORS:
            pass
    v4_changes: List[ChangeEvent] = []
    v6_changes: List[ChangeEvent] = []
    for probe in probes:
        v4_changes.extend(probe_v4_changes(probe))
        v6_changes.extend(probe_v6_changes(probe))
    return crossing_rates(v4_changes, v6_changes, table)


def _table2_row_np(
    probes: Sequence[SanitizedProbe], table: RoutingTable, plen: int = 64
) -> CrossingRates:
    """Columnar :func:`table2_row`: bit-level /24 tests, deduped BGP lookups."""
    from repro.ip.addr import IPv4Address, IPv6Address

    v4_cols = _anp.columns_from_runs(
        [probe.v4_runs for probe in probes], value_type=IPv4Address
    )
    v6_cols = _anp.columns_from_runs(
        [probe.v6_runs for probe in probes], value_type=IPv6Address
    )
    return _anp.crossing_rates_np(
        _anp.change_table(v4_cols),
        _anp.change_table(_anp.rekey_v6_runs(v6_cols, plen)),
        table,
        v6_plen=plen,
    )


def figure5_for_as(
    probes: Sequence[SanitizedProbe], engine: Optional[str] = None
) -> CplHistogram:
    """The Figure 5 CPL histogram for one AS's probes."""
    if resolve_engine(engine) == "np":
        try:
            return _figure5_for_as_np(probes)
        except _FALLBACK_ERRORS:
            pass
    by_probe = {probe.probe_id: probe_v6_changes(probe) for probe in probes}
    return cpl_histogram(by_probe)


def _figure5_for_as_np(probes: Sequence[SanitizedProbe], plen: int = 64) -> CplHistogram:
    """Columnar :func:`figure5_for_as` (vectorized CPL-of-change)."""
    from repro.ip.addr import IPv6Address

    v6_cols = _anp.columns_from_runs(
        [probe.v6_runs for probe in probes], value_type=IPv6Address
    )
    return _anp.cpl_histogram_np(_anp.rekey_v6_runs(v6_cols, plen), plen)


# -- rendering ----------------------------------------------------------------


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (the benchmarks' output format)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in cells)) if cells else len(header)
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(
    counts: Dict[int, int],
    title: Optional[str] = None,
    width: int = 50,
    label: str = "",
) -> str:
    """ASCII bar rendering of an integer-keyed histogram.

    Used by the benchmark artifacts to make Figure 5/6-style
    distributions legible in plain text.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    lines = []
    if title:
        lines.append(title)
    if not counts:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(counts.values())
    key_width = max(len(str(key)) for key in counts)
    for key in sorted(counts):
        value = counts[key]
        bar = "#" * max(1 if value else 0, round(width * value / peak))
        lines.append(f"{label}{key:>{key_width}}  {bar} {value}")
    return "\n".join(lines)


def render_cdf(
    xs: Sequence[float],
    ys: Sequence[float],
    title: Optional[str] = None,
    width: int = 50,
) -> str:
    """ASCII rendering of a step CDF (x -> cumulative fraction)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = []
    if title:
        lines.append(title)
    if not xs:
        lines.append("(empty)")
        return "\n".join(lines)
    for x, y in zip(xs, ys):
        bar = "=" * round(width * y)
        lines.append(f"{x:>10g}  {bar}| {y:.2f}")
    return "\n".join(lines)


__all__ = [
    "AsDurations",
    "ENGINE_ENV",
    "Figure1Series",
    "Table1Row",
    "as_durations",
    "resolve_engine",
    "figure1_for_as",
    "figure1_series",
    "figure5_for_as",
    "probe_v4_changes",
    "probe_v4_durations",
    "probe_v6_changes",
    "probe_v6_durations",
    "render_cdf",
    "render_histogram",
    "render_table",
    "table1_row",
    "table2_row",
]
