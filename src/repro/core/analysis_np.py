"""NumPy-vectorized Section 3/5 analysis kernels (the columnar engine).

The pure-Python modules :mod:`repro.core.changes`,
:mod:`repro.core.timefraction`, :mod:`repro.core.periodicity`,
:mod:`repro.core.dualstack` and :mod:`repro.core.spatial` are the
reference implementations; the kernels here compute the same artifacts
over a *columnar* representation of per-probe echo runs and are
**bit-identical** to the references on the pipeline's data (hourly,
integer-valued durations — see the note below).  The test suite and the
``repro.perf.verify`` parity harness assert exact agreement on random
inputs; :mod:`repro.core.report` dispatches to this module behind its
``engine="np"|"py"`` knob.

Representation
--------------

:func:`columns_from_runs` packs the run series of *many* probes into a
single :class:`RunColumns`: CSR-style ``offsets`` (one slice per probe)
over flat ``first``/``last``/``observed``/``max_gap`` arrays, with run
values stored as ``(value_hi, value_lo)`` uint64 pairs so 128-bit IPv6
addresses fit without arbitrary-precision integers.  All kernels then
operate on whole probe populations at once: probe boundaries are masks
derived from ``offsets``, never Python loops.

Exactness note
--------------

The reference implementations accumulate floats sequentially
(``sum(...)``) while NumPy uses pairwise summation.  Both are exact —
hence bit-identical — as long as the summed values are integral-valued
floats below 2**53, which hour-granularity durations always are.  The
parity tests pin this contract down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.atlas.echo import EchoRun
from repro.bgp.table import RoutingTable
from repro.core.arena import ColumnArena
from repro.core.periodicity import CANONICAL_PERIODS, PeriodicMode
from repro.core.spatial import CplHistogram, CrossingRates
from repro.core.timefraction import CANONICAL_GRID, YEAR
from repro.ip.addr import IPAddress, IPv4Address, IPv6Address
from repro.ip.prefix import IPPrefix

_M64 = (1 << 64) - 1


# ---------------------------------------------------------------------------
# Columnar run representation
# ---------------------------------------------------------------------------


@dataclass
class RunColumns:
    """CSR-packed run series of a probe population (one slice per probe).

    ``offsets`` has ``n_probes + 1`` entries; probe ``p``'s runs live at
    flat indices ``offsets[p]:offsets[p + 1]``, in time order.  Values
    are 128-bit integers split into ``(value_hi, value_lo)`` uint64
    pairs (IPv4 addresses occupy the low 32 bits of ``value_lo``).
    """

    offsets: np.ndarray  # int64, (n_probes + 1,)
    value_hi: np.ndarray  # uint64, (n_runs,)
    value_lo: np.ndarray  # uint64, (n_runs,)
    first: np.ndarray  # int64, (n_runs,)
    last: np.ndarray  # int64, (n_runs,)
    observed: np.ndarray  # int64, (n_runs,)
    max_gap: np.ndarray  # int64, (n_runs,)

    @property
    def n_probes(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_runs(self) -> int:
        return len(self.first)

    def run_counts(self) -> np.ndarray:
        """Runs per probe (int64, one entry per probe)."""
        return np.diff(self.offsets)

    def probe_of_run(self) -> np.ndarray:
        """Probe index of every flat run (int64, one entry per run)."""
        return np.repeat(np.arange(self.n_probes, dtype=np.int64), self.run_counts())


@dataclass
class ChangeColumns:
    """Columnar :class:`~repro.core.changes.ChangeEvent` table."""

    probe_index: np.ndarray  # int64: index into the probe population
    hour: np.ndarray  # int64: first hour of the new value
    old_hi: np.ndarray  # uint64
    old_lo: np.ndarray  # uint64
    new_hi: np.ndarray  # uint64
    new_lo: np.ndarray  # uint64
    boundary_gap: np.ndarray  # int64

    @property
    def n_changes(self) -> int:
        return len(self.hour)


@dataclass
class DurationColumns:
    """Columnar :class:`~repro.core.changes.Duration` table (exact spans)."""

    probe_index: np.ndarray  # int64
    start: np.ndarray  # int64
    end: np.ndarray  # int64 (inclusive)

    @property
    def n_durations(self) -> int:
        return len(self.start)

    def hours(self) -> np.ndarray:
        """Span of each duration in hours (int64)."""
        return self.end - self.start + 1


def columns_from_runs(
    runs_by_probe: Iterable[Sequence[EchoRun]],
    value_type: Optional[Type[IPAddress]] = None,
) -> RunColumns:
    """Pack per-probe run series into a :class:`RunColumns`.

    ``value_type`` optionally enforces the run value class (mirroring
    :func:`repro.core.changes.v6_runs_to_prefix_runs`'s type check);
    prefix-valued runs are packed by their network address.
    """
    probes: List[Sequence[EchoRun]] = [
        runs if isinstance(runs, Sequence) else list(runs) for runs in runs_by_probe
    ]
    counts = np.fromiter((len(runs) for runs in probes), dtype=np.int64, count=len(probes))
    offsets = np.zeros(len(probes) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])

    values: List[int] = []
    for runs in probes:
        for run in runs:
            value = run.value
            if value_type is not None and not isinstance(value, value_type):
                raise TypeError(
                    f"expected {value_type.__name__} runs, got {type(value).__name__}"
                )
            values.append(int(value.network) if isinstance(value, IPPrefix) else int(value))

    flat = (run for runs in probes for run in runs)
    first = np.empty(total, dtype=np.int64)
    last = np.empty(total, dtype=np.int64)
    observed = np.empty(total, dtype=np.int64)
    max_gap = np.empty(total, dtype=np.int64)
    for index, run in enumerate(flat):
        first[index] = run.first
        last[index] = run.last
        observed[index] = run.observed
        max_gap[index] = run.max_gap

    value_hi = np.fromiter((v >> 64 for v in values), dtype=np.uint64, count=total)
    value_lo = np.fromiter((v & _M64 for v in values), dtype=np.uint64, count=total)
    return RunColumns(
        offsets=offsets,
        value_hi=value_hi,
        value_lo=value_lo,
        first=first,
        last=last,
        observed=observed,
        max_gap=max_gap,
    )


def _first_run_mask(cols: RunColumns) -> np.ndarray:
    """True at the first run of each (non-empty) probe slice."""
    mask = np.zeros(cols.n_runs, dtype=bool)
    counts = cols.run_counts()
    mask[cols.offsets[:-1][counts > 0]] = True
    return mask


def _last_run_mask(cols: RunColumns) -> np.ndarray:
    """True at the last run of each (non-empty) probe slice."""
    mask = np.zeros(cols.n_runs, dtype=bool)
    counts = cols.run_counts()
    mask[cols.offsets[1:][counts > 0] - 1] = True
    return mask


# ---------------------------------------------------------------------------
# Change detection (changes.py semantics)
# ---------------------------------------------------------------------------


def change_counts(cols: RunColumns) -> np.ndarray:
    """Changes per probe: ``max(0, runs - 1)`` (``changes_from_runs`` length)."""
    return np.maximum(cols.run_counts() - 1, 0)


def change_table(cols: RunColumns) -> ChangeColumns:
    """All changes of all probes, in probe-major time order.

    Row ``k`` matches the ``k``-th event of concatenating
    :func:`repro.core.changes.changes_from_runs` over the probes in
    population order.
    """
    current = np.flatnonzero(~_first_run_mask(cols))
    previous = current - 1
    probe_of = cols.probe_of_run()
    return ChangeColumns(
        probe_index=probe_of[current],
        hour=cols.first[current],
        old_hi=cols.value_hi[previous],
        old_lo=cols.value_lo[previous],
        new_hi=cols.value_hi[current],
        new_lo=cols.value_lo[current],
        boundary_gap=cols.first[current] - cols.last[previous] - 1,
    )


# ---------------------------------------------------------------------------
# IPv6 prefix rekeying and adjacent-equal merging
# ---------------------------------------------------------------------------


def _prefix_masks(plen: int, bits: int = 128) -> Tuple[np.uint64, np.uint64]:
    """(hi, lo) uint64 masks keeping the top ``plen`` of ``bits`` bits."""
    if not 0 <= plen <= bits:
        raise ValueError(f"prefix length {plen} out of range for /{bits} family")
    full = (((1 << plen) - 1) << (bits - plen)) if plen else 0
    return np.uint64(full >> 64), np.uint64(full & _M64)


def rekey_v6_runs(cols: RunColumns, plen: int = 64) -> RunColumns:
    """Columnar :func:`repro.core.changes.v6_runs_to_prefix_runs`.

    Masks every value to its /``plen`` network and merges adjacent
    equal-valued runs per probe, with
    :func:`repro.atlas.echo.merge_adjacent_equal`'s exact bookkeeping
    (summed ``observed``, ``max_gap`` absorbing the joining gaps).
    """
    mask_hi, mask_lo = _prefix_masks(plen)
    hi = cols.value_hi & mask_hi
    lo = cols.value_lo & mask_lo
    n = cols.n_runs
    if n == 0:
        return RunColumns(
            offsets=cols.offsets.copy(),
            value_hi=hi,
            value_lo=lo,
            first=cols.first.copy(),
            last=cols.last.copy(),
            observed=cols.observed.copy(),
            max_gap=cols.max_gap.copy(),
        )

    probe_of = cols.probe_of_run()
    same_as_previous = np.zeros(n, dtype=bool)
    same_as_previous[1:] = (
        (hi[1:] == hi[:-1]) & (lo[1:] == lo[:-1]) & (probe_of[1:] == probe_of[:-1])
    )
    group_starts = np.flatnonzero(~same_as_previous)
    group_ends = np.append(group_starts[1:], n) - 1

    # Per-run max-gap candidate: the run's own internal gap, plus — when
    # the run merges into the previous one — the unobserved gap between
    # them (merge_adjacent_equal's max(pending.max_gap, run.max_gap, gap)).
    join_gap = np.zeros(n, dtype=np.int64)
    join_gap[1:] = cols.first[1:] - cols.last[:-1] - 1
    candidate = np.where(
        same_as_previous, np.maximum(cols.max_gap, join_gap), cols.max_gap
    )

    merged = RunColumns(
        offsets=np.searchsorted(group_starts, cols.offsets, side="left").astype(np.int64),
        value_hi=hi[group_starts],
        value_lo=lo[group_starts],
        first=cols.first[group_starts],
        last=cols.last[group_ends],
        observed=np.add.reduceat(cols.observed, group_starts),
        max_gap=np.maximum.reduceat(candidate, group_starts),
    )
    return merged


# ---------------------------------------------------------------------------
# Sandwiched exact durations (changes.py semantics)
# ---------------------------------------------------------------------------


def duration_table(
    cols: RunColumns,
    max_boundary_gap: int = 0,
    max_internal_gap: Optional[int] = None,
) -> DurationColumns:
    """Columnar :func:`repro.core.changes.sandwiched_durations`.

    Returns the exact durations of all probes in probe-major run order —
    the concatenation order of the per-probe reference output.
    """
    n = cols.n_runs
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return DurationColumns(probe_index=empty, start=empty.copy(), end=empty.copy())
    sandwiched = ~_first_run_mask(cols) & ~_last_run_mask(cols)
    gap_before = np.zeros(n, dtype=np.int64)
    gap_before[1:] = cols.first[1:] - cols.last[:-1] - 1
    gap_after = np.zeros(n, dtype=np.int64)
    gap_after[:-1] = cols.first[1:] - cols.last[:-1] - 1
    exact = sandwiched & (gap_before <= max_boundary_gap) & (gap_after <= max_boundary_gap)
    if max_internal_gap is not None:
        exact &= cols.max_gap <= max_internal_gap
    index = np.flatnonzero(exact)
    return DurationColumns(
        probe_index=cols.probe_of_run()[index],
        start=cols.first[index],
        end=cols.last[index],
    )


def observation_flags(
    cols: RunColumns,
    max_boundary_gap: int = 0,
    max_internal_gap: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-run ``(sandwiched, exact)`` flags — columnar
    :func:`repro.core.changes.observations_from_runs`."""
    n = cols.n_runs
    if n == 0:
        empty = np.empty(0, dtype=bool)
        return empty, empty.copy()
    sandwiched = ~_first_run_mask(cols) & ~_last_run_mask(cols)
    gap_before = np.zeros(n, dtype=np.int64)
    gap_before[1:] = cols.first[1:] - cols.last[:-1] - 1
    gap_after = np.zeros(n, dtype=np.int64)
    gap_after[:-1] = cols.first[1:] - cols.last[:-1] - 1
    exact = sandwiched & (gap_before <= max_boundary_gap) & (gap_after <= max_boundary_gap)
    if max_internal_gap is not None:
        exact &= cols.max_gap <= max_internal_gap
    return sandwiched, exact


# ---------------------------------------------------------------------------
# Dual-stack coverage (dualstack.py semantics)
# ---------------------------------------------------------------------------


def split_durations_by_stack_np(
    v6_cols: RunColumns,
    durations: DurationColumns,
    min_coverage: float = 0.9,
) -> Tuple[DurationColumns, DurationColumns]:
    """Columnar :func:`repro.core.dualstack.split_durations_by_stack`
    over a whole population: ``(dual, non_dual)`` duration tables."""
    mask = dual_stack_mask(v6_cols, durations, min_coverage)

    def take(selector: np.ndarray) -> DurationColumns:
        return DurationColumns(
            probe_index=durations.probe_index[selector],
            start=durations.start[selector],
            end=durations.end[selector],
        )

    return take(mask), take(~mask)


def dual_stack_mask(
    v6_cols: RunColumns,
    durations: DurationColumns,
    min_coverage: float = 0.9,
) -> np.ndarray:
    """Which durations are dual-stack — columnar
    :func:`repro.core.dualstack.split_durations_by_stack`.

    A duration is dual-stack when the probe has IPv6 runs and their
    observed hours cover at least ``min_coverage`` of the duration's
    span.  ``durations.probe_index`` must index into ``v6_cols``'s probe
    population.
    """
    n_durations = durations.n_durations
    if n_durations == 0:
        return np.empty(0, dtype=bool)
    has_v6 = (v6_cols.run_counts() > 0)[durations.probe_index]
    if v6_cols.n_runs == 0:
        return np.zeros(n_durations, dtype=bool)

    # Per-probe interval coverage via one global prefix-sum: encode
    # (probe, hour) pairs as strictly increasing integer keys so a
    # single searchsorted answers "covered hours up to x" for every
    # duration endpoint at once.  Earlier probes' intervals land fully
    # in both endpoint queries of a later probe and cancel in the
    # difference.
    first6 = v6_cols.first
    last6 = v6_cols.last
    probe6 = v6_cols.probe_of_run()
    big = int(max(last6.max(), durations.end.max())) + 3
    last_keys = probe6 * big + (last6 + 1)
    first_keys = probe6 * big + (first6 + 1)
    cumulative = np.zeros(v6_cols.n_runs + 1, dtype=np.int64)
    np.cumsum(last6 - first6 + 1, out=cumulative[1:])

    def covered_up_to(x: np.ndarray) -> np.ndarray:
        query = durations.probe_index * big + (x + 1)
        position = np.searchsorted(last_keys, query, side="right")
        clipped = np.minimum(position, v6_cols.n_runs - 1)
        partial_mask = (position < v6_cols.n_runs) & (first_keys[clipped] <= query)
        partial = np.where(partial_mask, x - first6[clipped] + 1, 0)
        return cumulative[position] + partial

    covered = covered_up_to(durations.end) - covered_up_to(durations.start - 1)
    span = durations.end - durations.start + 1
    fraction = np.minimum(1.0, covered / span)
    return has_v6 & (fraction >= min_coverage)


# ---------------------------------------------------------------------------
# Total time fraction (timefraction.py semantics, Eq. 1)
# ---------------------------------------------------------------------------


def total_time_fraction_columns(
    durations: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Columnar :func:`repro.core.timefraction.total_time_fraction`.

    Returns ``(values, fractions)`` sorted by duration — the reference's
    dict items in iteration order.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if len(durations) == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy()
    if np.any(durations <= 0):
        raise ValueError("durations must be positive")
    values, counts = np.unique(durations, return_counts=True)
    total = durations.sum()
    return values, counts * values / total


def cumulative_ttf_columns(durations: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Columnar :func:`repro.core.timefraction.cumulative_total_time_fraction`."""
    values, fractions = total_time_fraction_columns(durations)
    cumulative = np.cumsum(fractions)
    if len(cumulative):
        cumulative[-1] = 1.0
    return values, cumulative


def evaluate_cdf_columns(
    xs: np.ndarray, ys: np.ndarray, grid: Sequence[float] = CANONICAL_GRID
) -> np.ndarray:
    """Columnar :func:`repro.core.timefraction.evaluate_cdf`."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    positions = np.searchsorted(xs, np.asarray(grid, dtype=np.float64), side="right")
    padded = np.concatenate((np.zeros(1), ys))
    return padded[positions]


def total_duration_years_np(durations: np.ndarray) -> float:
    """Columnar :func:`repro.core.timefraction.total_duration_years`."""
    return float(np.asarray(durations, dtype=np.float64).sum() / YEAR)


# ---------------------------------------------------------------------------
# Periodic-mode detection (periodicity.py semantics)
# ---------------------------------------------------------------------------


def detect_periods_np(
    durations: np.ndarray,
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_mass: float = 0.15,
) -> List[PeriodicMode]:
    """Columnar :func:`repro.core.periodicity.detect_periods`."""
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    durations = np.asarray(durations, dtype=np.float64)
    if len(durations) == 0:
        return []
    total = durations.sum()
    modes = []
    for period in candidate_periods:
        in_mode = np.abs(durations - period) <= tolerance
        count = int(np.count_nonzero(in_mode))
        if not count:
            continue
        mass = float(durations[in_mode].sum() / total)
        if mass >= min_mass:
            modes.append(PeriodicMode(period_hours=period, mass=mass, count=count))
    modes.sort(key=lambda mode: -mode.mass)
    return modes


def probe_exhibits_period_np(
    durations: np.ndarray,
    period: float,
    tolerance: float = 1.0,
    min_mass: float = 0.5,
    min_count: int = 3,
) -> bool:
    """Columnar :func:`repro.core.periodicity.probe_exhibits_period`."""
    durations = np.asarray(durations, dtype=np.float64)
    if len(durations) == 0:
        return False
    in_mode = np.abs(durations - period) <= tolerance
    if int(np.count_nonzero(in_mode)) < min_count:
        return False
    return bool(durations[in_mode].sum() / durations.sum() >= min_mass)


def probe_period_flags(
    durations: np.ndarray,
    probe_index: np.ndarray,
    n_probes: int,
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_mass: float = 0.5,
    min_count: int = 3,
) -> np.ndarray:
    """Per-probe :func:`repro.core.periodicity.probe_exhibits_period`
    over a whole population at once.

    ``durations[k]`` belongs to probe ``probe_index[k]``; the result is a
    ``(n_probes, len(candidate_periods))`` bool matrix whose ``[p, j]``
    entry says probe ``p`` exhibits ``candidate_periods[j]``.  The mass
    ratio is the reference's exact float expression (integral-valued
    duration sums are exact under any summation order).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    durations = np.asarray(durations, dtype=np.float64)
    probe_index = np.asarray(probe_index, dtype=np.int64)
    flags = np.zeros((n_probes, len(candidate_periods)), dtype=bool)
    if len(durations) == 0:
        return flags
    totals = np.bincount(probe_index, weights=durations, minlength=n_probes)
    for j, period in enumerate(candidate_periods):
        in_mode = np.abs(durations - period) <= tolerance
        counts = np.bincount(probe_index[in_mode], minlength=n_probes)
        masses = np.bincount(
            probe_index[in_mode], weights=durations[in_mode], minlength=n_probes
        )
        ratio = np.divide(
            masses, totals, out=np.zeros(n_probes, dtype=np.float64), where=totals > 0
        )
        flags[:, j] = (counts >= min_count) & (ratio >= min_mass)
    return flags


def consistent_network_period(
    durations: np.ndarray,
    probe_index: np.ndarray,
    n_probes: int,
    candidate_periods: Sequence[float] = CANONICAL_PERIODS,
    tolerance: float = 1.0,
    min_probes: int = 3,
) -> Optional[float]:
    """One network of :func:`repro.core.periodicity.consistent_periodic_networks`:
    the first candidate period exhibited by at least ``min_probes``
    probes (``None`` when no candidate qualifies)."""
    flags = probe_period_flags(
        durations, probe_index, n_probes, candidate_periods, tolerance
    )
    exhibiting = flags.sum(axis=0)
    for j, period in enumerate(candidate_periods):
        if int(exhibiting[j]) >= min_probes:
            return float(period)
    return None


# ---------------------------------------------------------------------------
# Subscriber-delegation inference (delegation.py semantics)
# ---------------------------------------------------------------------------


def _trailing_zeros_u64(x: np.ndarray) -> np.ndarray:
    """Per-element trailing-zero count for uint64 arrays (64 where 0)."""
    lowest_bit = x & (~x + np.uint64(1))
    zeros = _bit_length_u64(lowest_bit) - 1
    zeros[x == 0] = 64
    return zeros


def inferred_plen_counts_np(
    prefix_cols: RunColumns, plen: int = 64, min_distinct: int = 2
) -> Tuple[int, Dict[int, int]]:
    """Columnar core of :func:`repro.core.delegation.inferred_plen_distribution`.

    ``prefix_cols`` holds /``plen`` prefix runs (see
    :func:`rekey_v6_runs`); probes with at least ``min_distinct``
    distinct prefixes are eligible, and each contributes the inferred
    delegation length ``plen - min(trailing zero bits)`` over its
    prefixes.  Returns ``(eligible_probes, {inferred_plen: probes})``.
    """
    if not 0 < plen <= 64:
        raise ValueError(f"prefix length {plen} not supported by the columnar kernel")
    if prefix_cols.n_runs == 0:
        return 0, {}
    probe_of = prefix_cols.probe_of_run()
    counts = prefix_cols.run_counts()
    nonempty = np.flatnonzero(counts > 0)

    # trailing_zero_bits of a /plen prefix: zeros of the top plen bits,
    # capped at plen for the all-zero network (IPPrefix's semantics).
    shifted = prefix_cols.value_hi >> np.uint64(64 - plen)
    zero_bits = np.minimum(_trailing_zeros_u64(shifted), plen)
    min_zero_bits = np.minimum.reduceat(
        zero_bits, prefix_cols.offsets[:-1][nonempty].astype(np.intp)
    )

    order = np.lexsort((prefix_cols.value_lo, prefix_cols.value_hi, probe_of))
    hi = prefix_cols.value_hi[order]
    lo = prefix_cols.value_lo[order]
    probe = probe_of[order]
    new_value = np.ones(prefix_cols.n_runs, dtype=bool)
    new_value[1:] = (hi[1:] != hi[:-1]) | (lo[1:] != lo[:-1]) | (probe[1:] != probe[:-1])
    distinct = np.bincount(probe[new_value], minlength=prefix_cols.n_probes)[nonempty]

    eligible = distinct >= min_distinct
    inferred = plen - min_zero_bits[eligible]
    values, value_counts = np.unique(inferred, return_counts=True)
    return int(np.count_nonzero(eligible)), {
        int(v): int(c) for v, c in zip(values, value_counts)
    }


# ---------------------------------------------------------------------------
# CPL histograms and boundary crossings (spatial.py semantics)
# ---------------------------------------------------------------------------


def _bit_length_u64(x: np.ndarray) -> np.ndarray:
    """Exact per-element ``int.bit_length`` for uint64 arrays."""
    x = x.copy()
    length = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = x >= np.uint64(1 << shift)
        length[mask] += shift
        x[mask] >>= np.uint64(shift)
    length[x > 0] += 1
    return length


def cpl_of_changes(changes: ChangeColumns, plen: int = 64) -> np.ndarray:
    """CPL of each change between /``plen`` prefixes — vectorized
    :func:`repro.core.spatial.cpl_of_change`."""
    xor_hi = changes.old_hi ^ changes.new_hi
    xor_lo = changes.old_lo ^ changes.new_lo
    cpl128 = np.where(
        xor_hi != 0, 64 - _bit_length_u64(xor_hi), 128 - _bit_length_u64(xor_lo)
    )
    return np.minimum(cpl128, plen)


def cpl_histogram_np(prefix_cols: RunColumns, plen: int = 64) -> CplHistogram:
    """Columnar :func:`repro.core.spatial.cpl_histogram` over merged
    /``plen`` prefix runs (see :func:`rekey_v6_runs`)."""
    changes = change_table(prefix_cols)
    if changes.n_changes == 0:
        return CplHistogram(changes_by_cpl={}, probes_by_cpl={})
    cpls = cpl_of_changes(changes, plen)
    values, counts = np.unique(cpls, return_counts=True)
    changes_by_cpl = {int(v): int(c) for v, c in zip(values, counts)}
    pair_keys = changes.probe_index * np.int64(129) + cpls
    probe_cpls = np.unique(pair_keys) % 129
    probe_values, probe_counts = np.unique(probe_cpls, return_counts=True)
    probes_by_cpl = {int(v): int(c) for v, c in zip(probe_values, probe_counts)}
    return CplHistogram(changes_by_cpl=changes_by_cpl, probes_by_cpl=probes_by_cpl)


@dataclass
class _RouteIntervalIndex:
    """Longest-prefix matching as a flat sorted-interval lookup.

    ``ids[k]`` is the route id (or -1) of every address in
    ``[bounds[k], bounds[k + 1])``; ``bounds[0]`` is 0 so every address
    lands in exactly one interval.  Because routed prefixes nest or are
    disjoint (never partially overlap), a single left-to-right sweep
    with a containment stack flattens the trie exactly.
    """

    bounds: np.ndarray  # uint64, strictly increasing, bounds[0] == 0
    ids: np.ndarray  # int64, -1 = unrouted

    def lookup(self, addresses: np.ndarray) -> np.ndarray:
        """Route id of each address (-1 = unrouted)."""
        return self.ids[np.searchsorted(self.bounds, addresses, side="right") - 1]


def _interval_index(prefixes: Sequence[Tuple[int, int]], bits: int) -> _RouteIntervalIndex:
    """Flatten ``(network, plen)`` prefixes into a :class:`_RouteIntervalIndex`
    over a ``bits``-wide address space.  Route ids are list positions."""
    bounds: List[int] = [0]
    ids: List[int] = [-1]
    limit = 1 << bits

    def emit(position: int, route_id: int) -> None:
        if position >= limit:
            return
        if bounds[-1] == position:
            ids[-1] = route_id  # inner prefix (or parent resumption) wins
        else:
            bounds.append(position)
            ids.append(route_id)

    stack: List[Tuple[int, int]] = []  # (end_exclusive, route_id), outermost first
    for route_id in sorted(
        range(len(prefixes)), key=lambda i: (prefixes[i][0], prefixes[i][1])
    ):
        network, plen = prefixes[route_id]
        start = network
        while stack and stack[-1][0] <= start:
            finished_end, _ = stack.pop()
            emit(finished_end, stack[-1][1] if stack else -1)
        emit(start, route_id)
        stack.append((start + (1 << (bits - plen)), route_id))
    while stack:
        finished_end, _ = stack.pop()
        emit(finished_end, stack[-1][1] if stack else -1)
    return _RouteIntervalIndex(
        bounds=np.array(bounds, dtype=np.uint64), ids=np.array(ids, dtype=np.int64)
    )


def _route_interval_index(
    table: RoutingTable, family: int, max_plen: Optional[int] = None
) -> _RouteIntervalIndex:
    """Interval index over one family of ``table``'s routes.

    For IPv6 the index lives in the top-64-bit space (queries are
    ``value_hi`` columns), so callers must cap ``max_plen`` at 64.
    """
    prefixes: List[Tuple[int, int]] = []
    for route in table.routes():
        prefix = route.prefix
        if prefix.family != family:
            continue
        if max_plen is not None and prefix.plen > max_plen:
            continue
        network = int(prefix.network)
        if family == 6:
            network >>= 64
        prefixes.append((network, prefix.plen))
    return _interval_index(prefixes, 32 if family == 4 else 64)


def crossing_rates_np(
    v4_changes: ChangeColumns,
    v6_changes: ChangeColumns,
    table: RoutingTable,
    v6_plen: int = 64,
) -> CrossingRates:
    """Columnar :func:`repro.core.spatial.crossing_rates`.

    The /24 test is pure bit arithmetic; BGP longest-prefix matches go
    through a flat sorted-interval index (:func:`_interval_index`)
    instead of per-value trie walks.  IPv6 lookups run in the top-64-bit
    space, which is exact because only routes with plen <= ``v6_plen``
    (<= 64) can cover a /``v6_plen`` prefix.
    """
    if v6_plen > 64:
        raise ValueError("crossing_rates_np supports v6_plen <= 64 only")
    v4_total = int(v4_changes.n_changes)
    if v4_total:
        v4_diff24 = int(np.count_nonzero((v4_changes.old_lo ^ v4_changes.new_lo) >> np.uint64(8)))
        index4 = _route_interval_index(table, family=4)
        old_ids = index4.lookup(v4_changes.old_lo)
        new_ids = index4.lookup(v4_changes.new_lo)
        v4_diffbgp = int(np.count_nonzero((old_ids == -1) | (old_ids != new_ids)))
    else:
        v4_diff24 = v4_diffbgp = 0

    v6_total = int(v6_changes.n_changes)
    if v6_total:
        index6 = _route_interval_index(table, family=6, max_plen=v6_plen)
        old_ids6 = index6.lookup(v6_changes.old_hi)
        new_ids6 = index6.lookup(v6_changes.new_hi)
        v6_diffbgp = int(np.count_nonzero((old_ids6 == -1) | (old_ids6 != new_ids6)))
    else:
        v6_diffbgp = 0

    return CrossingRates(
        v4_changes=v4_total,
        v4_diff_slash24=v4_diff24,
        v4_diff_bgp=v4_diffbgp,
        v6_changes=v6_total,
        v6_diff_bgp=v6_diffbgp,
    )


# ---------------------------------------------------------------------------
# Shared per-population pack (memoized by the scenario layer)
# ---------------------------------------------------------------------------


#: Version of the :class:`ProbeColumns` buffer/arena layout.  Scenario
#: memoization and arena metadata both key on it, so packs cached (or
#: pickled) under an older layout repack instead of failing.
COLUMNS_FORMAT_VERSION = 2

#: :class:`RunColumns` fields serialized per address family, in arena order.
_FAMILY_FIELDS = ("offsets", "value_hi", "value_lo", "first", "last", "observed", "max_gap")


def select_runs(cols: RunColumns, probe_indices) -> RunColumns:
    """Gather a probe subset out of a CSR pack, preserving probe order.

    Equivalent to re-packing ``[probes[i] for i in probe_indices]``:
    offsets are rebuilt over the subset and every flat column is gathered
    with one fancy index, so per-AS packs fall out of a global pack
    without touching the source probe objects.
    """
    idx = np.asarray(probe_indices, dtype=np.int64)
    counts = np.diff(cols.offsets)[idx]
    out_offsets = np.zeros(len(idx) + 1, dtype=np.int64)
    np.cumsum(counts, out=out_offsets[1:])
    total = int(out_offsets[-1])
    if total:
        starts = cols.offsets[:-1][idx]
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - out_offsets[:-1], counts
        )
    else:
        flat = np.zeros(0, dtype=np.int64)
    return RunColumns(
        out_offsets,
        cols.value_hi[flat],
        cols.value_lo[flat],
        cols.first[flat],
        cols.last[flat],
        cols.observed[flat],
        cols.max_gap[flat],
    )


class ProbeColumns:
    """Lazily packed, buffer-backed columnar views of one probe population.

    Packs a (sanitized) probe population's v4/v6 runs once and caches
    every derived table — the /``plen``-rekeyed prefix runs, change and
    duration tables, and the dual-stack mask — so each table/figure over
    the same probes reuses a single pack instead of re-packing per
    artifact.  Probes must expose ``v4_runs``/``v6_runs``/``dual_stack``
    (:class:`repro.atlas.sanitize.SanitizedProbe` does).

    The pack is *buffer-backed*: :meth:`arena` flattens both families
    plus per-probe metadata into one
    :class:`~repro.core.arena.ColumnArena` buffer, :meth:`save_arena`
    writes it to disk, and :meth:`from_arena` rehydrates a pack from a
    buffer or path — memory-mapped, so pool workers and other processes
    map the same pack zero-copy instead of re-packing (or pickling
    column arrays).  Pickling a pack serializes the arena, not the
    probe objects; the unpickled pack has ``probes=None`` and serves
    every table from the buffer.
    """

    def __init__(self, probes: Sequence, plen: int = 64) -> None:
        self.probes: Optional[List] = list(probes)
        self.plen = plen
        self._cache: Dict[object, object] = {}
        self._arena: Optional[ColumnArena] = None
        self._n_probes = len(self.probes)

    @property
    def n_probes(self) -> int:
        if self.probes is not None:
            return len(self.probes)
        return self._n_probes

    def _get(self, key, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    def v4(self) -> RunColumns:
        """IPv4 address runs, packed once (CSR over the population)."""
        return self._get(
            "v4",
            lambda: columns_from_runs(
                (p.v4_runs for p in self.probes), value_type=IPv4Address
            ),
        )

    def v6(self) -> RunColumns:
        """IPv6 address runs, packed once (CSR over the population)."""
        return self._get(
            "v6",
            lambda: columns_from_runs(
                (p.v6_runs for p in self.probes), value_type=IPv6Address
            ),
        )

    def v6_prefix(self) -> RunColumns:
        """IPv6 runs rekeyed to /``plen`` prefixes, adjacent equals merged."""
        return self._get("v6_prefix", lambda: rekey_v6_runs(self.v6(), self.plen))

    def v4_changes(self) -> ChangeColumns:
        """IPv4 change events (see :func:`change_table`)."""
        return self._get("v4_changes", lambda: change_table(self.v4()))

    def v6_prefix_changes(self) -> ChangeColumns:
        """IPv6 /``plen`` prefix change events."""
        return self._get("v6_prefix_changes", lambda: change_table(self.v6_prefix()))

    def v4_change_counts(self) -> np.ndarray:
        """Per-probe IPv4 change counts (see :func:`change_counts`)."""
        return self._get("v4_change_counts", lambda: change_counts(self.v4()))

    def v6_prefix_change_counts(self) -> np.ndarray:
        """Per-probe IPv6 /``plen`` prefix change counts."""
        return self._get(
            "v6_prefix_change_counts", lambda: change_counts(self.v6_prefix())
        )

    def v4_durations(self) -> DurationColumns:
        """IPv4 exact sandwiched durations (see :func:`duration_table`)."""
        return self._get("v4_durations", lambda: duration_table(self.v4()))

    def v6_prefix_durations(self) -> DurationColumns:
        """IPv6 /``plen`` prefix exact sandwiched durations."""
        return self._get("v6_prefix_durations", lambda: duration_table(self.v6_prefix()))

    def dual_mask(self, min_coverage: float = 0.9) -> np.ndarray:
        """Dual-stack flag of each v4 duration (see :func:`dual_stack_mask`)."""
        return self._get(
            ("dual_mask", min_coverage),
            lambda: dual_stack_mask(self.v6(), self.v4_durations(), min_coverage),
        )

    def dual_flags(self) -> np.ndarray:
        """Per-probe ``dual_stack`` attribute as a bool column."""
        return self._get(
            "dual_flags",
            lambda: np.fromiter(
                (bool(p.dual_stack) for p in self.probes),
                dtype=bool,
                count=self.n_probes,
            ),
        )

    def asns(self) -> np.ndarray:
        """Per-probe AS number as an int64 column (``-1`` when unknown)."""
        return self._get(
            "asns",
            lambda: np.fromiter(
                (int(getattr(p, "asn", -1)) for p in self.probes),
                dtype=np.int64,
                count=self.n_probes,
            ),
        )

    def _install_arena_views(self, arena: ColumnArena) -> None:
        """Point the cached packs at the arena buffer (one allocation)."""
        self._arena = arena
        for family in ("v4", "v6"):
            self._cache[family] = RunColumns(
                *(arena[f"{family}.{field}"] for field in _FAMILY_FIELDS)
            )
        self._cache["asns"] = arena["probe.asn"]
        self._cache["dual_flags"] = arena["probe.dual"].astype(bool)
        self._n_probes = int(
            arena.meta.get("n_probes", len(self._cache["v4"].offsets) - 1)
        )

    def arena(self) -> ColumnArena:
        """The pack as one flat :class:`~repro.core.arena.ColumnArena`.

        Built lazily (both families are packed first if needed); once
        built, the cached ``v4``/``v6`` packs and meta columns become
        views into the arena buffer, so the whole pack shares a single
        allocation exportable as raw bytes or a memmap file.
        """
        if self._arena is None:
            columns: Dict[str, np.ndarray] = {}
            for family, cols in (("v4", self.v4()), ("v6", self.v6())):
                for field in _FAMILY_FIELDS:
                    columns[f"{family}.{field}"] = getattr(cols, field)
            columns["probe.asn"] = self.asns()
            columns["probe.dual"] = self.dual_flags().astype(np.uint8)
            meta = {
                "kind": "probe-columns",
                "format": COLUMNS_FORMAT_VERSION,
                "plen": self.plen,
                "n_probes": self.n_probes,
            }
            self._install_arena_views(ColumnArena.build(columns, meta=meta))
        return self._arena

    def save_arena(self, path):
        """Serialize the pack to ``path``; reopen with :meth:`from_arena`."""
        return self.arena().save(path)

    @classmethod
    def from_arena(cls, source, mmap: bool = True) -> "ProbeColumns":
        """Rehydrate a pack from an arena, its bytes, or a saved path.

        The result has ``probes=None`` — every derived table is served
        from the arena buffer, memory-mapped when ``source`` is a path
        and ``mmap`` is true, so processes opening the same path share
        pages instead of re-packing per process.
        """
        if isinstance(source, ColumnArena):
            arena = source
        elif isinstance(source, (bytes, bytearray, memoryview)):
            arena = ColumnArena.from_bytes(bytes(source))
        else:
            arena = ColumnArena.open(source, mmap=mmap)
        meta = arena.meta
        if meta.get("kind") != "probe-columns":
            raise ValueError("arena does not hold a probe-columns pack")
        if meta.get("format") != COLUMNS_FORMAT_VERSION:
            raise ValueError(
                f"probe-columns arena format {meta.get('format')!r} does not "
                f"match the current layout ({COLUMNS_FORMAT_VERSION}); repack"
            )
        pack = cls.__new__(cls)
        pack.probes = None
        pack.plen = int(meta.get("plen", 64))
        pack._cache = {}
        pack._arena = None
        pack._install_arena_views(arena)
        return pack

    def select(self, probe_indices) -> "ProbeColumns":
        """Sub-population pack over ``probe_indices`` (order-preserving).

        Gathers the selected probes' runs and meta columns out of this
        pack with :func:`select_runs` — per-AS packs fall out of a
        global (possibly memory-mapped) pack without re-packing probes.
        """
        idx = np.asarray(probe_indices, dtype=np.int64)
        sub = ProbeColumns.__new__(ProbeColumns)
        sub.probes = (
            [self.probes[int(i)] for i in idx] if self.probes is not None else None
        )
        sub.plen = self.plen
        sub._arena = None
        sub._cache = {
            "v4": select_runs(self.v4(), idx),
            "v6": select_runs(self.v6(), idx),
            "asns": self.asns()[idx],
            "dual_flags": self.dual_flags()[idx],
        }
        sub._n_probes = int(len(idx))
        return sub

    def __getstate__(self):
        """Pickle as ``(plen, arena)``: one flat buffer, no probe objects."""
        return {
            "format": COLUMNS_FORMAT_VERSION,
            "plen": self.plen,
            "arena": self.arena(),
        }

    def __setstate__(self, state):
        """Rehydrate from the pickled arena (``probes`` becomes None)."""
        if state.get("format") != COLUMNS_FORMAT_VERSION:
            raise ValueError(
                f"pickled ProbeColumns uses layout {state.get('format')!r}; "
                f"current format is {COLUMNS_FORMAT_VERSION} — repack"
            )
        self.probes = None
        self.plen = int(state["plen"])
        self._cache = {}
        self._arena = None
        self._install_arena_views(state["arena"])


__all__ = [
    "COLUMNS_FORMAT_VERSION",
    "ChangeColumns",
    "DurationColumns",
    "ProbeColumns",
    "RunColumns",
    "change_counts",
    "change_table",
    "columns_from_runs",
    "consistent_network_period",
    "cpl_histogram_np",
    "cpl_of_changes",
    "crossing_rates_np",
    "cumulative_ttf_columns",
    "detect_periods_np",
    "dual_stack_mask",
    "duration_table",
    "evaluate_cdf_columns",
    "inferred_plen_counts_np",
    "observation_flags",
    "probe_exhibits_period_np",
    "probe_period_flags",
    "rekey_v6_runs",
    "select_runs",
    "split_durations_by_stack_np",
    "total_duration_years_np",
    "total_time_fraction_columns",
]
