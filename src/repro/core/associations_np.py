"""NumPy-vectorized CDN association analytics.

The pure-Python functions in :mod:`repro.core.associations` are the
reference implementation; these vectorized equivalents handle
multi-million-tuple datasets (the paper's CDN feed is billions of
tuples) an order of magnitude faster.  The test suite asserts exact
agreement between the two implementations on random inputs.

Input is columnar: three equal-length arrays ``days`` (int), ``v4_keys``
(uint32 /24 network addresses) and ``v6_keys``.  Because NumPy has no
native 128-bit integer, /64 keys are passed as the *upper 64 bits* of
the /64 network address (``int(prefix.network) >> 64``), which is a
bijection for /64s; :func:`columns_from_triples` performs the packing.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.associations import BoxStats, Triple


def columns_from_triples(triples: Iterable[Triple]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack (day, v4_key, v6_key) triples into columnar arrays.

    Sequences (lists, tuples) are iterated in place; only true
    generators are materialized — on a multi-million-triple list this
    halves peak memory versus an unconditional copy.
    """
    if isinstance(triples, Sequence):
        materialized: Sequence[Triple] = triples
    else:
        materialized = list(triples)
    if not materialized:
        empty64 = np.empty(0, dtype=np.uint64)
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint64), empty64
    days = np.fromiter((t[0] for t in materialized), dtype=np.int64, count=len(materialized))
    v4 = np.fromiter((t[1] for t in materialized), dtype=np.uint64, count=len(materialized))
    v6 = np.fromiter(
        (t[2] >> 64 for t in materialized), dtype=np.uint64, count=len(materialized)
    )
    return days, v4, v6


def association_durations_np(
    days: np.ndarray, v4_keys: np.ndarray, v6_keys: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`repro.core.associations.association_durations`.

    Returns the array of run durations (days), in no particular order.
    """
    if not (len(days) == len(v4_keys) == len(v6_keys)):
        raise ValueError("column arrays must have equal length")
    if len(days) == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((v4_keys, days, v6_keys))
    day_sorted = days[order]
    v4_sorted = v4_keys[order]
    v6_sorted = v6_keys[order]

    # A new run starts where the /64 changes or the /24 changes.
    new_v6 = np.empty(len(days), dtype=bool)
    new_v6[0] = True
    new_v6[1:] = v6_sorted[1:] != v6_sorted[:-1]
    new_run = new_v6.copy()
    new_run[1:] |= v4_sorted[1:] != v4_sorted[:-1]

    run_starts = np.flatnonzero(new_run)
    run_ends = np.empty_like(run_starts)
    run_ends[:-1] = run_starts[1:] - 1
    run_ends[-1] = len(days) - 1
    return day_sorted[run_ends] - day_sorted[run_starts] + 1


def degree_count_arrays(
    primary: np.ndarray, secondary: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array form of the degree kernel: ``(keys, unique, hits)``.

    ``keys`` are the sorted distinct ``primary`` values, ``unique[i]``
    the number of distinct ``secondary`` partners of ``keys[i]`` and
    ``hits[i]`` its total row count.  Safe on empty and single-row
    populations (sparse shards), so out-of-core partials can call it
    per shard without pre-checking; returns empty arrays for empty
    input.
    """
    if len(primary) != len(secondary):
        raise ValueError("column arrays must have equal length")
    if len(primary) == 0:
        empty_keys = np.empty(0, dtype=np.asarray(primary).dtype)
        return empty_keys, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    keys, unique_counts, hit_counts = _degree_count_arrays_nonempty(primary, secondary)
    return keys, unique_counts, hit_counts


def _degree_count_arrays_nonempty(
    primary: np.ndarray, secondary: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct-partner and total-hit counts per ``primary`` key.

    One lexsort plus adjacent-difference passes: a new *pair* starts
    where either column changes in the sorted order, and a new *key
    group* where the primary changes — markedly faster than the former
    ``np.unique(..., axis=0)`` on a stacked 2-column array, which pays
    for a structured-dtype view and a full row-wise sort.
    """
    order = np.lexsort((secondary, primary))
    primary_sorted = primary[order]
    secondary_sorted = secondary[order]

    new_key = np.empty(len(primary_sorted), dtype=bool)
    new_key[0] = True
    np.not_equal(primary_sorted[1:], primary_sorted[:-1], out=new_key[1:])
    key_starts = np.flatnonzero(new_key)
    keys = primary_sorted[key_starts]
    hit_counts = np.diff(np.append(key_starts, len(primary_sorted)))

    new_pair = new_key.copy()
    new_pair[1:] |= secondary_sorted[1:] != secondary_sorted[:-1]
    # Each distinct pair inherits its group from the cumulative key index,
    # so distinct-partner counts are group sizes among the pair starts.
    group_of_pair = np.cumsum(new_key) - 1
    unique_counts = np.bincount(
        group_of_pair[new_pair], minlength=len(keys)
    )
    return keys, unique_counts, hit_counts


def _degree_counts_sorted(
    primary: np.ndarray, secondary: np.ndarray
) -> Tuple[Dict[int, int], Dict[int, int]]:
    keys, unique_counts, hit_counts = degree_count_arrays(primary, secondary)
    unique = dict(zip((int(k) for k in keys), (int(c) for c in unique_counts)))
    hits = dict(zip((int(k) for k in keys), (int(c) for c in hit_counts)))
    return unique, hits


def v4_degree_counts_np(
    v4_keys: np.ndarray, v6_keys: np.ndarray
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Vectorized :func:`repro.core.associations.v4_degree_counts`."""
    if len(v4_keys) != len(v6_keys):
        raise ValueError("column arrays must have equal length")
    if len(v4_keys) == 0:
        return {}, {}
    return _degree_counts_sorted(v4_keys, v6_keys)


def v6_degree_counts_np(v4_keys: np.ndarray, v6_keys: np.ndarray) -> Dict[int, int]:
    """Vectorized :func:`repro.core.associations.v6_degree_counts`."""
    if len(v4_keys) != len(v6_keys):
        raise ValueError("column arrays must have equal length")
    if len(v4_keys) == 0:
        return {}
    unique, _hits = _degree_counts_sorted(v6_keys, v4_keys)
    return unique


def duration_percentiles_np(
    durations: np.ndarray, fractions: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95)
) -> List[float]:
    """Linear-interpolation percentiles matching ``box_stats``."""
    if len(durations) == 0:
        raise ValueError("cannot take percentiles of empty data")
    return [float(value) for value in np.quantile(durations, fractions)]


def box_stats_np(
    durations: np.ndarray, empty_ok: bool = False
) -> Optional[BoxStats]:
    """Bit-identical :func:`repro.core.associations.box_stats` over an array.

    ``np.quantile`` interpolates as ``a + (b - a) * t``, which can differ
    from the reference's ``a * (1 - w) + b * w`` in the last ulp, so the
    percentiles are evaluated with the reference's exact expression over
    one ``np.sort`` (each percentile is O(1) after the sort).

    Empty input raises like the reference unless ``empty_ok`` — the
    escape hatch sparse out-of-core shards use to report "no box"
    (``None``) instead of blowing up a whole partial.
    """
    ordered = np.sort(np.asarray(durations))
    n = len(ordered)
    if n == 0:
        if empty_ok:
            return None
        raise ValueError("cannot take percentile of empty data")

    def percentile(fraction: float) -> float:
        if n == 1:
            return float(ordered[0])
        position = fraction * (n - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        low_value = float(ordered[low])
        high_value = float(ordered[high])
        if low == high or low_value == high_value:
            return low_value
        weight = position - low
        return low_value * (1 - weight) + high_value * weight

    return BoxStats(
        p5=percentile(0.05),
        q1=percentile(0.25),
        median=percentile(0.50),
        q3=percentile(0.75),
        p95=percentile(0.95),
        count=n,
    )


def box_stats_from_counts(
    values: np.ndarray, counts: np.ndarray, empty_ok: bool = False
) -> Optional[BoxStats]:
    """Exact :func:`box_stats_np` over a value histogram.

    Out-of-core runs never hold every duration at once — they accumulate
    ``counts[i]`` occurrences of ``values[i]`` (days fit in a small
    histogram).  The k-th order statistic of the expanded multiset is
    recovered with a cumulative-sum ``searchsorted``, and each
    percentile then uses the reference's exact
    ``low * (1 - w) + high * w`` expression — bit-identical to sorting
    the expanded array, without materializing it.
    """
    values = np.asarray(values)
    counts = np.asarray(counts, dtype=np.int64)
    if len(values) != len(counts):
        raise ValueError("values and counts must have equal length")
    keep = counts > 0
    values = values[keep]
    counts = counts[keep]
    order = np.argsort(values, kind="stable")
    values = values[order]
    counts = counts[order]
    cumulative = np.cumsum(counts)
    n = int(cumulative[-1]) if len(cumulative) else 0
    if n == 0:
        if empty_ok:
            return None
        raise ValueError("cannot take percentile of empty data")

    def order_stat(index: int) -> float:
        # ordered[index] of the expanded multiset: first bucket whose
        # cumulative count exceeds ``index``.
        return float(values[np.searchsorted(cumulative, index, side="right")])

    def percentile(fraction: float) -> float:
        if n == 1:
            return order_stat(0)
        position = fraction * (n - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        low_value = order_stat(low)
        high_value = order_stat(high)
        if low == high or low_value == high_value:
            return low_value
        weight = position - low
        return low_value * (1 - weight) + high_value * weight

    return BoxStats(
        p5=percentile(0.05),
        q1=percentile(0.25),
        median=percentile(0.50),
        q3=percentile(0.75),
        p95=percentile(0.95),
        count=n,
    )


def unpack_v6_degree_keys(degree_counts: Dict[int, int]) -> Dict[int, int]:
    """Re-expand packed upper-64-bit /64 keys to full integer keys."""
    return {key << 64: count for key, count in degree_counts.items()}


__all__ = [
    "association_durations_np",
    "box_stats_from_counts",
    "box_stats_np",
    "columns_from_triples",
    "degree_count_arrays",
    "duration_percentiles_np",
    "unpack_v6_degree_keys",
    "v4_degree_counts_np",
    "v6_degree_counts_np",
]
