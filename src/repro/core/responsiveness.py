"""Address-responsiveness session estimation, Zmap-style (Section 3.2).

Moura et al. estimated ISP address-assignment dynamics by pinging whole
ISP address spaces and reading session durations off *continuous
periods of responsiveness* of each address.  The paper finds those
estimates far shorter than RIPE-Atlas-derived durations and "suspect[s]
that the inconsistencies arise due to the Zmap-based technique's
tendency to under-report session durations".

This module reproduces the comparison mechanically.  Given ground-truth
subscriber timelines, an address is *responsive* at a probing round
when (a) it is currently assigned to some subscriber, (b) the
subscriber's CPE is up, and (c) the probe is not lost.  Responsiveness
runs then under-report true assignment durations for three compounding
reasons the analysis makes measurable:

* CPE downtime breaks a run without an address change;
* probe loss breaks a run spuriously;
* an address reassigned quickly to *another* subscriber looks like one
  continuous session of the address (over-merge), while the same
  subscriber's move to a new address ends the run early.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.netsim.sim import SubscriberTimeline


@dataclass(frozen=True)
class ProbingConfig:
    """How the hypothetical scanner behaves."""

    round_hours: float = 1.0  # probing cadence
    loss_rate: float = 0.02  # per-probe loss probability
    tolerance_rounds: int = 1  # unanswered rounds tolerated inside a run

    def __post_init__(self) -> None:
        if self.round_hours <= 0:
            raise ValueError("round_hours must be positive")
        if not 0 <= self.loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.tolerance_rounds < 0:
            raise ValueError("tolerance_rounds must be non-negative")


def _availability_windows(
    end_hour: float, mean_up: float, mean_down: float, rng: random.Random
) -> List[Tuple[float, float]]:
    """Per-subscriber CPE uptime windows (alternating renewal process)."""
    windows: List[Tuple[float, float]] = []
    now = 0.0
    while now < end_hour:
        up_end = min(now + rng.expovariate(1.0 / mean_up), end_hour)
        windows.append((now, up_end))
        now = up_end + (rng.expovariate(1.0 / mean_down) if mean_down else 0.0)
    return windows


def estimate_sessions(
    timelines: Dict[int, SubscriberTimeline],
    end_hour: float,
    config: ProbingConfig = ProbingConfig(),
    mean_up_hours: float = 2000.0,
    mean_down_hours: float = 8.0,
    seed: int = 0,
) -> List[float]:
    """Zmap-style session durations (hours) over the ISP's address space.

    Returns the distribution of responsiveness-run lengths across all
    probed addresses — the quantity Moura et al. interpret as session
    durations.
    """
    rng = random.Random(seed)

    # Ground truth: per address, the time intervals during which it was
    # assigned to an *up* subscriber.
    live: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
    for sub_id, timeline in sorted(timelines.items()):
        sub_rng = random.Random((seed << 16) ^ sub_id)
        uptime = _availability_windows(end_hour, mean_up_hours, mean_down_hours, sub_rng)
        up_index = 0
        for interval in timeline.v4:
            while up_index < len(uptime) and uptime[up_index][1] <= interval.start:
                up_index += 1
            cursor = up_index
            while cursor < len(uptime) and uptime[cursor][0] < interval.end:
                start = max(interval.start, uptime[cursor][0])
                end = min(interval.end, uptime[cursor][1])
                if end > start:
                    live[int(interval.value)].append((start, end))
                cursor += 1

    durations: List[float] = []
    rounds = int(end_hour / config.round_hours)
    for address in sorted(live):
        windows = sorted(live[address])
        window_index = 0
        run_start: float = -1.0
        last_seen: float = -1.0
        misses = 0
        for round_index in range(rounds):
            when = round_index * config.round_hours
            while window_index < len(windows) and windows[window_index][1] <= when:
                window_index += 1
            assigned_and_up = (
                window_index < len(windows) and windows[window_index][0] <= when
            )
            responsive = assigned_and_up and rng.random() >= config.loss_rate
            if responsive:
                if run_start < 0:
                    run_start = when
                last_seen = when
                misses = 0
            elif run_start >= 0:
                misses += 1
                if misses > config.tolerance_rounds:
                    durations.append(last_seen - run_start + config.round_hours)
                    run_start, misses = -1.0, 0
        if run_start >= 0:
            durations.append(last_seen - run_start + config.round_hours)
    return durations


def true_assignment_durations(timelines: Dict[int, SubscriberTimeline]) -> List[float]:
    """Ground-truth v4 assignment durations (interior intervals only)."""
    durations: List[float] = []
    for timeline in timelines.values():
        for interval in timeline.v4[1:-1]:
            durations.append(interval.duration)
    return durations


def underestimation_factor(
    estimated: Sequence[float], truth: Sequence[float]
) -> float:
    """Ratio of true to estimated mean duration (> 1 = under-reporting)."""
    if not estimated or not truth:
        raise ValueError("both samples must be non-empty")
    return (sum(truth) / len(truth)) / (sum(estimated) / len(estimated))


__all__ = [
    "ProbingConfig",
    "estimate_sessions",
    "true_assignment_durations",
    "underestimation_factor",
]
