"""Flat buffer arena backing the columnar run packs.

A :class:`ColumnArena` stores a set of named 1-D numpy arrays
back-to-back in one contiguous byte buffer, with a small self-describing
header (magic, format version, JSON column spec, free-form metadata).
The arena is the serialization unit of :class:`repro.core.analysis_np.ProbeColumns`:

- **in memory** the packed columns are views into one flat buffer, so a
  whole pack travels as a single ``bytes`` object (picklable, hashable);
- **on disk** the same layout is a file that any process can
  ``np.memmap`` read-only, so pool workers, streaming run sources and
  the out-of-core store map packs **zero-copy by path** instead of
  re-packing (or re-pickling) per process.

Layout (format version 1)::

    bytes 0..7    magic  b"RPRARENA"
    bytes 8..15   header length ``H`` (uint64 little-endian)
    bytes 16..16+H  header JSON: {"version", "meta", "columns"}
                    columns: [[name, dtype_str, count, offset], ...]
                    (offset is relative to the payload start)
    16+H..P       zero padding so the payload starts 64-byte aligned
    P..           column payloads, each 16-byte aligned

All offsets in the spec are relative to the payload start, so the header
can be rewritten (e.g. with extra metadata) without touching payload
bytes.  Column dtypes are limited to fixed-width little-endian numeric
types; every column the run packs use is 8 bytes wide, keeping views
naturally aligned.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: File/bytes magic prefix of a serialized arena.
ARENA_MAGIC = b"RPRARENA"

#: Format version written into (and required of) arena headers.
ARENA_FORMAT_VERSION = 1

_HEADER_LEN_BYTES = 8
_PAYLOAD_ALIGN = 64
_COLUMN_ALIGN = 16


def _align(offset: int, alignment: int) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``."""
    return (offset + alignment - 1) // alignment * alignment


class ColumnArena:
    """Named 1-D numpy columns packed into one flat byte buffer.

    Build one from arrays with :meth:`build`, or rehydrate with
    :meth:`from_bytes` / :meth:`open` (the latter memory-maps the file,
    so column views share pages with every other process mapping the
    same path).  Column views are read-only: an arena is an immutable
    snapshot, which is what makes sharing it by buffer or path safe.
    """

    def __init__(
        self,
        buffer: np.ndarray,
        spec: List[Tuple[str, str, int, int]],
        meta: Optional[dict] = None,
        path: Optional[Path] = None,
    ) -> None:
        if buffer.dtype != np.uint8 or buffer.ndim != 1:
            raise ValueError("arena buffer must be a flat uint8 array")
        self._buffer = buffer
        self._spec = [(str(n), str(d), int(c), int(o)) for n, d, c, o in spec]
        self.meta: dict = dict(meta or {})
        self.path = Path(path) if path is not None else None
        self._views: Dict[str, np.ndarray] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def build(
        cls, columns: Dict[str, np.ndarray], meta: Optional[dict] = None
    ) -> "ColumnArena":
        """Pack named 1-D arrays into a fresh arena (copies once)."""
        spec: List[Tuple[str, str, int, int]] = []
        offset = 0
        arrays = []
        for name, array in columns.items():
            array = np.ascontiguousarray(array)
            if array.ndim != 1:
                raise ValueError(f"arena column {name!r} must be 1-D")
            if array.dtype.hasobject:
                raise ValueError(f"arena column {name!r} has object dtype")
            offset = _align(offset, _COLUMN_ALIGN)
            spec.append((name, array.dtype.str, len(array), offset))
            arrays.append((offset, array))
            offset += array.nbytes
        buffer = np.zeros(offset, dtype=np.uint8)
        for start, array in arrays:
            buffer[start : start + array.nbytes] = array.view(np.uint8)
        arena = cls(buffer, spec, meta=meta)
        return arena

    # -- access -------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Column names, in payload order."""
        return tuple(name for name, _, _, _ in self._spec)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (header excluded)."""
        return int(self._buffer.nbytes)

    def __contains__(self, name: str) -> bool:
        return any(entry[0] == name for entry in self._spec)

    def __getitem__(self, name: str) -> np.ndarray:
        """Read-only view of one column (no copy)."""
        view = self._views.get(name)
        if view is None:
            for col_name, dtype_str, count, offset in self._spec:
                if col_name == name:
                    dtype = np.dtype(dtype_str)
                    raw = self._buffer[offset : offset + count * dtype.itemsize]
                    view = raw.view(dtype)
                    view.flags.writeable = False
                    self._views[name] = view
                    break
            else:
                raise KeyError(name)
        return view

    def columns(self) -> Dict[str, np.ndarray]:
        """All columns as a name -> read-only view mapping."""
        return {name: self[name] for name in self.names}

    # -- serialization ------------------------------------------------

    def _header_bytes(self) -> bytes:
        header = {
            "version": ARENA_FORMAT_VERSION,
            "meta": self.meta,
            "columns": [list(entry) for entry in self._spec],
        }
        return json.dumps(header, sort_keys=True).encode("utf-8")

    def to_bytes(self) -> bytes:
        """Serialize header + payload into one ``bytes`` object."""
        header = self._header_bytes()
        prefix_len = len(ARENA_MAGIC) + _HEADER_LEN_BYTES + len(header)
        payload_start = _align(prefix_len, _PAYLOAD_ALIGN)
        out = bytearray(payload_start + self.nbytes)
        out[: len(ARENA_MAGIC)] = ARENA_MAGIC
        out[len(ARENA_MAGIC) : len(ARENA_MAGIC) + _HEADER_LEN_BYTES] = len(
            header
        ).to_bytes(_HEADER_LEN_BYTES, "little")
        out[len(ARENA_MAGIC) + _HEADER_LEN_BYTES : prefix_len] = header
        out[payload_start:] = self._buffer.tobytes()
        return bytes(out)

    def save(self, path) -> Path:
        """Write the arena to ``path`` (memmap-openable afterwards)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "wb") as stream:
            stream.write(self.to_bytes())
        self.path = target
        return target

    @staticmethod
    def _parse_header(data) -> Tuple[dict, int]:
        """Validate magic, return (header dict, payload offset)."""
        magic = bytes(data[: len(ARENA_MAGIC)])
        if magic != ARENA_MAGIC:
            raise ValueError(f"not a column arena (bad magic {magic!r})")
        header_len = int.from_bytes(
            bytes(data[len(ARENA_MAGIC) : len(ARENA_MAGIC) + _HEADER_LEN_BYTES]),
            "little",
        )
        start = len(ARENA_MAGIC) + _HEADER_LEN_BYTES
        header = json.loads(bytes(data[start : start + header_len]).decode("utf-8"))
        version = header.get("version")
        if version != ARENA_FORMAT_VERSION:
            raise ValueError(
                f"unsupported arena format version {version!r} "
                f"(expected {ARENA_FORMAT_VERSION})"
            )
        payload_start = _align(start + header_len, _PAYLOAD_ALIGN)
        return header, payload_start

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnArena":
        """Rehydrate an arena from :meth:`to_bytes` output."""
        header, payload_start = cls._parse_header(data)
        buffer = np.frombuffer(data, dtype=np.uint8, offset=payload_start)
        return cls(buffer, [tuple(e) for e in header["columns"]], meta=header["meta"])

    @classmethod
    def open(cls, path, mmap: bool = True) -> "ColumnArena":
        """Open a saved arena; ``mmap=True`` maps it read-only, zero-copy."""
        target = Path(path)
        if mmap:
            raw = np.memmap(target, dtype=np.uint8, mode="r")
        else:
            raw = np.fromfile(target, dtype=np.uint8)
        header, payload_start = cls._parse_header(raw)
        buffer = raw[payload_start:]
        return cls(
            buffer, [tuple(e) for e in header["columns"]], meta=header["meta"], path=target
        )

    def is_memmapped(self) -> bool:
        """True when the payload is a memory-mapped file view."""
        base = self._buffer
        while base is not None:
            if isinstance(base, np.memmap):
                return True
            base = getattr(base, "base", None)
        return False

    # -- pickling -----------------------------------------------------

    def __reduce__(self):
        """Pickle as serialized bytes (one buffer, not per-column arrays)."""
        return (ColumnArena.from_bytes, (self.to_bytes(),))


def arena_from_arrays(
    named: Iterable[Tuple[str, np.ndarray]], meta: Optional[dict] = None
) -> ColumnArena:
    """Convenience builder from an iterable of ``(name, array)`` pairs."""
    return ColumnArena.build(dict(named), meta=meta)


__all__ = [
    "ARENA_FORMAT_VERSION",
    "ARENA_MAGIC",
    "ColumnArena",
    "arena_from_arrays",
]
