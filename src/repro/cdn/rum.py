"""RUM association record schema.

The CDN aggregates IPv4 addresses to /24 and IPv6 addresses to /64
before storage (Section 4.1); an association tuple is
``(IPv4 /24, IPv6 /64, date)``.  For bulk analysis the integer triple
form ``(day, v4_key, v6_key)`` is used (see
:mod:`repro.core.associations`); this module converts between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.core.associations import Triple
from repro.ip.addr import IPv4Address, IPv6Address
from repro.ip.prefix import IPv4Prefix, IPv6Prefix


@dataclass(frozen=True)
class AssociationRecord:
    """One IPv4/IPv6 association observed on a given day."""

    day: int
    v4_prefix: IPv4Prefix
    v6_prefix: IPv6Prefix

    def __post_init__(self) -> None:
        if self.v4_prefix.plen != 24:
            raise ValueError(f"v4 side must be a /24, got /{self.v4_prefix.plen}")
        if self.v6_prefix.plen != 64:
            raise ValueError(f"v6 side must be a /64, got /{self.v6_prefix.plen}")
        if self.day < 0:
            raise ValueError(f"day must be non-negative, got {self.day}")

    @property
    def triple(self) -> Triple:
        return (self.day, int(self.v4_prefix.network), int(self.v6_prefix.network))

    @classmethod
    def from_triple(cls, triple: Triple) -> "AssociationRecord":
        day, v4_key, v6_key = triple
        return cls(
            day=day,
            v4_prefix=IPv4Prefix(v4_key, 24),
            v6_prefix=IPv6Prefix(v6_key, 64),
        )

    @classmethod
    def from_addresses(
        cls, day: int, v4: IPv4Address, v6: IPv6Address
    ) -> "AssociationRecord":
        """Aggregate raw client addresses to the CDN's storage granularity."""
        return cls(day=day, v4_prefix=IPv4Prefix(int(v4), 24), v6_prefix=IPv6Prefix(int(v6), 64))


def to_triples(records: Iterable[AssociationRecord]) -> List[Triple]:
    """Convert rich records to integer triples."""
    return [record.triple for record in records]


def from_triples(triples: Iterable[Triple]) -> Iterator[AssociationRecord]:
    """Convert integer triples back to rich records."""
    for triple in triples:
        yield AssociationRecord.from_triple(triple)


def association_key(v4: IPv4Address, v6: IPv6Address) -> Tuple[int, int]:
    """The aggregated (v4 /24, v6 /64) integer key pair for raw addresses."""
    return (int(v4) & 0xFFFFFF00, (int(v6) >> 64) << 64)


__all__ = ["AssociationRecord", "association_key", "from_triples", "to_triples"]
