"""CDN real-user-monitoring (RUM) substrate.

Generates ``(day, IPv4 /24, IPv6 /64)`` association tuples with the
generative structure the paper infers from the Akamai dataset:

* **fixed-line clients** reuse the :mod:`repro.netsim` subscriber
  timelines: associations are bounded by the IPv4 address lifetime, the
  /24s fill up to the ~150-200 active-subscriber density of real
  residential blocks, and v4/v6 relationships are one-to-one;
* **mobile devices** sit behind CGNAT: ephemeral per-device /64s (75 %
  of association durations <= 1 day, a tail to ~30 days), tens of
  thousands of /64s multiplexed behind each public /24, and /64-to-/24
  affinity (87 % of mobile /64s associate with a single /24);
* **cross-network noise** models devices switching between cellular and
  WiFi mid-transaction — the spurious associations the ASN-mismatch
  filter removes.
"""

from repro.cdn.classify import PrefixClassifier
from repro.cdn.clients import (
    FixedPopulation,
    MobileConfig,
    MobilePopulation,
    cdn_fixed_config,
)
from repro.cdn.collector import CdnDataset, collect
from repro.cdn.rum import AssociationRecord

__all__ = [
    "AssociationRecord",
    "CdnDataset",
    "FixedPopulation",
    "MobileConfig",
    "MobilePopulation",
    "PrefixClassifier",
    "cdn_fixed_config",
    "collect",
]
