"""CDN client populations.

Two generators produce association triples:

* :class:`FixedPopulation` — residential dual-stack clients on netsim
  subscriber timelines.  The CDN samples a client's addresses once per
  active day (mid-day).  ``cdn_fixed_config`` rescales an ISP profile's
  IPv4 blocks so subscriber density per /24 matches real residential
  blocks (~150-200 actives), which is what Figure 4b measures.
* :class:`MobilePopulation` — cellular devices: a per-device ephemeral
  /64 (renewed from the operator's pool when its lifetime expires) and
  a CGNAT egress /24 with per-device affinity.

Both can inject *cross-network noise*: a fraction of reports pair the
client's v6 with a v4 from a different network (cellular/WiFi
switchers), which the ASN-mismatch filter of Section 4.1 removes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence

from repro.core.associations import Triple
from repro.ip.prefix import IPv4Prefix, IPv6Prefix
from repro.netsim.cgnat import CgnatGateway
from repro.netsim.isp import Isp, IspConfig
from repro.netsim.sim import SubscriberTimeline

HOURS_PER_DAY = 24


def cdn_fixed_config(
    config: IspConfig, num_subscribers: int, target_density: float = 0.5
) -> IspConfig:
    """Rescale an ISP profile's IPv4 blocks to a realistic /24 density.

    Shrinks the announced blocks so that ``num_subscribers`` occupy
    roughly ``target_density`` of the address space — i.e. each /24
    carries on the order of ``256 * target_density`` active subscribers,
    the density behind Figure 4b's 150-200 peak.
    """
    if not 0 < target_density < 1:
        raise ValueError("target_density must be in (0, 1)")
    needed = int(num_subscribers / target_density) + 16
    # Blocks are whole /24s so the per-/24 subscriber density is controlled
    # directly: density = subscribers / (num_blocks * 256).
    num_blocks = max(1, -(-needed // 256))  # ceil: never exceed target density
    v4 = replace(config.v4, num_blocks=num_blocks, block_plen=24)
    return replace(config, v4=v4)


class FixedPopulation:
    """Fixed-line dual-stack clients sampled from subscriber timelines."""

    def __init__(
        self,
        isp: Isp,
        timelines: dict[int, SubscriberTimeline],
        days: int,
        seed: int = 0,
        min_activity: float = 0.03,
        max_activity: float = 0.2,
    ) -> None:
        if days <= 0:
            raise ValueError("days must be positive")
        self.isp = isp
        self.days = days
        self._timelines = timelines
        self._rng = random.Random((seed << 20) ^ isp.asn)
        self._activity = {
            sub_id: self._rng.uniform(min_activity, max_activity) for sub_id in timelines
        }

    def triples(self) -> Iterator[Triple]:
        """One association per dual-stack subscriber per active day."""
        for sub_id, timeline in self._timelines.items():
            if not timeline.dual_stack:
                continue
            activity = self._activity[sub_id]
            v4_index = v6_index = 0
            v4_intervals, v6_intervals = timeline.v4, timeline.v6_lan
            for day in range(self.days):
                if self._rng.random() >= activity:
                    continue
                sample_hour = day * HOURS_PER_DAY + 12
                v4_index = _advance(v4_intervals, v4_index, sample_hour)
                v6_index = _advance(v6_intervals, v6_index, sample_hour)
                if v4_index >= len(v4_intervals) or v6_index >= len(v6_intervals):
                    continue
                v4_value = v4_intervals[v4_index].value
                v6_value = v6_intervals[v6_index].value
                yield (day, int(v4_value) & 0xFFFFFF00, int(v6_value.network))


def _advance(intervals: Sequence, index: int, hour: float) -> int:
    while index < len(intervals) and intervals[index].end <= hour:
        index += 1
    return index


@dataclass(frozen=True)
class MobileConfig:
    """Shape of a cellular population's address dynamics.

    ``short_lifetime_fraction`` of /64 lifetimes are sub-day (uniform in
    (0, 1] days); the rest are exponential with ``long_lifetime_mean_days``
    capped at ``lifetime_cap_days`` — reproducing the 75 %-within-a-day
    head and ~30-day tail of Section 4.2 (set the mean/cap higher for
    EE-like operators with durations reaching 50 days).
    """

    num_devices: int = 1000
    activity: float = 0.6
    short_lifetime_fraction: float = 0.78
    long_lifetime_mean_days: float = 5.0
    lifetime_cap_days: float = 30.0
    egress_blocks: int = 2
    egress_stickiness: float = 0.85
    cross_network_noise: float = 0.0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if not 0 < self.activity <= 1:
            raise ValueError("activity must be in (0, 1]")
        if not 0 <= self.short_lifetime_fraction <= 1:
            raise ValueError("short_lifetime_fraction must be in [0, 1]")
        if self.long_lifetime_mean_days <= 0 or self.lifetime_cap_days <= 0:
            raise ValueError("lifetime parameters must be positive")
        if not 0 <= self.cross_network_noise < 1:
            raise ValueError("cross_network_noise must be in [0, 1)")


class MobilePopulation:
    """Cellular devices behind CGNAT with ephemeral per-device /64s."""

    def __init__(
        self,
        isp: Isp,
        config: MobileConfig,
        days: int,
        seed: int = 0,
        foreign_v4_blocks: Optional[Sequence[IPv4Prefix]] = None,
    ) -> None:
        if days <= 0:
            raise ValueError("days must be positive")
        if isp.v6_plan is None:
            raise ValueError("mobile population requires an ISP with IPv6")
        self.isp = isp
        self.config = config
        self.days = days
        self._rng = random.Random((seed << 20) ^ isp.asn ^ 0x6D6F)
        blocks = isp.v4_plan.blocks[: config.egress_blocks]
        egress = [IPv4Prefix(int(block.network), 24) for block in blocks]
        self._gateway = CgnatGateway(egress, stickiness=config.egress_stickiness)
        self._foreign_v4_blocks = list(foreign_v4_blocks or [])

    def _draw_lifetime_days(self, rng: random.Random) -> float:
        config = self.config
        if rng.random() < config.short_lifetime_fraction:
            return max(0.05, rng.random())
        lifetime = rng.expovariate(1.0 / config.long_lifetime_mean_days)
        return min(max(lifetime, 1.0), config.lifetime_cap_days)

    def _new_prefix(self, rng: random.Random, home_pool: int) -> IPv6Prefix:
        delegation, _pool = self.isp.v6_plan.allocate(rng, home_pool)
        return delegation

    def triples(self) -> Iterator[Triple]:
        """One association per device per active day."""
        config = self.config
        rng = self._rng
        plan = self.isp.v6_plan
        for device in range(config.num_devices):
            home_pool = plan.home_pool_index(rng)
            prefix = self._new_prefix(rng, home_pool)
            expires = self._draw_lifetime_days(rng)
            for day in range(self.days):
                if day >= expires:
                    plan.release(prefix)
                    prefix = self._new_prefix(rng, home_pool)
                    expires = day + self._draw_lifetime_days(rng)
                if rng.random() >= config.activity:
                    continue
                if self._foreign_v4_blocks and rng.random() < config.cross_network_noise:
                    foreign = rng.choice(self._foreign_v4_blocks)
                    v4_key = (
                        int(foreign.network)
                        + (rng.randrange(foreign.num_addresses) & ~0xFF)
                    )
                else:
                    v4_key = int(self._gateway.egress_address(device, rng)) & 0xFFFFFF00
                yield (day, v4_key, int(prefix.network))
            plan.release(prefix)


def materialize(population) -> List[Triple]:
    """Collect a population's triples into a list (test/benchmark helper)."""
    return list(population.triples())


__all__ = [
    "FixedPopulation",
    "MobileConfig",
    "MobilePopulation",
    "cdn_fixed_config",
    "materialize",
]
