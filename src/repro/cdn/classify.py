"""Prefix classification: access kind (fixed/mobile) and registry.

The paper labels each prefix as mobile or fixed with a methodology
following Rula et al. (identifying cellular access prefixes), and
groups prefixes by delegating RIR.  Our classifier resolves a prefix to
its origin AS through the routing table and reads the AS's access kind
from the registry — the same label map a Rula-style classifier would
materialize — and maps addresses to RIRs via the registry super-blocks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bgp.registry import AccessKind, RIR, Registry
from repro.bgp.table import RoutingTable
from repro.ip.prefix import IPv4Prefix, IPv6Prefix


class PrefixClassifier:
    """Resolve /24 and /64 keys to origin ASN, access kind, and RIR."""

    def __init__(self, table: RoutingTable, registry: Registry) -> None:
        self._table = table
        self._registry = registry
        self._v4_cache: Dict[int, Optional[int]] = {}
        self._v6_cache: Dict[int, Optional[int]] = {}

    def asn_of_v4_key(self, v4_key: int) -> Optional[int]:
        """Origin ASN of a /24 given as its integer network address."""
        if v4_key not in self._v4_cache:
            self._v4_cache[v4_key] = self._table.origin_asn(IPv4Prefix(v4_key, 24))
        return self._v4_cache[v4_key]

    def asn_of_v6_key(self, v6_key: int) -> Optional[int]:
        """Origin ASN of a /64 given as its integer network address."""
        if v6_key not in self._v6_cache:
            self._v6_cache[v6_key] = self._table.origin_asn(IPv6Prefix(v6_key, 64))
        return self._v6_cache[v6_key]

    def kind_of_asn(self, asn: Optional[int]) -> Optional[AccessKind]:
        """Access kind of an AS (None for unknown/unregistered ASNs)."""
        if asn is None or asn not in self._registry:
            return None
        return self._registry.get(asn).kind

    def kind_of_v6_key(self, v6_key: int) -> Optional[AccessKind]:
        """Mobile/fixed label of a /64 (None when unattributable)."""
        return self.kind_of_asn(self.asn_of_v6_key(v6_key))

    def rir_of_v6_key(self, v6_key: int) -> Optional[RIR]:
        """Delegating registry of a /64."""
        return self._registry.rir_of_v6(IPv6Prefix(v6_key, 64))

    def same_asn(self, v4_key: int, v6_key: int) -> bool:
        """The Section 4.1 pre-processing filter: both sides in one AS."""
        asn_v4 = self.asn_of_v4_key(v4_key)
        return asn_v4 is not None and asn_v4 == self.asn_of_v6_key(v6_key)


__all__ = ["PrefixClassifier"]
