"""The RUM collector: gathers association triples and applies pre-processing.

Mirrors Section 4.1: raw associations are collected per population,
then any association whose IPv4 and IPv6 sides resolve to different
origin ASNs is discarded (multi-homed hosts, cellular/WiFi switchers).
The resulting :class:`CdnDataset` groups clean triples by origin AS and
carries the classifier for downstream mobile/fixed and registry splits.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.bgp.registry import AccessKind, RIR, Registry
from repro.bgp.table import RoutingTable
from repro.cdn.classify import PrefixClassifier
from repro.core.associations import Triple


@dataclass
class CdnDataset:
    """Clean association triples grouped by origin AS."""

    triples_by_asn: Dict[int, List[Triple]] = field(default_factory=dict)
    classifier: Optional[PrefixClassifier] = None
    total_collected: int = 0
    discarded_asn_mismatch: int = 0

    @property
    def total_kept(self) -> int:
        return sum(len(triples) for triples in self.triples_by_asn.values())

    def all_triples(self) -> List[Triple]:
        """Every kept triple across all ASes (flattened copy)."""
        return list(self.iter_triples())

    def iter_triples(self) -> Iterator[Triple]:
        """Lazily yield every kept triple, in per-AS insertion order.

        Same sequence as :meth:`all_triples` without the flattened
        copy — the right feed for streaming sinks (CSV writers, the
        sharded triple store) where the dataset is already the largest
        object in memory.
        """
        for triples in self.triples_by_asn.values():
            yield from triples

    def triples_for(self, asn: int) -> List[Triple]:
        """Kept triples whose origin AS is ``asn`` (empty when absent)."""
        return self.triples_by_asn.get(asn, [])

    def triples_by_kind(self, kind: AccessKind) -> List[Triple]:
        """All triples from ASes of the given access kind."""
        if self.classifier is None:
            raise ValueError("dataset has no classifier attached")
        merged: List[Triple] = []
        for asn, triples in self.triples_by_asn.items():
            if self.classifier.kind_of_asn(asn) is kind:
                merged.extend(triples)
        return merged

    def triples_by_rir(self, rir: RIR, kind: Optional[AccessKind] = None) -> List[Triple]:
        """Triples whose /64 is delegated by the given RIR (and kind)."""
        if self.classifier is None:
            raise ValueError("dataset has no classifier attached")
        merged: List[Triple] = []
        for asn, triples in self.triples_by_asn.items():
            if kind is not None and self.classifier.kind_of_asn(asn) is not kind:
                continue
            if not triples:
                continue
            sample_v6 = triples[0][2]
            if self.classifier.rir_of_v6_key(sample_v6) is rir:
                merged.extend(triples)
        return merged

    def unique_v6_keys(self, asn: Optional[int] = None) -> set:
        """Distinct /64 keys, optionally restricted to one AS."""
        keys = set()
        sources = [self.triples_by_asn[asn]] if asn is not None else self.triples_by_asn.values()
        for triples in sources:
            keys.update(v6_key for _day, _v4, v6_key in triples)
        return keys


def collect(
    populations: Sequence,
    table: RoutingTable,
    registry: Registry,
    filter_asn_mismatch: bool = True,
    classifier: Optional[PrefixClassifier] = None,
) -> CdnDataset:
    """Gather triples from populations and apply the ASN-mismatch filter.

    Each population must expose ``triples() -> Iterable[Triple]``.
    With ``filter_asn_mismatch=False`` the raw stream is grouped by the
    *v6* side's origin AS instead — the ablation configuration showing
    the spurious associations the filter exists to remove.  A
    pre-built ``classifier`` may be injected (the parallel collection
    path in :mod:`repro.perf.parallel` classifies per-population batches
    in worker processes, then attaches a parent-side classifier).
    """
    if classifier is None:
        classifier = PrefixClassifier(table, registry)
    dataset = CdnDataset(classifier=classifier)
    grouped: Dict[int, List[Triple]] = defaultdict(list)
    for population in populations:
        for triple in population.triples():
            dataset.total_collected += 1
            _day, v4_key, v6_key = triple
            asn_v6 = classifier.asn_of_v6_key(v6_key)
            if asn_v6 is None:
                dataset.discarded_asn_mismatch += 1
                continue
            if filter_asn_mismatch and classifier.asn_of_v4_key(v4_key) != asn_v6:
                dataset.discarded_asn_mismatch += 1
                continue
            grouped[asn_v6].append(triple)
    dataset.triples_by_asn = dict(grouped)
    return dataset


def merge_datasets(datasets: Iterable[CdnDataset]) -> CdnDataset:
    """Combine datasets collected in batches (keeps the first classifier)."""
    merged = CdnDataset()
    grouped: Dict[int, List[Triple]] = defaultdict(list)
    for dataset in datasets:
        if merged.classifier is None:
            merged.classifier = dataset.classifier
        merged.total_collected += dataset.total_collected
        merged.discarded_asn_mismatch += dataset.discarded_asn_mismatch
        for asn, triples in dataset.triples_by_asn.items():
            grouped[asn].extend(triples)
    merged.triples_by_asn = dict(grouped)
    return merged


__all__ = ["CdnDataset", "collect", "merge_datasets"]
