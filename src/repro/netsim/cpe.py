"""CPE (home router) behaviour model.

Given the delegated prefix from the ISP (e.g. a /56), the CPE picks the
/64 it advertises on the home LAN.  The paper identifies three
behaviours that matter for delegated-prefix inference (Section 5.3):

* **zero-fill** — announce the lowest-numbered /64: the delegated
  prefix's trailing bits before /64 are zero, which is what the
  inference technique detects;
* **scramble** — pick a random /64 within the delegation, and
  optionally re-scramble periodically (a privacy feature of many DTAG
  CPEs) — this defeats zero-bit inference and produces CPL >= 56
  "assignment changes" with no ISP involvement;
* **constant** — pick one non-zero subnet id at first delegation and
  keep it for subsequent delegations (e.g. an admin configured LAN 1).

The CPE also owns the reboot process: reboots can trigger renumbering in
ISPs whose assignment servers keep no state (Section 2.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ip.prefix import IPv6Prefix

LAN_SELECTION_MODES = ("zero", "scramble", "constant")


@dataclass(frozen=True)
class CpeBehavior:
    """Configuration of a CPE population.

    Parameters
    ----------
    lan_selection:
        ``"zero"``, ``"scramble"``, or ``"constant"`` (see module docs).
    scramble_period_hours:
        For ``scramble`` CPEs, how often the LAN /64 is re-drawn within
        the *current* delegation without any ISP reassignment (0 means
        only on new delegations).
    reboot_mean_hours:
        Mean of the exponential inter-reboot time (0 disables reboots).
    """

    lan_selection: str = "zero"
    scramble_period_hours: float = 0.0
    reboot_mean_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.lan_selection not in LAN_SELECTION_MODES:
            raise ValueError(
                f"unknown lan_selection {self.lan_selection!r}; "
                f"expected one of {LAN_SELECTION_MODES}"
            )
        if self.scramble_period_hours < 0 or self.reboot_mean_hours < 0:
            raise ValueError("CPE intervals must be non-negative")
        if self.scramble_period_hours and self.lan_selection != "scramble":
            raise ValueError("scramble_period_hours requires lan_selection='scramble'")


class Cpe:
    """One CPE instance applying a :class:`CpeBehavior`."""

    def __init__(self, behavior: CpeBehavior, rng: random.Random) -> None:
        self.behavior = behavior
        # The constant subnet id is drawn once per CPE (non-zero).
        self._constant_subnet: int | None = None
        if behavior.lan_selection == "constant":
            self._constant_subnet = rng.randrange(1, 1 << 16)

    def select_lan_prefix(self, delegation: IPv6Prefix, rng: random.Random) -> IPv6Prefix:
        """The /64 the CPE advertises on the LAN out of ``delegation``."""
        free_bits = 64 - delegation.plen
        if free_bits == 0:
            return IPv6Prefix(delegation.network, 64)
        count = 1 << free_bits
        mode = self.behavior.lan_selection
        if mode == "zero":
            subnet = 0
        elif mode == "scramble":
            subnet = rng.randrange(count)
        else:
            assert self._constant_subnet is not None
            subnet = self._constant_subnet % count
        return delegation.nth_subprefix(64, subnet)

    def next_reboot_delay(self, rng: random.Random) -> float | None:
        """Hours until the next reboot, or ``None`` when reboots are disabled."""
        if not self.behavior.reboot_mean_hours:
            return None
        return rng.expovariate(1.0 / self.behavior.reboot_mean_hours)

    def next_scramble_delay(self, rng: random.Random) -> float | None:
        """Hours until the next in-place LAN re-scramble, or ``None``."""
        if not self.behavior.scramble_period_hours:
            return None
        # Scrambles are scheduled with mild jitter so probe populations
        # do not re-scramble in lock-step.
        period = self.behavior.scramble_period_hours
        return period * rng.uniform(0.9, 1.1)


def eui64_iid(mac: int) -> int:
    """The modified EUI-64 interface identifier for a 48-bit MAC address.

    RIPE Atlas probes use stable EUI-64 IIDs (Section 6); the platform
    substrate uses this to build full probe addresses.
    """
    if not 0 <= mac < (1 << 48):
        raise ValueError(f"MAC must be 48-bit, got {mac:#x}")
    upper = (mac >> 24) & 0xFFFFFF
    lower = mac & 0xFFFFFF
    iid = (upper << 40) | (0xFFFE << 24) | lower
    return iid ^ (1 << 57)  # flip the universal/local bit


__all__ = ["Cpe", "CpeBehavior", "LAN_SELECTION_MODES", "eui64_iid"]
