"""Simulation time.

All simulator and analysis code measures time in **hours since the
simulation epoch** (2014-09-01 00:00 UTC, the start of the paper's RIPE
Atlas observation window).  Hours are plain numbers: integers for
sampled measurement timestamps, floats for event times inside the
simulator.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

#: Start of the paper's RIPE Atlas "IP echo" window.
SIM_EPOCH = datetime(2014, 9, 1, tzinfo=timezone.utc)

HOURS_PER_DAY = 24
HOURS_PER_WEEK = 7 * HOURS_PER_DAY
HOURS_PER_MONTH = 30 * HOURS_PER_DAY  # calendar-agnostic month used for bucketing
HOURS_PER_YEAR = 365 * HOURS_PER_DAY


def hours_to_datetime(hours: float) -> datetime:
    """Convert an hour offset to an absolute UTC datetime."""
    return SIM_EPOCH + timedelta(hours=hours)


def datetime_to_hours(when: datetime) -> float:
    """Convert an absolute datetime (assumed UTC if naive) to an hour offset."""
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    return (when - SIM_EPOCH).total_seconds() / 3600.0


def hours_between(start: datetime, end: datetime) -> float:
    """Signed hour span between two datetimes."""
    return datetime_to_hours(end) - datetime_to_hours(start)


class SimClock:
    """A monotonically advancing simulation clock.

    The clock refuses to move backwards, which catches event-ordering
    bugs in the simulator early.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when`` (backwards raises)."""
        if when < self._now:
            raise ValueError(f"clock cannot move backwards: {when} < {self._now}")
        self._now = float(when)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now}, {hours_to_datetime(self._now):%Y-%m-%d %H:%M})"


__all__ = [
    "HOURS_PER_DAY",
    "HOURS_PER_MONTH",
    "HOURS_PER_WEEK",
    "HOURS_PER_YEAR",
    "SIM_EPOCH",
    "SimClock",
    "datetime_to_hours",
    "hours_between",
    "hours_to_datetime",
]
