"""Address pools: where new assignments are drawn from.

Two allocators model the spatial structure the paper infers:

* :class:`V4AddressPlan` — an ISP's (fragmented) IPv4 holdings.  New
  draws have configurable affinity to the subscriber's previous /24 and
  previous BGP block, which controls the "Diff /24" / "Diff BGP" rates
  of Table 2.
* :class:`V6PrefixPlan` — an ISP's contiguous IPv6 allocation carved
  into regional pools (e.g. /40s) from which subscriber delegations
  (e.g. /56s) are drawn.  Subscribers are homed to a pool and rarely
  move, which produces the CPL clusters of Figure 5 and the "few unique
  /40s per probe" result of Figure 8.

Both allocators track in-use assignments so that no two subscribers hold
the same address/delegation simultaneously (the driving simulation
releases and allocates in global time order).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.ip.addr import AddressError, IPv4Address
from repro.ip.prefix import IPv4Prefix, IPv6Prefix


class PoolExhaustedError(RuntimeError):
    """Raised when an allocator cannot find a free address/delegation."""


_MAX_DRAW_ATTEMPTS = 64


class V4AddressPlan:
    """IPv4 assignment pools over an ISP's announced blocks.

    Parameters
    ----------
    blocks:
        The ISP's announced IPv4 prefixes (its BGP footprint).
    same_slash24_affinity:
        Probability that a renumbering draw stays within the previous /24.
    same_block_affinity:
        Probability that a draw (which left the /24) stays within the
        previous BGP block.
    """

    def __init__(
        self,
        blocks: Sequence[IPv4Prefix],
        same_slash24_affinity: float = 0.0,
        same_block_affinity: float = 0.5,
    ) -> None:
        if not blocks:
            raise ValueError("V4AddressPlan requires at least one block")
        for probability, name in (
            (same_slash24_affinity, "same_slash24_affinity"),
            (same_block_affinity, "same_block_affinity"),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {probability}")
        self._blocks: List[IPv4Prefix] = list(blocks)
        self._weights = [block.num_addresses for block in self._blocks]
        self._same_slash24 = same_slash24_affinity
        self._same_block = same_block_affinity
        self._in_use: set[int] = set()

    @property
    def blocks(self) -> List[IPv4Prefix]:
        return list(self._blocks)

    @property
    def in_use_count(self) -> int:
        return len(self._in_use)

    def block_of(self, address: IPv4Address) -> Optional[IPv4Prefix]:
        """The announced block containing ``address`` (None when outside)."""
        for block in self._blocks:
            if block.contains_address(address):
                return block
        return None

    def release(self, address: IPv4Address) -> None:
        """Return ``address`` to the pool (idempotent)."""
        self._in_use.discard(int(address))

    def _draw_in(
        self,
        scope: IPv4Prefix,
        rng: random.Random,
        exclude: Optional[int] = None,
    ) -> Optional[IPv4Address]:
        for _ in range(_MAX_DRAW_ATTEMPTS):
            value = int(scope.network) + rng.randrange(scope.num_addresses)
            if value in self._in_use or value == exclude:
                continue
            self._in_use.add(value)
            return IPv4Address(value)
        return None

    def allocate(
        self,
        rng: random.Random,
        previous: Optional[IPv4Address] = None,
    ) -> IPv4Address:
        """Draw a fresh address, honouring spatial affinities to ``previous``."""
        exclude = int(previous) if previous is not None else None
        scopes: List[IPv4Prefix] = []
        if previous is not None:
            prev_block = self.block_of(previous)
            if prev_block is not None:
                roll = rng.random()
                if roll < self._same_slash24:
                    scopes.append(IPv4Prefix(int(previous), 24))
                elif roll < self._same_slash24 + self._same_block * (1 - self._same_slash24):
                    scopes.append(prev_block)
        scopes.append(rng.choices(self._blocks, weights=self._weights, k=1)[0])
        for scope in scopes:
            address = self._draw_in(scope, rng, exclude=exclude)
            if address is not None:
                return address
        raise PoolExhaustedError("IPv4 plan exhausted (all draw attempts collided)")


class V6PrefixPlan:
    """IPv6 delegated-prefix pools inside one ISP allocation.

    The allocation (e.g. a /32) is split into ``num_pools`` pools of
    length ``pool_plen`` (e.g. /40s); each subscriber is homed to one
    pool and draws delegations of length ``delegation_plen`` from it.
    """

    def __init__(
        self,
        allocation: IPv6Prefix,
        pool_plen: int,
        delegation_plen: int,
        num_pools: int,
        pool_switch_prob: float = 0.0,
    ) -> None:
        if pool_plen < allocation.plen:
            raise ValueError(
                f"pool /{pool_plen} shorter than allocation /{allocation.plen}"
            )
        if delegation_plen < pool_plen:
            raise ValueError(
                f"delegation /{delegation_plen} shorter than pool /{pool_plen}"
            )
        if delegation_plen > 64:
            raise ValueError("delegations longer than /64 cannot hold a LAN /64")
        available = allocation.num_subprefixes(pool_plen)
        if num_pools < 1 or num_pools > available:
            raise ValueError(f"num_pools must be in 1..{available}, got {num_pools}")
        if not 0.0 <= pool_switch_prob <= 1.0:
            raise ValueError(f"pool_switch_prob must be in [0, 1], got {pool_switch_prob}")
        self._allocation = allocation
        self._delegation_plen = delegation_plen
        # Spread the pools across the allocation rather than packing them at
        # the bottom, mimicking structured internal addressing plans.
        stride = max(1, available // num_pools)
        self._pools = [allocation.nth_subprefix(pool_plen, i * stride) for i in range(num_pools)]
        self._pool_switch_prob = pool_switch_prob
        self._in_use: set[int] = set()

    @property
    def allocation(self) -> IPv6Prefix:
        return self._allocation

    @property
    def pools(self) -> List[IPv6Prefix]:
        return list(self._pools)

    @property
    def delegation_plen(self) -> int:
        return self._delegation_plen

    @property
    def in_use_count(self) -> int:
        return len(self._in_use)

    def home_pool_index(self, rng: random.Random) -> int:
        """Pick the pool a new subscriber is homed to."""
        return rng.randrange(len(self._pools))

    def pool_index_of(self, delegation: IPv6Prefix) -> Optional[int]:
        """Which pool contains ``delegation`` (None when outside all)."""
        for index, pool in enumerate(self._pools):
            if pool.contains_prefix(delegation):
                return index
        return None

    def release(self, delegation: IPv6Prefix) -> None:
        """Return ``delegation`` to its pool (idempotent)."""
        self._in_use.discard(int(delegation.network))

    def allocate(
        self,
        rng: random.Random,
        home_pool: int,
        previous: Optional[IPv6Prefix] = None,
    ) -> tuple[IPv6Prefix, int]:
        """Draw a delegation; returns ``(delegation, pool_index)``.

        With probability ``pool_switch_prob`` the subscriber is re-homed
        to a different pool (administrative renumbering), otherwise the
        draw stays in its home pool.
        """
        if not 0 <= home_pool < len(self._pools):
            raise ValueError(f"home_pool {home_pool} out of range")
        pool_index = home_pool
        if len(self._pools) > 1 and rng.random() < self._pool_switch_prob:
            other = rng.randrange(len(self._pools) - 1)
            pool_index = other if other < home_pool else other + 1
        pool = self._pools[pool_index]
        for _ in range(_MAX_DRAW_ATTEMPTS):
            index = rng.randrange(pool.num_subprefixes(self._delegation_plen))
            delegation = pool.nth_subprefix(self._delegation_plen, index)
            key = int(delegation.network)
            if key in self._in_use:
                continue
            if previous is not None and delegation == previous:
                continue
            self._in_use.add(key)
            return delegation, pool_index
        raise PoolExhaustedError("IPv6 plan exhausted (all draw attempts collided)")


def build_v4_blocks(base: IPv4Prefix, count: int, plen: int, rng: random.Random) -> List[IPv4Prefix]:
    """Draw ``count`` disjoint /plen blocks from ``base`` (helper for tests)."""
    total = base.num_subprefixes(plen)
    if count > total:
        raise AddressError(f"cannot draw {count} /{plen}s from {base}")
    indices = rng.sample(range(total), count)
    return [base.nth_subprefix(plen, i) for i in sorted(indices)]


__all__ = [
    "PoolExhaustedError",
    "V4AddressPlan",
    "V6PrefixPlan",
    "build_v4_blocks",
]
