"""Protocol-level DHCPv6 prefix delegation (RFC 3633 IA_PD semantics).

Residential CPEs obtain their IPv6 delegated prefix via DHCPv6 IA_PD
(Section 2.1).  The model mirrors :mod:`repro.netsim.dhcp` for the v6
side: a delegating router hands out prefixes of a configured length
with preferred/valid lifetimes; clients renew at T1; a stateful server
re-delegates the same prefix to a returning client, a stateless one
draws fresh — the distinction behind persistent vs non-persistent
delegations (RIPE-690's "persistent vs non-persistent" debate, which
the paper's Section 3.2 measures in the wild).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.ip.prefix import IPv6Prefix
from repro.netsim.pool import V6PrefixPlan


@dataclass(frozen=True)
class PrefixDelegation:
    """One IA_PD binding."""

    client_id: int
    prefix: IPv6Prefix
    granted_at: float
    valid_until: float

    @property
    def valid_lifetime(self) -> float:
        return self.valid_until - self.granted_at

    def renewal_time(self) -> float:
        """T1 (RFC 3633 default: 0.5 x preferred; we use 0.5 x valid)."""
        return self.granted_at + 0.5 * self.valid_lifetime


class DelegatingRouter:
    """A DHCPv6 server delegating prefixes out of a :class:`V6PrefixPlan`."""

    def __init__(
        self,
        plan: V6PrefixPlan,
        valid_lifetime: float,
        persistent: bool = True,
        seed: int = 0,
    ) -> None:
        if valid_lifetime <= 0:
            raise ValueError("valid_lifetime must be positive")
        self._plan = plan
        self.valid_lifetime = float(valid_lifetime)
        self.persistent = persistent
        self._rng = random.Random(seed)
        self._bindings: Dict[int, PrefixDelegation] = {}
        self._home_pools: Dict[int, int] = {}
        self._expired: Dict[int, IPv6Prefix] = {}

    @property
    def active_delegations(self) -> int:
        return len(self._bindings)

    def delegation_of(self, client_id: int) -> Optional[PrefixDelegation]:
        """The client's current binding (None when never delegated)."""
        return self._bindings.get(client_id)

    def _home_pool(self, client_id: int) -> int:
        if client_id not in self._home_pools:
            self._home_pools[client_id] = self._plan.home_pool_index(self._rng)
        return self._home_pools[client_id]

    def _expire_if_due(self, client_id: int, now: float) -> None:
        binding = self._bindings.get(client_id)
        if binding is not None and binding.valid_until <= now:
            del self._bindings[client_id]
            self._plan.release(binding.prefix)
            if self.persistent:
                self._expired[client_id] = binding.prefix

    def request(self, client_id: int, now: float) -> PrefixDelegation:
        """SOLICIT/REQUEST (or RENEW): obtain or extend a delegation."""
        self._expire_if_due(client_id, now)
        current = self._bindings.get(client_id)
        if current is not None:
            renewed = PrefixDelegation(
                client_id=client_id,
                prefix=current.prefix,
                granted_at=now,
                valid_until=now + self.valid_lifetime,
            )
            self._bindings[client_id] = renewed
            return renewed

        prefix: Optional[IPv6Prefix] = None
        remembered = self._expired.get(client_id)
        if remembered is not None and self._try_claim(remembered):
            prefix = remembered
        if prefix is None:
            prefix, pool = self._plan.allocate(
                self._rng, self._home_pool(client_id), previous=remembered
            )
            self._home_pools[client_id] = pool
        self._expired.pop(client_id, None)
        binding = PrefixDelegation(
            client_id=client_id,
            prefix=prefix,
            granted_at=now,
            valid_until=now + self.valid_lifetime,
        )
        self._bindings[client_id] = binding
        return binding

    def _try_claim(self, prefix: IPv6Prefix) -> bool:
        in_use = self._plan._in_use  # noqa: SLF001 - deliberate tight coupling
        key = int(prefix.network)
        if key in in_use:
            return False
        in_use.add(key)
        return True

    def release(self, client_id: int) -> None:
        """RELEASE: the client returns its delegation."""
        binding = self._bindings.pop(client_id, None)
        if binding is not None:
            self._plan.release(binding.prefix)
            if self.persistent:
                self._expired[client_id] = binding.prefix


class DelegationClient:
    """A CPE requesting and renewing a delegated prefix.

    ``delegation_history(until)`` mirrors the v4 client: renew at T1
    while the line is up; outages longer than the valid lifetime lose
    the binding (recovered only on a persistent server).
    """

    def __init__(
        self,
        client_id: int,
        router: DelegatingRouter,
        mean_uptime: float,
        mean_downtime: float,
        seed: int = 0,
    ) -> None:
        if mean_uptime <= 0 or mean_downtime < 0:
            raise ValueError("uptime must be positive; downtime non-negative")
        self.client_id = client_id
        self.router = router
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self._rng = random.Random((seed << 8) ^ client_id)

    def delegation_history(self, until: float) -> list[tuple[float, float, IPv6Prefix]]:
        """Simulate the CPE until ``until``; returns delegation spans."""
        history: list[tuple[float, float, IPv6Prefix]] = []
        now = 0.0
        while now < until:
            up_end = min(now + self._rng.expovariate(1.0 / self.mean_uptime), until)
            binding = self.router.request(self.client_id, now)
            span_start, current = now, binding.prefix
            while True:
                next_renewal = binding.renewal_time()
                if next_renewal >= up_end:
                    break
                binding = self.router.request(self.client_id, next_renewal)
                if binding.prefix != current:
                    history.append((span_start, next_renewal, current))
                    span_start, current = next_renewal, binding.prefix
            history.append((span_start, up_end, current))
            now = up_end
            if self.mean_downtime:
                now += self._rng.expovariate(1.0 / self.mean_downtime)
        merged: list[tuple[float, float, IPv6Prefix]] = []
        for start, end, prefix in history:
            if merged and merged[-1][2] == prefix:
                merged[-1] = (merged[-1][0], end, prefix)
            else:
                merged.append((start, end, prefix))
        return merged


__all__ = ["DelegatingRouter", "DelegationClient", "PrefixDelegation"]
