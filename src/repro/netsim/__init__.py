"""Event-driven ISP address-assignment simulator.

This package is the substrate that stands in for the real-world networks
the paper measured.  It models, per ISP:

* fragmented IPv4 BGP blocks and a contiguous IPv6 allocation carved
  into regional pools (:mod:`repro.netsim.pool`);
* DHCP-style sticky assignment and RADIUS-style session-timeout
  assignment (:mod:`repro.netsim.policy`);
* carrier-grade NAT for cellular access (:mod:`repro.netsim.cgnat`);
* CPE behaviour — LAN /64 selection (zero-fill, scramble, rotate),
  reboots (:mod:`repro.netsim.cpe`);
* per-subscriber assignment timelines produced by a deterministic
  event-queue simulation (:mod:`repro.netsim.sim`).

Calibrated per-AS configurations matching the paper's ten featured ASes
live in :mod:`repro.netsim.profiles`.
"""

from repro.netsim.clock import SIM_EPOCH, SimClock, hours_between, hours_to_datetime
from repro.netsim.cpe import CpeBehavior
from repro.netsim.dhcp import DhcpClient, DhcpServer, Lease
from repro.netsim.dhcpv6 import DelegatingRouter, DelegationClient, PrefixDelegation
from repro.netsim.radius import PppoeSubscriber, RadiusServer, Session
from repro.netsim.isp import (
    Isp,
    IspConfig,
    PolicyEpoch,
    V4AddressingConfig,
    V6AddressingConfig,
)
from repro.netsim.policy import ChangePolicy
from repro.netsim.profiles import default_profiles, profile_by_name
from repro.netsim.sim import AssignmentInterval, IspSimulation, SubscriberTimeline

__all__ = [
    "AssignmentInterval",
    "ChangePolicy",
    "CpeBehavior",
    "DelegatingRouter",
    "DelegationClient",
    "DhcpClient",
    "DhcpServer",
    "Lease",
    "PppoeSubscriber",
    "PrefixDelegation",
    "RadiusServer",
    "Session",
    "Isp",
    "IspConfig",
    "IspSimulation",
    "PolicyEpoch",
    "SIM_EPOCH",
    "SimClock",
    "SubscriberTimeline",
    "V4AddressingConfig",
    "V6AddressingConfig",
    "default_profiles",
    "hours_between",
    "hours_to_datetime",
    "profile_by_name",
]
