"""Protocol-level RADIUS session model (RFC 2865 semantics).

RADIUS-based broadband deployments (PPPoE + Access-Request/Accept)
assign an address per *session* with a ``Session-Timeout``; when the
session ends — timeout or line drop — the address returns to the pool
and the server typically keeps **no per-subscriber state**, so the next
session draws a fresh address.  This is the mechanism behind the
paper's periodic renumbering modes (24 h DTAG, 1 week Orange, ...) and
behind renumber-on-reboot behaviour (Section 2.2).

The model validates the abstract ``periodic`` / ``renumber_on_reboot``
policies used by the event simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ip.addr import IPv4Address
from repro.netsim.pool import V4AddressPlan


@dataclass(frozen=True)
class Session:
    """One accepted access session."""

    subscriber_id: int
    address: IPv4Address
    started_at: float
    timeout_at: float

    @property
    def session_timeout(self) -> float:
        return self.timeout_at - self.started_at


class RadiusServer:
    """Session-based address assignment with a fixed Session-Timeout."""

    def __init__(
        self,
        plan: V4AddressPlan,
        session_timeout: float,
        seed: int = 0,
    ) -> None:
        if session_timeout <= 0:
            raise ValueError("session_timeout must be positive")
        self._plan = plan
        self.session_timeout = float(session_timeout)
        self._rng = random.Random(seed)
        self._sessions: Dict[int, Session] = {}

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    def session_of(self, subscriber_id: int) -> Optional[Session]:
        """The subscriber's active session (None when offline)."""
        return self._sessions.get(subscriber_id)

    def access_request(self, subscriber_id: int, now: float) -> Session:
        """Start a session; any previous one is terminated first.

        The server retains no binding state: a new session always draws
        a fresh address (never the immediately previous one, which was
        just released back into the pool).
        """
        previous = self.terminate(subscriber_id, now)
        address = self._plan.allocate(self._rng, previous=previous)
        session = Session(
            subscriber_id=subscriber_id,
            address=address,
            started_at=now,
            timeout_at=now + self.session_timeout,
        )
        self._sessions[subscriber_id] = session
        return session

    def terminate(self, subscriber_id: int, now: float) -> Optional[IPv4Address]:
        """End a session (line drop / timeout); returns the freed address."""
        del now
        session = self._sessions.pop(subscriber_id, None)
        if session is None:
            return None
        self._plan.release(session.address)
        return session.address


class PppoeSubscriber:
    """A subscriber line that reconnects immediately on session end.

    ``address_history(until)`` produces the protocol-level assignment
    spans: back-to-back sessions of exactly ``session_timeout`` hours
    (periodic renumbering), interrupted early by line drops with the
    configured mean time between failures — each reconnect draws a new
    address, reproducing renumber-on-reboot.
    """

    def __init__(
        self,
        subscriber_id: int,
        server: RadiusServer,
        mean_time_between_drops: float = 0.0,
        seed: int = 0,
    ) -> None:
        if mean_time_between_drops < 0:
            raise ValueError("mean_time_between_drops must be non-negative")
        self.subscriber_id = subscriber_id
        self.server = server
        self.mean_time_between_drops = mean_time_between_drops
        self._rng = random.Random((seed << 8) ^ subscriber_id)

    def _next_drop(self, now: float) -> float:
        if not self.mean_time_between_drops:
            return float("inf")
        return now + self._rng.expovariate(1.0 / self.mean_time_between_drops)

    def address_history(self, until: float) -> List[Tuple[float, float, IPv4Address]]:
        """Simulate the line until ``until``; returns assignment spans."""
        history: List[Tuple[float, float, IPv4Address]] = []
        now = 0.0
        next_drop = self._next_drop(0.0)
        while now < until:
            session = self.server.access_request(self.subscriber_id, now)
            session_end = min(session.timeout_at, until)
            if next_drop < session_end:
                session_end = next_drop
                next_drop = self._next_drop(session_end)
            history.append((now, session_end, session.address))
            now = session_end
        self.server.terminate(self.subscriber_id, until)
        return history


__all__ = ["PppoeSubscriber", "RadiusServer", "Session"]
