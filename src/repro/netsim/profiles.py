"""Calibrated ISP profiles for the paper's featured networks.

Each profile reproduces, qualitatively, the behaviour the paper reports
for that AS:

==========  ======  =======================================================
AS          ASN     Calibration targets (from the paper)
==========  ======  =======================================================
DTAG        3320    v4 24 h periodic (NDS; ~45 % of DS probes keep it);
                    v6 renumbered with v4 ~90.6 % of the time; /56
                    delegations; CPE mix includes prefix scramblers
                    (CPL >= 56 changes, /64 spike in Fig. 6); pools ~ /40
Comcast     7922    months-long v4 and v6 durations; changes do not
                    co-occur; /60 delegations; sticky /24s (Diff /24 49 %)
Orange      3215    v4 1-week periodic for NDS, much longer for DS;
                    stable v6; /56 delegations; Diff /24 99 %
LGI         6830    moderate v4 churn, stable v6; /44-grained pools
Free SAS    12322   few changes; v6 changes often cross BGP prefixes (42 %)
Kabel DE    31334   /62 delegations (branded CPEs); stable v6
Proximus    5432    v4 36 h periodic (NDS); v6 moderate
Versatel    8881    24 h periodic in both families, synchronized
BT          2856    v4 2-week periodic (NDS); stable v6; CPL modes 28-32
                    and 41-54
Netcologne  8422    24 h periodic in both families; /48 delegations
Sky UK      5607    stable v4/v6; /56 delegations (Fig. 6)
==========  ======  =======================================================

The periodic/exponential parameters are *calibrated to the published
findings* — not to the raw datasets, which are not bundled — so every
reproduced figure should match the paper in shape, not in absolute
sample counts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bgp.registry import RIR, AccessKind
from repro.netsim.cpe import CpeBehavior
from repro.netsim.isp import IspConfig, V4AddressingConfig, V6AddressingConfig
from repro.netsim.policy import ChangePolicy

DAY = 24.0
WEEK = 7 * DAY
MONTH = 30 * DAY
YEAR = 365 * DAY

_ZERO_CPE = CpeBehavior(lan_selection="zero", reboot_mean_hours=4 * MONTH)
_SCRAMBLE_CPE = CpeBehavior(
    lan_selection="scramble",
    scramble_period_hours=2 * WEEK,
    reboot_mean_hours=4 * MONTH,
)
_CONSTANT_CPE = CpeBehavior(lan_selection="constant", reboot_mean_hours=4 * MONTH)


def _dtag() -> IspConfig:
    return IspConfig(
        name="DTAG",
        asn=3320,
        country="DE",
        rir=RIR.RIPE,
        dual_stack_fraction=0.68,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.periodic(DAY, jitter_hours=0.2),
            policy_ds=ChangePolicy.exponential(3 * MONTH),
            ds_legacy_fraction=0.45,
            num_blocks=6,
            block_plen=15,
            same_slash24_affinity=0.05,
            same_block_affinity=0.72,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(YEAR),
            allocation_plen=24,
            pool_plen=40,
            num_pools=48,
            delegation_plen=56,
            sync_with_v4_prob=0.906,
            pool_switch_prob=0.0003,
            cpe_mix=((_ZERO_CPE, 0.55), (_SCRAMBLE_CPE, 0.30), (_CONSTANT_CPE, 0.15)),
        ),
    )


def _comcast() -> IspConfig:
    return IspConfig(
        name="Comcast",
        asn=7922,
        country="US",
        rir=RIR.ARIN,
        dual_stack_fraction=0.68,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.exponential(4 * MONTH, renumber_on_reboot=True),
            policy_ds=ChangePolicy.exponential(5 * MONTH, renumber_on_reboot=True),
            num_blocks=8,
            block_plen=14,
            same_slash24_affinity=0.51,
            same_block_affinity=0.12,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(7 * MONTH),
            allocation_plen=28,
            pool_plen=40,
            num_pools=64,
            delegation_plen=60,
            sync_with_v4_prob=0.05,
            pool_switch_prob=0.08,
            cpe_mix=((_ZERO_CPE, 0.9), (_CONSTANT_CPE, 0.1)),
        ),
    )


def _orange() -> IspConfig:
    return IspConfig(
        name="Orange",
        asn=3215,
        country="FR",
        rir=RIR.RIPE,
        dual_stack_fraction=0.55,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.periodic(WEEK, jitter_hours=0.5),
            policy_ds=ChangePolicy.exponential(6 * MONTH),
            ds_legacy_fraction=0.05,
            num_blocks=10,
            block_plen=15,
            same_slash24_affinity=0.01,
            same_block_affinity=0.40,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(14 * MONTH),
            allocation_plen=26,
            pool_plen=42,
            num_pools=48,
            delegation_plen=56,
            sync_with_v4_prob=0.10,
            pool_switch_prob=0.02,
            cpe_mix=((_ZERO_CPE, 0.97), (_CONSTANT_CPE, 0.03)),
        ),
    )


def _lgi() -> IspConfig:
    return IspConfig(
        name="LGI",
        asn=6830,
        country="NL",
        rir=RIR.RIPE,
        dual_stack_fraction=0.32,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.exponential(16 * WEEK, renumber_on_reboot=True),
            policy_ds=ChangePolicy.exponential(4 * WEEK, renumber_on_reboot=True),
            num_blocks=6,
            block_plen=15,
            same_slash24_affinity=0.41,
            same_block_affinity=0.76,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(10 * MONTH),
            allocation_plen=29,
            pool_plen=44,
            num_pools=64,
            delegation_plen=56,
            sync_with_v4_prob=0.10,
            pool_switch_prob=0.02,
            cpe_mix=((_ZERO_CPE, 0.95), (_CONSTANT_CPE, 0.05)),
        ),
    )


def _free_sas() -> IspConfig:
    return IspConfig(
        name="Free SAS",
        asn=12322,
        country="FR",
        rir=RIR.RIPE,
        dual_stack_fraction=0.65,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.exponential(9 * MONTH, renumber_on_reboot=True),
            policy_ds=ChangePolicy.exponential(12 * MONTH, renumber_on_reboot=True),
            num_blocks=5,
            block_plen=16,
            same_slash24_affinity=0.0,
            same_block_affinity=0.22,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(16 * MONTH),
            allocation_plen=28,
            pool_plen=40,
            num_pools=8,
            delegation_plen=60,
            num_announcements=8,
            sync_with_v4_prob=0.25,
            pool_switch_prob=0.45,
            cpe_mix=((_ZERO_CPE, 0.9), (_CONSTANT_CPE, 0.1)),
        ),
    )


def _kabel_de() -> IspConfig:
    return IspConfig(
        name="Kabel DE",
        asn=31334,
        country="DE",
        rir=RIR.RIPE,
        dual_stack_fraction=0.55,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.exponential(4 * MONTH, renumber_on_reboot=True),
            policy_ds=ChangePolicy.exponential(5 * MONTH, renumber_on_reboot=True),
            num_blocks=5,
            block_plen=15,
            same_slash24_affinity=0.16,
            same_block_affinity=0.45,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(10 * MONTH),
            allocation_plen=27,
            pool_plen=40,
            num_pools=32,
            delegation_plen=62,
            sync_with_v4_prob=0.10,
            pool_switch_prob=0.03,
            cpe_mix=((_ZERO_CPE, 0.92), (_CONSTANT_CPE, 0.08)),
        ),
    )


def _proximus() -> IspConfig:
    return IspConfig(
        name="Proximus",
        asn=5432,
        country="BE",
        rir=RIR.RIPE,
        dual_stack_fraction=0.56,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.periodic(36.0, jitter_hours=0.3),
            policy_ds=ChangePolicy.exponential(6 * WEEK),
            ds_legacy_fraction=0.22,
            num_blocks=5,
            block_plen=16,
            same_slash24_affinity=0.12,
            same_block_affinity=0.40,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(2 * MONTH),
            allocation_plen=29,
            pool_plen=42,
            num_pools=24,
            delegation_plen=56,
            sync_with_v4_prob=0.15,
            pool_switch_prob=0.01,
            cpe_mix=((_ZERO_CPE, 0.9), (_CONSTANT_CPE, 0.1)),
        ),
    )


def _versatel() -> IspConfig:
    return IspConfig(
        name="Versatel",
        asn=8881,
        country="DE",
        rir=RIR.RIPE,
        dual_stack_fraction=0.71,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.periodic(DAY, jitter_hours=0.2),
            policy_ds=ChangePolicy.periodic(DAY, jitter_hours=0.2),
            num_blocks=4,
            block_plen=16,
            same_slash24_affinity=0.07,
            same_block_affinity=0.42,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(YEAR),
            allocation_plen=29,
            pool_plen=42,
            num_pools=16,
            delegation_plen=56,
            sync_with_v4_prob=0.92,
            pool_switch_prob=0.001,
            cpe_mix=((_ZERO_CPE, 0.7), (_SCRAMBLE_CPE, 0.2), (_CONSTANT_CPE, 0.1)),
        ),
    )


def _bt() -> IspConfig:
    return IspConfig(
        name="BT",
        asn=2856,
        country="GB",
        rir=RIR.RIPE,
        dual_stack_fraction=0.34,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.periodic(2 * WEEK, jitter_hours=1.0),
            policy_ds=ChangePolicy.exponential(4 * WEEK),
            ds_legacy_fraction=0.12,
            num_blocks=8,
            block_plen=15,
            same_slash24_affinity=0.06,
            same_block_affinity=0.55,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(9 * MONTH),
            allocation_plen=28,
            pool_plen=44,
            num_pools=48,
            delegation_plen=56,
            sync_with_v4_prob=0.08,
            pool_switch_prob=0.18,
            cpe_mix=((_ZERO_CPE, 0.93), (_CONSTANT_CPE, 0.07)),
        ),
    )


def _netcologne() -> IspConfig:
    return IspConfig(
        name="Netcologne",
        asn=8422,
        country="DE",
        rir=RIR.RIPE,
        dual_stack_fraction=0.93,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.periodic(DAY, jitter_hours=0.2),
            policy_ds=ChangePolicy.periodic(DAY, jitter_hours=0.2),
            num_blocks=4,
            block_plen=17,
            same_slash24_affinity=0.01,
            same_block_affinity=0.40,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.periodic(DAY, jitter_hours=0.2),
            allocation_plen=28,
            pool_plen=36,
            num_pools=8,
            delegation_plen=48,
            sync_with_v4_prob=0.55,
            pool_switch_prob=0.002,
            cpe_mix=((_ZERO_CPE, 0.9), (_CONSTANT_CPE, 0.1)),
        ),
    )


def _sky_uk() -> IspConfig:
    return IspConfig(
        name="Sky UK",
        asn=5607,
        country="GB",
        rir=RIR.RIPE,
        dual_stack_fraction=0.80,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.exponential(5 * MONTH, renumber_on_reboot=True),
            policy_ds=ChangePolicy.exponential(6 * MONTH, renumber_on_reboot=True),
            num_blocks=5,
            block_plen=16,
            same_slash24_affinity=0.10,
            same_block_affinity=0.50,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(10 * MONTH),
            allocation_plen=28,
            pool_plen=40,
            num_pools=32,
            delegation_plen=56,
            sync_with_v4_prob=0.12,
            pool_switch_prob=0.02,
            cpe_mix=((_ZERO_CPE, 0.96), (_CONSTANT_CPE, 0.04)),
        ),
    )


def default_profiles() -> List[IspConfig]:
    """The paper's ten featured ASes (Table 1) plus Sky UK (Figure 6)."""
    return [
        _dtag(),
        _comcast(),
        _orange(),
        _lgi(),
        _free_sas(),
        _kabel_de(),
        _proximus(),
        _versatel(),
        _bt(),
        _netcologne(),
        _sky_uk(),
    ]


def profile_by_name(name: str) -> IspConfig:
    """Look up a default profile by (case-insensitive) ISP name."""
    for config in default_profiles():
        if config.name.lower() == name.lower():
            return config
    raise KeyError(f"no default profile named {name!r}")


#: Number of dual-stack RIPE Atlas probes the paper reports per AS
#: (Table 1); used by the full-scale benchmarks to size populations.
PAPER_DS_PROBE_COUNTS: Dict[str, int] = {
    "DTAG": 402,
    "Comcast": 283,
    "Orange": 236,
    "LGI": 141,
    "Free SAS": 90,
    "Kabel DE": 84,
    "Proximus": 64,
    "Versatel": 57,
    "BT": 58,
    "Netcologne": 40,
    "Sky UK": 45,
}

#: Total probes per AS in Table 1 (dual-stack and not).
PAPER_TOTAL_PROBE_COUNTS: Dict[str, int] = {
    "DTAG": 589,
    "Comcast": 415,
    "Orange": 425,
    "LGI": 445,
    "Free SAS": 138,
    "Kabel DE": 152,
    "Proximus": 114,
    "Versatel": 80,
    "BT": 170,
    "Netcologne": 43,
    "Sky UK": 57,
}


#: Renumbering periods (hours) observed across the long tail of periodic
#: ISPs: 12 h (ANTEL), 24 h (German ASes), 36 h, 48 h (Global Village),
#: 1 week, 2 weeks (Section 3.2).
COHORT_PERIODS = (12.0, 24.0, 24.0, 36.0, 48.0, 7 * 24.0, 14 * 24.0)

_COHORT_COUNTRIES = ("DE", "FR", "UY", "BR", "GB", "ES", "PL", "IT", "NL", "AT")
_COHORT_RIRS = (RIR.RIPE, RIR.LACNIC, RIR.APNIC)


def periodic_cohort(count: int, base_asn: int = 65100) -> List[IspConfig]:
    """A long tail of small periodically renumbering ISPs.

    The paper observes "consistent periodic renumbering on 35 networks"
    beyond the featured ones; this builds ``count`` additional ISPs with
    periods cycled from :data:`COHORT_PERIODS` so that scale claim can
    be reproduced (see ``benchmarks/test_periodicity.py``).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    cohort = []
    for index in range(count):
        period = COHORT_PERIODS[index % len(COHORT_PERIODS)]
        cohort.append(
            IspConfig(
                name=f"Periodic-{index:02d}",
                asn=base_asn + index,
                country=_COHORT_COUNTRIES[index % len(_COHORT_COUNTRIES)],
                rir=_COHORT_RIRS[index % len(_COHORT_RIRS)],
                dual_stack_fraction=0.4,
                v4=V4AddressingConfig(
                    policy_nds=ChangePolicy.periodic(period, jitter_hours=period * 0.005),
                    policy_ds=ChangePolicy.exponential(3 * MONTH),
                    ds_legacy_fraction=0.1,
                    num_blocks=2,
                    block_plen=18,
                    same_slash24_affinity=0.05,
                    same_block_affinity=0.5,
                ),
                v6=V6AddressingConfig(
                    policy=ChangePolicy.exponential(10 * MONTH),
                    allocation_plen=32,
                    pool_plen=42,
                    num_pools=8,
                    delegation_plen=56,
                    sync_with_v4_prob=0.1,
                    pool_switch_prob=0.02,
                    cpe_mix=((_ZERO_CPE, 1.0),),
                ),
            )
        )
    return cohort


def mobile_profile(name: str, asn: int, country: str, rir: RIR) -> IspConfig:
    """A generic cellular operator: CGNAT v4, per-device /64s, no zeroing.

    The netsim timeline machinery is not used for mobile populations
    (the CDN substrate models them directly); this profile exists so
    mobile ASes are registered and announced consistently.
    """
    return IspConfig(
        name=name,
        asn=asn,
        country=country,
        rir=rir,
        kind=AccessKind.MOBILE,
        dual_stack_fraction=1.0,
        v4=V4AddressingConfig(
            policy_nds=ChangePolicy.exponential(2 * DAY, renumber_on_reboot=True),
            policy_ds=ChangePolicy.exponential(2 * DAY, renumber_on_reboot=True),
            num_blocks=2,
            block_plen=22,
            same_slash24_affinity=0.0,
            same_block_affinity=0.5,
        ),
        v6=V6AddressingConfig(
            policy=ChangePolicy.exponential(DAY),
            allocation_plen=32,
            pool_plen=44,
            num_pools=16,
            delegation_plen=64,
            sync_with_v4_prob=0.0,
            pool_switch_prob=0.05,
            cpe_mix=((CpeBehavior(lan_selection="zero"), 1.0),),
        ),
    )


__all__ = [
    "COHORT_PERIODS",
    "PAPER_DS_PROBE_COUNTS",
    "PAPER_TOTAL_PROBE_COUNTS",
    "default_profiles",
    "mobile_profile",
    "periodic_cohort",
    "profile_by_name",
]
