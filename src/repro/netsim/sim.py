"""The event-queue simulation that produces per-subscriber timelines.

:class:`IspSimulation` drives one ISP's subscriber population from hour
0 to ``end_hour`` through a single global event queue, so all pool
allocations and releases happen in global time order (no two
subscribers ever hold the same address simultaneously).

Event kinds:

``v4``
    Scheduled IPv4 renumbering (lease/session expiry per policy).  May
    synchronously renumber IPv6 with the configured probability.
``v6``
    Scheduled, independent IPv6 delegated-prefix renumbering.
``reboot``
    CPE reboot; triggers renumbering for policies with
    ``renumber_on_reboot`` (stateless RADIUS-style deployments).
``scramble``
    CPE-local re-draw of the LAN /64 within the current delegation
    (DTAG-style privacy scrambling) — no ISP involvement.

The output is a :class:`SubscriberTimeline` per subscriber: interval
lists for the IPv4 address, the IPv6 LAN /64, and (as ground truth for
the delegated-prefix inference experiments) the IPv6 delegation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.ip.addr import IPv4Address
from repro.ip.prefix import IPv6Prefix
from repro.netsim.cpe import Cpe
from repro.netsim.events import EventQueue
from repro.netsim.isp import Isp, IspConfig
from repro.netsim.policy import ChangePolicy
from repro.netsim.pool import V4AddressPlan, V6PrefixPlan

Value = Union[IPv4Address, IPv6Prefix]


@dataclass(frozen=True)
class AssignmentInterval:
    """One assignment held over ``[start, end)`` (hours)."""

    start: float
    end: float
    value: Value

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SubscriberTimeline:
    """Everything one subscriber held over the simulation."""

    subscriber_id: int
    dual_stack: bool
    v4: List[AssignmentInterval] = field(default_factory=list)
    v6_lan: List[AssignmentInterval] = field(default_factory=list)
    v6_delegation: List[AssignmentInterval] = field(default_factory=list)


class _SubscriberState:
    __slots__ = (
        "sub_id",
        "dual_stack",
        "v4_policy",
        "is_legacy",
        "cpe",
        "home_pool",
        "v4_addr",
        "v4_since",
        "v6_delegation",
        "v6_delegation_since",
        "v6_lan",
        "v6_lan_since",
        "v4_event",
        "v6_event",
        "timeline",
    )

    def __init__(self, sub_id: int, dual_stack: bool, v4_policy: ChangePolicy, cpe: Cpe) -> None:
        self.sub_id = sub_id
        self.dual_stack = dual_stack
        self.v4_policy = v4_policy
        self.is_legacy = False
        self.cpe = cpe
        self.home_pool = 0
        self.v4_addr: Optional[IPv4Address] = None
        self.v4_since = 0.0
        self.v6_delegation: Optional[IPv6Prefix] = None
        self.v6_delegation_since = 0.0
        self.v6_lan: Optional[IPv6Prefix] = None
        self.v6_lan_since = 0.0
        self.v4_event = None
        self.v6_event = None
        self.timeline = SubscriberTimeline(subscriber_id=sub_id, dual_stack=dual_stack)


class IspSimulation:
    """Simulate ``num_subscribers`` lines of one ISP for ``end_hour`` hours."""

    def __init__(
        self,
        isp: Isp,
        num_subscribers: int,
        end_hour: float,
        seed: int = 0,
    ) -> None:
        if num_subscribers < 1:
            raise ValueError("num_subscribers must be >= 1")
        if end_hour <= 0:
            raise ValueError("end_hour must be positive")
        self.isp = isp
        self.end_hour = float(end_hour)
        self._rng = random.Random((seed << 16) ^ isp.asn)
        self._queue = EventQueue()
        self._subs: Dict[int, _SubscriberState] = {}
        self._build_population(num_subscribers)
        if isp.config.infra_outage_mean_hours:
            delay = self._rng.expovariate(1.0 / isp.config.infra_outage_mean_hours)
            self._queue.schedule(delay, ("infra", -1))

    # -- setup ---------------------------------------------------------------

    def _build_population(self, count: int) -> None:
        config = self.isp.config
        rng = self._rng
        for sub_id in range(count):
            dual_stack = config.v6 is not None and rng.random() < config.dual_stack_fraction
            is_legacy = rng.random() < config.v4.ds_legacy_fraction
            if dual_stack and not is_legacy:
                v4_policy = config.v4.policy_ds
            else:
                v4_policy = config.v4.policy_nds
            cpe = None
            if config.v6 is not None:
                behaviors = [behavior for behavior, _ in config.v6.cpe_mix]
                weights = [weight for _, weight in config.v6.cpe_mix]
                cpe = Cpe(rng.choices(behaviors, weights=weights, k=1)[0], rng)
            state = _SubscriberState(sub_id, dual_stack, v4_policy, cpe)
            state.is_legacy = is_legacy
            self._subs[sub_id] = state
            for epoch_index, epoch in enumerate(config.v4.epochs):
                if epoch.start_hour < self.end_hour:
                    self._queue.schedule(epoch.start_hour, ("policy", sub_id, epoch_index))

            state.v4_addr = self.isp.v4_plan.allocate(rng)
            state.v4_since = 0.0
            self._schedule_v4(state, 0.0, first=True)

            if dual_stack:
                assert self.isp.v6_plan is not None and cpe is not None
                state.home_pool = self.isp.v6_plan.home_pool_index(rng)
                delegation, pool = self.isp.v6_plan.allocate(rng, state.home_pool)
                state.home_pool = pool
                state.v6_delegation = delegation
                state.v6_lan = cpe.select_lan_prefix(delegation, rng)
                self._schedule_v6(state, 0.0, first=True)
                scramble_delay = cpe.next_scramble_delay(rng)
                if scramble_delay is not None:
                    self._queue.schedule(scramble_delay * rng.random(), ("scramble", sub_id))
            if cpe is not None:
                reboot_delay = cpe.next_reboot_delay(rng)
                if reboot_delay is not None:
                    self._queue.schedule(reboot_delay, ("reboot", sub_id))

    def _schedule_v4(self, state: _SubscriberState, now: float, first: bool = False) -> None:
        delay = state.v4_policy.next_change_delay(self._rng)
        if delay is None:
            state.v4_event = None
            return
        if first:
            # Random phase so periodic populations do not change in lock-step.
            delay *= self._rng.random()
        state.v4_event = self._queue.schedule(now + delay, ("v4", state.sub_id))

    def _schedule_v6(self, state: _SubscriberState, now: float, first: bool = False) -> None:
        config = self.isp.config.v6
        assert config is not None
        delay = config.policy.next_change_delay(self._rng)
        if delay is None:
            state.v6_event = None
            return
        if first:
            delay *= self._rng.random()
        state.v6_event = self._queue.schedule(now + delay, ("v6", state.sub_id))

    # -- state transitions ----------------------------------------------------

    def _renumber_v4(self, state: _SubscriberState, now: float) -> None:
        old = state.v4_addr
        assert old is not None
        state.timeline.v4.append(AssignmentInterval(state.v4_since, now, old))
        self.isp.v4_plan.release(old)
        state.v4_addr = self.isp.v4_plan.allocate(self._rng, previous=old)
        state.v4_since = now

    def _renumber_v6(self, state: _SubscriberState, now: float) -> None:
        plan = self.isp.v6_plan
        assert plan is not None and state.cpe is not None
        old = state.v6_delegation
        assert old is not None and state.v6_lan is not None
        state.timeline.v6_delegation.append(
            AssignmentInterval(state.v6_delegation_since, now, old)
        )
        state.timeline.v6_lan.append(AssignmentInterval(state.v6_lan_since, now, state.v6_lan))
        plan.release(old)
        delegation, pool = plan.allocate(self._rng, state.home_pool, previous=old)
        state.home_pool = pool
        state.v6_delegation = delegation
        state.v6_delegation_since = now
        state.v6_lan = state.cpe.select_lan_prefix(delegation, self._rng)
        state.v6_lan_since = now

    def _rescramble(self, state: _SubscriberState, now: float) -> None:
        assert state.cpe is not None and state.v6_delegation is not None
        assert state.v6_lan is not None
        new_lan = state.cpe.select_lan_prefix(state.v6_delegation, self._rng)
        if new_lan == state.v6_lan:
            return
        state.timeline.v6_lan.append(AssignmentInterval(state.v6_lan_since, now, state.v6_lan))
        state.v6_lan = new_lan
        state.v6_lan_since = now

    def _maybe_sync_v6(self, state: _SubscriberState, now: float) -> None:
        """A v4 change drags the v6 delegation along with it (DTAG-style)."""
        config = self.isp.config.v6
        if config is None or not state.dual_stack:
            return
        if self._rng.random() >= config.sync_with_v4_prob:
            return
        self._renumber_v6(state, now)
        if state.v6_event is not None:
            self._queue.cancel(state.v6_event)
        self._schedule_v6(state, now)

    # -- main loop --------------------------------------------------------------

    def run(self) -> Dict[int, SubscriberTimeline]:
        """Process all events up to ``end_hour``; returns the timelines."""
        for now, event in self._queue.drain_until(self.end_hour):
            kind, sub_id = event[0], event[1]
            if kind == "infra":
                self._handle_infrastructure_outage(now)
                continue
            state = self._subs[sub_id]
            if kind == "policy":
                self._apply_policy_epoch(state, now, event[2])
            elif kind == "v4":
                self._renumber_v4(state, now)
                self._maybe_sync_v6(state, now)
                self._schedule_v4(state, now)
            elif kind == "v6":
                self._renumber_v6(state, now)
                self._schedule_v6(state, now)
            elif kind == "reboot":
                self._handle_reboot(state, now)
            elif kind == "scramble":
                self._rescramble(state, now)
                assert state.cpe is not None
                delay = state.cpe.next_scramble_delay(self._rng)
                if delay is not None:
                    self._queue.schedule(now + delay, ("scramble", sub_id))
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
        return self._close_timelines()

    def _handle_infrastructure_outage(self, now: float) -> None:
        """A BNG/assignment server loses state: mass simultaneous renumbering.

        A random ``infra_outage_scope`` share of subscribers is renumbered
        at the same instant in both families (Section 2.2, "outages that
        affect ISP's infrastructure devices").
        """
        config = self.isp.config
        scope = config.infra_outage_scope
        for state in self._subs.values():
            if self._rng.random() >= scope:
                continue
            self._renumber_v4(state, now)
            if state.v4_event is not None:
                self._queue.cancel(state.v4_event)
            self._schedule_v4(state, now)
            if state.dual_stack and state.v6_delegation is not None:
                self._renumber_v6(state, now)
                if state.v6_event is not None:
                    self._queue.cancel(state.v6_event)
                self._schedule_v6(state, now)
        delay = self._rng.expovariate(1.0 / config.infra_outage_mean_hours)
        self._queue.schedule(now + delay, ("infra", -1))

    def _apply_policy_epoch(self, state: _SubscriberState, now: float, epoch_index: int) -> None:
        """Switch the subscriber onto the epoch's policy (Section 3.2 drift).

        The pending renumbering timer is rescheduled under the new
        policy, measured from now — an administratively shortened lease
        takes effect at the next renewal, not retroactively.
        """
        epoch = self.isp.config.v4.epochs[epoch_index]
        if state.dual_stack and not state.is_legacy:
            state.v4_policy = epoch.policy_ds
        else:
            state.v4_policy = epoch.policy_nds
        if state.v4_event is not None:
            self._queue.cancel(state.v4_event)
        self._schedule_v4(state, now)

    def _handle_reboot(self, state: _SubscriberState, now: float) -> None:
        if state.v4_policy.renumber_on_reboot:
            self._renumber_v4(state, now)
            if state.v4_event is not None:
                self._queue.cancel(state.v4_event)
            self._schedule_v4(state, now)
            self._maybe_sync_v6(state, now)
        config = self.isp.config.v6
        if (
            config is not None
            and state.dual_stack
            and config.policy.renumber_on_reboot
        ):
            self._renumber_v6(state, now)
            if state.v6_event is not None:
                self._queue.cancel(state.v6_event)
            self._schedule_v6(state, now)
        assert state.cpe is not None
        delay = state.cpe.next_reboot_delay(self._rng)
        if delay is not None:
            self._queue.schedule(now + delay, ("reboot", state.sub_id))

    def _close_timelines(self) -> Dict[int, SubscriberTimeline]:
        end = self.end_hour
        for state in self._subs.values():
            if state.v4_addr is not None:
                state.timeline.v4.append(AssignmentInterval(state.v4_since, end, state.v4_addr))
            if state.v6_lan is not None:
                state.timeline.v6_lan.append(
                    AssignmentInterval(state.v6_lan_since, end, state.v6_lan)
                )
            if state.v6_delegation is not None:
                state.timeline.v6_delegation.append(
                    AssignmentInterval(state.v6_delegation_since, end, state.v6_delegation)
                )
        return {sub_id: state.timeline for sub_id, state in self._subs.items()}


# ---------------------------------------------------------------------------
# Picklable work units
# ---------------------------------------------------------------------------
#
# An :class:`IspSimulation` only ever touches the ISP's config and its two
# address plans — never the shared registry or routing table.  A
# :class:`SimulationJob` captures exactly that state, so one ISP's
# simulation can be shipped to a worker process and its results (the
# timelines plus the mutated plans) grafted back onto the original
# :class:`~repro.netsim.isp.Isp`, leaving the parent bit-identical to a
# serial run.


class _PlanView:
    """Duck-typed stand-in for :class:`Isp` inside worker processes."""

    __slots__ = ("config", "v4_plan", "v6_plan")

    def __init__(
        self,
        config: IspConfig,
        v4_plan: V4AddressPlan,
        v6_plan: Optional[V6PrefixPlan],
    ) -> None:
        self.config = config
        self.v4_plan = v4_plan
        self.v6_plan = v6_plan

    @property
    def asn(self) -> int:
        return self.config.asn


@dataclass
class SimulationJob:
    """One ISP's simulation, detached from all shared build state."""

    config: IspConfig
    v4_plan: V4AddressPlan
    v6_plan: Optional[V6PrefixPlan]
    num_subscribers: int
    end_hour: float
    seed: int

    @classmethod
    def from_isp(
        cls, isp: Isp, num_subscribers: int, end_hour: float, seed: int
    ) -> "SimulationJob":
        return cls(
            config=isp.config,
            v4_plan=isp.v4_plan,
            v6_plan=isp.v6_plan,
            num_subscribers=num_subscribers,
            end_hour=end_hour,
            seed=seed,
        )


@dataclass
class SimulationResult:
    """Timelines plus the post-simulation plan state of one job."""

    asn: int
    timelines: Dict[int, SubscriberTimeline]
    v4_plan: V4AddressPlan
    v6_plan: Optional[V6PrefixPlan]

    def graft_onto(self, isp: Isp) -> None:
        """Install the post-run plan state on ``isp`` (parent process)."""
        if isp.asn != self.asn:
            raise ValueError(f"result for AS{self.asn} grafted onto AS{isp.asn}")
        isp.v4_plan = self.v4_plan
        isp.v6_plan = self.v6_plan


def run_simulation_job(job: SimulationJob) -> SimulationResult:
    """Execute one :class:`SimulationJob` (used as the worker entry point)."""
    view = _PlanView(job.config, job.v4_plan, job.v6_plan)
    timelines = IspSimulation(
        view, job.num_subscribers, job.end_hour, seed=job.seed
    ).run()
    return SimulationResult(
        asn=job.config.asn,
        timelines=timelines,
        v4_plan=view.v4_plan,
        v6_plan=view.v6_plan,
    )


__all__ = [
    "AssignmentInterval",
    "IspSimulation",
    "SimulationJob",
    "SimulationResult",
    "SubscriberTimeline",
    "run_simulation_job",
]
