"""Assignment-change policies.

A :class:`ChangePolicy` describes *when* a subscriber's assignment is
renumbered, abstracting over the mechanisms of Section 2.2:

* ``periodic`` — RADIUS SessionTimeout / aggressive DHCP reclaim: the
  assignment changes after a fixed period (24 h for DTAG, 1 week for
  Orange, ...), with optional uniform jitter;
* ``exponential`` — sticky DHCP with renewals: changes only on rare
  events (infrastructure outages, administrative renumbering), modelled
  as a Poisson process with a configurable mean holding time;
* ``static`` — no scheduled changes at all (changes can still be caused
  by reboots when ``renumber_on_reboot`` is set).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

VALID_KINDS = ("static", "periodic", "exponential")


@dataclass(frozen=True)
class ChangePolicy:
    """When assignments are renumbered.

    Parameters
    ----------
    kind:
        One of ``"static"``, ``"periodic"``, ``"exponential"``.
    period_hours:
        Holding period for ``periodic`` policies.
    jitter_hours:
        Half-width of the uniform jitter added to each period (periodic
        only); keeps subscriber phases from drifting into lock-step.
    mean_hours:
        Mean holding time for ``exponential`` policies.
    renumber_on_reboot:
        Whether a CPE reboot/outage triggers immediate renumbering —
        true of RADIUS deployments that keep no per-client state
        (Section 2.2 "Changes due to outages").
    """

    kind: str
    period_hours: float = 0.0
    jitter_hours: float = 0.0
    mean_hours: float = 0.0
    renumber_on_reboot: bool = False

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown policy kind {self.kind!r}; expected one of {VALID_KINDS}")
        if self.kind == "periodic" and self.period_hours <= 0:
            raise ValueError("periodic policy requires period_hours > 0")
        if self.kind == "exponential" and self.mean_hours <= 0:
            raise ValueError("exponential policy requires mean_hours > 0")
        if self.jitter_hours < 0:
            raise ValueError("jitter_hours must be non-negative")
        if self.jitter_hours >= self.period_hours and self.kind == "periodic" and self.jitter_hours:
            raise ValueError("jitter_hours must be smaller than period_hours")

    def next_change_delay(self, rng: random.Random) -> Optional[float]:
        """Hours until the next scheduled renumbering, or ``None`` for static."""
        if self.kind == "static":
            return None
        if self.kind == "periodic":
            if self.jitter_hours:
                return self.period_hours + rng.uniform(-self.jitter_hours, self.jitter_hours)
            return self.period_hours
        return rng.expovariate(1.0 / self.mean_hours)

    @classmethod
    def static(cls, renumber_on_reboot: bool = False) -> "ChangePolicy":
        return cls(kind="static", renumber_on_reboot=renumber_on_reboot)

    @classmethod
    def periodic(
        cls,
        period_hours: float,
        jitter_hours: float = 0.0,
        renumber_on_reboot: bool = True,
    ) -> "ChangePolicy":
        return cls(
            kind="periodic",
            period_hours=period_hours,
            jitter_hours=jitter_hours,
            renumber_on_reboot=renumber_on_reboot,
        )

    @classmethod
    def exponential(
        cls,
        mean_hours: float,
        renumber_on_reboot: bool = False,
    ) -> "ChangePolicy":
        return cls(
            kind="exponential",
            mean_hours=mean_hours,
            renumber_on_reboot=renumber_on_reboot,
        )


__all__ = ["ChangePolicy", "VALID_KINDS"]
