"""Protocol-level DHCP lease model (RFC 2131 semantics).

The event simulation in :mod:`repro.netsim.sim` drives renumbering
through abstract :class:`~repro.netsim.policy.ChangePolicy` objects.
This module provides the concrete protocol machinery those policies
abstract — a lease-granting server with T1/T2 renewal timers and
configurable state retention — so the abstraction can be *validated*
against protocol behaviour (see ``tests/test_protocol_models.py``):

* a client that renews before lease expiry keeps its address
  indefinitely → the ``exponential``/``static`` policies;
* a client that goes silent past expiry loses the binding; whether it
  gets the *same* address back depends on whether the server remembers
  expired bindings (``remember_expired``) — the paper's Section 2.2
  distinction between stateful DHCP and stateless RADIUS deployments.

Time is in hours, matching the rest of the simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.ip.addr import IPv4Address
from repro.netsim.pool import V4AddressPlan


@dataclass(frozen=True)
class Lease:
    """One granted lease."""

    client_id: int
    address: IPv4Address
    granted_at: float
    expires_at: float

    @property
    def duration(self) -> float:
        return self.expires_at - self.granted_at

    def renewal_time(self) -> float:
        """T1: when the client first tries to renew (0.5 of the lease)."""
        return self.granted_at + 0.5 * self.duration

    def rebinding_time(self) -> float:
        """T2: when the client broadcasts to any server (0.875)."""
        return self.granted_at + 0.875 * self.duration


class DhcpServer:
    """A DHCP server over a :class:`V4AddressPlan`.

    Parameters
    ----------
    plan:
        The address pool(s) to allocate from.
    lease_time:
        Lease duration handed to clients (hours).
    remember_expired:
        Whether expired bindings are remembered so a returning client
        gets its previous address when still free (stateful servers).
    """

    def __init__(
        self,
        plan: V4AddressPlan,
        lease_time: float,
        remember_expired: bool = True,
        seed: int = 0,
    ) -> None:
        if lease_time <= 0:
            raise ValueError("lease_time must be positive")
        self._plan = plan
        self.lease_time = float(lease_time)
        self.remember_expired = remember_expired
        self._rng = random.Random(seed)
        self._active: Dict[int, Lease] = {}
        self._expired_binding: Dict[int, IPv4Address] = {}

    @property
    def active_leases(self) -> int:
        return len(self._active)

    def lease_of(self, client_id: int) -> Optional[Lease]:
        """The client's current lease, expired or not (None when never leased)."""
        return self._active.get(client_id)

    def _expire_if_due(self, client_id: int, now: float) -> None:
        lease = self._active.get(client_id)
        if lease is not None and lease.expires_at <= now:
            del self._active[client_id]
            self._plan.release(lease.address)
            if self.remember_expired:
                self._expired_binding[client_id] = lease.address
            else:
                self._expired_binding.pop(client_id, None)

    def request(self, client_id: int, now: float) -> Lease:
        """DISCOVER/REQUEST: grant (or extend) a lease for the client.

        An unexpired binding is renewed in place.  An expired binding is
        re-granted with the same address when the server remembers it
        and the address is still free; otherwise a fresh address is
        allocated.
        """
        self._expire_if_due(client_id, now)
        current = self._active.get(client_id)
        if current is not None:
            renewed = Lease(
                client_id=client_id,
                address=current.address,
                granted_at=now,
                expires_at=now + self.lease_time,
            )
            self._active[client_id] = renewed
            return renewed

        address: Optional[IPv4Address] = None
        remembered = self._expired_binding.get(client_id)
        if remembered is not None and self._try_claim(remembered):
            # Stateful server: re-grant the previous address while free.
            address = remembered
        if address is None:
            address = self._plan.allocate(self._rng, previous=remembered)
        self._expired_binding.pop(client_id, None)
        lease = Lease(
            client_id=client_id,
            address=address,
            granted_at=now,
            expires_at=now + self.lease_time,
        )
        self._active[client_id] = lease
        return lease

    def _try_claim(self, address: IPv4Address) -> bool:
        """Claim a specific free address from the plan (internal)."""
        in_use = self._plan._in_use  # noqa: SLF001 - deliberate tight coupling
        if int(address) in in_use:
            return False
        in_use.add(int(address))
        return True

    def renew(self, client_id: int, now: float) -> Optional[Lease]:
        """RENEW: extend an unexpired lease; ``None`` when none is active."""
        self._expire_if_due(client_id, now)
        if client_id not in self._active:
            return None
        return self.request(client_id, now)

    def release(self, client_id: int, now: float) -> None:
        """RELEASE: the client gives its address back voluntarily."""
        del now
        lease = self._active.pop(client_id, None)
        if lease is not None:
            self._plan.release(lease.address)
            if self.remember_expired:
                self._expired_binding[client_id] = lease.address


class DhcpClient:
    """A renewing DHCP client: simulates uptime and reports its address.

    ``address_history(until)`` walks simulated time, renewing at T1
    while up, and returns the (start, end, address) assignment history —
    the protocol-level ground truth the abstract policies approximate.
    """

    def __init__(
        self,
        client_id: int,
        server: DhcpServer,
        mean_uptime: float,
        mean_downtime: float,
        seed: int = 0,
    ) -> None:
        if mean_uptime <= 0 or mean_downtime < 0:
            raise ValueError("uptime must be positive; downtime non-negative")
        self.client_id = client_id
        self.server = server
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self._rng = random.Random((seed << 8) ^ client_id)

    def address_history(self, until: float) -> list[tuple[float, float, IPv4Address]]:
        """Simulate the client until ``until``; returns assignment spans."""
        history: list[tuple[float, float, IPv4Address]] = []
        now = 0.0
        while now < until:
            up_for = self._rng.expovariate(1.0 / self.mean_uptime)
            up_end = min(now + up_for, until)
            # While up: request, then renew at T1 repeatedly.
            lease = self.server.request(self.client_id, now)
            span_start = now
            current = lease.address
            while True:
                next_renewal = lease.renewal_time()
                if next_renewal >= up_end:
                    break
                lease = self.server.request(self.client_id, next_renewal)
                if lease.address != current:
                    history.append((span_start, next_renewal, current))
                    span_start, current = next_renewal, lease.address
            history.append((span_start, up_end, current))
            now = up_end
            if self.mean_downtime:
                now += self._rng.expovariate(1.0 / self.mean_downtime)
        # Merge adjacent spans with the same address (renewal kept it).
        merged: list[tuple[float, float, IPv4Address]] = []
        for start, end, address in history:
            if merged and merged[-1][2] == address:
                merged[-1] = (merged[-1][0], end, address)
            else:
                merged.append((start, end, address))
        return merged


__all__ = ["DhcpClient", "DhcpServer", "Lease"]
