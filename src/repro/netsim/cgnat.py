"""Carrier-grade NAT (CGNAT) model.

In cellular networks, devices receive private IPv4 addresses and share a
small pool of public addresses through an operator NAT (Section 2.1).
From a CDN's vantage point, a device's *public* IPv4 address is whatever
CGNAT egress address carried its flows that day.

The model captures the two properties the paper measures:

* **multiplexing** — many devices (tens of thousands) appear behind the
  same public /24 (Figure 4a's 10^4–10^5 peak);
* **affinity** — a given device tends to hash to the same egress
  address, so most mobile /64s are associated with a single v4 /24
  (87 % of mobile /64s have degree 1, Section 4.3).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.ip.addr import IPv4Address
from repro.ip.prefix import IPv4Prefix


class CgnatGateway:
    """Maps subscriber devices onto shared public IPv4 addresses."""

    def __init__(
        self,
        public_blocks: Sequence[IPv4Prefix],
        stickiness: float = 0.95,
    ) -> None:
        """
        Parameters
        ----------
        public_blocks:
            The operator's public egress blocks (typically a few /24s).
        stickiness:
            Probability that a device keeps its previously hashed egress
            address on a new session; the remainder re-hash uniformly.
        """
        if not public_blocks:
            raise ValueError("CgnatGateway requires at least one public block")
        if not 0.0 <= stickiness <= 1.0:
            raise ValueError(f"stickiness must be in [0, 1], got {stickiness}")
        self._addresses: List[IPv4Address] = []
        for block in public_blocks:
            self._addresses.extend(
                IPv4Address(int(block.network) + i) for i in range(block.num_addresses)
            )
        self._stickiness = stickiness
        self._bindings: dict[int, IPv4Address] = {}

    @property
    def num_public_addresses(self) -> int:
        return len(self._addresses)

    def egress_address(self, device_id: int, rng: random.Random) -> IPv4Address:
        """The public address observed for ``device_id``'s flows right now."""
        bound = self._bindings.get(device_id)
        if bound is not None and rng.random() < self._stickiness:
            return bound
        address = rng.choice(self._addresses)
        self._bindings[device_id] = address
        return address

    def forget(self, device_id: int) -> None:
        """Drop NAT state for a device (e.g. long idle timeout)."""
        self._bindings.pop(device_id, None)


__all__ = ["CgnatGateway"]
