"""ISP construction: configuration dataclasses and address-plan wiring.

An :class:`IspConfig` gathers every knob the paper's observations imply:
assignment protocol behaviour per stack (and per dual-stack status),
spatial affinities, IPv6 pool structure, CPE behaviour, and
v4/v6 change synchronization.  :class:`Isp` materializes a config
against a :class:`~repro.bgp.registry.Registry`, obtaining address
blocks and announcing routes into a shared routing table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bgp.registry import RIR, AccessKind, Registry
from repro.bgp.table import RoutingTable
from repro.ip.prefix import IPv6Prefix
from repro.netsim.cpe import CpeBehavior
from repro.netsim.policy import ChangePolicy
from repro.netsim.pool import V4AddressPlan, V6PrefixPlan


@dataclass(frozen=True)
class PolicyEpoch:
    """A scheduled change of an ISP's assignment policies.

    From ``start_hour`` onwards, subscribers follow the epoch's
    policies instead of the configured base ones — the mechanism behind
    the paper's "Evolution over time" observation that ISPs such as
    DTAG and Orange lengthened their assignment durations over the
    years (Section 3.2).
    """

    start_hour: float
    policy_nds: ChangePolicy
    policy_ds: ChangePolicy

    def __post_init__(self) -> None:
        if self.start_hour < 0:
            raise ValueError("epoch start_hour must be non-negative")


@dataclass(frozen=True)
class V4AddressingConfig:
    """IPv4 side of an ISP's assignment behaviour.

    ``policy_nds`` applies to non-dual-stack subscribers and
    ``policy_ds`` to dual-stack ones — the paper finds these can differ
    sharply (Section 3.2, "Probes in dual-stack networks observe longer
    IPv4 address durations").  ``ds_legacy_fraction`` is the share of
    dual-stack subscribers still handled by the legacy (NDS) policy,
    e.g. DTAG probes that keep 24-hour renumbering even when
    dual-stacked.  ``epochs`` optionally evolve the policies over
    simulated time (sorted by ``start_hour``).
    """

    policy_nds: ChangePolicy
    policy_ds: ChangePolicy
    num_blocks: int = 4
    block_plen: int = 16
    ds_legacy_fraction: float = 0.0
    same_slash24_affinity: float = 0.05
    same_block_affinity: float = 0.5
    epochs: tuple = ()

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if not 0 <= self.block_plen <= 32:
            raise ValueError(f"bad block_plen {self.block_plen}")
        if not 0.0 <= self.ds_legacy_fraction <= 1.0:
            raise ValueError("ds_legacy_fraction must be in [0, 1]")
        for epoch in self.epochs:
            if not isinstance(epoch, PolicyEpoch):
                raise TypeError(f"epochs entries must be PolicyEpoch, got {epoch!r}")
        starts = [epoch.start_hour for epoch in self.epochs]
        if starts != sorted(starts):
            raise ValueError("epochs must be sorted by start_hour")


def _default_cpe_mix() -> tuple:
    return ((CpeBehavior(), 1.0),)


@dataclass(frozen=True)
class V6AddressingConfig:
    """IPv6 side: allocation/pool/delegation structure plus dynamics.

    ``cpe_mix`` is a weighted mixture of CPE behaviours deployed in the
    ISP's customer base — e.g. DTAG mixes zero-filling CPEs with
    prefix-scrambling ones, which is why Figure 6 shows both a /56 and a
    /64 spike for that ISP.
    """

    policy: ChangePolicy
    allocation_plen: int = 32
    pool_plen: int = 40
    num_pools: int = 16
    delegation_plen: int = 56
    num_announcements: int = 1
    sync_with_v4_prob: float = 0.0
    pool_switch_prob: float = 0.02
    cpe_mix: tuple = field(default_factory=_default_cpe_mix)

    def __post_init__(self) -> None:
        if not self.allocation_plen <= self.pool_plen <= self.delegation_plen <= 64:
            raise ValueError(
                "need allocation_plen <= pool_plen <= delegation_plen <= 64, got "
                f"/{self.allocation_plen} /{self.pool_plen} /{self.delegation_plen}"
            )
        if self.num_announcements < 1:
            raise ValueError("num_announcements must be >= 1")
        if not 0.0 <= self.sync_with_v4_prob <= 1.0:
            raise ValueError("sync_with_v4_prob must be in [0, 1]")
        if not self.cpe_mix:
            raise ValueError("cpe_mix must contain at least one behaviour")
        for behavior, weight in self.cpe_mix:
            if not isinstance(behavior, CpeBehavior):
                raise TypeError(f"cpe_mix entries must be CpeBehavior, got {behavior!r}")
            if weight <= 0:
                raise ValueError(f"cpe_mix weights must be positive, got {weight}")


@dataclass(frozen=True)
class IspConfig:
    """Everything needed to instantiate one simulated ISP.

    ``infra_outage_mean_hours`` (0 = disabled) enables ISP-level
    infrastructure outages (Section 2.2: a BNG/DHCP server losing state)
    as a Poisson process; each event renumbers a random
    ``infra_outage_scope`` fraction of subscribers *simultaneously*, in
    both families — the correlated mass-renumbering signature.
    """

    name: str
    asn: int
    country: str
    rir: RIR
    v4: V4AddressingConfig
    v6: Optional[V6AddressingConfig] = None
    kind: AccessKind = AccessKind.FIXED
    dual_stack_fraction: float = 0.7
    infra_outage_mean_hours: float = 0.0
    infra_outage_scope: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.dual_stack_fraction <= 1.0:
            raise ValueError("dual_stack_fraction must be in [0, 1]")
        if self.infra_outage_mean_hours < 0:
            raise ValueError("infra_outage_mean_hours must be non-negative")
        if not 0.0 < self.infra_outage_scope <= 1.0:
            raise ValueError("infra_outage_scope must be in (0, 1]")
        if self.v6 is None and self.dual_stack_fraction > 0:
            object.__setattr__(self, "dual_stack_fraction", 0.0)


class Isp:
    """A configured ISP with materialized address plans and routes."""

    def __init__(
        self,
        config: IspConfig,
        registry: Registry,
        routing_table: Optional[RoutingTable] = None,
    ) -> None:
        self.config = config
        self.registry = registry
        self.routing_table = routing_table if routing_table is not None else RoutingTable()

        registry.register(config.asn, config.name, config.country, config.rir, config.kind)
        blocks = registry.allocate_v4(config.asn, config.v4.block_plen, config.v4.num_blocks)
        self.v4_plan = V4AddressPlan(
            blocks,
            same_slash24_affinity=config.v4.same_slash24_affinity,
            same_block_affinity=config.v4.same_block_affinity,
        )
        for block in blocks:
            self.routing_table.announce(block, config.asn)

        self.v6_plan: Optional[V6PrefixPlan] = None
        self.v6_allocation: Optional[IPv6Prefix] = None
        if config.v6 is not None:
            allocation = registry.allocate_v6(config.asn, config.v6.allocation_plen)
            self.v6_allocation = allocation
            self.v6_plan = V6PrefixPlan(
                allocation,
                pool_plen=config.v6.pool_plen,
                delegation_plen=config.v6.delegation_plen,
                num_pools=config.v6.num_pools,
                pool_switch_prob=config.v6.pool_switch_prob,
            )
            # The allocation may be announced as several more-specific BGP
            # prefixes; this is what lets some IPv6 renumberings cross BGP
            # prefixes (Table 2, e.g. Free SAS).
            announce_plen = allocation.plen
            pieces = 1
            while pieces < config.v6.num_announcements:
                announce_plen += 1
                pieces *= 2
            for piece in allocation.subprefixes(announce_plen):
                self.routing_table.announce(piece, config.asn)

    @property
    def asn(self) -> int:
        return self.config.asn

    @property
    def name(self) -> str:
        return self.config.name

    def __repr__(self) -> str:
        return f"Isp({self.config.name!r}, AS{self.config.asn})"


__all__ = ["Isp", "IspConfig", "V4AddressingConfig", "V6AddressingConfig"]
