"""A deterministic event queue for the ISP simulator.

Events are ordered by ``(time, sequence)``: the sequence number is a
monotonically increasing tie-breaker, so two events scheduled for the
same instant fire in scheduling order.  Cancellation is lazy (tombstone
flags), the standard technique for binary-heap schedulers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Tuple


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    payload: Any = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """Min-heap of timestamped events with stable tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, time: float, payload: Any) -> _Entry:
        """Add an event; returns a handle usable with :meth:`cancel`."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        entry = _Entry(time=float(time), seq=next(self._counter), payload=payload)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def cancel(self, entry: _Entry) -> None:
        """Cancel a scheduled event (no-op if already fired or cancelled)."""
        if not entry.cancelled:
            entry.cancelled = True
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Tuple[float, Any]:
        """Remove and return ``(time, payload)`` of the earliest live event."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        entry = heapq.heappop(self._heap)
        self._live -= 1
        # Mark fired so a later cancel() of the same handle is a no-op.
        entry.cancelled = True
        return entry.time, entry.payload

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def drain_until(self, end: float) -> Iterator[Tuple[float, Any]]:
        """Yield events with ``time <= end`` in order, removing them."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > end:
                return
            yield self.pop()


__all__ = ["EventQueue"]
