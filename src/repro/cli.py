"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``simulate-atlas``
    Build the Atlas measurement study and write per-probe echo runs
    (JSONL) plus a sanitization summary.
``simulate-cdn``
    Build the CDN association dataset and write it as CSV.
``report``
    Build a scenario and print the paper's Table 1 / Table 2 /
    periodicity summaries.
``convert-atlas``
    Convert real RIPE Atlas HTTP measurement results (JSONL) into the
    pipeline's echo-record JSONL.
``stream``
    Run the chunked, checkpointable streaming analysis (bit-identical
    to ``report``'s batch np artifacts) over a built scenario or an
    exported run-stream file, optionally resuming from a checkpoint.
``store build`` / ``store analyze`` / ``store compact``
    Build a sharded memory-mapped triple store (from a CSV, a synthetic
    feed, or a CDN simulation — ``--workers N`` fans the build out to
    parallel segment writers, byte-identical to the serial build),
    analyze it shard-by-shard out-of-core (artifacts bit-identical to
    the in-RAM ``engine="np"`` path), and merge finalized stores via
    k-way compaction (incremental append-then-compact).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.atlas.convert import convert_results
from repro.core.report import render_table, table1_row, table2_row
from repro.io.records import write_association_csv, write_echo_records, write_echo_runs
from repro.obs import configure_logging, dump_telemetry, enable_telemetry, span
from repro.perf.cache import iter_cache_stats
from repro.workloads import (
    build_atlas_scenario,
    build_cdn_scenario,
    periodicity_for_scenario,
)


def _common_parser() -> argparse.ArgumentParser:
    """Options shared by every subcommand (logging + telemetry).

    Attached via ``parents=`` on each subparser — subparsers overwrite
    previously parsed defaults, so putting these on the main parser
    would silently reset them.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-v", "--verbose", action="count", default=0,
                        help="more logging (-v: info, -vv: debug); "
                        "default level comes from $REPRO_LOG")
    common.add_argument("-q", "--quiet", action="count", default=0,
                        help="less logging (errors only)")
    common.add_argument("--telemetry", default=None, metavar="PATH",
                        help="enable tracing spans + metrics and dump them "
                        "as JSON to PATH on exit")
    return common


def _add_atlas_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--probes-per-as", type=int, default=15,
                        help="probes deployed per featured AS (default: 15)")
    parser.add_argument("--years", type=float, default=2.0,
                        help="simulated measurement years (default: 2)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    _add_perf_args(parser)


def _add_perf_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for scenario generation "
                        "(default: $REPRO_WORKERS or serial); the result is "
                        "identical for any worker count")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk scenario cache even when "
                        "REPRO_CACHE enables it")


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=("np", "py", "fused"), default=None,
                        help="analysis kernels: columnar numpy ('np'), the "
                        "pure-Python reference ('py'), or the single-pass "
                        "fused engine ('fused'); all are bit-identical "
                        "(default: $REPRO_ANALYSIS_ENGINE, else np)")


def _cache_flag(args: argparse.Namespace):
    """False when --no-cache was given, else None (environment default)."""
    return False if args.no_cache else None


def cmd_simulate_atlas(args: argparse.Namespace) -> int:
    """Generate an Atlas-style dataset and write runs + summary."""
    scenario = build_atlas_scenario(
        probes_per_as=args.probes_per_as,
        years=args.years,
        seed=args.seed,
        workers=args.workers,
        cache=_cache_flag(args),
    )
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    runs_path = output / "echo_runs.jsonl"
    with runs_path.open("w") as stream:
        written = 0
        for probe in scenario.probes:
            written += write_echo_runs(probe.v4_runs, stream)
            written += write_echo_runs(probe.v6_runs, stream)
    report = scenario.report
    summary_path = output / "sanitization.txt"
    summary_path.write_text(
        f"input probes:      {report.input_probes}\n"
        f"kept probes:       {report.kept_probes}\n"
        f"virtual probes:    {report.virtual_probes_created}\n"
        f"bad tags dropped:  {report.dropped_bad_tag}\n"
        f"atypical NAT:      {report.dropped_atypical_nat}\n"
        f"multihomed:        {report.dropped_multihomed}\n"
        f"short duration:    {report.dropped_short}\n"
    )
    print(f"wrote {written} runs for {report.kept_probes} probes to {runs_path}")
    print(f"sanitization summary in {summary_path}")
    return 0


def cmd_simulate_cdn(args: argparse.Namespace) -> int:
    """Generate a CDN association dataset and write it as CSV."""
    scenario = build_cdn_scenario(
        days=args.days,
        seed=args.seed,
        fixed_subscribers_per_registry=args.fixed_subscribers,
        mobile_devices_per_registry=args.mobile_devices,
        featured_subscribers=args.featured_subscribers,
        workers=args.workers,
        cache=_cache_flag(args),
    )
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    with output.open("w") as stream:
        written = write_association_csv(scenario.dataset.iter_triples(), stream)
    print(
        f"wrote {written} associations ({scenario.dataset.discarded_asn_mismatch}"
        f" discarded by the ASN filter) to {output}"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Build a scenario and print Table 1 / Table 2 / periodicity summaries."""
    scenario = build_atlas_scenario(
        probes_per_as=args.probes_per_as,
        years=args.years,
        seed=args.seed,
        workers=args.workers,
        cache=_cache_flag(args),
    )
    table1_rows = []
    table2_rows = []
    table1_by_name = {}
    table2_by_name = {}
    with span("analysis/report", networks=len(scenario.isps)):
        for name, isp in scenario.isps.items():
            probes = scenario.probes_in(isp.asn)
            columns = scenario.analysis_columns(isp.asn, engine=args.engine)
            with span("analysis/table1", network=name):
                row = table1_row(
                    name, isp.asn, isp.config.country, probes,
                    engine=args.engine, columns=columns,
                )
            table1_by_name[name] = row
            table1_rows.append(
                [row.name, row.asn, row.all_probes, row.all_v4_changes, row.ds_probes,
                 f"{row.ds_v4_changes} ({row.ds_v4_share_pct:.0f}%)", row.ds_v6_changes]
            )
            with span("analysis/table2", network=name):
                rates = table2_row(
                    probes, scenario.table, engine=args.engine, columns=columns
                )
            table2_by_name[name] = rates
            table2_rows.append(
                [name, f"{rates.diff_slash24_pct:.0f}%", f"{rates.v4_diff_bgp_pct:.0f}%",
                 f"{rates.v6_diff_bgp_pct:.0f}%"]
            )
    v4_periods, v6_periods = periodicity_for_scenario(scenario, engine=args.engine)
    with span("report/render"):
        print(render_table(
            ["AS", "ASN", "probes", "v4 changes", "DS probes", "DS v4 changes",
             "v6 changes"],
            table1_rows,
            title="Table 1: assignment changes per AS",
        ))
        print()
        print(render_table(
            ["AS", "Diff /24", "Diff BGP (v4)", "Diff BGP (v6)"],
            table2_rows,
            title="Table 2: boundary crossings",
        ))
        period_rows = [
            [name,
             f"{v4_periods[name]:.0f}h" if name in v4_periods else "-",
             f"{v6_periods[name]:.0f}h" if name in v6_periods else "-"]
            for name in scenario.isps
            if name in v4_periods or name in v6_periods
        ]
        print()
        if period_rows:
            print(render_table(
                ["AS", "v4 NDS period", "v6 period"],
                period_rows,
                title="Periodic renumbering (Section 3.2)",
            ))
        else:
            print("Periodic renumbering: none detected")
    if args.json:
        from repro.core.engine import resolve_engine
        from repro.serve.wire import report_payload, write_json

        payload = report_payload(
            resolve_engine(args.engine),
            table1_by_name,
            table2_by_name,
            v4_periods,
            v6_periods,
            scenario=scenario,
        )
        path = write_json(payload, Path(args.json))
        print(f"report written to {path}")
    return 0


def _print_serve_status(app=None) -> None:
    """Render the uniform component-stats table (``repro serve --status``)."""
    from repro.perf.cache import iter_component_stats

    rows = [
        [component, identity, stats.hits, stats.misses, stats.puts,
         stats.errors, stats.evictions]
        for component, identity, stats in iter_component_stats()
    ]
    if not rows:
        print("no cache-like components active")
    else:
        print(render_table(
            ["component", "identity", "hits", "misses", "puts", "errors", "evictions"],
            rows,
            title="Serving components",
        ))
    if app is not None:
        info = app.process_info()
        peak = info.get("peak_rss_bytes")
        peak_mib = f"{peak / 2**20:.1f} MiB" if peak else "n/a"
        print(
            f"process: pid={info['pid']} uptime={info['uptime_seconds']:.1f}s "
            f"peak_rss={peak_mib} code={info['code_fingerprint'][:12]}"
        )


def cmd_serve(args: argparse.Namespace) -> int:
    """Answer address-dynamics queries from precomputed artifacts."""
    import json as json_module

    from repro.serve import ServeApp, build_graph, make_server, write_graph

    scenario = build_atlas_scenario(
        probes_per_as=args.probes_per_as,
        years=args.years,
        seed=args.seed,
        workers=args.workers,
        cache=_cache_flag(args),
    )
    app = ServeApp(
        scenario,
        slow_query_ms=args.slow_query_ms,
        flight_recorder=args.flight_recorder,
    )
    acted = False
    if args.query:
        payload = json_module.loads(args.query)
        if isinstance(payload, list):
            payload = {"queries": payload}
        status, document = app.handle("POST", "/query", payload)
        if status != 200:
            print(f"error: {document.get('error')}", file=sys.stderr)
            return 1
        print(json_module.dumps(document, indent=2, sort_keys=True))
        acted = True
    if args.export_graph:
        graph = build_graph(scenario)
        path = write_graph(graph, Path(args.export_graph))
        print(
            f"graph written to {path} "
            f"({len(graph.nodes)} nodes, {len(graph.edges)} edges)"
        )
        acted = True
    if args.port is not None:
        enable_telemetry()  # keep /metrics live for HTTP clients
        server = make_server(app, host=args.host, port=args.port)
        host, port = server.server_address[:2]
        print(
            f"serving on http://{host}:{port} "
            "(GET /healthz /status /metrics /graph /debug/trace /debug/slow, "
            "POST /query)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            server.server_close()
        return 0
    if args.status or not acted:
        # Prime the artifact so the status table shows real serving
        # traffic rather than all-zero registries.
        app.engine.artifact()
        app.engine.artifact()
        _print_serve_status(app)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Analyze an echo-runs JSONL file: durations, TTF, periodicity."""
    from collections import defaultdict

    from repro.core.changes import sandwiched_durations, v6_runs_to_prefix_runs
    from repro.core.periodicity import detect_periods
    from repro.core.report import figure1_series, resolve_engine
    from repro.core.timefraction import CANONICAL_LABELS
    from repro.io.records import read_echo_runs

    engine = resolve_engine(args.engine)
    by_probe: dict = defaultdict(lambda: {4: [], 6: []})
    with Path(args.input).open() as stream:
        for run in read_echo_runs(stream):
            by_probe[run.probe_id][run.family].append(run)

    durations = {4: [], 6: []}
    if engine in ("np", "fused"):
        try:
            from repro.core import analysis_np as anp

            families = list(by_probe.values())
            v4_cols = anp.columns_from_runs([fam[4] for fam in families])
            durations[4] = anp.duration_table(v4_cols).hours().astype(float).tolist()
            v6_cols = anp.columns_from_runs([fam[6] for fam in families if fam[6]])
            durations[6] = (
                anp.duration_table(anp.rekey_v6_runs(v6_cols))
                .hours()
                .astype(float)
                .tolist()
            )
        except (TypeError, ValueError, OverflowError):
            engine = "py"
    if engine == "py":
        for families in by_probe.values():
            for duration in sandwiched_durations(families[4]):
                durations[4].append(float(duration.hours))
            if families[6]:
                prefix_runs = v6_runs_to_prefix_runs(families[6])
                for duration in sandwiched_durations(prefix_runs):
                    durations[6].append(float(duration.hours))

    print(f"probes: {len(by_probe)}")
    for family, label in ((4, "IPv4"), (6, "IPv6 /64")):
        sample = durations[family]
        if not sample:
            print(f"{label}: no exact durations")
            continue
        series = figure1_series(label, sample, engine=engine)
        summary = "  ".join(
            f"{grid_label}:{value:.2f}"
            for grid_label, value in zip(CANONICAL_LABELS, series.grid_values)
            if grid_label in ("1d", "1w", "1m", "6m")
        )
        print(
            f"{label}: n={len(sample)} total={series.total_years:.1f}y "
            f"cumulative-TTF {summary}"
        )
        if engine in ("np", "fused"):
            from repro.core.analysis_np import detect_periods_np

            modes = detect_periods_np(sample)
        else:
            modes = detect_periods(sample)
        if modes:
            print(f"{label}: periodic renumbering detected: "
                  + ", ".join(str(mode) for mode in modes))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Stream a scenario (or exported run-stream file) chunk by chunk."""
    from repro.stream import (
        CheckpointStore,
        JsonlRunSource,
        ScenarioRunSource,
        run_atlas_stream,
        stream_triples_from_csv,
        write_run_stream,
    )

    store = None
    if args.checkpoint is not None or args.resume:
        directory = None if args.checkpoint in (None, True) else args.checkpoint
        store = CheckpointStore(directory)

    if args.input:
        source = JsonlRunSource(Path(args.input))
        table = None
    else:
        scenario = build_atlas_scenario(
            probes_per_as=args.probes_per_as,
            years=args.years,
            seed=args.seed,
            workers=args.workers,
            cache=_cache_flag(args),
        )
        if args.export:
            export = Path(args.export)
            export.parent.mkdir(parents=True, exist_ok=True)
            with export.open("w") as stream:
                write_run_stream(scenario, stream)
            print(f"exported run stream to {export}")
        source = ScenarioRunSource.from_scenario(scenario)
        table = scenario.table

    result = run_atlas_stream(
        source,
        args.chunk_hours,
        table=table,
        store=store,
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
        stop_after_chunks=args.stop_after,
        min_probes=args.min_probes,
    )
    if result is None:
        print(
            f"stopped after {args.stop_after} chunk(s); "
            "state checkpointed, rerun with --resume to continue"
        )
        return 0

    analysis = result.analysis
    table1_rows = [
        [row.name, row.asn, row.all_probes, row.all_v4_changes, row.ds_probes,
         f"{row.ds_v4_changes} ({row.ds_v4_share_pct:.0f}%)", row.ds_v6_changes]
        for row in analysis.table1.values()
    ]
    print(render_table(
        ["AS", "ASN", "probes", "v4 changes", "DS probes", "DS v4 changes", "v6 changes"],
        table1_rows,
        title="Table 1: assignment changes per AS (streamed)",
    ))
    if analysis.table2:
        table2_rows = [
            [name, f"{rates.diff_slash24_pct:.0f}%", f"{rates.v4_diff_bgp_pct:.0f}%",
             f"{rates.v6_diff_bgp_pct:.0f}%"]
            for name, rates in analysis.table2.items()
        ]
        print()
        print(render_table(
            ["AS", "Diff /24", "Diff BGP (v4)", "Diff BGP (v6)"],
            table2_rows,
            title="Table 2: boundary crossings (streamed)",
        ))
    period_rows = [
        [name,
         f"{result.v4_periods[name]:.0f}h" if name in result.v4_periods else "-",
         f"{result.v6_periods[name]:.0f}h" if name in result.v6_periods else "-"]
        for name in sorted(set(result.v4_periods) | set(result.v6_periods))
    ]
    print()
    if period_rows:
        print(render_table(
            ["AS", "v4 NDS period", "v6 period"],
            period_rows,
            title="Periodic renumbering (streamed)",
        ))
    else:
        print("Periodic renumbering: none detected")

    stats = result.stats
    print()
    resumed = (
        f" (resumed from chunk {stats.resumed_from_chunk})"
        if stats.resumed_from_chunk is not None
        else ""
    )
    print(
        f"streamed {stats.runs_seen} runs in {stats.chunks_folded} "
        f"chunk(s) of {args.chunk_hours}h{resumed}; "
        f"{stats.checkpoints_written} checkpoint(s) written"
    )

    if args.triples:
        import tempfile

        from repro.store import build_store_from_triples
        from repro.stream import run_association_stream_over_store

        # The simulate-cdn CSV is grouped by ASN, not day-ordered.  The
        # old path sorted the whole file in RAM to meet the stream
        # contract; sharding into a scratch triple store instead keeps
        # memory bounded (spill buffers + one day window) and the
        # store-driven pass is artifact-identical to the sorted stream.
        with tempfile.TemporaryDirectory(prefix="repro-stream-") as scratch:
            triple_store = build_store_from_triples(
                stream_triples_from_csv(Path(args.triples)),
                Path(scratch) / "triples",
                shards=8,
            )
            assoc = run_association_stream_over_store(triple_store, args.chunk_days)
        box = assoc.box
        summary = (
            f"median {box.median:.1f}d (q1 {box.q1:.1f}, q3 {box.q3:.1f})"
            if box is not None
            else "no complete associations"
        )
        print(
            f"associations: {assoc.triples_seen} triples in "
            f"{assoc.chunks_folded} chunk(s) of {args.chunk_days}d; "
            f"durations {summary}; "
            f"degree-1 /64 fraction {assoc.fraction_v6_degree_one:.2f}"
        )
    return 0


def cmd_store_build(args: argparse.Namespace) -> int:
    """Build a sharded memmap triple store from one of three sources."""
    from repro.store import build_store_from_columns, build_store_from_triples
    from repro.stream import stream_triples_from_csv

    output = Path(args.output)
    if output.exists():
        print(f"error: {output} already exists", file=sys.stderr)
        return 1
    if args.triples:
        store = build_store_from_triples(
            stream_triples_from_csv(Path(args.triples)),
            output,
            shards=args.shards,
            spill_rows=args.spill_rows,
            workers=args.workers,
            source={"kind": "csv", "path": str(args.triples)},
        )
    elif args.synthetic:
        from repro.store import synthetic_triple_batches

        store = build_store_from_columns(
            synthetic_triple_batches(
                args.synthetic, seed=args.seed, days=args.days
            ),
            output,
            shards=args.shards,
            spill_rows=args.spill_rows,
            workers=args.workers,
            source={"kind": "synthetic", "total": args.synthetic, "seed": args.seed},
        )
    else:
        from repro.workloads import build_cdn_scenario, build_cdn_triple_store

        scenario = build_cdn_scenario(
            days=args.days,
            seed=args.seed,
            workers=args.workers,
            cache=_cache_flag(args),
        )
        store = build_cdn_triple_store(
            scenario, output, shards=args.shards, workers=args.workers
        )
    print(
        f"built store at {store.directory}: {store.total_triples} triples in "
        f"{store.shards} shard(s), days {store.day_min}..{store.day_max}"
    )
    return 0


def cmd_store_analyze(args: argparse.Namespace) -> int:
    """Analyze a triple store shard-by-shard out-of-core."""
    from repro.store import StoreCorruptError, TripleStore
    from repro.workloads import analyze_triple_store

    try:
        store = TripleStore.open(Path(args.store), verify=args.verify)
    except StoreCorruptError as exc:
        print(f"error: {exc} — rebuild with 'repro store build'", file=sys.stderr)
        return 1
    analysis = analyze_triple_store(store, workers=args.workers)
    summary = analysis.summary()
    box = summary["box"]
    box_text = (
        f"median {box['median']:.1f}d (q1 {box['q1']:.1f}, q3 {box['q3']:.1f}, "
        f"p95 {box['p95']:.1f})"
        if box
        else "no complete associations"
    )
    delegation = summary["delegation"]
    boundary_text = (
        "  ".join(
            f"/{plen}:{count}" for plen, count in delegation["by_boundary"].items()
        )
        or "none"
    )
    print(
        f"store {store.directory}: {summary['total_triples']} triples, "
        f"{summary['shards']} shard(s)"
    )
    print(f"associations: {summary['associations']} runs; durations {box_text}")
    print(
        f"degrees: {summary['distinct_v4']} /24s, {summary['distinct_v6']} /64s, "
        f"degree-1 /64 fraction {summary['fraction_v6_degree_one']:.2f}"
    )
    print(
        f"delegation (Fig 7): {delegation['inferable_pct']:.0f}% inferable — "
        f"{boundary_text}"
    )
    if args.json:
        import json as json_module

        json_path = Path(args.json)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json_module.dumps(summary, indent=1) + "\n")
        print(f"summary written to {json_path}")
    return 0


def cmd_store_compact(args: argparse.Namespace) -> int:
    """Compact (merge) finalized triple stores into one store."""
    from repro.store import StoreCorruptError, TripleStore, compact_stores

    output = Path(args.output)
    if output.exists():
        print(f"error: {output} already exists", file=sys.stderr)
        return 1
    stores = []
    for path in args.inputs:
        try:
            stores.append(TripleStore.open(Path(path)))
        except StoreCorruptError as exc:
            print(f"error: {exc} — rebuild with 'repro store build'", file=sys.stderr)
            return 1
    merged = compact_stores(
        stores,
        output,
        shards=args.shards,
        workers=args.workers,
        source={
            "kind": "compaction",
            "inputs": [str(store.directory) for store in stores],
        },
    )
    print(
        f"compacted {len(stores)} store(s) into {merged.directory}: "
        f"{merged.total_triples} triples in {merged.shards} shard(s), "
        f"days {merged.day_min}..{merged.day_max}"
    )
    return 0


def cmd_convert_atlas(args: argparse.Namespace) -> int:
    """Convert real RIPE Atlas results JSONL into echo records."""
    input_path = Path(args.input)
    with input_path.open() as stream:
        records, stats = convert_results(stream)
    records.sort(key=lambda record: (record.probe_id, record.family, record.hour))
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    with output.open("w") as stream:
        write_echo_records(records, stream)
    print(
        f"converted {stats.converted} records "
        f"({stats.missing_client_ip} without X-Client-IP, "
        f"{stats.unparseable} unparseable) to {output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser with all subcommands attached."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DynamIPs reproduction: simulate, convert, and analyze "
        "IP address-assignment dynamics.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    common = _common_parser()

    atlas = commands.add_parser(
        "simulate-atlas", help="generate an Atlas-style dataset", parents=[common]
    )
    _add_atlas_args(atlas)
    atlas.add_argument("--output", required=True, help="output directory")
    atlas.set_defaults(func=cmd_simulate_atlas)

    cdn = commands.add_parser(
        "simulate-cdn", help="generate a CDN association dataset", parents=[common]
    )
    cdn.add_argument("--days", type=int, default=150)
    cdn.add_argument("--seed", type=int, default=0)
    cdn.add_argument("--fixed-subscribers", type=int, default=600,
                     help="fixed subscribers per registry")
    cdn.add_argument("--mobile-devices", type=int, default=400,
                     help="mobile devices per registry")
    cdn.add_argument("--featured-subscribers", type=int, default=120)
    cdn.add_argument("--output", required=True, help="output CSV path")
    _add_perf_args(cdn)
    cdn.set_defaults(func=cmd_simulate_cdn)

    report = commands.add_parser(
        "report", help="print Table 1 / Table 2 summaries", parents=[common]
    )
    _add_atlas_args(report)
    _add_engine_arg(report)
    report.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as machine-readable JSON "
                        "(the serve layer's wire format)")
    report.set_defaults(func=cmd_report)

    serve = commands.add_parser(
        "serve",
        help="serve address-dynamics queries from precomputed artifacts",
        parents=[common],
    )
    _add_atlas_args(serve)
    serve.add_argument("--status", action="store_true",
                       help="print the uniform component stats table "
                       "(scenario caches, checkpoint stores, artifact "
                       "registries) and exit")
    serve.add_argument("--query", default=None, metavar="JSON",
                       help="answer one query (JSON object) or a coalesced "
                       "batch (JSON array) and exit; e.g. "
                       "'{\"kind\": \"stability\", \"prefix\": \"192.0.2.0/24\"}'")
    serve.add_argument("--export-graph", default=None, metavar="PATH",
                       help="write the knowledge graph as node/edge JSONL "
                       "and exit")
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind address (default: 127.0.0.1)")
    serve.add_argument("--slow-query-ms", type=float, default=250.0,
                       metavar="MS",
                       help="threshold for the structured slow-query log "
                            "(default: 250)")
    serve.add_argument("--flight-recorder", type=int, default=64, metavar="N",
                       help="completed request spans kept in the /debug/trace "
                            "ring buffer (default: 64)")
    serve.add_argument("--port", type=int, default=None, metavar="PORT",
                       help="start the HTTP JSON API on this port "
                       "(0 picks a free port); omit to run one-shot actions")
    serve.set_defaults(func=cmd_serve)

    convert = commands.add_parser(
        "convert-atlas",
        help="convert real RIPE Atlas results JSONL to echo records",
        parents=[common],
    )
    convert.add_argument("--input", required=True)
    convert.add_argument("--output", required=True)
    convert.set_defaults(func=cmd_convert_atlas)

    analyze = commands.add_parser(
        "analyze",
        help="analyze an echo-runs JSONL file (durations, periodicity)",
        parents=[common],
    )
    analyze.add_argument("--input", required=True)
    _add_engine_arg(analyze)
    analyze.set_defaults(func=cmd_analyze)

    stream = commands.add_parser(
        "stream",
        help="chunked, checkpointable streaming analysis (batch-identical)",
        parents=[common],
    )
    _add_atlas_args(stream)
    stream.add_argument("--input", default=None, metavar="PATH",
                        help="stream an exported run-stream JSONL file instead "
                        "of building a scenario (no Table 2: the file carries "
                        "no routing table)")
    stream.add_argument("--export", default=None, metavar="PATH",
                        help="also write the scenario's run stream to PATH "
                        "(readable later via --input)")
    stream.add_argument("--chunk-hours", type=int, default=720,
                        help="hours per chunk (default: 720); any value yields "
                        "bit-identical artifacts")
    stream.add_argument("--checkpoint", nargs="?", const=True, default=None,
                        metavar="DIR",
                        help="persist engine state every --checkpoint-every "
                        "chunks (default DIR: <scenario cache>/checkpoints)")
    stream.add_argument("--resume", action="store_true",
                        help="resume from a matching persisted checkpoint")
    stream.add_argument("--checkpoint-every", type=int, default=1,
                        help="chunks between checkpoints (default: 1)")
    stream.add_argument("--stop-after", type=int, default=None, metavar="N",
                        help="abort after N chunks (persisting state first) — "
                        "simulates a killed run")
    stream.add_argument("--min-probes", type=int, default=3,
                        help="probes required for a network periodicity call")
    stream.add_argument("--triples", default=None, metavar="PATH",
                        help="also stream a CDN association CSV")
    stream.add_argument("--chunk-days", type=int, default=7,
                        help="days per association chunk (default: 7)")
    stream.set_defaults(func=cmd_stream)

    store = commands.add_parser(
        "store",
        help="out-of-core sharded memmap triple store (build / analyze)",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    store_build = store_commands.add_parser(
        "build",
        help="build a store from a CSV, a synthetic feed, or a CDN simulation",
        parents=[common],
    )
    store_build.add_argument("--output", required=True, metavar="DIR",
                             help="store directory to create (must not exist)")
    store_build.add_argument("--triples", default=None, metavar="CSV",
                             help="stream triples from a simulate-cdn CSV")
    store_build.add_argument("--synthetic", type=int, default=None, metavar="N",
                             help="generate N deterministic synthetic triples "
                             "instead of reading a CSV")
    store_build.add_argument("--shards", type=int, default=16,
                             help="shard count; /24s are hash-sharded "
                             "(default: 16)")
    store_build.add_argument("--spill-rows", type=int, default=1 << 18,
                             help="rows buffered per shard before spilling "
                             "(default: 262144)")
    store_build.add_argument("--days", type=int, default=150,
                             help="day span for --synthetic or the CDN "
                             "simulation (default: 150)")
    store_build.add_argument("--seed", type=int, default=0)
    _add_perf_args(store_build)
    store_build.set_defaults(func=cmd_store_build)

    store_analyze = store_commands.add_parser(
        "analyze",
        help="analyze a store shard-by-shard out-of-core",
        parents=[common],
    )
    store_analyze.add_argument("--store", required=True, metavar="DIR",
                               help="store directory built by 'store build'")
    store_analyze.add_argument("--verify", action="store_true",
                               help="re-hash every shard against the manifest "
                               "checksums before analyzing")
    store_analyze.add_argument("--json", default=None, metavar="PATH",
                               help="also write the summary as JSON to PATH")
    store_analyze.add_argument("--workers", type=int, default=None,
                               help="worker processes for the per-shard pass "
                               "(default: $REPRO_WORKERS or serial)")
    store_analyze.set_defaults(func=cmd_store_analyze)

    store_compact = store_commands.add_parser(
        "compact",
        help="merge finalized stores into one (incremental append-then-compact)",
        parents=[common],
    )
    store_compact.add_argument("--inputs", required=True, nargs="+", metavar="DIR",
                               help="finalized store directories to merge")
    store_compact.add_argument("--output", required=True, metavar="DIR",
                               help="merged store directory to create "
                               "(must not exist)")
    store_compact.add_argument("--shards", type=int, default=None,
                               help="output shard count (default: the first "
                               "input's; differing inputs are re-hashed)")
    store_compact.add_argument("--workers", type=int, default=None,
                               help="worker processes for the per-shard merge "
                               "(default: $REPRO_WORKERS or serial)")
    store_compact.set_defaults(func=cmd_store_compact)

    return parser


def _print_cache_stats(telemetry_extra: dict) -> None:
    """Surface scenario-cache hit/miss counts accumulated this process.

    Printed only when some cache instance saw activity, so runs without
    ``REPRO_CACHE`` keep their exact historical stdout.
    """
    caches = {}
    for directory, stats in iter_cache_stats():
        if stats.hits or stats.misses or stats.puts or stats.errors:
            caches[str(directory)] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "puts": stats.puts,
                "errors": stats.errors,
            }
    if not caches:
        return
    telemetry_extra["caches"] = caches
    for directory, stats in caches.items():
        print(
            f"scenario cache [{directory}]: {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es), {stats['puts']} put(s)"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(verbosity=args.verbose - args.quiet)
    if args.telemetry:
        enable_telemetry(reset=True)
    with span(f"cli/{args.command}"):
        code = args.func(args)
    telemetry_extra: dict = {}
    _print_cache_stats(telemetry_extra)
    if args.telemetry:
        path = dump_telemetry(args.telemetry, extra=telemetry_extra)
        print(f"telemetry written to {path}")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
