"""One-call scenario builders used by examples, tests and benchmarks.

Three entry points:

* :func:`build_atlas_scenario` — simulate the paper's featured ISPs,
  deploy RIPE Atlas probes on them (including a configurable share of
  anomalous deployments), run the sanitization pipeline, and return
  everything the Section 3/5 analyses need.
* :func:`build_cdn_scenario` — build a world-wide CDN population (fixed
  ISPs per registry, mobile operators, the featured ISPs) and collect a
  RUM association dataset for the Section 4/5.3 analyses.
* :func:`analyze_atlas_scenario` — run the full Section 3/5 analysis
  stack (Table 1/2, Figures 1/5) over a built Atlas scenario, through
  the pure-Python reference kernels, the per-kernel columnar NumPy
  engine, or the fused single-pass engine
  (``engine="py"|"np"|"fused"``, see :mod:`repro.core.analysis_np` and
  :mod:`repro.core.fused`).

Both are deterministic in their ``seed``, *independent of the*
``workers=`` *knob*: the per-ISP simulations and per-population CDN
collection fan out across a process pool (``repro.perf.parallel``)
with per-unit seed derivation, and a ``workers=N`` build is
bit-identical to the serial one.  With ``cache=True`` (or
``REPRO_CACHE=1``) finished scenarios are stored in a content-addressed
on-disk cache (``repro.perf.cache``) keyed by the build parameters and
a fingerprint of the package sources, so warm sessions skip generation
entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atlas.platform import AtlasPlatform, ProbeData, ProbeSpec
from repro.atlas.sanitize import SanitizationReport, SanitizedProbe, sanitize
from repro.bgp.registry import RIR, Registry
from repro.bgp.table import RoutingTable
from repro.cdn.clients import (
    FixedPopulation,
    MobileConfig,
    MobilePopulation,
    cdn_fixed_config,
)
from repro.cdn.collector import CdnDataset
from repro.netsim.cpe import CpeBehavior
from repro.netsim.isp import Isp, IspConfig, V4AddressingConfig, V6AddressingConfig
from repro.netsim.policy import ChangePolicy
from repro.netsim.profiles import (
    PAPER_DS_PROBE_COUNTS,
    default_profiles,
    mobile_profile,
)
from repro.netsim.sim import SubscriberTimeline
from repro.obs import get_logger, span
from repro.perf.cache import get_scenario_cache, resolve_cache_flag
from repro.perf.parallel import (
    collect_associations,
    resolve_workers,
    run_isp_simulations,
)

_log = get_logger("workloads")

DAY = 24.0
MONTH = 30 * DAY

ANOMALY_CYCLE = ("test_prefix", "public_v4_src", "v6_src_mismatch", "multihomed", "as_move")


@dataclass
class AtlasScenario:
    """A fully built Atlas measurement study."""

    registry: Registry
    table: RoutingTable
    isps: Dict[str, Isp]
    timelines: Dict[int, Dict[int, SubscriberTimeline]]  # asn -> sub -> timeline
    platform: AtlasPlatform
    raw_probes: List[ProbeData]
    probes: List[SanitizedProbe]
    report: SanitizationReport
    end_hour: int
    #: Memoized per-AS ``ProbeColumns`` packs (see :meth:`analysis_columns`).
    #: Session-local only: excluded from comparison and pickling so cached
    #: scenarios round-trip unchanged.
    _columns_state: Dict[tuple, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_columns_state"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        raw = self.__dict__.get("_columns_state") or {}
        # Scenario pickles predating the buffer-backed pack format (or
        # written by a different format version) may carry memo entries
        # keyed under an older layout; keep only entries whose key leads
        # with the current format version so stale packs repack lazily
        # instead of failing downstream.
        valid = {}
        if isinstance(raw, dict):
            try:
                from repro.core.analysis_np import COLUMNS_FORMAT_VERSION
            except ImportError:
                COLUMNS_FORMAT_VERSION = None
            for key, entry in raw.items():
                if (
                    COLUMNS_FORMAT_VERSION is not None
                    and isinstance(key, tuple)
                    and key
                    and key[0] == COLUMNS_FORMAT_VERSION
                ):
                    valid[key] = entry
        self.__dict__["_columns_state"] = valid

    def probes_in(self, asn: int) -> List[SanitizedProbe]:
        """The sanitized probes attributed to ``asn``."""
        return [probe for probe in self.probes if probe.asn == asn]

    def asn_of(self, name: str) -> int:
        """ASN of the ISP named ``name``."""
        return self.isps[name].asn

    def analysis_columns(
        self, asn: Optional[int] = None, engine: Optional[str] = None
    ):
        """Memoized columnar pack of this scenario's sanitized probes.

        Returns the shared :class:`repro.core.analysis_np.ProbeColumns`
        for ``asn``'s probes (all probes when ``asn is None``) so every
        table/figure computed from this scenario reuses one CSR pack.
        Both columnar engines (``"np"`` and ``"fused"``) share the same
        packs; the pure-Python engine (or a NumPy-less interpreter) gets
        ``None``.  The cache key leads with the pack format version
        (:data:`repro.core.analysis_np.COLUMNS_FORMAT_VERSION`) — so
        entries from an older buffer layout repack instead of being
        served stale — and includes the identity/size of
        ``self.probes``, so flipping ``$REPRO_ANALYSIS_ENGINE``
        mid-session or re-sanitizing the probe list can never serve
        stale columns.
        """
        from repro.core.engine import resolve_engine

        resolved = resolve_engine(engine)
        if resolved not in ("np", "fused"):
            return None
        try:
            from repro.core.analysis_np import COLUMNS_FORMAT_VERSION, ProbeColumns
        except ImportError:
            return None
        key = (COLUMNS_FORMAT_VERSION, asn, id(self.probes), len(self.probes))
        cached = self._columns_state.get(key)
        # The cache entry pins the exact probe list it was packed from, so
        # a replaced ``self.probes`` can never alias a stale pack even if
        # the new list happens to reuse the old one's id.
        if cached is not None and cached[0] is self.probes:
            return cached[1]
        probes = self.probes if asn is None else self.probes_in(asn)
        columns = ProbeColumns(probes, plen=64)
        self._columns_state[key] = (self.probes, columns)
        return columns

    def invalidate_analysis_columns(self) -> None:
        """Drop every memoized column pack (e.g. after editing probes)."""
        self._columns_state.clear()


@dataclass
class AtlasAnalysis:
    """Every Section 3/5 artifact of one Atlas scenario, by AS name."""

    engine: str
    table1: "Dict[str, object]"  # name -> Table1Row
    table2: "Dict[str, object]"  # name -> CrossingRates
    figure1: "Dict[str, Dict[str, object]]"  # name -> curve key -> Figure1Series
    figure5: "Dict[str, Dict[int, Dict[int, int]]]"  # name -> CplHistogram


def analyze_atlas_scenario(
    scenario: AtlasScenario,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
) -> AtlasAnalysis:
    """Compute Table 1/2 and Figures 1/5 for every featured AS.

    ``engine`` picks the analysis kernels: ``"py"`` is the pure-Python
    reference, ``"np"`` the per-kernel columnar engine, ``"fused"`` the
    single-pass engine of :mod:`repro.core.fused` (``None`` reads
    ``$REPRO_ANALYSIS_ENGINE``, defaulting to ``"np"`` when NumPy is
    available).  All engines yield bit-identical artifacts.

    ``workers`` only applies to the fused engine: with ``workers > 1``
    the per-AS assembly fans out over a process pool that memory-maps
    the scenario's arena-backed pack by path
    (:func:`repro.perf.parallel.run_fused_analysis`) — zero-copy, and
    bit-identical to the serial fused run.
    """
    from repro.core.engine import FALLBACK_ERRORS
    from repro.core.report import (
        figure1_for_as,
        figure5_for_as,
        resolve_engine,
        table1_row,
        table2_row,
    )
    from repro.obs import metric_inc

    resolved = resolve_engine(engine)
    _log.info("analysis engine resolved", extra={"engine": resolved})
    if resolved == "fused":
        columns = scenario.analysis_columns(None, engine=resolved)
        if columns is not None:
            groups = [
                (name, isp.asn, isp.config.country)
                for name, isp in scenario.isps.items()
            ]
            try:
                with span("analysis/report", engine=resolved, networks=len(groups)):
                    if resolve_workers(workers) > 1:
                        from repro.perf.parallel import run_fused_analysis

                        artifacts = run_fused_analysis(
                            columns, groups, scenario.table, workers=workers
                        )
                    else:
                        from repro.core.fused import fused_analysis_artifacts

                        artifacts = fused_analysis_artifacts(
                            columns, groups, scenario.table
                        )
                return AtlasAnalysis(
                    engine=resolved,
                    table1=artifacts["table1"],
                    table2=artifacts["table2"],
                    figure1=artifacts["figure1"],
                    figure5=artifacts["figure5"],
                )
            except FALLBACK_ERRORS as exc:
                metric_inc("analysis.fused.fallbacks", artifact="report")
                _log.debug(
                    "fused scenario analysis fell back to the per-AS path",
                    extra={"error": type(exc).__name__},
                )
        # Fall through to the per-AS loop; the report-layer entry points
        # still dispatch each artifact through the fused (or reference)
        # path as appropriate.
    table1 = {}
    table2 = {}
    figure1 = {}
    figure5 = {}
    with span("analysis/report", engine=resolved, networks=len(scenario.isps)):
        for name, isp in scenario.isps.items():
            probes = scenario.probes_in(isp.asn)
            columns = scenario.analysis_columns(isp.asn, engine=resolved)
            with span("analysis/table1", network=name):
                table1[name] = table1_row(
                    name,
                    isp.asn,
                    isp.config.country,
                    probes,
                    engine=resolved,
                    columns=columns,
                )
            with span("analysis/table2", network=name):
                table2[name] = table2_row(
                    probes, scenario.table, engine=resolved, columns=columns
                )
            with span("analysis/figure1", network=name):
                figure1[name] = figure1_for_as(
                    name, probes, engine=resolved, columns=columns
                )
            with span("analysis/figure5", network=name):
                figure5[name] = figure5_for_as(probes, engine=resolved, columns=columns)
    return AtlasAnalysis(
        engine=resolved, table1=table1, table2=table2, figure1=figure1, figure5=figure5
    )


def periodicity_for_scenario(
    scenario: AtlasScenario,
    min_probes: int = 3,
    tolerance: float = 1.0,
    engine: Optional[str] = None,
) -> "Tuple[Dict[str, float], Dict[str, float]]":
    """Consistent periodic renumbering per featured ISP (Section 3.2).

    Returns ``(v4_nds_periods, v6_periods)`` from
    :func:`repro.core.report.periodic_networks`, dispatched through the
    analysis-engine knob and reusing the scenario's memoized column
    packs on the columnar paths.  The fused engine detects every
    network's periods from one global pass
    (:func:`repro.core.fused.fused_network_periods`), reusing the
    scenario's global pack and its cached fused stats.
    """
    from repro.core.engine import FALLBACK_ERRORS
    from repro.core.report import periodic_networks, resolve_engine

    resolved = resolve_engine(engine)
    if resolved == "fused":
        columns = scenario.analysis_columns(None, engine=resolved)
        if columns is not None:
            groups = [
                (name, isp.asn, isp.config.country)
                for name, isp in scenario.isps.items()
            ]
            try:
                with span(
                    "analysis/periodicity", engine=resolved, networks=len(groups)
                ):
                    from repro.core.fused import fused_network_periods

                    return fused_network_periods(
                        columns, groups, tolerance=tolerance, min_probes=min_probes
                    )
            except FALLBACK_ERRORS as exc:
                from repro.obs import metric_inc

                metric_inc("analysis.fused.fallbacks", artifact="periodicity")
                _log.debug(
                    "fused periodicity fell back to the per-network path",
                    extra={"error": type(exc).__name__},
                )
    probes_by_network = {
        name: scenario.probes_in(isp.asn) for name, isp in scenario.isps.items()
    }
    columns_by_network = None
    if resolved in ("np", "fused"):
        columns_by_network = {
            name: scenario.analysis_columns(isp.asn, engine=resolved)
            for name, isp in scenario.isps.items()
        }
        if any(columns is None for columns in columns_by_network.values()):
            columns_by_network = None
    with span("analysis/periodicity", engine=resolved, networks=len(probes_by_network)):
        return periodic_networks(
            probes_by_network,
            tolerance=tolerance,
            min_probes=min_probes,
            engine=resolved,
            columns_by_network=columns_by_network,
        )


def build_atlas_scenario(
    probes_per_as: int = 20,
    years: float = 2.0,
    seed: int = 0,
    profiles: Optional[Sequence[IspConfig]] = None,
    anomaly_fraction: float = 0.15,
    bad_tag_fraction: float = 0.05,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
) -> AtlasScenario:
    """Simulate ISPs, deploy probes, sanitize — the Section 3/5 input.

    ``workers`` fans the per-ISP simulations out over a process pool
    (``None`` = ``$REPRO_WORKERS``, default serial) without changing the
    result.  ``cache`` consults the content-addressed scenario cache
    (``None`` = ``$REPRO_CACHE``, default off).
    """
    if probes_per_as < 1:
        raise ValueError("probes_per_as must be >= 1")
    if years <= 0:
        raise ValueError("years must be positive")
    profiles = list(profiles) if profiles is not None else default_profiles()
    worker_count = resolve_workers(workers)

    with span(
        "collection/atlas", probes_per_as=probes_per_as, seed=seed, workers=worker_count
    ) as build_span:
        scenario_cache = cache_key = None
        if resolve_cache_flag(cache):
            scenario_cache = get_scenario_cache()
            cache_key = scenario_cache.key(
                "atlas",
                {
                    "probes_per_as": probes_per_as,
                    "years": years,
                    "seed": seed,
                    "profiles": profiles,
                    "anomaly_fraction": anomaly_fraction,
                    "bad_tag_fraction": bad_tag_fraction,
                },
            )
            cached = scenario_cache.get("atlas", cache_key)
            if cached is not None:
                build_span.set(cache="hit")
                return cached

        end_hour = int(years * 365 * DAY)

        registry = Registry()
        table = RoutingTable()
        rng = random.Random(seed)

        # ISP construction mutates the shared registry/routing table and must
        # stay serial and ordered; the simulations are independent per ISP
        # (each only touches its own plans with a private (seed, asn) RNG)
        # and fan out across workers.
        isps: Dict[str, Isp] = {
            config.name: Isp(config, registry, table) for config in profiles
        }
        # Anomalous probes need a secondary network to flap to / move to.
        num_subscribers = probes_per_as + 2  # spares for secondary attachments
        with span("collection/isp_simulations", isps=len(profiles)):
            timeline_list = run_isp_simulations(
                [(isps[config.name], num_subscribers) for config in profiles],
                end_hour=end_hour,
                seed=seed,
                workers=worker_count,
            )
        timelines: Dict[int, Dict[int, SubscriberTimeline]] = {
            config.asn: result for config, result in zip(profiles, timeline_list)
        }

        platform = AtlasPlatform(
            {isp.asn: (isp, timelines[isp.asn]) for isp in isps.values()},
            end_hour=end_hour,
            seed=seed,
        )

        specs: List[ProbeSpec] = []
        probe_id = 0
        asns = [isp.asn for isp in isps.values()]
        for config in profiles:
            for subscriber_id in range(probes_per_as):
                roll = rng.random()
                anomaly = "none"
                tags: tuple = ()
                secondary = None
                if roll < anomaly_fraction:
                    anomaly = ANOMALY_CYCLE[probe_id % len(ANOMALY_CYCLE)]
                    if anomaly in ("multihomed", "as_move"):
                        other_asn = rng.choice(
                            [asn for asn in asns if asn != config.asn]
                        )
                        secondary = (other_asn, probes_per_as)  # a spare line
                elif roll < anomaly_fraction + bad_tag_fraction:
                    tags = ("datacentre",)
                specs.append(
                    ProbeSpec(
                        probe_id=probe_id,
                        asn=config.asn,
                        subscriber_id=subscriber_id,
                        tags=tags,
                        anomaly=anomaly,
                        secondary=secondary,
                    )
                )
                probe_id += 1

        with span("collection/probes", specs=len(specs)):
            raw_probes = [platform.probe_data(spec) for spec in specs]
        probes, report = sanitize(raw_probes, table)
        scenario = AtlasScenario(
            registry=registry,
            table=table,
            isps=isps,
            timelines=timelines,
            platform=platform,
            raw_probes=raw_probes,
            probes=probes,
            report=report,
            end_hour=end_hour,
        )
        if scenario_cache is not None and cache_key is not None:
            scenario_cache.put("atlas", cache_key, scenario)
        _log.info(
            "atlas scenario built",
            extra={"probes": len(probes), "raw": len(raw_probes), "seed": seed},
        )
        return scenario


# ---------------------------------------------------------------------------
# CDN scenario
# ---------------------------------------------------------------------------


@dataclass
class CdnScenario:
    """A fully built CDN association study."""

    registry: Registry
    table: RoutingTable
    dataset: CdnDataset
    featured_asns: Dict[str, int]
    days: int
    fixed_asns: List[int] = field(default_factory=list)
    mobile_asns: List[int] = field(default_factory=list)


def _registry_fixed_configs(rir: RIR, base_asn: int) -> List[IspConfig]:
    """Generic fixed-line ISPs per registry, calibrated to Figs 3 and 7.

    Per registry we deploy three ISPs: a ``/60-delegating``, a
    ``/56-delegating``, and a "non-inferable" one whose CPEs scramble.
    The weights (via subscriber share, chosen by the caller) land the
    per-registry inferable fractions near the paper's: ARIN 59 %,
    RIPE 79 %, APNIC 54 %, LACNIC 15 %, AFRINIC 83 %.
    """
    zero = CpeBehavior(lan_selection="zero", reboot_mean_hours=4 * MONTH)
    scramble = CpeBehavior(lan_selection="scramble", reboot_mean_hours=4 * MONTH)

    # Per-RIR IPv4 holding-time means (hours): ARIN fixed lines are very
    # stable (Fig. 3 median ~100 days), other registries more moderate.
    # Reboots do not renumber (sticky DHCP), so the mean is the only knob.
    v4_mean = {
        RIR.ARIN: 12 * MONTH,
        RIR.RIPE: 5 * MONTH,
        RIR.APNIC: 6 * MONTH,
        RIR.LACNIC: 4 * MONTH,
        RIR.AFRINIC: 6 * MONTH,
    }[rir]

    def config(offset: int, name_suffix: str, delegation_plen: int, cpe: CpeBehavior) -> IspConfig:
        return IspConfig(
            name=f"{rir.value}-{name_suffix}",
            asn=base_asn + offset,
            country=rir.value[:2],
            rir=rir,
            dual_stack_fraction=1.0,
            v4=V4AddressingConfig(
                policy_nds=ChangePolicy.exponential(v4_mean),
                policy_ds=ChangePolicy.exponential(v4_mean),
                num_blocks=2,
                block_plen=20,
                same_slash24_affinity=0.25,
                same_block_affinity=0.5,
            ),
            v6=V6AddressingConfig(
                policy=ChangePolicy.exponential(12 * MONTH),
                allocation_plen=32,
                pool_plen=40,
                num_pools=8,
                delegation_plen=delegation_plen,
                sync_with_v4_prob=0.3,
                pool_switch_prob=0.02,
                cpe_mix=((cpe, 1.0),),
            ),
        )

    return [
        config(0, "fixed60", 60, zero),
        config(1, "fixed56", 56, zero),
        config(2, "fixedopaque", 60, scramble),
    ]


#: Share of each registry's fixed subscribers on the /60, /56, and opaque
#: ISPs — the knob behind Figure 7's per-registry inferable fractions.
_FIXED_DELEGATION_SHARES: Dict[RIR, tuple] = {
    RIR.ARIN: (0.31, 0.28, 0.41),
    RIR.RIPE: (0.12, 0.67, 0.21),
    RIR.APNIC: (0.22, 0.33, 0.45),
    RIR.LACNIC: (0.05, 0.10, 0.85),
    RIR.AFRINIC: (0.08, 0.75, 0.17),
}


def build_cdn_scenario(
    days: int = 150,
    seed: int = 0,
    fixed_subscribers_per_registry: int = 600,
    mobile_devices_per_registry: int = 1500,
    include_featured_isps: bool = True,
    featured_subscribers: int = 400,
    cross_network_noise: float = 0.0,
    filter_asn_mismatch: bool = True,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
) -> CdnScenario:
    """Build the world-wide CDN association dataset (Section 4 input).

    ``workers`` fans the per-ISP simulations and the per-population
    collection out over a process pool (``None`` = ``$REPRO_WORKERS``,
    default serial) without changing the result.  ``cache`` consults the
    content-addressed scenario cache (``None`` = ``$REPRO_CACHE``).
    """
    if days <= 0:
        raise ValueError("days must be positive")
    worker_count = resolve_workers(workers)

    scenario_cache = cache_key = None
    if resolve_cache_flag(cache):
        scenario_cache = get_scenario_cache()
        cache_key = scenario_cache.key(
            "cdn",
            {
                "days": days,
                "seed": seed,
                "fixed_subscribers_per_registry": fixed_subscribers_per_registry,
                "mobile_devices_per_registry": mobile_devices_per_registry,
                "include_featured_isps": include_featured_isps,
                "featured_subscribers": featured_subscribers,
                "cross_network_noise": cross_network_noise,
                "filter_asn_mismatch": filter_asn_mismatch,
            },
        )
        cached = scenario_cache.get("cdn", cache_key)
        if cached is not None:
            return cached

    registry = Registry()
    table = RoutingTable()
    end_hour = days * DAY
    populations: List = []
    fixed_asns: List[int] = []
    mobile_asns: List[int] = []
    featured_asns: Dict[str, int] = {}

    # Pass 1: fixed-line ISPs (registry generics + featured ISPs).  As in
    # the Atlas builder, construction stays serial (shared registry/table,
    # ordered allocations) while the per-ISP simulations fan out.
    base_asn = 64600
    fixed_isps: List[Isp] = []
    fixed_counts: List[int] = []
    for rir_index, rir in enumerate(RIR):
        configs = _registry_fixed_configs(rir, base_asn + 10 * rir_index)
        shares = _FIXED_DELEGATION_SHARES[rir]
        for config, share in zip(configs, shares):
            count = max(8, int(fixed_subscribers_per_registry * share))
            scaled = cdn_fixed_config(config, count)
            isp = Isp(scaled, registry, table)
            fixed_asns.append(isp.asn)
            fixed_isps.append(isp)
            fixed_counts.append(count)

    if include_featured_isps:
        # Featured ISP populations are scaled relative to each other by the
        # paper's dual-stack probe counts (Table 1): DTAG is the largest.
        reference = max(PAPER_DS_PROBE_COUNTS.values())
        for config in default_profiles():
            weight = PAPER_DS_PROBE_COUNTS.get(config.name, reference // 4)
            count = max(64, featured_subscribers * weight // reference)
            # The CDN-visible dual-stack population skews toward lines on
            # modern provisioning: legacy periodic-renumbering DS shares are
            # scaled down relative to the Atlas probe population (this is
            # what reconciles Fig. 1's DS 1-day mode with Fig. 2's ~1-week
            # DTAG median; see EXPERIMENTS.md).
            config = replace(
                config,
                v4=replace(
                    config.v4, ds_legacy_fraction=config.v4.ds_legacy_fraction * 0.2
                ),
            )
            scaled = cdn_fixed_config(config, count)
            isp = Isp(scaled, registry, table)
            featured_asns[config.name] = isp.asn
            fixed_asns.append(isp.asn)
            fixed_isps.append(isp)
            fixed_counts.append(count)

    with span("collection/isp_simulations", isps=len(fixed_isps), scenario="cdn"):
        fixed_timelines = run_isp_simulations(
            list(zip(fixed_isps, fixed_counts)),
            end_hour=end_hour,
            seed=seed,
            workers=worker_count,
        )
    for isp, timelines in zip(fixed_isps, fixed_timelines):
        populations.append(FixedPopulation(isp, timelines, days, seed=seed))

    # Foreign v4 space for cellular/WiFi switchers: one block per fixed ISP.
    foreign_blocks = [
        population.isp.v4_plan.blocks[0]
        for population in populations
        if isinstance(population, FixedPopulation)
    ]

    # Pass 2: one generic mobile operator per registry; RIPE additionally
    # gets an EE-like operator with long-lived mobile associations.
    for rir_index, rir in enumerate(RIR):
        mobile = mobile_profile(
            f"{rir.value}-mobile", base_asn + 10 * rir_index + 5, rir.value[:2], rir
        )
        mobile_isp = Isp(mobile, registry, table)
        mobile_asns.append(mobile_isp.asn)
        generic_devices = (
            mobile_devices_per_registry // 2 if rir is RIR.RIPE else mobile_devices_per_registry
        )
        populations.append(
            MobilePopulation(
                mobile_isp,
                MobileConfig(
                    num_devices=generic_devices,
                    cross_network_noise=cross_network_noise,
                ),
                days,
                seed=seed,
                foreign_v4_blocks=foreign_blocks if cross_network_noise > 0 else None,
            )
        )
        if rir is RIR.RIPE:
            # EE-like operator: a *large* mobile network whose associations
            # reach 50 days — it single-handedly shifts RIPE's mobile tail
            # (the paper's "main outlier" discussion around Figure 3).
            ee = mobile_profile("EE", base_asn + 10 * rir_index + 6, "GB", rir)
            ee_isp = Isp(ee, registry, table)
            mobile_asns.append(ee_isp.asn)
            populations.append(
                MobilePopulation(
                    ee_isp,
                    MobileConfig(
                        num_devices=4 * mobile_devices_per_registry,
                        short_lifetime_fraction=0.25,
                        long_lifetime_mean_days=18.0,
                        lifetime_cap_days=50.0,
                    ),
                    days,
                    seed=seed,
                )
            )

    with span("collection/associations", populations=len(populations)):
        dataset = collect_associations(
            populations,
            table,
            registry,
            filter_asn_mismatch=filter_asn_mismatch,
            workers=worker_count,
        )
    scenario = CdnScenario(
        registry=registry,
        table=table,
        dataset=dataset,
        featured_asns=featured_asns,
        days=days,
        fixed_asns=fixed_asns,
        mobile_asns=mobile_asns,
    )
    if scenario_cache is not None and cache_key is not None:
        scenario_cache.put("cdn", cache_key, scenario)
    return scenario


def stream_analyze_atlas_scenario(
    scenario: AtlasScenario,
    chunk_hours: int = 720,
    checkpoint=None,
    resume: bool = False,
    checkpoint_every: int = 1,
    stop_after_chunks: Optional[int] = None,
    min_probes: int = 3,
    tolerance: float = 1.0,
    on_chunk=None,
):
    """Streaming (chunked, checkpointable) ``analyze_atlas_scenario``.

    Windows the scenario's sanitized runs into ``chunk_hours``-wide
    chunks and folds them through the incremental
    :class:`repro.stream.engine.AtlasStreamEngine`; the returned
    :class:`~repro.stream.engine.AtlasStreamResult` carries artifacts
    bit-identical to ``analyze_atlas_scenario(scenario, engine="np")``
    plus the ``periodicity_for_scenario`` periods for the same
    ``min_probes``/``tolerance``.

    ``checkpoint`` enables on-disk state persistence: ``True`` uses the
    default checkpoint directory (under the scenario cache dir), a path
    uses that directory.  With ``resume=True`` a previously persisted
    state for the same stream/parameters/code is loaded and only the
    remaining chunks are folded.  ``stop_after_chunks`` aborts the pass
    after that many folds (persisting first, when enabled) and returns
    ``None`` — simulating a killed run.
    """
    from repro.stream import CheckpointStore, ScenarioRunSource, run_atlas_stream

    store = None
    if checkpoint:
        store = CheckpointStore(None if checkpoint is True else checkpoint)
    source = ScenarioRunSource.from_scenario(scenario)
    return run_atlas_stream(
        source,
        chunk_hours,
        table=scenario.table,
        store=store,
        resume=resume,
        checkpoint_every=checkpoint_every,
        stop_after_chunks=stop_after_chunks,
        min_probes=min_probes,
        tolerance=tolerance,
        on_chunk=on_chunk,
    )


def build_cdn_triple_store(
    scenario: CdnScenario,
    directory,
    shards: int = 16,
    spill_rows: int = 1 << 18,
    workers: Optional[int] = None,
):
    """Persist a CDN scenario's triples as a sharded memmap store.

    The dataset streams into the store lazily
    (:meth:`~repro.cdn.collector.CdnDataset.iter_triples`), so the only
    full-population copy that ever exists is the on-disk one.
    ``workers`` > 1 (on a multi-core host) fans the build out to
    parallel segment writers and compacts — byte-identical to the
    serial build (``None`` = ``$REPRO_WORKERS``).  Returns the opened
    :class:`repro.store.TripleStore`.
    """
    from repro.store import build_store_from_triples

    return build_store_from_triples(
        scenario.dataset.iter_triples(),
        directory,
        shards=shards,
        spill_rows=spill_rows,
        workers=workers,
        source={
            "kind": "cdn-scenario",
            "days": scenario.days,
            "asns": sorted(scenario.dataset.triples_by_asn),
        },
    )


def analyze_triple_store(store, workers: Optional[int] = None, block_rows=None):
    """Out-of-core Section-5 analysis of a triple store (or its path).

    Accepts an open :class:`repro.store.TripleStore` or a directory
    path; ``workers`` fans the per-shard pass out over the zero-copy
    pool (``None`` = ``$REPRO_WORKERS``).  Artifacts are bit-identical
    to the in-RAM ``engine="np"`` path (see
    :func:`repro.perf.verify.store_diffs`).
    """
    from repro.store import DEFAULT_BLOCK_ROWS, TripleStore, analyze_store

    if not isinstance(store, TripleStore):
        store = TripleStore.open(store)
    return analyze_store(
        store,
        workers=workers,
        block_rows=DEFAULT_BLOCK_ROWS if block_rows is None else block_rows,
    )


__all__ = [
    "AtlasAnalysis",
    "AtlasScenario",
    "CdnScenario",
    "analyze_atlas_scenario",
    "analyze_triple_store",
    "build_atlas_scenario",
    "build_cdn_scenario",
    "build_cdn_triple_store",
    "periodicity_for_scenario",
    "stream_analyze_atlas_scenario",
]
