"""Address-space primitives built from scratch.

The classes here intentionally avoid the standard-library ``ipaddress``
module: the rest of the reproduction needs integer-backed, hashable,
arithmetic-friendly address and prefix types with measurement-specific
operations (common prefix length, nibble-aligned zero runs, fast
sub-prefix selection) that ``ipaddress`` does not expose.
"""

from repro.ip.addr import AddressError, IPAddress, IPv4Address, IPv6Address, parse_address
from repro.ip.prefix import IPPrefix, IPv4Prefix, IPv6Prefix, common_prefix_len, parse_prefix
from repro.ip.reverse import parse_reverse_pointer, reverse_pointer
from repro.ip.sets import PrefixSet
from repro.ip.trie import PrefixTrie

__all__ = [
    "AddressError",
    "IPAddress",
    "IPv4Address",
    "IPv6Address",
    "IPPrefix",
    "IPv4Prefix",
    "IPv6Prefix",
    "PrefixSet",
    "PrefixTrie",
    "common_prefix_len",
    "parse_address",
    "parse_reverse_pointer",
    "parse_prefix",
    "reverse_pointer",
]
