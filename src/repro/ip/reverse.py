"""Reverse-DNS helpers (``in-addr.arpa`` / ``ip6.arpa``).

Related-work context (Section 2.3): hitlist construction by "efficiently
mapping ip6.arpa" (van Dijk) walks the reverse-DNS tree, descending only
into nibbles that exist.  These helpers generate and parse reverse
names, and :func:`ip6_arpa_walk_order` enumerates the nibble labels a
walker would query beneath a prefix — which, combined with the
structure inference of :mod:`repro.core`, bounds walking effort the
same way it bounds active scanning.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.ip.addr import AddressError, IPv4Address, IPv6Address
from repro.ip.prefix import IPv4Prefix, IPv6Prefix


def reverse_pointer(address: Union[IPv4Address, IPv6Address]) -> str:
    """The PTR name of an address (RFC 1035 / RFC 3596)."""
    if isinstance(address, IPv4Address):
        value = int(address)
        octets = [str((value >> shift) & 0xFF) for shift in (0, 8, 16, 24)]
        return ".".join(octets) + ".in-addr.arpa"
    nibbles = f"{int(address):032x}"
    return ".".join(reversed(nibbles)) + ".ip6.arpa"


def parse_reverse_pointer(name: str) -> Union[IPv4Address, IPv6Address]:
    """Parse a PTR name back into an address."""
    lowered = name.lower().rstrip(".")
    if lowered.endswith(".in-addr.arpa"):
        labels = lowered[: -len(".in-addr.arpa")].split(".")
        if len(labels) != 4:
            raise AddressError(f"bad in-addr.arpa name {name!r}")
        try:
            octets = [int(label) for label in reversed(labels)]
        except ValueError:
            raise AddressError(f"bad in-addr.arpa name {name!r}") from None
        if any(not 0 <= octet <= 255 for octet in octets):
            raise AddressError(f"bad in-addr.arpa name {name!r}")
        value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        return IPv4Address(value)
    if lowered.endswith(".ip6.arpa"):
        labels = lowered[: -len(".ip6.arpa")].split(".")
        if len(labels) != 32:
            raise AddressError(f"bad ip6.arpa name {name!r}: expected 32 nibbles")
        try:
            value = int("".join(reversed(labels)), 16)
        except ValueError:
            raise AddressError(f"bad ip6.arpa name {name!r}") from None
        if any(len(label) != 1 for label in labels):
            raise AddressError(f"bad ip6.arpa name {name!r}")
        return IPv6Address(value)
    raise AddressError(f"not a reverse-DNS name: {name!r}")


def ip6_arpa_zone(prefix: IPv6Prefix) -> str:
    """The ip6.arpa zone apex delegating ``prefix`` (nibble-aligned only)."""
    if prefix.plen % 4:
        raise AddressError(f"/{prefix.plen} is not nibble-aligned")
    nibbles = f"{int(prefix.network):032x}"[: prefix.plen // 4]
    if not nibbles:
        return "ip6.arpa"
    return ".".join(reversed(nibbles)) + ".ip6.arpa"


def in_addr_arpa_zone(prefix: IPv4Prefix) -> str:
    """The in-addr.arpa zone apex for an octet-aligned IPv4 prefix."""
    if prefix.plen % 8:
        raise AddressError(f"/{prefix.plen} is not octet-aligned")
    value = int(prefix.network)
    octets = [str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)][: prefix.plen // 8]
    if not octets:
        return "in-addr.arpa"
    return ".".join(reversed(octets)) + ".in-addr.arpa"


def ip6_arpa_walk_order(prefix: IPv6Prefix, depth_nibbles: int = 1) -> Iterator[str]:
    """Child zone names a tree walker queries beneath ``prefix``.

    Enumerates every nibble combination ``depth_nibbles`` deep, lowest
    first — the breadth-first frontier of an ip6.arpa walk.
    """
    if prefix.plen % 4:
        raise AddressError(f"/{prefix.plen} is not nibble-aligned")
    if depth_nibbles < 1 or prefix.plen + 4 * depth_nibbles > 128:
        raise AddressError("walk depth out of range")
    base = ip6_arpa_zone(prefix)
    for value in range(1 << (4 * depth_nibbles)):
        nibbles = f"{value:0{depth_nibbles}x}"
        yield ".".join(reversed(nibbles)) + "." + base


def walk_cost(prefix_plen: int, target_plen: int) -> int:
    """Worst-case queries to walk from one nibble boundary to another."""
    if prefix_plen % 4 or target_plen % 4:
        raise AddressError("walk boundaries must be nibble-aligned")
    if target_plen < prefix_plen:
        raise AddressError("target must be deeper than the start")
    levels = (target_plen - prefix_plen) // 4
    return sum(16 ** level for level in range(1, levels + 1))


__all__ = [
    "in_addr_arpa_zone",
    "ip6_arpa_walk_order",
    "ip6_arpa_zone",
    "parse_reverse_pointer",
    "reverse_pointer",
    "walk_cost",
]
