"""Seeded random generation of addresses and prefixes.

All simulators draw addresses through :class:`AddressSampler` so that a
single integer seed reproduces an entire synthetic dataset.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Type

from repro.ip.addr import IPAddress, IPv4Address, IPv6Address
from repro.ip.prefix import IPPrefix, IPv4Prefix, IPv6Prefix


class AddressSampler:
    """Draw uniform addresses and sub-prefixes, optionally within a scope."""

    def __init__(self, seed: int = 0, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random(seed)

    @property
    def rng(self) -> random.Random:
        return self._rng

    def address(self, within: IPPrefix) -> IPAddress:
        """A uniform random address inside ``within``."""
        offset = self._rng.randrange(within.num_addresses)
        return within.ADDRESS_CLASS(int(within.network) + offset)

    def subprefix(self, within: IPPrefix, plen: int) -> IPPrefix:
        """A uniform random /plen inside ``within``."""
        index = self._rng.randrange(within.num_subprefixes(plen))
        return within.nth_subprefix(plen, index)

    def v4_address(self) -> IPv4Address:
        """A uniform random IPv4 address."""
        return IPv4Address(self._rng.getrandbits(32))

    def v6_address(self) -> IPv6Address:
        """A uniform random IPv6 address."""
        return IPv6Address(self._rng.getrandbits(128))

    def choice(self, options: Sequence):
        """A uniform choice from ``options``."""
        return self._rng.choice(options)

    def disjoint_subprefixes(self, within: IPPrefix, plen: int, count: int) -> list[IPPrefix]:
        """``count`` distinct random /plen blocks inside ``within``."""
        total = within.num_subprefixes(plen)
        if count > total:
            raise ValueError(f"cannot draw {count} /{plen}s from {within}")
        indices = self._rng.sample(range(total), count)
        return [within.nth_subprefix(plen, i) for i in sorted(indices)]


def prefix_class_for_family(family: int) -> Type[IPPrefix]:
    """Map IP version number to the matching prefix class."""
    if family == 4:
        return IPv4Prefix
    if family == 6:
        return IPv6Prefix
    raise ValueError(f"unknown address family {family!r}")


__all__ = ["AddressSampler", "prefix_class_for_family"]
