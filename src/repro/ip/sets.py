"""Prefix sets with aggregation.

:class:`PrefixSet` is a mutable collection of same-family prefixes
supporting membership queries against addresses and prefixes plus
CIDR aggregation (merging adjacent siblings and removing prefixes
covered by shorter ones).  It backs the BGP registry and several
analysis helpers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Type

from repro.ip.addr import IPAddress
from repro.ip.prefix import IPPrefix
from repro.ip.trie import PrefixTrie


class PrefixSet:
    """A set of prefixes from one address family."""

    def __init__(
        self,
        prefix_class: Type[IPPrefix],
        prefixes: Optional[Iterable[IPPrefix]] = None,
    ) -> None:
        self._trie = PrefixTrie(prefix_class)
        if prefixes is not None:
            for prefix in prefixes:
                self.add(prefix)

    @property
    def prefix_class(self) -> Type[IPPrefix]:
        return self._trie.prefix_class

    def __len__(self) -> int:
        return len(self._trie)

    def __iter__(self) -> Iterator[IPPrefix]:
        return self._trie.keys()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrefixSet):
            return NotImplemented
        return set(self) == set(other)

    def __repr__(self) -> str:
        preview = ", ".join(str(p) for _, p in zip(range(4), self))
        suffix = ", ..." if len(self) > 4 else ""
        return f"PrefixSet([{preview}{suffix}])"

    def add(self, prefix: IPPrefix) -> None:
        """Insert ``prefix`` (idempotent)."""
        self._trie.insert(prefix, True)

    def discard(self, prefix: IPPrefix) -> None:
        """Remove ``prefix`` if present (no error otherwise)."""
        try:
            self._trie.remove(prefix)
        except KeyError:
            pass

    def remove(self, prefix: IPPrefix) -> None:
        """Remove ``prefix``; raises KeyError when absent."""
        self._trie.remove(prefix)

    def __contains__(self, prefix: IPPrefix) -> bool:
        return prefix in self._trie

    def contains_address(self, address: IPAddress) -> bool:
        """True when some member prefix covers ``address``."""
        return self._trie.longest_match(address) is not None

    def covers(self, prefix: IPPrefix) -> bool:
        """True when some member prefix covers all of ``prefix``."""
        return self._trie.covering(prefix) is not None

    def covering_prefix(self, address: IPAddress) -> Optional[IPPrefix]:
        """The most specific member prefix containing ``address``, or ``None``."""
        match = self._trie.longest_match(address)
        return None if match is None else match[0]

    def union(self, other: "PrefixSet") -> "PrefixSet":
        """A new set containing both sets' members (same family only)."""
        if other.prefix_class is not self.prefix_class:
            raise TypeError("cannot union prefix sets of different families")
        result = PrefixSet(self.prefix_class, self)
        for prefix in other:
            result.add(prefix)
        return result

    def aggregated(self) -> "PrefixSet":
        """A minimal equivalent set: drop covered prefixes, merge sibling pairs.

        The result covers exactly the same addresses with the fewest
        prefixes, mirroring classic CIDR aggregation.
        """
        cls = self.prefix_class
        survivors: set[IPPrefix] = set()
        for prefix in sorted(self, key=lambda p: (p.plen, int(p.network))):
            if not any(existing.contains_prefix(prefix) for existing in survivors
                       if existing.plen <= prefix.plen):
                survivors.add(prefix)
        # Iteratively merge sibling pairs into their parent.
        merged = True
        while merged:
            merged = False
            by_key = {(int(p.network), p.plen) for p in survivors}
            for prefix in sorted(survivors, key=lambda p: (-p.plen, int(p.network))):
                if prefix.plen == 0:
                    continue
                bit = prefix.bits - prefix.plen
                sibling_net = int(prefix.network) ^ (1 << bit)
                if (sibling_net, prefix.plen) in by_key and (int(prefix.network), prefix.plen) in by_key:
                    parent = cls(int(prefix.network) & ~(1 << bit), prefix.plen - 1)
                    survivors.discard(prefix)
                    survivors.discard(cls(sibling_net, prefix.plen))
                    survivors.add(parent)
                    merged = True
                    break
        return PrefixSet(cls, survivors)

    def total_addresses(self) -> int:
        """Number of distinct addresses covered (after aggregation)."""
        return sum(p.num_addresses for p in self.aggregated())


__all__ = ["PrefixSet"]
