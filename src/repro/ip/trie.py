"""A binary Patricia (path-compressed radix) trie keyed by IP prefixes.

Used as the longest-prefix-match engine behind :mod:`repro.bgp.table` and
for prefix-set aggregation.  One trie holds one address family; keys are
:class:`~repro.ip.prefix.IPPrefix` instances and values are arbitrary.

The implementation stores each node's key as ``(value, plen)`` where
``value`` is the left-aligned network integer.  Internal (non-terminal)
nodes arise from path splits and carry ``payload_set = False``.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple, Type

from repro.ip.addr import IPAddress
from repro.ip.prefix import IPPrefix


class _Node:
    __slots__ = ("value", "plen", "payload", "payload_set", "left", "right")

    def __init__(self, value: int, plen: int) -> None:
        self.value = value
        self.plen = plen
        self.payload: Any = None
        self.payload_set = False
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class PrefixTrie:
    """Patricia trie over prefixes of a single family.

    Parameters
    ----------
    prefix_class:
        The concrete prefix type stored (``IPv4Prefix`` or ``IPv6Prefix``).
    """

    def __init__(self, prefix_class: Type[IPPrefix]) -> None:
        self._prefix_class = prefix_class
        self._bits = prefix_class.ADDRESS_CLASS.BITS
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def prefix_class(self) -> Type[IPPrefix]:
        return self._prefix_class

    def _check_key(self, prefix: IPPrefix) -> None:
        if type(prefix) is not self._prefix_class:
            raise TypeError(
                f"trie holds {self._prefix_class.__name__}, got {type(prefix).__name__}"
            )

    def _bit(self, value: int, index: int) -> int:
        return (value >> (self._bits - 1 - index)) & 1

    def _common_plen(self, a_value: int, a_plen: int, b_value: int, b_plen: int) -> int:
        diff = a_value ^ b_value
        return min(a_plen, b_plen, self._bits - diff.bit_length())

    # -- mutation -----------------------------------------------------------

    def insert(self, prefix: IPPrefix, payload: Any = None) -> None:
        """Insert or overwrite ``prefix`` with ``payload``."""
        self._check_key(prefix)
        value, plen = int(prefix.network), prefix.plen
        if self._root is None:
            node = _Node(value, plen)
            node.payload, node.payload_set = payload, True
            self._root = node
            self._size = 1
            return

        parent: Optional[_Node] = None
        parent_bit = 0
        node = self._root
        while True:
            cpl = self._common_plen(value, plen, node.value, node.plen)
            if cpl == node.plen == plen:
                # Exact slot.
                if not node.payload_set:
                    self._size += 1
                node.payload, node.payload_set = payload, True
                return
            if cpl == node.plen:
                # Descend into the subtree selected by the next key bit.
                branch = self._bit(value, node.plen)
                child = node.right if branch else node.left
                if child is None:
                    leaf = _Node(value, plen)
                    leaf.payload, leaf.payload_set = payload, True
                    if branch:
                        node.right = leaf
                    else:
                        node.left = leaf
                    self._size += 1
                    return
                parent, parent_bit, node = node, branch, child
                continue
            # Split the edge above `node` at depth `cpl`.
            if cpl == plen:
                split = _Node(value, plen)
                split.payload, split.payload_set = payload, True
            else:
                split = _Node(value & self._mask(cpl), cpl)
            if self._bit(node.value, cpl):
                split.right = node
            else:
                split.left = node
            if cpl != plen:
                leaf = _Node(value, plen)
                leaf.payload, leaf.payload_set = payload, True
                if self._bit(value, cpl):
                    split.right = leaf
                else:
                    split.left = leaf
            if parent is None:
                self._root = split
            elif parent_bit:
                parent.right = split
            else:
                parent.left = split
            self._size += 1
            return

    @classmethod
    def _mask_for_bits(cls, bits: int, plen: int) -> int:
        return ((1 << plen) - 1) << (bits - plen) if plen else 0

    def _mask(self, plen: int) -> int:
        return self._mask_for_bits(self._bits, plen)

    def remove(self, prefix: IPPrefix) -> Any:
        """Remove ``prefix``; return its payload.  Raises ``KeyError`` if absent."""
        self._check_key(prefix)
        value, plen = int(prefix.network), prefix.plen
        path: list[Tuple[_Node, int]] = []
        node = self._root
        while node is not None:
            cpl = self._common_plen(value, plen, node.value, node.plen)
            if cpl == node.plen == plen and node.payload_set:
                payload = node.payload
                node.payload, node.payload_set = None, False
                self._size -= 1
                self._prune(node, path)
                return payload
            if cpl < node.plen or node.plen >= plen:
                break
            branch = self._bit(value, node.plen)
            path.append((node, branch))
            node = node.right if branch else node.left
        raise KeyError(str(prefix))

    def _prune(self, node: _Node, path: list[Tuple[_Node, int]]) -> None:
        # Collapse non-payload nodes with < 2 children, walking back up.
        while not node.payload_set:
            children = [c for c in (node.left, node.right) if c is not None]
            if len(children) == 2:
                return
            replacement = children[0] if children else None
            if not path:
                self._root = replacement
                return
            parent, branch = path.pop()
            if branch:
                parent.right = replacement
            else:
                parent.left = replacement
            if replacement is not None:
                return
            node = parent

    # -- queries ------------------------------------------------------------

    def exact(self, prefix: IPPrefix) -> Any:
        """Payload stored at exactly ``prefix``; raises ``KeyError`` if absent."""
        self._check_key(prefix)
        value, plen = int(prefix.network), prefix.plen
        node = self._root
        while node is not None:
            cpl = self._common_plen(value, plen, node.value, node.plen)
            if cpl == node.plen == plen:
                if node.payload_set:
                    return node.payload
                break
            if cpl < node.plen or node.plen >= plen:
                break
            node = node.right if self._bit(value, node.plen) else node.left
        raise KeyError(str(prefix))

    def __contains__(self, prefix: IPPrefix) -> bool:
        try:
            self.exact(prefix)
        except KeyError:
            return False
        return True

    def longest_match(self, address: IPAddress) -> Optional[Tuple[IPPrefix, Any]]:
        """The most specific stored prefix containing ``address``, or ``None``."""
        if type(address) is not self._prefix_class.ADDRESS_CLASS:
            raise TypeError(
                f"trie holds {self._prefix_class.ADDRESS_CLASS.__name__} keys, "
                f"got {type(address).__name__}"
            )
        value = int(address)
        best: Optional[_Node] = None
        node = self._root
        while node is not None:
            cpl = self._common_plen(value, self._bits, node.value, node.plen)
            if cpl < node.plen:
                break
            if node.payload_set:
                best = node
            if node.plen == self._bits:
                break
            node = node.right if self._bit(value, node.plen) else node.left
        if best is None:
            return None
        return self._prefix_class(best.value, best.plen), best.payload

    def lookup(self, address: IPAddress) -> Any:
        """Payload of the longest match for ``address``; ``KeyError`` if none."""
        match = self.longest_match(address)
        if match is None:
            raise KeyError(str(address))
        return match[1]

    def covering(self, prefix: IPPrefix) -> Optional[Tuple[IPPrefix, Any]]:
        """The most specific stored prefix that *contains* ``prefix``, or ``None``."""
        self._check_key(prefix)
        value, plen = int(prefix.network), prefix.plen
        best: Optional[_Node] = None
        node = self._root
        while node is not None:
            cpl = self._common_plen(value, plen, node.value, node.plen)
            if cpl < node.plen:
                break
            if node.payload_set and node.plen <= plen:
                best = node
            if node.plen >= plen:
                break
            node = node.right if self._bit(value, node.plen) else node.left
        if best is None:
            return None
        return self._prefix_class(best.value, best.plen), best.payload

    def items(self) -> Iterator[Tuple[IPPrefix, Any]]:
        """All stored (prefix, payload) pairs in address order."""
        stack: list[_Node] = []
        if self._root is not None:
            stack.append(self._root)
        while stack:
            node = stack.pop()
            if node.payload_set:
                yield self._prefix_class(node.value, node.plen), node.payload
            # Push right first so left (lower addresses) pops first.
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def keys(self) -> Iterator[IPPrefix]:
        """All stored prefixes in address order."""
        for prefix, _payload in self.items():
            yield prefix


__all__ = ["PrefixTrie"]
