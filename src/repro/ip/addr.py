"""Integer-backed IPv4 and IPv6 address types.

Both address classes wrap a non-negative integer and provide parsing and
formatting written from first principles:

* IPv4 uses strict dotted-quad parsing (four decimal octets, no leading
  zeros beyond a lone ``0``).
* IPv6 parsing implements RFC 4291 section 2.2 (hex groups, one ``::``
  compression, optional embedded dotted-quad tail) and formatting follows
  RFC 5952 (lowercase, longest zero run of length >= 2 compressed,
  leftmost run on tie).

Addresses are immutable, hashable, ordered within a family, and support
``addr + n`` / ``addr - n`` arithmetic which stays within the family's
address space.
"""

from __future__ import annotations

from typing import Union


class AddressError(ValueError):
    """Raised when an address or prefix cannot be parsed or constructed."""


class IPAddress:
    """Common base for :class:`IPv4Address` and :class:`IPv6Address`.

    Subclasses set :attr:`BITS` (address width in bits).  Instances expose
    the raw integer as :attr:`value`.
    """

    BITS = 0
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if not isinstance(value, int):
            raise AddressError(f"address value must be int, got {type(value).__name__}")
        if not 0 <= value < (1 << self.BITS):
            raise AddressError(f"address value {value!r} out of range for {self.BITS}-bit family")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        # Rebuild through __init__: the immutable __setattr__ defeats the
        # default slot-restoring unpickling path.
        return (type(self), (self.value,))

    @property
    def family(self) -> int:
        """Address family as the conventional IP version number (4 or 6)."""
        return 4 if self.BITS == 32 else 6

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.value == self.value  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((self.BITS, self.value))

    def _check_same_family(self, other: "IPAddress") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot compare {type(self).__name__} with {type(other).__name__}"
            )

    def __lt__(self, other: "IPAddress") -> bool:
        self._check_same_family(other)
        return self.value < other.value

    def __le__(self, other: "IPAddress") -> bool:
        self._check_same_family(other)
        return self.value <= other.value

    def __gt__(self, other: "IPAddress") -> bool:
        self._check_same_family(other)
        return self.value > other.value

    def __ge__(self, other: "IPAddress") -> bool:
        self._check_same_family(other)
        return self.value >= other.value

    def __add__(self, offset: int) -> "IPAddress":
        return type(self)(self.value + offset)

    def __sub__(self, other: Union[int, "IPAddress"]) -> Union["IPAddress", int]:
        if isinstance(other, IPAddress):
            self._check_same_family(other)
            return self.value - other.value
        return type(self)(self.value - other)

    def bit(self, index: int) -> int:
        """Return bit ``index`` counting from the most significant bit (0-based)."""
        if not 0 <= index < self.BITS:
            raise IndexError(f"bit index {index} out of range for {self.BITS}-bit address")
        return (self.value >> (self.BITS - 1 - index)) & 1

    def trailing_zero_bits(self) -> int:
        """Number of consecutive zero bits at the least-significant end.

        An all-zero address reports the full width.
        """
        if self.value == 0:
            return self.BITS
        return (self.value & -self.value).bit_length() - 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


class IPv4Address(IPAddress):
    """A 32-bit IPv4 address."""

    BITS = 32
    __slots__ = ()

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse strict dotted-quad notation (e.g. ``"192.0.2.1"``)."""
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"invalid IPv4 address {text!r}: expected 4 octets")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"invalid IPv4 address {text!r}: non-decimal octet {part!r}")
            if len(part) > 1 and part[0] == "0":
                raise AddressError(f"invalid IPv4 address {text!r}: leading zero in {part!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"invalid IPv4 address {text!r}: octet {part!r} > 255")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"


class IPv6Address(IPAddress):
    """A 128-bit IPv6 address."""

    BITS = 128
    __slots__ = ()

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        """Parse RFC 4291 textual notation, including ``::`` compression."""
        if not text:
            raise AddressError("invalid IPv6 address: empty string")
        if text.count("::") > 1:
            raise AddressError(f"invalid IPv6 address {text!r}: multiple '::'")

        # An embedded dotted-quad tail (e.g. ::ffff:192.0.2.1) contributes
        # two trailing 16-bit groups.
        tail_groups: list[int] = []
        if "." in text:
            head, sep, quad = text.rpartition(":")
            if not sep:
                raise AddressError(f"invalid IPv6 address {text!r}")
            v4 = IPv4Address.parse(quad).value
            tail_groups = [v4 >> 16, v4 & 0xFFFF]
            # Preserve a trailing "::" marker if the quad directly follows it.
            text = head + ":" if head.endswith(":") else head

        if "::" in text:
            left_text, right_text = text.split("::")
            left = cls._parse_groups(left_text, text)
            right = cls._parse_groups(right_text, text)
        else:
            left = cls._parse_groups(text, text)
            right = []
        right += tail_groups

        if "::" in text:
            missing = 8 - len(left) - len(right)
            if missing < 1:
                raise AddressError(f"invalid IPv6 address {text!r}: '::' expands to nothing")
            groups = left + [0] * missing + right
        else:
            groups = left + right
            if len(groups) != 8:
                raise AddressError(
                    f"invalid IPv6 address {text!r}: expected 8 groups, got {len(groups)}"
                )

        value = 0
        for group in groups:
            value = (value << 16) | group
        return cls(value)

    @staticmethod
    def _parse_groups(text: str, original: str) -> list[int]:
        if not text:
            return []
        groups = []
        for part in text.split(":"):
            if not part or len(part) > 4:
                raise AddressError(f"invalid IPv6 address {original!r}: bad group {part!r}")
            try:
                groups.append(int(part, 16))
            except ValueError:
                raise AddressError(
                    f"invalid IPv6 address {original!r}: bad group {part!r}"
                ) from None
        return groups

    def groups(self) -> tuple[int, ...]:
        """The eight 16-bit groups, most significant first."""
        v = self.value
        return tuple((v >> shift) & 0xFFFF for shift in range(112, -16, -16))

    def __str__(self) -> str:
        groups = self.groups()
        # RFC 5952: compress the longest run of >= 2 zero groups (leftmost on tie).
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for i, g in enumerate(groups):
            if g == 0:
                if run_start < 0:
                    run_start, run_len = i, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        if best_len < 2:
            return ":".join(f"{g:x}" for g in groups)
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
        return f"{head}::{tail}"

    def nibble(self, index: int) -> int:
        """Return 4-bit nibble ``index`` counting from the most significant (0..31)."""
        if not 0 <= index < 32:
            raise IndexError(f"nibble index {index} out of range")
        return (self.value >> (124 - 4 * index)) & 0xF


def parse_address(text: str) -> IPAddress:
    """Parse ``text`` as IPv4 if it looks dotted-quad, else as IPv6."""
    if ":" in text:
        return IPv6Address.parse(text)
    return IPv4Address.parse(text)
