"""IPv4 and IPv6 prefix (CIDR block) types.

A prefix is an address plus a prefix length; the network bits are
normalized (host bits zeroed) at construction unless ``strict=True`` is
requested, in which case set host bits raise :class:`AddressError`.

The measurement-specific operations the paper relies on live here:

* :func:`common_prefix_len` — the CPL metric of Section 5.2;
* :meth:`IPPrefix.trailing_zero_run` support via the address type;
* fast ``supernet`` / ``nth_subprefix`` used throughout the simulators.
"""

from __future__ import annotations

from typing import Iterator, Type, Union

from repro.ip.addr import AddressError, IPAddress, IPv4Address, IPv6Address, parse_address


class IPPrefix:
    """Common base for :class:`IPv4Prefix` and :class:`IPv6Prefix`."""

    ADDRESS_CLASS: Type[IPAddress] = IPAddress
    __slots__ = ("network", "plen")

    def __init__(self, network: Union[IPAddress, int], plen: int, strict: bool = False) -> None:
        bits = self.ADDRESS_CLASS.BITS
        if not 0 <= plen <= bits:
            raise AddressError(f"prefix length {plen} out of range for /{bits} family")
        value = int(network)
        mask = self._mask(plen)
        if strict and value & ~mask & ((1 << bits) - 1):
            raise AddressError(f"host bits set in strict prefix {value:#x}/{plen}")
        object.__setattr__(self, "network", self.ADDRESS_CLASS(value & mask))
        object.__setattr__(self, "plen", plen)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        # Rebuild through __init__: the immutable __setattr__ defeats the
        # default slot-restoring unpickling path.
        return (type(self), (int(self.network), self.plen))

    @classmethod
    def _mask(cls, plen: int) -> int:
        bits = cls.ADDRESS_CLASS.BITS
        return ((1 << plen) - 1) << (bits - plen) if plen else 0

    @classmethod
    def parse(cls, text: str, strict: bool = False) -> "IPPrefix":
        """Parse ``"addr/len"`` notation; a bare address gets a full-length mask."""
        addr_text, sep, plen_text = text.partition("/")
        address = cls.ADDRESS_CLASS.parse(addr_text)  # type: ignore[attr-defined]
        if sep:
            if not plen_text.isdigit():
                raise AddressError(f"invalid prefix length in {text!r}")
            plen = int(plen_text)
        else:
            plen = cls.ADDRESS_CLASS.BITS
        return cls(address, plen, strict=strict)

    @property
    def family(self) -> int:
        return self.network.family

    @property
    def bits(self) -> int:
        return self.ADDRESS_CLASS.BITS

    @property
    def num_addresses(self) -> int:
        return 1 << (self.bits - self.plen)

    @property
    def first_address(self) -> IPAddress:
        return self.network

    @property
    def last_address(self) -> IPAddress:
        return self.ADDRESS_CLASS(int(self.network) + self.num_addresses - 1)

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.plen == self.plen  # type: ignore[attr-defined]
            and other.network == self.network  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((self.bits, int(self.network), self.plen))

    def __lt__(self, other: "IPPrefix") -> bool:
        if type(other) is not type(self):
            raise TypeError(f"cannot order {type(self).__name__} with {type(other).__name__}")
        return (int(self.network), self.plen) < (int(other.network), other.plen)

    def __str__(self) -> str:
        return f"{self.network}/{self.plen}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"

    def contains_address(self, address: IPAddress) -> bool:
        """True when ``address`` falls inside this prefix."""
        if type(address) is not self.ADDRESS_CLASS:
            return False
        return (int(address) & self._mask(self.plen)) == int(self.network)

    def contains_prefix(self, other: "IPPrefix") -> bool:
        """True when ``other`` is equal to or more specific than this prefix."""
        if type(other) is not type(self) or other.plen < self.plen:
            return False
        return (int(other.network) & self._mask(self.plen)) == int(self.network)

    def __contains__(self, item: Union[IPAddress, "IPPrefix"]) -> bool:
        if isinstance(item, IPAddress):
            return self.contains_address(item)
        return self.contains_prefix(item)

    def supernet(self, plen: int) -> "IPPrefix":
        """The enclosing prefix of length ``plen`` (must not exceed own length)."""
        if plen > self.plen:
            raise AddressError(f"supernet /{plen} longer than /{self.plen}")
        return type(self)(self.network, plen)

    def nth_subprefix(self, plen: int, index: int) -> "IPPrefix":
        """The ``index``-th sub-prefix of length ``plen`` within this prefix."""
        if plen < self.plen:
            raise AddressError(f"subprefix /{plen} shorter than /{self.plen}")
        count = 1 << (plen - self.plen)
        if not 0 <= index < count:
            raise AddressError(f"subprefix index {index} out of range (0..{count - 1})")
        value = int(self.network) | (index << (self.bits - plen))
        return type(self)(value, plen)

    def num_subprefixes(self, plen: int) -> int:
        """How many sub-prefixes of length ``plen`` fit in this prefix."""
        if plen < self.plen:
            raise AddressError(f"subprefix /{plen} shorter than /{self.plen}")
        return 1 << (plen - self.plen)

    def subprefixes(self, plen: int) -> Iterator["IPPrefix"]:
        """Iterate all sub-prefixes of length ``plen`` in address order."""
        for index in range(self.num_subprefixes(plen)):
            yield self.nth_subprefix(plen, index)

    def nth_address(self, index: int) -> IPAddress:
        """The ``index``-th address in this prefix."""
        if not 0 <= index < self.num_addresses:
            raise AddressError(f"address index {index} out of range for {self}")
        return self.ADDRESS_CLASS(int(self.network) + index)

    def index_of(self, address: IPAddress) -> int:
        """Inverse of :meth:`nth_address`."""
        if not self.contains_address(address):
            raise AddressError(f"{address} not in {self}")
        return int(address) - int(self.network)

    def trailing_zero_bits(self) -> int:
        """Zero bits at the end of the *network portion* (before the /plen cut).

        For a /64 whose last 8 network bits are zero this returns >= 8; used
        by the delegated-prefix inference of Section 5.3.
        """
        if self.plen == 0:
            return 0
        shifted = int(self.network) >> (self.bits - self.plen)
        if shifted == 0:
            return self.plen
        return (shifted & -shifted).bit_length() - 1


class IPv4Prefix(IPPrefix):
    """An IPv4 CIDR block, e.g. ``192.0.2.0/24``."""

    ADDRESS_CLASS = IPv4Address
    __slots__ = ()


class IPv6Prefix(IPPrefix):
    """An IPv6 CIDR block, e.g. ``2001:db8::/32``."""

    ADDRESS_CLASS = IPv6Address
    __slots__ = ()


def common_prefix_len(a: Union[IPAddress, IPPrefix], b: Union[IPAddress, IPPrefix]) -> int:
    """Number of leading bits identical between ``a`` and ``b`` (the paper's CPL).

    Both arguments must be from the same family.  For prefixes the
    comparison runs over network addresses and is additionally capped at
    the shorter of the two prefix lengths.
    """
    a_addr = a.network if isinstance(a, IPPrefix) else a
    b_addr = b.network if isinstance(b, IPPrefix) else b
    if type(a_addr) is not type(b_addr):
        raise TypeError("common_prefix_len requires addresses of the same family")
    bits = a_addr.BITS
    diff = int(a_addr) ^ int(b_addr)
    cpl = bits - diff.bit_length()
    if isinstance(a, IPPrefix):
        cpl = min(cpl, a.plen)
    if isinstance(b, IPPrefix):
        cpl = min(cpl, b.plen)
    return cpl


def parse_prefix(text: str) -> IPPrefix:
    """Parse ``text`` as an IPv4 or IPv6 prefix based on its syntax."""
    if ":" in text:
        return IPv6Prefix.parse(text)
    return IPv4Prefix.parse(text)


def address_prefix(address: IPAddress, plen: int) -> IPPrefix:
    """The length-``plen`` prefix containing ``address``."""
    cls = IPv4Prefix if isinstance(address, IPv4Address) else IPv6Prefix
    return cls(address, plen)


__all__ = [
    "IPPrefix",
    "IPv4Prefix",
    "IPv6Prefix",
    "address_prefix",
    "common_prefix_len",
    "parse_address",
    "parse_prefix",
]
