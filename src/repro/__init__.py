"""DynamIPs reproduction: IPv4/IPv6 address-assignment dynamics analysis.

This package reproduces the measurement pipeline of "DynamIPs: Analyzing
address assignment practices in IPv4 and IPv6" (CoNEXT 2020).  It contains:

``repro.ip``
    From-scratch IPv4/IPv6 address and prefix primitives, Patricia tries,
    and prefix sets.
``repro.bgp``
    A routing-table substrate (pfx2as longest-prefix match) and a synthetic
    RIR/AS registry.
``repro.netsim``
    An event-driven ISP simulator: address pools, DHCP/RADIUS assignment,
    CGNAT, CPE behaviour models, outages and renumbering policies.
``repro.atlas``
    A RIPE Atlas platform substrate that produces hourly "IP echo"
    measurement streams, plus the paper's data-sanitization pipeline.
``repro.cdn``
    A CDN real-user-monitoring substrate producing (IPv4 /24, IPv6 /64,
    day) association tuples.
``repro.core``
    The paper's analysis library: assignment-change detection, the total
    time fraction metric, periodicity detection, dual-stack interplay,
    CDN association/cardinality analysis, spatial metrics (common prefix
    length, BGP crossings, unique-prefix distributions), and delegated
    prefix inference.
``repro.stream``
    A chunked, checkpointable incremental analysis engine whose replay
    is bit-identical to the batch report for any chunk size.
``repro.perf``
    The performance engine: parallel scenario fan-out, content-addressed
    caching, stage timing/RSS sampling, and determinism verification.
"""

from repro.ip.addr import IPv4Address, IPv6Address
from repro.ip.prefix import IPv4Prefix, IPv6Prefix

__version__ = "1.0.0"

__all__ = [
    "IPv4Address",
    "IPv6Address",
    "IPv4Prefix",
    "IPv6Prefix",
    "__version__",
]
