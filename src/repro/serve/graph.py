"""Typed node/edge knowledge-graph export of a scenario's findings.

The graph links the entities the paper reasons about — autonomous
systems, observed prefixes, v6 address pools, customer delegations and
stability classes — so downstream tooling can navigate "which pool
does this /64 come from?" or "which ASes renumber periodically?"
without re-running analysis.  Shape follows the node/edge JSONL style
of public internet knowledge graphs: one JSON object per line, nodes
first, then edges referencing node ids.

Node kinds: ``as``, ``prefix``, ``pool``, ``delegation``,
``stability-class``.  Edge kinds: ``ORIGINATES`` (AS → observed
prefix), ``CONTAINS`` (pool → /64 prefix), ``ASSIGNED_FROM`` (/64
prefix → delegation), ``CLASSIFIED_AS`` (AS → stability class, one per
address family).  The exact wire format is documented in
``docs/data-formats.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.changes import v6_runs_to_prefix_runs
from repro.ip.prefix import address_prefix
from repro.obs import get_logger, span
from repro.serve.queries import (
    change_rate_per_probe_year,
    classify_stability,
)

_log = get_logger("serve.graph")

NODE_KINDS = ("as", "prefix", "pool", "delegation", "stability-class")
EDGE_KINDS = ("ORIGINATES", "CONTAINS", "ASSIGNED_FROM", "CLASSIFIED_AS")


@dataclass
class KnowledgeGraph:
    """An in-memory node/edge graph ready for JSONL export."""

    nodes: List[Dict[str, Any]] = field(default_factory=list)
    edges: List[Dict[str, Any]] = field(default_factory=list)

    def node_counts(self) -> Dict[str, int]:
        """Node tally by kind."""
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node["kind"]] = counts.get(node["kind"], 0) + 1
        return counts

    def edge_counts(self) -> Dict[str, int]:
        """Edge tally by kind."""
        counts: Dict[str, int] = {}
        for edge in self.edges:
            counts[edge["kind"]] = counts.get(edge["kind"], 0) + 1
        return counts


class _Builder:
    def __init__(self) -> None:
        self.graph = KnowledgeGraph()
        self._node_ids: set = set()
        self._edge_keys: set = set()

    def node(self, node_id: str, kind: str, **props: Any) -> str:
        if node_id not in self._node_ids:
            self._node_ids.add(node_id)
            self.graph.nodes.append(
                {"type": "node", "id": node_id, "kind": kind, "props": props}
            )
        return node_id

    def edge(self, kind: str, src: str, dst: str, **props: Any) -> None:
        key = (kind, src, dst, tuple(sorted(props.items())))
        if key in self._edge_keys:
            return
        self._edge_keys.add(key)
        self.graph.edges.append(
            {"type": "edge", "kind": kind, "src": src, "dst": dst, "props": props}
        )


def _family_stability(
    probes: List[Any], family: int, period: Optional[float]
) -> Tuple[str, float, int]:
    """(class, rate, changes) of one AS's probes for one family."""
    from repro.core.report import probe_v4_changes, probe_v6_changes

    changes = 0
    observed_hours = 0
    for probe in probes:
        if family == 4:
            changes += len(probe_v4_changes(probe))
            runs = probe.v4_runs
        else:
            changes += len(probe_v6_changes(probe, 64))
            runs = v6_runs_to_prefix_runs(probe.v6_runs, 64)
        observed_hours += sum(run.last - run.first + 1 for run in runs)
    rate = change_rate_per_probe_year(changes, observed_hours)
    label = classify_stability(changes, len(probes), rate, period)
    return label, rate, changes


def build_graph(scenario: Any) -> KnowledgeGraph:
    """The knowledge graph of one built scenario.

    Deterministic: ISPs in scenario order, prefixes in first-seen
    probe-major order within each AS, every node emitted before any
    edge references it.
    """
    from repro.workloads import periodicity_for_scenario

    builder = _Builder()
    v4_periods, v6_periods = periodicity_for_scenario(scenario, engine="py")
    with span("serve/graph", networks=len(scenario.isps)):
        for name, isp in scenario.isps.items():
            probes = scenario.probes_in(isp.asn)
            as_id = builder.node(
                f"as:{isp.asn}",
                "as",
                asn=isp.asn,
                name=name,
                country=isp.config.country,
                probes=len(probes),
            )
            v4_prefixes: Dict[Any, None] = {}
            v6_prefixes: Dict[Any, None] = {}
            for probe in probes:
                for run in probe.v4_runs:
                    v4_prefixes.setdefault(address_prefix(run.value, 24), None)
                for run in v6_runs_to_prefix_runs(probe.v6_runs, 64):
                    v6_prefixes.setdefault(run.value, None)
            for prefix in v4_prefixes:
                prefix_id = builder.node(f"prefix:{prefix}", "prefix", family=4)
                builder.edge("ORIGINATES", as_id, prefix_id, family=4)
            v6_config = isp.config.v6
            for prefix in v6_prefixes:
                prefix_id = builder.node(f"prefix:{prefix}", "prefix", family=6)
                builder.edge("ORIGINATES", as_id, prefix_id, family=6)
                if v6_config is None:
                    continue
                pool = prefix.supernet(v6_config.pool_plen)
                pool_id = builder.node(
                    f"pool:{pool}", "pool", plen=pool.plen, asn=isp.asn
                )
                builder.edge("CONTAINS", pool_id, prefix_id)
                delegation = prefix.supernet(v6_config.delegation_plen)
                delegation_id = builder.node(
                    f"delegation:{delegation}",
                    "delegation",
                    plen=delegation.plen,
                )
                builder.edge("ASSIGNED_FROM", prefix_id, delegation_id)
            for family, period in (
                (4, v4_periods.get(name)),
                (6, v6_periods.get(name)),
            ):
                label, rate, changes = _family_stability(probes, family, period)
                class_id = builder.node(
                    f"class:{label}", "stability-class", label=label
                )
                props: Dict[str, Any] = {
                    "family": family,
                    "changes": changes,
                    "rate_per_probe_year": rate,
                }
                if period is not None:
                    props["period_hours"] = period
                builder.edge("CLASSIFIED_AS", as_id, class_id, **props)
    return builder.graph


def write_graph(graph: KnowledgeGraph, path: Path) -> Path:
    """Write ``graph`` as JSONL (all nodes, then all edges)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in graph.nodes:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        for record in graph.edges:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    _log.info(
        "graph written",
        extra={"path": str(path), "nodes": len(graph.nodes), "edges": len(graph.edges)},
    )
    return path


def load_graph(path: Path) -> KnowledgeGraph:
    """Read a JSONL graph back (inverse of :func:`write_graph`)."""
    graph = KnowledgeGraph()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            record_type = record.get("type")
            if record_type == "node":
                graph.nodes.append(record)
            elif record_type == "edge":
                graph.edges.append(record)
            else:
                raise ValueError(f"unknown graph record type {record_type!r}")
    return graph


__all__ = [
    "EDGE_KINDS",
    "KnowledgeGraph",
    "NODE_KINDS",
    "build_graph",
    "load_graph",
    "write_graph",
]
