"""Stdlib-only serving front-end: JSON-over-HTTP plus an in-process client.

:class:`ServeApp` is the transport-free application object — it maps
``(method, path, payload)`` to ``(status, document)`` so tests can
exercise the full API without sockets.  :func:`make_server` wraps an
app in a ``http.server`` ``ThreadingHTTPServer``;
:class:`ServeClient` speaks to either an in-process app or a running
server over ``urllib`` with the same call surface.

Endpoints
---------

``GET /healthz``
    Liveness plus scenario shape (probes, networks, end hour).
``GET /status``
    Uniform cache/registry counters from
    :func:`repro.perf.cache.iter_component_stats`, plus a ``process``
    block: uptime, code fingerprint, peak RSS, recorder stats.
``GET /metrics``
    The ``repro.obs`` registry snapshot (JSON), or the Prometheus text
    exposition with ``?format=prometheus``.
``GET /graph``
    The knowledge graph (nodes + edges, see :mod:`repro.serve.graph`).
``GET /debug/trace``
    The flight recorder: the last N completed request spans
    (``?limit=`` trims to the newest entries).
``GET /debug/slow``
    The slow-query log: structured entries for requests at or above
    the configured threshold.
``POST /query``
    One query object, or ``{"queries": [...]}`` for a coalesced batch.
    Every response echoes a per-request ``trace_id`` (client-supplied
    via a ``"trace_id"`` body key, else freshly minted).
"""

from __future__ import annotations

import json
import os
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs
from urllib.request import Request, urlopen

from repro.obs import get_logger, get_registry, metric_observe, span, telemetry_enabled
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.recorder import FlightRecorder, SlowQueryLog
from repro.obs.trace import Span
from repro.perf.cache import code_fingerprint, iter_component_stats
from repro.perf.timing import RssSampler, current_rss_bytes
from repro.serve.engine import QueryEngine
from repro.serve.queries import query_from_dict, result_to_dict
from repro.serve.registry import ArtifactRegistry
from repro.serve.wire import request_trace_id

_log = get_logger("serve.server")

#: A response document: a JSON-ready dict, or pre-rendered plain text
#: (the Prometheus exposition) served verbatim.
Document = Union[Dict[str, Any], str]


def status_rows() -> List[Dict[str, Any]]:
    """Uniform component-stats rows (the ``/status`` document body)."""
    return [
        {"component": component, "identity": identity, **stats.as_dict()}
        for component, identity, stats in iter_component_stats()
    ]


class ServeApp:
    """The transport-independent serving application for one scenario."""

    def __init__(
        self,
        scenario: Any,
        registry: Optional[ArtifactRegistry] = None,
        key: Optional[str] = None,
        slow_query_ms: float = 250.0,
        flight_recorder: int = 64,
    ) -> None:
        self.scenario = scenario
        self.engine = QueryEngine(scenario, registry=registry, key=key)
        self.recorder = FlightRecorder(capacity=flight_recorder)
        self.slow_log = SlowQueryLog(threshold_ms=slow_query_ms)
        # Unstarted sampler: one manual /proc read per request/status call
        # tracks peak RSS without a thread per app.
        self._rss = RssSampler()
        self._started_monotonic = time.perf_counter()
        self._started_unix = time.time()

    def handle(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Document]:
        """Dispatch one request; returns ``(http status, document)``.

        The document is a JSON-ready dict, except for pre-rendered
        plain-text bodies (``/metrics?format=prometheus``) which come
        back as ``str``.
        """
        path, _, query_string = path.partition("?")
        params = {key: values[-1] for key, values in parse_qs(query_string).items()}
        try:
            if method == "GET":
                return self._get(path, params)
            if method == "POST" and path == "/query":
                return self._query(payload)
            return 404, {"error": f"no route for {method} {path}"}
        except ValueError as exc:
            return 400, {"error": str(exc)}

    def process_info(self) -> Dict[str, Any]:
        """Process vitals correlating recorder entries with process state."""
        self._rss.sample()
        return {
            "pid": os.getpid(),
            "uptime_seconds": round(time.perf_counter() - self._started_monotonic, 3),
            "started_unix": round(self._started_unix, 3),
            "code_fingerprint": code_fingerprint(),
            "peak_rss_bytes": self._rss.peak_bytes,
            "current_rss_bytes": current_rss_bytes(),
            "telemetry_enabled": telemetry_enabled(),
            "flight_recorder": self.recorder.stats(),
            "slow_queries": self.slow_log.stats(),
        }

    def _get(self, path: str, params: Dict[str, str]) -> Tuple[int, Document]:
        if path in ("/", "/healthz"):
            return 200, {
                "status": "ok",
                "probes": len(self.scenario.probes),
                "networks": list(self.scenario.isps),
                "end_hour": self.scenario.end_hour,
                "artifact_key": self.engine.key,
            }
        if path == "/metrics":
            form = params.get("format", "json")
            if form in ("prometheus", "text"):
                return 200, render_prometheus()
            if form == "json":
                return 200, get_registry().snapshot()
            raise ValueError(f"unknown metrics format {form!r}")
        if path == "/status":
            return 200, {"components": status_rows(), "process": self.process_info()}
        if path == "/debug/trace":
            limit = int(params["limit"]) if "limit" in params else None
            return 200, {
                "entries": self.recorder.entries(limit),
                "stats": self.recorder.stats(),
            }
        if path == "/debug/slow":
            limit = int(params["limit"]) if "limit" in params else None
            return 200, {
                "entries": self.slow_log.entries(limit),
                "stats": self.slow_log.stats(),
            }
        if path == "/graph":
            from repro.serve.graph import build_graph

            graph = build_graph(self.scenario)
            return 200, {
                "nodes": graph.nodes,
                "edges": graph.edges,
                "node_counts": graph.node_counts(),
                "edge_counts": graph.edge_counts(),
            }
        return 404, {"error": f"no route for GET {path}"}

    def _query(self, payload: Optional[Dict[str, Any]]) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(payload, dict):
            raise ValueError("POST /query expects a JSON object")
        trace_id = request_trace_id(payload)
        batch = "queries" in payload
        kind = "batch" if batch else str(payload.get("kind", "query"))
        name = f"batch[{len(payload['queries'])}]" if batch else kind
        self._rss.sample()
        status = "ok"
        request_span: Any = None
        start = time.perf_counter()
        try:
            with span(
                "serve/request", endpoint="/query", kind=kind, trace_id=trace_id
            ) as request_span:
                if batch:
                    queries = [query_from_dict(item) for item in payload["queries"]]
                    results = self.engine.run_batch(queries)
                    document = {
                        "results": [result_to_dict(result) for result in results],
                    }
                else:
                    result = self.engine.run(query_from_dict(payload))
                    document = {"result": result_to_dict(result)}
            document["trace_id"] = trace_id
            return 200, document
        except ValueError:
            status = "error"
            raise
        finally:
            elapsed = time.perf_counter() - start
            metric_observe("serve.query.seconds", elapsed, kind=kind)
            spans = (
                [request_span.as_dict()] if isinstance(request_span, Span) else None
            )
            self.recorder.record(
                name, elapsed, trace_id=trace_id, status=status, spans=spans
            )
            self.slow_log.observe(
                name, elapsed, trace_id=trace_id, detail={"kind": kind}
            )


class _Handler(BaseHTTPRequestHandler):
    app: ServeApp  # set by make_server on the subclass

    def _respond(self, status: int, document: Document) -> None:
        if isinstance(document, str):
            body = document.encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(document).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        status, document = self.app.handle("GET", self.path)
        self._respond(status, document)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            self._respond(400, {"error": f"invalid JSON body: {exc}"})
            return
        status, document = self.app.handle("POST", self.path, payload)
        self._respond(status, document)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _log.debug("http " + format % args)


def make_server(app: ServeApp, host: str = "127.0.0.1", port: int = 0) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``host:port``.

    ``port=0`` picks a free port (``server.server_address`` has the
    real one) — what the tests use.
    """
    handler = type("BoundHandler", (_Handler,), {"app": app})
    return ThreadingHTTPServer((host, port), handler)


class ServeClient:
    """One call surface over an in-process app or a remote server.

    Exactly one of ``app`` / ``base_url`` must be given.  The
    in-process form is what the test suite drives; the HTTP form is a
    thin ``urllib`` wrapper returning the same parsed documents.
    """

    def __init__(
        self, app: Optional[ServeApp] = None, base_url: Optional[str] = None
    ) -> None:
        if (app is None) == (base_url is None):
            raise ValueError("ServeClient needs exactly one of app= or base_url=")
        self.app = app
        self.base_url = base_url.rstrip("/") if base_url else None

    def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Document]:
        """Raw ``(status, document)`` for one request.

        Text documents (``/metrics?format=prometheus``) come back as
        ``str``; everything else is the parsed JSON object.
        """
        if self.app is not None:
            return self.app.handle(method, path, payload)
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = Request(
            self.base_url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urlopen(request) as response:
                raw = response.read().decode("utf-8")
                content_type = response.headers.get("Content-Type", "")
                if content_type.startswith("application/json"):
                    return response.status, json.loads(raw)
                return response.status, raw
        except Exception as exc:
            status = getattr(exc, "code", None)
            if status is None:
                raise
            body = exc.read().decode("utf-8")  # type: ignore[attr-defined]
            return int(status), json.loads(body)

    def _expect(self, method: str, path: str, payload=None) -> Dict[str, Any]:
        status, document = self.request(method, path, payload)
        if status != 200:
            raise ValueError(f"{method} {path} failed ({status}): {document.get('error')}")
        return document

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document."""
        return self._expect("GET", "/healthz")

    def metrics(self, format: Optional[str] = None) -> Document:  # noqa: A002
        """The registry snapshot (JSON), or text with ``format="prometheus"``."""
        path = "/metrics" if format is None else f"/metrics?format={format}"
        status, document = self.request("GET", path)
        if status != 200:
            error = document.get("error") if isinstance(document, dict) else document
            raise ValueError(f"GET {path} failed ({status}): {error}")
        return document

    def status(self) -> List[Dict[str, Any]]:
        """Uniform component-stats rows."""
        return self._expect("GET", "/status")["components"]

    def process_info(self) -> Dict[str, Any]:
        """The ``/status`` process block (uptime, fingerprint, peak RSS)."""
        return self._expect("GET", "/status")["process"]

    def debug_trace(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The flight-recorder document (``limit`` keeps the newest)."""
        path = "/debug/trace" if limit is None else f"/debug/trace?limit={limit}"
        return self._expect("GET", path)

    def debug_slow(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The slow-query-log document."""
        path = "/debug/slow" if limit is None else f"/debug/slow?limit={limit}"
        return self._expect("GET", path)

    def graph(self) -> Dict[str, Any]:
        """The knowledge-graph document."""
        return self._expect("GET", "/graph")

    def query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one wire-form query."""
        return self._expect("POST", "/query", payload)["result"]

    def query_batch(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Answer a coalesced batch of wire-form queries."""
        return self._expect("POST", "/query", {"queries": payloads})["results"]


__all__ = ["ServeApp", "ServeClient", "make_server", "status_rows"]
