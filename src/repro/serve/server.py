"""Stdlib-only serving front-end: JSON-over-HTTP plus an in-process client.

:class:`ServeApp` is the transport-free application object — it maps
``(method, path, payload)`` to ``(status, document)`` so tests can
exercise the full API without sockets.  :func:`make_server` wraps an
app in a ``http.server`` ``ThreadingHTTPServer``;
:class:`ServeClient` speaks to either an in-process app or a running
server over ``urllib`` with the same call surface.

Endpoints
---------

``GET /healthz``
    Liveness plus scenario shape (probes, networks, end hour).
``GET /status``
    Uniform cache/registry counters from
    :func:`repro.perf.cache.iter_component_stats`.
``GET /metrics``
    The ``repro.obs`` registry snapshot — the built-in dashboard.
``GET /graph``
    The knowledge graph (nodes + edges, see :mod:`repro.serve.graph`).
``POST /query``
    One query object, or ``{"queries": [...]}`` for a coalesced batch.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.request import Request, urlopen

from repro.obs import get_logger, get_registry
from repro.perf.cache import iter_component_stats
from repro.serve.engine import QueryEngine
from repro.serve.queries import query_from_dict, result_to_dict
from repro.serve.registry import ArtifactRegistry

_log = get_logger("serve.server")


def status_rows() -> List[Dict[str, Any]]:
    """Uniform component-stats rows (the ``/status`` document body)."""
    return [
        {"component": component, "identity": identity, **stats.as_dict()}
        for component, identity, stats in iter_component_stats()
    ]


class ServeApp:
    """The transport-independent serving application for one scenario."""

    def __init__(
        self,
        scenario: Any,
        registry: Optional[ArtifactRegistry] = None,
        key: Optional[str] = None,
    ) -> None:
        self.scenario = scenario
        self.engine = QueryEngine(scenario, registry=registry, key=key)

    def handle(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch one request; returns ``(http status, json document)``."""
        try:
            if method == "GET":
                return self._get(path)
            if method == "POST" and path == "/query":
                return self._query(payload)
            return 404, {"error": f"no route for {method} {path}"}
        except ValueError as exc:
            return 400, {"error": str(exc)}

    def _get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        if path in ("/", "/healthz"):
            return 200, {
                "status": "ok",
                "probes": len(self.scenario.probes),
                "networks": list(self.scenario.isps),
                "end_hour": self.scenario.end_hour,
                "artifact_key": self.engine.key,
            }
        if path == "/metrics":
            return 200, get_registry().snapshot()
        if path == "/status":
            return 200, {"components": status_rows()}
        if path == "/graph":
            from repro.serve.graph import build_graph

            graph = build_graph(self.scenario)
            return 200, {
                "nodes": graph.nodes,
                "edges": graph.edges,
                "node_counts": graph.node_counts(),
                "edge_counts": graph.edge_counts(),
            }
        return 404, {"error": f"no route for GET {path}"}

    def _query(self, payload: Optional[Dict[str, Any]]) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(payload, dict):
            raise ValueError("POST /query expects a JSON object")
        if "queries" in payload:
            queries = [query_from_dict(item) for item in payload["queries"]]
            results = self.engine.run_batch(queries)
            return 200, {"results": [result_to_dict(result) for result in results]}
        return 200, {"result": result_to_dict(self.engine.run(query_from_dict(payload)))}


class _Handler(BaseHTTPRequestHandler):
    app: ServeApp  # set by make_server on the subclass

    def _respond(self, status: int, document: Dict[str, Any]) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        status, document = self.app.handle("GET", self.path)
        self._respond(status, document)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            self._respond(400, {"error": f"invalid JSON body: {exc}"})
            return
        status, document = self.app.handle("POST", self.path, payload)
        self._respond(status, document)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _log.debug("http " + format % args)


def make_server(app: ServeApp, host: str = "127.0.0.1", port: int = 0) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``host:port``.

    ``port=0`` picks a free port (``server.server_address`` has the
    real one) — what the tests use.
    """
    handler = type("BoundHandler", (_Handler,), {"app": app})
    return ThreadingHTTPServer((host, port), handler)


class ServeClient:
    """One call surface over an in-process app or a remote server.

    Exactly one of ``app`` / ``base_url`` must be given.  The
    in-process form is what the test suite drives; the HTTP form is a
    thin ``urllib`` wrapper returning the same parsed documents.
    """

    def __init__(
        self, app: Optional[ServeApp] = None, base_url: Optional[str] = None
    ) -> None:
        if (app is None) == (base_url is None):
            raise ValueError("ServeClient needs exactly one of app= or base_url=")
        self.app = app
        self.base_url = base_url.rstrip("/") if base_url else None

    def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Raw ``(status, document)`` for one request."""
        if self.app is not None:
            return self.app.handle(method, path, payload)
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = Request(
            self.base_url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urlopen(request) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except Exception as exc:
            status = getattr(exc, "code", None)
            if status is None:
                raise
            body = exc.read().decode("utf-8")  # type: ignore[attr-defined]
            return int(status), json.loads(body)

    def _expect(self, method: str, path: str, payload=None) -> Dict[str, Any]:
        status, document = self.request(method, path, payload)
        if status != 200:
            raise ValueError(f"{method} {path} failed ({status}): {document.get('error')}")
        return document

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document."""
        return self._expect("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """The ``repro.obs`` registry snapshot."""
        return self._expect("GET", "/metrics")

    def status(self) -> List[Dict[str, Any]]:
        """Uniform component-stats rows."""
        return self._expect("GET", "/status")["components"]

    def graph(self) -> Dict[str, Any]:
        """The knowledge-graph document."""
        return self._expect("GET", "/graph")

    def query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one wire-form query."""
        return self._expect("POST", "/query", payload)["result"]

    def query_batch(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Answer a coalesced batch of wire-form queries."""
        return self._expect("POST", "/query", {"queries": payloads})["results"]


__all__ = ["ServeApp", "ServeClient", "make_server", "status_rows"]
