"""Typed queries, responses and the shared scoring helpers.

Four query families cover the paper's serving surface:

* **stability** — how stable is this /24 (IPv4) or /64 (IPv6)?  Counts
  member probes, assignment changes touching the prefix, observation
  hours, a changes-per-probe-year rate and the owning AS's renumbering
  period, then buckets the prefix into a stability class.
* **lifetime** — expected /64 assignment lifetime for an AS, from the
  completed-duration CDF behind Figure 2.
* **dualstack** — dual-stack coverage of a prefix: what fraction of the
  probes observed inside it run both families?
* **hitlist** — a scan hitlist for a target prefix via
  :func:`repro.core.hitlist.plan_rescan` over the member probes'
  observation histories.

Every numeric in a response is produced by the helpers at the bottom of
this module from plain Python ints/lists — the batched mask engine and
the direct per-probe reference feed them identical populations, which
is what makes served answers bit-identical to the direct computation
(enforced by :func:`repro.perf.verify.serve_diffs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.ip import IPPrefix, IPv6Prefix, parse_prefix
from repro.netsim.clock import HOURS_PER_YEAR
from repro.serve.wire import jsonable

#: changes/probe-year at or below which a changing prefix is "moderate"
#: (roughly one assignment change every two weeks).
MODERATE_RATE_THRESHOLD = 26.0


@dataclass(frozen=True)
class StabilityQuery:
    """How stable is ``prefix`` (a v4 /1../32 or v6 /1../64)?"""

    prefix: IPPrefix


@dataclass(frozen=True)
class LifetimeQuery:
    """Expected /64 assignment lifetime for the AS named ``network``."""

    network: str


@dataclass(frozen=True)
class DualStackQuery:
    """Dual-stack coverage of the probes observed inside ``prefix``."""

    prefix: IPPrefix


@dataclass(frozen=True)
class HitlistQuery:
    """Scan hitlist of at most ``budget`` /64s for ``prefix`` (v6)."""

    prefix: IPPrefix
    budget: int = 64
    seed: int = 0


Query = Union[StabilityQuery, LifetimeQuery, DualStackQuery, HitlistQuery]


@dataclass
class StabilityResult:
    """Answer to a :class:`StabilityQuery`."""

    prefix: IPPrefix
    family: int
    asn: Optional[int]
    probes_observed: int
    changes: int
    observed_hours: int
    changes_per_probe_year: float
    period_hours: Optional[float]
    stability_class: str


@dataclass
class LifetimeResult:
    """Answer to a :class:`LifetimeQuery`."""

    network: str
    asn: int
    probes: int
    durations: int
    mean_hours: Optional[float]
    median_hours: Optional[float]


@dataclass
class DualStackResult:
    """Answer to a :class:`DualStackQuery`."""

    prefix: IPPrefix
    family: int
    probes_observed: int
    dual_stack_probes: int
    dual_stack_fraction: float


@dataclass
class HitlistResult:
    """Answer to a :class:`HitlistQuery`."""

    prefix: IPPrefix
    probes_contributing: int
    pool: Optional[IPPrefix]
    delegation_plen: Optional[int]
    budget: int
    candidates: Tuple[IPv6Prefix, ...]


Result = Union[StabilityResult, LifetimeResult, DualStackResult, HitlistResult]

QUERY_KINDS: Dict[str, Type] = {
    "stability": StabilityQuery,
    "lifetime": LifetimeQuery,
    "dualstack": DualStackQuery,
    "hitlist": HitlistQuery,
}

_KIND_OF_QUERY = {cls: kind for kind, cls in QUERY_KINDS.items()}
_KIND_OF_RESULT = {
    StabilityResult: "stability",
    LifetimeResult: "lifetime",
    DualStackResult: "dualstack",
    HitlistResult: "hitlist",
}


def validate_query(query: Query) -> None:
    """Raise ``ValueError`` for a structurally invalid query."""
    prefix = getattr(query, "prefix", None)
    if prefix is not None:
        if prefix.plen < 1:
            raise ValueError(f"prefix {prefix} too short to query")
        if prefix.family == 6 and prefix.plen > 64:
            raise ValueError(f"v6 queries address /64 networks, got {prefix}")
    if isinstance(query, HitlistQuery):
        if prefix is None or prefix.family != 6:
            raise ValueError("hitlist queries take an IPv6 prefix")
        if query.budget < 1:
            raise ValueError(f"hitlist budget must be >= 1, got {query.budget}")
    if isinstance(query, LifetimeQuery) and not query.network:
        raise ValueError("lifetime queries need a network name")


def query_from_dict(payload: Dict[str, Any]) -> Query:
    """Build a query from its wire form (``{"kind": ..., ...}``)."""
    if not isinstance(payload, dict):
        raise ValueError(f"query payload must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in QUERY_KINDS:
        raise ValueError(f"unknown query kind {kind!r} (expected one of {sorted(QUERY_KINDS)})")
    if kind == "stability":
        query: Query = StabilityQuery(prefix=parse_prefix(str(payload["prefix"])))
    elif kind == "lifetime":
        query = LifetimeQuery(network=str(payload["network"]))
    elif kind == "dualstack":
        query = DualStackQuery(prefix=parse_prefix(str(payload["prefix"])))
    else:
        query = HitlistQuery(
            prefix=parse_prefix(str(payload["prefix"])),
            budget=int(payload.get("budget", 64)),
            seed=int(payload.get("seed", 0)),
        )
    validate_query(query)
    return query


def query_to_dict(query: Query) -> Dict[str, Any]:
    """The wire form of ``query`` (inverse of :func:`query_from_dict`)."""
    kind = _KIND_OF_QUERY.get(type(query))
    if kind is None:
        raise ValueError(f"not a query: {query!r}")
    payload = jsonable(query)
    payload["kind"] = kind
    return payload


def result_to_dict(result: Result) -> Dict[str, Any]:
    """The wire form of a query result."""
    kind = _KIND_OF_RESULT.get(type(result))
    if kind is None:
        raise ValueError(f"not a result: {result!r}")
    payload = jsonable(result)
    payload["kind"] = kind
    return payload


def change_rate_per_probe_year(changes: int, observed_hours: int) -> float:
    """Assignment changes per probe-year of observation.

    Both the batched and the direct paths call this with the same
    integer pair, so the float result is bit-identical by construction.
    """
    if observed_hours <= 0:
        return 0.0
    return changes / (observed_hours / HOURS_PER_YEAR)


def classify_stability(
    changes: int,
    probes_observed: int,
    rate: float,
    period_hours: Optional[float],
) -> str:
    """Stability class of a prefix (the graph's ``stability-class`` nodes)."""
    if probes_observed == 0:
        return "unobserved"
    if changes == 0:
        return "stable"
    if period_hours is not None:
        return "periodic"
    if rate <= MODERATE_RATE_THRESHOLD:
        return "moderate"
    return "dynamic"


def duration_summary(
    hours: Sequence[float],
) -> Tuple[Optional[float], Optional[float]]:
    """``(mean, median)`` of a duration population, ``(None, None)`` if empty.

    Uses plain ``sum`` over the given order — callers must present the
    population in probe-major duration order for bit-identical results.
    """
    values: List[float] = [float(v) for v in hours]
    if not values:
        return None, None
    mean = sum(values) / len(values)
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    return mean, median


def fraction(numerator: int, denominator: int) -> float:
    """``numerator / denominator`` with an exact 0.0 for an empty base."""
    if denominator <= 0:
        return 0.0
    return numerator / denominator


__all__ = [
    "DualStackQuery",
    "DualStackResult",
    "HitlistQuery",
    "HitlistResult",
    "LifetimeQuery",
    "LifetimeResult",
    "MODERATE_RATE_THRESHOLD",
    "QUERY_KINDS",
    "Query",
    "Result",
    "StabilityQuery",
    "StabilityResult",
    "change_rate_per_probe_year",
    "classify_stability",
    "duration_summary",
    "fraction",
    "query_from_dict",
    "query_to_dict",
    "result_to_dict",
    "validate_query",
]
