"""The batched query engine over registry-cached analysis artifacts.

One scenario's serving artifact is its global column pack plus the
fused per-probe stats (:class:`repro.core.fused.FusedProbeStats`) —
everything a query needs is a boolean-mask reduction over those arrays.
The engine keeps the artifact in an :class:`ArtifactRegistry` under the
scenario's content address, so warm queries never re-run analysis
(``serve.analysis.computes`` counts cold builds; tests pin it at one).

Batching: :meth:`QueryEngine.run_batch` coalesces all prefix-addressed
queries against the same artifact into **one mask pass per (family,
prefix-length) group** — runs and change events are keyed by their
top ``plen`` bits once, then matched against every queried prefix via
a single ``searchsorted``, instead of one full scan per query.  The
answers are assembled from the same integer populations either way, so
batched, sequential and direct results are bit-identical
(:func:`repro.perf.verify.serve_diffs`).

:func:`compute_direct` is the independent reference: a pure-Python walk
over the sanitized probes through :mod:`repro.core.report` /
:func:`repro.workloads.periodicity_for_scenario` with ``engine="py"``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less interpreters
    np = None  # type: ignore[assignment]

from repro.core.changes import v6_runs_to_prefix_runs
from repro.core.hitlist import plan_rescan
from repro.core.report import probe_v4_changes, probe_v6_changes
from repro.ip import IPPrefix, IPv6Prefix
from repro.ip.prefix import address_prefix
from repro.obs import get_logger, metric_inc, metric_observe, span
from repro.serve.queries import (
    DualStackQuery,
    DualStackResult,
    HitlistQuery,
    HitlistResult,
    LifetimeQuery,
    LifetimeResult,
    Query,
    Result,
    StabilityQuery,
    StabilityResult,
    change_rate_per_probe_year,
    classify_stability,
    duration_summary,
    fraction,
    validate_query,
)
from repro.serve.registry import ArtifactRegistry, scenario_artifact_key

_log = get_logger("serve.engine")


@dataclass
class ScenarioArtifact:
    """Everything the engine serves one scenario from.

    ``columns``/``stats`` are ``None`` on NumPy-less interpreters — the
    engine then falls back to :func:`compute_direct` per query (same
    answers, no batching).
    """

    key: str
    scenario: Any
    columns: Optional[Any]  # repro.core.analysis_np.ProbeColumns
    stats: Optional[Any]  # repro.core.fused.FusedProbeStats
    name_by_asn: Dict[int, str]
    asn_by_name: Dict[str, int]
    nbytes: int
    #: per-AS ``(v4 NDS, v6)`` period memo shared across batches.
    period_cache: Dict[int, Tuple[Optional[float], Optional[float]]] = field(
        default_factory=dict, repr=False
    )

    def periods_for(self, asn: int) -> Tuple[Optional[float], Optional[float]]:
        """Memoized canonical-knob renumbering periods of ``asn``."""
        cached = self.period_cache.get(asn)
        if cached is None:
            from repro.core.fused import network_periods_from_stats

            sel = self.stats.asn == asn
            cached = self.period_cache[asn] = network_periods_from_stats(
                self.stats, sel
            )
        return cached


def _array_bytes(obj: Any) -> int:
    """Recursive ``nbytes`` total of a dataclass-of-arrays tree."""
    if obj is None:
        return 0
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return sum(
            _array_bytes(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if not f.name.startswith("_")
        )
    return 0


def build_scenario_artifact(scenario: Any, key: str) -> ScenarioArtifact:
    """Assemble the serving artifact of ``scenario`` (the cold path)."""
    columns = scenario.analysis_columns(None, engine="fused")
    stats = None
    if columns is not None:
        from repro.core.fused import fused_probe_stats

        stats = fused_probe_stats(columns)
    nbytes = _array_bytes(stats)
    if columns is not None:
        for cols in (columns.v4(), columns.v6(), columns.v6_prefix()):
            nbytes += _array_bytes(cols)
    return ScenarioArtifact(
        key=key,
        scenario=scenario,
        columns=columns,
        stats=stats,
        name_by_asn={isp.asn: name for name, isp in scenario.isps.items()},
        asn_by_name={name: isp.asn for name, isp in scenario.isps.items()},
        nbytes=max(1, nbytes),
    )


def _query_prefix_key(prefix: IPPrefix) -> int:
    """Top ``plen`` bits of the prefix, aligned with the run-key shift."""
    if prefix.family == 4:
        return int(prefix.network) >> (32 - prefix.plen)
    return int(prefix.network) >> (128 - prefix.plen)


class QueryEngine:
    """Answers typed queries for one scenario from cached artifacts."""

    def __init__(
        self,
        scenario: Any,
        registry: Optional[ArtifactRegistry] = None,
        key: Optional[str] = None,
    ) -> None:
        self.scenario = scenario
        self.registry = registry if registry is not None else ArtifactRegistry()
        self.key = key or scenario_artifact_key(scenario)

    def artifact(self) -> ScenarioArtifact:
        """The serving artifact — registry hit, or one cold build."""
        cached = self.registry.get(self.key)
        if cached is not None:
            return cached
        with span("serve/artifact", key=self.key[-12:]):
            artifact = build_scenario_artifact(self.scenario, self.key)
        metric_inc("serve.analysis.computes")
        self.registry.put(self.key, artifact, artifact.nbytes)
        return artifact

    def run(self, query: Query) -> Result:
        """Answer one query (a batch of one)."""
        return self.run_batch([query])[0]

    def run_batch(self, queries: Sequence[Query]) -> List[Result]:
        """Answer ``queries`` in order, coalescing same-artifact work."""
        queries = list(queries)
        for query in queries:
            validate_query(query)
        metric_inc("serve.batches")
        start = time.perf_counter()
        try:
            artifact = self.artifact()
            if artifact.stats is None:
                return [compute_direct(self.scenario, query) for query in queries]
            results: List[Optional[Result]] = [None] * len(queries)
            prefix_groups: Dict[Tuple[int, int], List[int]] = {}
            with span("serve/batch", queries=len(queries)):
                for i, query in enumerate(queries):
                    metric_inc("serve.queries", kind=type(query).__name__)
                    if isinstance(query, LifetimeQuery):
                        results[i] = self._lifetime(artifact, query)
                    else:
                        prefix = query.prefix
                        prefix_groups.setdefault(
                            (prefix.family, prefix.plen), []
                        ).append(i)
                for (family, plen), idxs in prefix_groups.items():
                    self._prefix_group(artifact, queries, results, family, plen, idxs)
            return results  # type: ignore[return-value]
        finally:
            metric_observe("serve.batch.seconds", time.perf_counter() - start)

    # -- per-family answer assembly ------------------------------------

    def _lifetime(self, artifact: ScenarioArtifact, query: LifetimeQuery) -> LifetimeResult:
        asn = artifact.asn_by_name.get(query.network)
        if asn is None:
            raise ValueError(f"unknown network {query.network!r}")
        stats = artifact.stats
        sel = stats.asn == asn
        hours = stats.v6_duration_hours[sel[stats.v6_durations.probe_index]].tolist()
        mean, median = duration_summary(hours)
        return LifetimeResult(
            network=query.network,
            asn=asn,
            probes=int(np.count_nonzero(sel)),
            durations=len(hours),
            mean_hours=mean,
            median_hours=median,
        )

    def _prefix_group(
        self,
        artifact: ScenarioArtifact,
        queries: Sequence[Query],
        results: List[Optional[Result]],
        family: int,
        plen: int,
        idxs: List[int],
    ) -> None:
        """One mask pass answering every /plen query of one family."""
        stats = artifact.stats
        columns = artifact.columns
        cols = columns.v4() if family == 4 else columns.v6_prefix()
        shift = np.uint64((32 if family == 4 else 64) - plen)
        run_keys = (cols.value_lo if family == 4 else cols.value_hi) >> shift
        qkeys = np.array(
            [_query_prefix_key(queries[i].prefix) for i in idxs], dtype=np.uint64
        )
        ukeys, inverse = np.unique(qkeys, return_inverse=True)
        last = len(ukeys) - 1

        pos = np.minimum(np.searchsorted(ukeys, run_keys), last)
        run_hit = ukeys[pos] == run_keys
        hit_idx = np.flatnonzero(run_hit)  # ascending flat run indices
        hit_group = pos[hit_idx]
        hit_probe = cols.probe_of_run()[hit_idx]

        changes = stats.v4_changes if family == 4 else stats.v6_changes
        old_keys = (changes.old_lo if family == 4 else changes.old_hi) >> shift
        new_keys = (changes.new_lo if family == 4 else changes.new_hi) >> shift
        opos = np.minimum(np.searchsorted(ukeys, old_keys), last)
        npos = np.minimum(np.searchsorted(ukeys, new_keys), last)
        old_group = np.where(ukeys[opos] == old_keys, opos, -1)
        new_group = np.where(ukeys[npos] == new_keys, npos, -1)
        # A change touches a prefix when either endpoint lies inside it,
        # counted once even when both do.
        change_counts = np.bincount(
            old_group[old_group >= 0], minlength=len(ukeys)
        ) + np.bincount(
            new_group[(new_group >= 0) & (new_group != old_group)],
            minlength=len(ukeys),
        )

        spans = cols.last[hit_idx] - cols.first[hit_idx] + 1
        for j, i in enumerate(idxs):
            group = inverse[j]
            in_group = hit_group == group
            member_probes = np.unique(hit_probe[in_group])
            query = queries[i]
            if isinstance(query, HitlistQuery):
                results[i] = self._hitlist(
                    artifact, cols, query, member_probes
                )
                continue
            probes_observed = len(member_probes)
            if isinstance(query, DualStackQuery):
                dual = int(np.count_nonzero(stats.dual[member_probes]))
                results[i] = DualStackResult(
                    prefix=query.prefix,
                    family=family,
                    probes_observed=probes_observed,
                    dual_stack_probes=dual,
                    dual_stack_fraction=fraction(dual, probes_observed),
                )
                continue
            n_changes = int(change_counts[group])
            observed_hours = int(spans[in_group].sum())
            asn = int(stats.asn[member_probes[0]]) if probes_observed else None
            period = None
            if asn is not None:
                v4_period, v6_period = artifact.periods_for(asn)
                period = v4_period if family == 4 else v6_period
            rate = change_rate_per_probe_year(n_changes, observed_hours)
            results[i] = StabilityResult(
                prefix=query.prefix,
                family=family,
                asn=asn,
                probes_observed=probes_observed,
                changes=n_changes,
                observed_hours=observed_hours,
                changes_per_probe_year=rate,
                period_hours=period,
                stability_class=classify_stability(
                    n_changes, probes_observed, rate, period
                ),
            )

    def _hitlist(
        self,
        artifact: ScenarioArtifact,
        cols: Any,
        query: HitlistQuery,
        member_probes: "np.ndarray",
    ) -> HitlistResult:
        """Rescan plan from the member probes' full /64 histories."""
        if len(member_probes) == 0:
            return HitlistResult(
                prefix=query.prefix,
                probes_contributing=0,
                pool=None,
                delegation_plen=None,
                budget=query.budget,
                candidates=(),
            )
        member_flags = np.zeros(artifact.stats.n_probes, dtype=bool)
        member_flags[member_probes] = True
        history_runs = np.flatnonzero(member_flags[cols.probe_of_run()])
        history = [
            IPv6Prefix(int(hi) << 64, 64) for hi in cols.value_hi[history_runs]
        ]
        plan = plan_rescan(history, query.budget, seed=query.seed)
        return HitlistResult(
            prefix=query.prefix,
            probes_contributing=int(len(member_probes)),
            pool=plan.pool,
            delegation_plen=plan.delegation_plen,
            budget=query.budget,
            candidates=tuple(plan.candidates),
        )


# ---------------------------------------------------------------------------
# Direct reference (the parity oracle)
# ---------------------------------------------------------------------------


def _member_runs(probe: Any, prefix: IPPrefix) -> List[Any]:
    """The probe's runs (v4 raw, v6 /64-rekeyed) lying inside ``prefix``."""
    if prefix.family == 4:
        return [run for run in probe.v4_runs if prefix.contains_address(run.value)]
    return [
        run
        for run in v6_runs_to_prefix_runs(probe.v6_runs, 64)
        if prefix.contains_prefix(run.value)
    ]


def _direct_periods(
    scenario: Any, name: Optional[str]
) -> Tuple[Optional[float], Optional[float]]:
    from repro.workloads import periodicity_for_scenario

    if name is None:
        return None, None
    v4_periods, v6_periods = periodicity_for_scenario(scenario, engine="py")
    return v4_periods.get(name), v6_periods.get(name)


def compute_direct(scenario: Any, query: Query) -> Result:
    """Answer ``query`` with the pure-Python per-probe reference walk.

    Independent of the batched mask engine — this is what
    :func:`repro.perf.verify.serve_diffs` compares served answers to.
    """
    validate_query(query)
    name_by_asn = {isp.asn: name for name, isp in scenario.isps.items()}
    if isinstance(query, LifetimeQuery):
        from repro.core.report import as_durations

        asn = scenario.isps[query.network].asn if query.network in scenario.isps else None
        if asn is None:
            raise ValueError(f"unknown network {query.network!r}")
        probes = scenario.probes_in(asn)
        hours = as_durations(probes, engine="py").v6
        mean, median = duration_summary(hours)
        return LifetimeResult(
            network=query.network,
            asn=asn,
            probes=len(probes),
            durations=len(hours),
            mean_hours=mean,
            median_hours=median,
        )

    prefix = query.prefix
    family = prefix.family
    members: List[int] = []
    observed_hours = 0
    n_changes = 0
    history: List[IPv6Prefix] = []
    for index, probe in enumerate(scenario.probes):
        inside = _member_runs(probe, prefix)
        if inside:
            members.append(index)
            observed_hours += sum(run.last - run.first + 1 for run in inside)
            if family == 6:
                history.extend(
                    run.value for run in v6_runs_to_prefix_runs(probe.v6_runs, 64)
                )
        if isinstance(query, StabilityQuery):
            events = (
                probe_v4_changes(probe)
                if family == 4
                else probe_v6_changes(probe, 64)
            )
            contains = (
                prefix.contains_address if family == 4 else prefix.contains_prefix
            )
            n_changes += sum(
                1
                for event in events
                if contains(event.old_value) or contains(event.new_value)
            )

    if isinstance(query, HitlistQuery):
        if not members:
            return HitlistResult(
                prefix=prefix,
                probes_contributing=0,
                pool=None,
                delegation_plen=None,
                budget=query.budget,
                candidates=(),
            )
        plan = plan_rescan(history, query.budget, seed=query.seed)
        return HitlistResult(
            prefix=prefix,
            probes_contributing=len(members),
            pool=plan.pool,
            delegation_plen=plan.delegation_plen,
            budget=query.budget,
            candidates=tuple(plan.candidates),
        )

    if isinstance(query, DualStackQuery):
        dual = sum(1 for index in members if scenario.probes[index].dual_stack)
        return DualStackResult(
            prefix=prefix,
            family=family,
            probes_observed=len(members),
            dual_stack_probes=dual,
            dual_stack_fraction=fraction(dual, len(members)),
        )

    asn = scenario.probes[members[0]].asn if members else None
    v4_period, v6_period = _direct_periods(
        scenario, name_by_asn.get(asn) if asn is not None else None
    )
    period = v4_period if family == 4 else v6_period
    rate = change_rate_per_probe_year(n_changes, observed_hours)
    return StabilityResult(
        prefix=prefix,
        family=family,
        asn=asn,
        probes_observed=len(members),
        changes=n_changes,
        observed_hours=observed_hours,
        changes_per_probe_year=rate,
        period_hours=period,
        stability_class=classify_stability(n_changes, len(members), rate, period),
    )


def observed_prefixes(
    scenario: Any,
    family: int,
    plen: int,
    limit: Optional[int] = None,
) -> List[IPPrefix]:
    """Distinct /``plen`` prefixes observed in the scenario's runs.

    First-seen order over the probe-major run walk — deterministic, so
    benchmarks and examples can harvest stable query targets.
    """
    seen: Dict[IPPrefix, None] = {}
    for probe in scenario.probes:
        if family == 4:
            values: Iterable[IPPrefix] = (
                address_prefix(run.value, plen) for run in probe.v4_runs
            )
        else:
            values = (
                run.value.supernet(plen)
                for run in v6_runs_to_prefix_runs(probe.v6_runs, 64)
            )
        for value in values:
            seen.setdefault(value, None)
            if limit is not None and len(seen) >= limit:
                return list(seen)
    return list(seen)


__all__ = [
    "QueryEngine",
    "ScenarioArtifact",
    "build_scenario_artifact",
    "compute_direct",
    "observed_prefixes",
]
