"""``repro.serve`` — the queryable address-dynamics serving layer.

Turns the pipeline's precomputed artifacts into a query service:

* :mod:`repro.serve.registry` — content-addressed LRU artifact registry;
* :mod:`repro.serve.queries` — typed query/response dataclasses and the
  shared scoring helpers that make served answers bit-identical to the
  direct computation;
* :mod:`repro.serve.engine` — the batched mask-pass query engine and
  its pure-Python reference :func:`~repro.serve.engine.compute_direct`;
* :mod:`repro.serve.graph` — typed node/edge knowledge-graph export;
* :mod:`repro.serve.server` — stdlib HTTP front-end + in-process client;
* :mod:`repro.serve.wire` — JSON wire helpers shared with the CLI.

Parity with :func:`repro.workloads.analyze_atlas_scenario` is enforced
by :func:`repro.perf.verify.serve_diffs`.
"""

from repro.serve.engine import (
    QueryEngine,
    ScenarioArtifact,
    build_scenario_artifact,
    compute_direct,
    observed_prefixes,
)
from repro.serve.graph import KnowledgeGraph, build_graph, load_graph, write_graph
from repro.serve.queries import (
    DualStackQuery,
    DualStackResult,
    HitlistQuery,
    HitlistResult,
    LifetimeQuery,
    LifetimeResult,
    StabilityQuery,
    StabilityResult,
    query_from_dict,
    query_to_dict,
    result_to_dict,
)
from repro.serve.registry import (
    ArtifactRegistry,
    checkpoint_artifact_key,
    scenario_artifact_key,
    store_artifact_key,
)
from repro.serve.server import ServeApp, ServeClient, make_server, status_rows
from repro.serve.wire import jsonable, report_payload, write_json

__all__ = [
    "ArtifactRegistry",
    "DualStackQuery",
    "DualStackResult",
    "HitlistQuery",
    "HitlistResult",
    "KnowledgeGraph",
    "LifetimeQuery",
    "LifetimeResult",
    "QueryEngine",
    "ScenarioArtifact",
    "ServeApp",
    "ServeClient",
    "StabilityQuery",
    "StabilityResult",
    "build_graph",
    "build_scenario_artifact",
    "checkpoint_artifact_key",
    "compute_direct",
    "jsonable",
    "load_graph",
    "make_server",
    "observed_prefixes",
    "query_from_dict",
    "query_to_dict",
    "report_payload",
    "result_to_dict",
    "scenario_artifact_key",
    "status_rows",
    "store_artifact_key",
    "write_graph",
    "write_json",
]
