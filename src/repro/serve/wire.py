"""JSON wire format shared by ``repro report --json`` and the serve API.

The serving layer and the CLI export the same artifact payloads, so the
serialization rules live here once: dataclasses become objects keyed by
field name, address/prefix types become their canonical string form, and
NumPy scalars (which leak out of the columnar engines) collapse to plain
Python numbers.  Everything the helpers emit round-trips through
``json.dumps`` untouched.
"""

from __future__ import annotations

import json
import re
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional

#: Wire shape of a trace id: 8-32 lowercase hex chars (the tracer mints
#: 16; foreign callers may propagate their own width).
_TRACE_ID = re.compile(r"^[0-9a-f]{8,32}$")


def request_trace_id(payload: Optional[Dict[str, Any]]) -> str:
    """The trace id of one ``POST /query`` request.

    A client may propagate its own id via a ``"trace_id"`` key in the
    request body (ignored by :func:`repro.serve.queries.query_from_dict`,
    so it rides alongside the query fields); anything absent or
    malformed gets a freshly minted id.  The id is echoed in the
    response document and keys the flight-recorder / slow-query-log
    entries, so one id follows the request end to end.
    """
    from repro.obs.trace import new_trace_id

    supplied = (payload or {}).get("trace_id")
    if isinstance(supplied, str) and _TRACE_ID.match(supplied):
        return supplied
    return new_trace_id()


def jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-encodable builtins.

    Dataclasses map to ``{field: value}`` objects, mappings and
    sequences recurse, NumPy scalars unwrap via ``.item()``, and
    anything else (``IPPrefix``, ``IPv4Address``, ``Path``...) falls
    back to ``str`` — the canonical text form every parser in
    :mod:`repro.io` already accepts.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonable(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        try:
            ordered = sorted(value)
        except TypeError:
            ordered = list(value)
        return [jsonable(item) for item in ordered]
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        try:
            return jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


def report_payload(
    engine: str,
    table1: Dict[str, Any],
    table2: Dict[str, Any],
    v4_periods: Dict[str, float],
    v6_periods: Dict[str, float],
    scenario: Optional[Any] = None,
) -> Dict[str, Any]:
    """The machine-readable ``repro report`` document.

    ``table1``/``table2`` map AS name to the row dataclasses of
    :mod:`repro.core.report`; the scenario (when given) contributes the
    run parameters so a payload is self-describing.
    """
    payload: Dict[str, Any] = {
        "format": "repro-report/1",
        "engine": engine,
        "table1": jsonable(table1),
        "table2": jsonable(table2),
        "periodicity": {
            "v4": jsonable(v4_periods),
            "v6": jsonable(v6_periods),
        },
    }
    if scenario is not None:
        payload["scenario"] = {
            "networks": len(scenario.isps),
            "probes": len(scenario.probes),
            "end_hour": scenario.end_hour,
        }
    return payload


def write_json(payload: Dict[str, Any], path: Path) -> Path:
    """Write ``payload`` (already jsonable) to ``path``, pretty-printed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


__all__ = ["jsonable", "report_payload", "request_trace_id", "write_json"]
