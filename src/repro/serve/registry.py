"""Size-bounded LRU registry of analysis artifacts.

Serving answers without re-running analysis means keeping the expensive
intermediates — packed columns, fused stats, graph snapshots — alive
between queries.  The registry indexes them by the repo's existing
content-addressed identities (scenario-cache fingerprints, triple-store
digests, checkpoint keys) behind a byte-budgeted LRU: a registry key is
a *content* address, so a hit is always safe to reuse and eviction only
ever costs recomputation.

Counters follow the shared :class:`repro.perf.cache.CacheStats`
protocol and every live registry reports through
:func:`repro.perf.cache.iter_component_stats`; the same events also
feed ``repro.obs`` (``serve.registry.hits`` / ``.misses`` /
``.evictions`` and the ``serve.registry.bytes`` gauge) when telemetry
is enabled.
"""

from __future__ import annotations

import hashlib
import pickle
import weakref
from collections import OrderedDict
from typing import Any, Iterator, Optional, Tuple

from repro.obs import metric_gauge, metric_inc
from repro.perf.cache import (
    CacheStats,
    ScenarioCache,
    code_fingerprint,
    register_stats_provider,
)

#: Default byte budget — enough for a handful of bench-scale artifacts.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024

_registries: "weakref.WeakSet[ArtifactRegistry]" = weakref.WeakSet()


@register_stats_provider
def _registry_stats_rows():
    for registry in list(_registries):
        yield "artifact-registry", registry.name, registry.stats


class ArtifactRegistry:
    """LRU map from content address to in-memory artifact.

    ``put`` records an entry with its byte size and evicts
    least-recently-used entries until the total fits ``budget_bytes``;
    ``get`` refreshes recency.  Entries larger than the whole budget
    are still admitted alone (the budget bounds the *steady state*,
    not a single artifact).
    """

    def __init__(
        self, budget_bytes: int = DEFAULT_BUDGET_BYTES, name: str = "default"
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self.name = name
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        _registries.add(self)

    @property
    def total_bytes(self) -> int:
        """Bytes currently held across all entries."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[str]:
        """Keys from least- to most-recently used."""
        return iter(self._entries.keys())

    def get(self, key: str) -> Optional[Any]:
        """The artifact under ``key`` (refreshing recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            metric_inc("serve.registry.misses", registry=self.name)
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        metric_inc("serve.registry.hits", registry=self.name)
        return entry[0]

    def put(self, key: str, artifact: Any, nbytes: int) -> None:
        """Insert ``artifact`` (costing ``nbytes``), evicting LRU overflow."""
        nbytes = max(0, int(nbytes))
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (artifact, nbytes)
        self._bytes += nbytes
        self.stats.puts += 1
        metric_inc("serve.registry.puts", registry=self.name)
        while self._bytes > self.budget_bytes and len(self._entries) > 1:
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self._bytes -= evicted_bytes
            self.stats.evictions += 1
            metric_inc("serve.registry.evictions", registry=self.name)
        metric_gauge("serve.registry.bytes", self._bytes, registry=self.name)

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        self._entries.clear()
        self._bytes = 0
        metric_gauge("serve.registry.bytes", 0, registry=self.name)


def scenario_artifact_key(
    scenario: Optional[Any] = None,
    params: Optional[dict] = None,
    builder: str = "atlas",
) -> str:
    """Content address of a scenario's analysis artifacts.

    With ``params`` this reuses the scenario cache's key — the same
    address :func:`repro.workloads.build_atlas_scenario` stores under,
    so a registry entry survives process restarts conceptually (same
    code + params → same key).  For an in-memory scenario without known
    build parameters the key hashes the code fingerprint plus the
    pickled sanitized probes — still content-addressed, just derived
    from the data instead of its recipe.
    """
    if params is not None:
        return f"scenario:{builder}:{ScenarioCache().key(builder, params)}"
    if scenario is None:
        raise ValueError("scenario_artifact_key needs a scenario or params")
    digest = hashlib.sha256()
    digest.update(code_fingerprint().encode())
    digest.update(str(scenario.end_hour).encode())
    digest.update(pickle.dumps(scenario.probes, protocol=pickle.HIGHEST_PROTOCOL))
    return f"scenario:{builder}:{digest.hexdigest()}"


def store_artifact_key(store: Any) -> str:
    """Content address of a triple store's artifacts (its digest)."""
    return f"store:{store.digest()}"


def checkpoint_artifact_key(kind: str, key: str) -> str:
    """Content address of a checkpointed stream state's artifacts."""
    return f"checkpoint:{kind}:{key}"


__all__ = [
    "ArtifactRegistry",
    "DEFAULT_BUDGET_BYTES",
    "checkpoint_artifact_key",
    "scenario_artifact_key",
    "store_artifact_key",
]
