"""Process-pool fan-out for the independent stages of scenario builds.

The scenario builders in :mod:`repro.workloads` spend almost all of
their time in two embarrassingly parallel stages:

* the per-ISP :class:`~repro.netsim.sim.IspSimulation` runs (each ISP's
  event queue only touches that ISP's address plans and a private RNG
  seeded from ``(seed, asn)``), and
* the per-population CDN association collection (each population draws
  from its own RNG and only mutates its own ISP's plans).

Both stages fan out here.  The determinism contract: a ``workers=N``
build is **bit-identical** to the serial build for the same seed.  That
holds because

1. shared state (registry, routing table) is only mutated during ISP
   *construction*, which stays serial and in the original order;
2. each work unit is seeded independently of scheduling order, and
   results are merged back in submission order;
3. worker-side mutations of an ISP's address plans are shipped back and
   grafted onto the parent's objects, so post-build plan state matches
   the serial run exactly.

Anything unpicklable (e.g. an exotic user-supplied config) falls back
to the serial path — the fallback is a behaviour no-op by construction.

Telemetry crosses the pool boundary in both directions: initializers
ship the parent's enabled flag and
:class:`~repro.obs.context.TraceContext`, each task runs inside a
``pool/task`` span, and the worker's metric delta + finished span trees
travel back with the result, merged/stitched in submission order — one
coherent trace tree per run regardless of worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.registry import Registry
from repro.bgp.table import RoutingTable
from repro.cdn.classify import PrefixClassifier
from repro.cdn.collector import CdnDataset, collect, merge_datasets
from repro.netsim.isp import Isp
from repro.netsim.sim import (
    IspSimulation,
    SimulationJob,
    SubscriberTimeline,
    run_simulation_job,
)
from repro.obs import (
    enable_telemetry,
    get_logger,
    get_registry,
    get_tracer,
    metric_inc,
    span,
    subtract_snapshots,
    telemetry_enabled,
)
from repro.obs.context import (
    TraceContext,
    adopt_worker_spans,
    context_attrs,
    current_trace_context,
    get_worker_context,
    set_worker_context,
)

_log = get_logger("perf.parallel")

#: Environment override for the default worker count ("auto" = one per core).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if not raw:
            return 1
        if raw in ("auto", "max"):
            return max(1, os.cpu_count() or 1)
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"${WORKERS_ENV} must be an integer, 'auto' or 'max', got {raw!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def effective_workers(workers: int, units: int) -> int:
    """Workers actually worth spawning for ``units`` work items.

    Clamps the requested count to the number of units *and* to
    ``os.cpu_count()``: with a single core (or a single unit) the pool
    only adds pickling overhead — the shipped baseline measured parallel
    builds at 0.48x serial on a 1-core host — so the fan-out sites treat
    an effective count of 1 as "take the serial path".
    """
    if units < 1:
        return 1
    return max(1, min(int(workers), units, os.cpu_count() or 1))


def _mp_context():
    """Prefer fork (cheap, inherits imports); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _all_picklable(items: Sequence) -> bool:
    try:
        for item in items:
            # Round-trip: classes with custom immutability/__setattr__ can
            # dump fine yet explode on load inside a worker.
            pickle.loads(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return False
    return True


# ---------------------------------------------------------------------------
# Worker-side telemetry plumbing
# ---------------------------------------------------------------------------


def _worker_telemetry_init(
    enabled: bool, context: Optional[TraceContext] = None
) -> None:
    """Pool initializer: mirror the parent's telemetry switch + trace.

    Under ``fork`` the child inherits the flag anyway; under ``spawn``
    this is what turns the child's registry on.  When enabled, the
    inherited tracer is *detached* — a forked child starts with a copy
    of the parent's finished roots and open-span stack, neither of
    which this worker should re-ship — and the parent's
    :class:`~repro.obs.context.TraceContext` is installed so every span
    the worker records belongs to the parent's trace.
    """
    if enabled:
        enable_telemetry()
        get_tracer().detach()
        set_worker_context(context)


def _with_worker_metrics(task, unit, *, kind: str):
    """Run ``task(unit)`` capturing the child's metric delta and spans.

    Returns ``(result, delta_or_None, spans_or_None)``.  The delta is
    the difference between the child registry before and after the task
    (a forked child starts with a *copy* of the parent's counts), so
    merging it in the parent never double-counts.  Each task also
    tallies ``pool.tasks{kind=,worker=}`` — the worker-utilization
    signal — and runs inside a ``pool/task`` span tagged with the
    propagated trace context; the span trees the task finished are
    popped off the worker tracer and shipped back with the result for
    the parent to stitch (:func:`repro.obs.context.adopt_worker_spans`).
    """
    if not telemetry_enabled():
        return task(unit), None, None
    registry = get_registry()
    tracer = get_tracer()
    baseline = len(tracer.roots)
    before = registry.snapshot()
    metric_inc("pool.tasks", kind=kind, worker=os.getpid())
    attrs = context_attrs(get_worker_context())
    with span("pool/task", kind=kind, worker=os.getpid(), **attrs):
        result = task(unit)
    delta = subtract_snapshots(registry.snapshot(), before)
    return result, delta, tracer.pop_roots(baseline)


def _run_sim_job_with_metrics(job):
    return _with_worker_metrics(run_simulation_job, job, kind="isp_sim")


def _merge_worker_results(outcomes):
    """Split ``(result, delta, spans)`` triples, folding both into the parent.

    Deltas merge into the parent registry and span buffers graft under
    the parent's currently open span — in submission order for both, so
    the stitched tree and merged counts are deterministic regardless of
    worker scheduling.
    """
    registry = get_registry()
    results = []
    for result, delta, spans in outcomes:
        registry.merge(delta)
        adopt_worker_spans(spans)
        results.append(result)
    return results


# ---------------------------------------------------------------------------
# Streamed fan-out over an unbounded unit stream
# ---------------------------------------------------------------------------


def _streamed_unit_task(payload):
    task, unit, kind = payload
    return _with_worker_metrics(task, unit, kind=kind)


def map_streamed(
    task,
    units: Iterable,
    workers: Optional[int] = None,
    kind: str = "stream",
    max_inflight: Optional[int] = None,
) -> Iterator:
    """Yield ``task(unit)`` results in submission order, bounded fan-out.

    Unlike :func:`map_store_shards`, ``units`` may be an *unbounded*
    lazily generated stream (e.g. column slabs off a 100M-row synthetic
    feed): at most ``max_inflight`` (default ``2 * workers``) units are
    ever pickled into the pool at once, so parent memory stays bounded
    while unit generation overlaps worker execution.  ``task`` must be
    a module-level callable (or ``functools.partial`` of one).  Results
    come back in submission order regardless of completion order, and
    worker telemetry deltas fold into the parent as each result is
    drained.  With one effective worker this degrades to the serial
    loop — the generator must be consumed fully either way.
    """
    if max_inflight is not None and max_inflight < 1:
        raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
    effective = max(1, min(resolve_workers(workers), os.cpu_count() or 1))
    if effective <= 1:
        for unit in units:
            yield task(unit)
        return
    registry = get_registry()
    inflight = max_inflight if max_inflight is not None else 2 * effective
    _log.debug(
        "fanning out unit stream",
        extra={"workers": effective, "max_inflight": inflight, "kind": kind},
    )
    with ProcessPoolExecutor(
        max_workers=effective,
        mp_context=_mp_context(),
        initializer=_worker_telemetry_init,
        initargs=(telemetry_enabled(), current_trace_context()),
    ) as pool:
        pending: deque = deque()
        iterator = iter(units)
        exhausted = False
        while True:
            while not exhausted and len(pending) < inflight:
                try:
                    unit = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                pending.append(pool.submit(_streamed_unit_task, (task, unit, kind)))
            if not pending:
                break
            result, delta, spans = pending.popleft().result()
            registry.merge(delta)
            adopt_worker_spans(spans)
            yield result


# ---------------------------------------------------------------------------
# Per-ISP simulation fan-out
# ---------------------------------------------------------------------------


def run_isp_simulations(
    jobs: Sequence[Tuple[Isp, int]],
    end_hour: float,
    seed: int,
    workers: int = 1,
) -> List[Dict[int, SubscriberTimeline]]:
    """Run ``IspSimulation(isp, count, end_hour, seed)`` for every job.

    Returns the timeline dicts in job order.  With ``workers > 1`` the
    simulations run in a process pool and each worker's post-run address
    plans are grafted back onto the parent's :class:`Isp` objects, so
    the outcome is bit-identical to the serial path.
    """
    effective = effective_workers(workers, len(jobs))
    if effective > 1:
        sim_jobs = [
            SimulationJob.from_isp(isp, count, end_hour, seed) for isp, count in jobs
        ]
        if _all_picklable(sim_jobs):
            _log.debug(
                "fanning out ISP simulations",
                extra={"jobs": len(sim_jobs), "workers": effective},
            )
            with ProcessPoolExecutor(
                max_workers=effective,
                mp_context=_mp_context(),
                initializer=_worker_telemetry_init,
                initargs=(telemetry_enabled(), current_trace_context()),
            ) as pool:
                results = _merge_worker_results(
                    pool.map(_run_sim_job_with_metrics, sim_jobs)
                )
            for (isp, _count), result in zip(jobs, results):
                result.graft_onto(isp)
            return [result.timelines for result in results]
        _log.debug("simulation jobs not picklable, using the serial path")
    return [
        IspSimulation(isp, count, end_hour, seed=seed).run() for isp, count in jobs
    ]


# ---------------------------------------------------------------------------
# Per-population CDN collection fan-out
# ---------------------------------------------------------------------------

#: Worker-process state installed by :func:`_collect_init` (one pickle of the
#: routing table/registry per worker instead of one per population).
_COLLECT_STATE: dict = {}


def _collect_init(
    table: RoutingTable,
    registry: Registry,
    filter_asn_mismatch: bool,
    telemetry: bool = False,
    context: Optional[TraceContext] = None,
) -> None:
    _COLLECT_STATE["table"] = table
    _COLLECT_STATE["registry"] = registry
    _COLLECT_STATE["filter"] = filter_asn_mismatch
    _worker_telemetry_init(telemetry, context)


def _collect_one_dataset(population) -> CdnDataset:
    dataset = collect(
        [population],
        _COLLECT_STATE["table"],
        _COLLECT_STATE["registry"],
        filter_asn_mismatch=_COLLECT_STATE["filter"],
    )
    # The classifier only holds lookup caches over worker-side copies of
    # the table/registry; drop it rather than ship it back.
    dataset.classifier = None
    return dataset


def _collect_one(population):
    return _with_worker_metrics(_collect_one_dataset, population, kind="cdn_collect")


def collect_associations(
    populations: Sequence,
    table: RoutingTable,
    registry: Registry,
    filter_asn_mismatch: bool = True,
    workers: int = 1,
) -> CdnDataset:
    """Parallel-aware :func:`repro.cdn.collector.collect`.

    Each population's triples are generated and classified in a worker,
    then the per-population datasets are merged in population order —
    yielding the exact per-AS triple lists of the serial path (serial
    collection appends population by population).
    """
    effective = effective_workers(workers, len(populations))
    if effective > 1 and _all_picklable([table, registry, *populations]):
        _log.debug(
            "fanning out CDN collection",
            extra={"populations": len(populations), "workers": effective},
        )
        with ProcessPoolExecutor(
            max_workers=effective,
            mp_context=_mp_context(),
            initializer=_collect_init,
            initargs=(
                table,
                registry,
                filter_asn_mismatch,
                telemetry_enabled(),
                current_trace_context(),
            ),
        ) as pool:
            batches = _merge_worker_results(pool.map(_collect_one, populations))
        merged = merge_datasets(batches)
        merged.classifier = PrefixClassifier(table, registry)
        return merged
    return collect(
        populations, table, registry, filter_asn_mismatch=filter_asn_mismatch
    )


# ---------------------------------------------------------------------------
# Zero-copy triple-store shard fan-out
# ---------------------------------------------------------------------------

#: Worker-process store handle installed by :func:`_store_worker_init`.
_STORE_STATE: dict = {}


def _store_worker_init(
    directory: str, telemetry: bool, context: Optional[TraceContext] = None
) -> None:
    """Pool initializer: each worker opens the store by *path*.

    The worker memory-maps shard columns straight off disk, so the
    parent never pickles an array into the pool — the only bytes that
    cross the process boundary are the directory string here and the
    (task, shard index) pair per work unit.
    """
    from repro.store.triples import TripleStore

    _STORE_STATE["store"] = TripleStore.open(directory)
    _worker_telemetry_init(telemetry, context)


def _store_shard_task(unit):
    task, index = unit
    return _with_worker_metrics(
        lambda shard_index: task(_STORE_STATE["store"], shard_index),
        index,
        kind="store_shard",
    )


def _discard_scratch_files(scratch) -> None:
    """Best-effort removal of the files inside a scratch directory.

    The directory itself is left in place — it belongs to the caller —
    but any partial per-shard outputs written before a failure are
    unlinked so a retried pass never memmaps stale runs.
    """
    if scratch is None:
        return
    try:
        children = list(Path(scratch).iterdir())
    except OSError:
        return
    for child in children:
        try:
            child.unlink()
        except OSError:
            pass


def map_store_shards(
    task, store, workers: Optional[int] = None, scratch=None
) -> List:
    """Run ``task(store, shard_index)`` over every shard of a triple store.

    ``task`` must be a module-level callable (or a ``functools.partial``
    of one) so it pickles by reference.  The handoff is zero-copy in
    both directions by convention: workers map shard columns from the
    store path (installed once per worker by the pool initializer) and
    should write any large intermediate arrays to scratch files for the
    parent to memmap, returning only small metadata.  Results come back
    in shard-index order, so the reduction is deterministic regardless
    of scheduling.  With one core/shard/worker this degrades to the
    serial loop.

    ``scratch`` names the directory those intermediates land in: when a
    task raises mid-pool, the files completed shards already wrote
    there are deleted before the exception propagates, instead of being
    leaked into the temp dir for the caller to trip over.
    """
    effective = effective_workers(resolve_workers(workers), store.shards)
    try:
        if effective > 1:
            _log.debug(
                "fanning out store shards",
                extra={"shards": store.shards, "workers": effective},
            )
            with ProcessPoolExecutor(
                max_workers=effective,
                mp_context=_mp_context(),
                initializer=_store_worker_init,
                initargs=(
                    str(store.directory),
                    telemetry_enabled(),
                    current_trace_context(),
                ),
            ) as pool:
                return _merge_worker_results(
                    pool.map(
                        _store_shard_task, [(task, i) for i in range(store.shards)]
                    )
                )
        return [task(store, index) for index in range(store.shards)]
    except Exception:
        _discard_scratch_files(scratch)
        raise


# ---------------------------------------------------------------------------
# Zero-copy fused-analysis fan-out
# ---------------------------------------------------------------------------

#: Worker-process pack handle installed by :func:`_fused_worker_init`.
_FUSED_STATE: dict = {}


def _fused_worker_init(
    arena_path: str, table, telemetry: bool, context: Optional[TraceContext] = None
) -> None:
    """Pool initializer: each worker maps the probe pack by *path*.

    The arena is opened as a read-only memmap, so every worker (and the
    parent) shares the pack's pages — no column array is ever pickled
    into the pool; the only per-task bytes are the ``(name, asn,
    country)`` group tuple in and the small artifact objects out.
    """
    from repro.core.analysis_np import ProbeColumns

    _FUSED_STATE["columns"] = ProbeColumns.from_arena(arena_path)
    _FUSED_STATE["table"] = table
    _worker_telemetry_init(telemetry, context)


def _fused_group_artifacts(group):
    """One AS's artifacts from the worker's memmapped pack.

    Selecting the AS's probes out of the global pack and running the
    fused pass over the sub-pack is bit-identical to masking the global
    fused stats: every artifact is per-probe local and the CSR gather
    preserves probe order.
    """
    from repro.core import fused

    import numpy as np

    name, asn, country = group
    columns = _FUSED_STATE["columns"]
    sub = columns.select(np.flatnonzero(columns.asns() == asn))
    stats = fused.fused_probe_stats(sub)
    table = _FUSED_STATE["table"]
    result = {
        "table1": fused.table1_from_stats(stats, name, asn, country),
        "figure1": fused.figure1_from_stats(stats, name),
        "figure5": fused.figure5_from_stats(stats),
    }
    if table is not None:
        result["table2"] = fused.table2_from_stats(stats, table)
    return result


def _fused_group_task(group):
    return _with_worker_metrics(_fused_group_artifacts, group, kind="fused_analysis")


def run_fused_analysis(
    columns,
    groups: Sequence[Tuple[str, int, str]],
    table: Optional[RoutingTable] = None,
    workers: Optional[int] = None,
) -> Dict[str, dict]:
    """Fan the fused per-AS analysis out over a pool, zero-copy.

    The parent saves ``columns`` (a
    :class:`repro.core.analysis_np.ProbeColumns`) as one arena file and
    ships only its *path* to the pool; workers memory-map the pack and
    return small artifact objects, merged in ``groups`` order.  Returns
    the same ``{"table1", "table2", "figure1", "figure5"}`` dicts as
    :func:`repro.core.fused.fused_analysis_artifacts`, bit-identically —
    with one worker (or an unpicklable table) it *is* that serial call.
    """
    import shutil
    import tempfile

    effective = effective_workers(resolve_workers(workers), len(groups))
    if effective > 1 and (table is None or _all_picklable([table])):
        _log.debug(
            "fanning out fused analysis",
            extra={"groups": len(groups), "workers": effective},
        )
        scratch = tempfile.mkdtemp(prefix="repro-fused-")
        try:
            arena_path = columns.save_arena(os.path.join(scratch, "probes.arena"))
            with ProcessPoolExecutor(
                max_workers=effective,
                mp_context=_mp_context(),
                initializer=_fused_worker_init,
                initargs=(
                    str(arena_path),
                    table,
                    telemetry_enabled(),
                    current_trace_context(),
                ),
            ) as pool:
                per_group = _merge_worker_results(pool.map(_fused_group_task, groups))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        merged: Dict[str, dict] = {
            "table1": {},
            "table2": {},
            "figure1": {},
            "figure5": {},
        }
        for (name, _asn, _country), artifacts in zip(groups, per_group):
            for kind, value in artifacts.items():
                merged[kind][name] = value
        return merged
    from repro.core.fused import fused_analysis_artifacts

    return fused_analysis_artifacts(columns, groups, table)


__all__ = [
    "WORKERS_ENV",
    "collect_associations",
    "effective_workers",
    "map_store_shards",
    "map_streamed",
    "resolve_workers",
    "run_fused_analysis",
    "run_isp_simulations",
]
