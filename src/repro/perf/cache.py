"""Content-addressed on-disk cache for built scenarios.

A scenario is a pure function of its build parameters and the code that
builds it, so the cache key is ``SHA-256(format version, builder name,
code fingerprint, canonicalized parameters)``:

* the *code fingerprint* hashes every ``.py`` file in the ``repro``
  package — any source change invalidates every cached scenario without
  touching the cache directory (stale entries simply stop being
  addressed, and can be swept with :meth:`ScenarioCache.clear`);
* parameters are canonicalized structurally (dicts sorted by key,
  dataclasses via their field reprs), so semantically equal calls share
  an entry while ``workers=`` — which never changes the output — is
  deliberately excluded by the callers.

Entries are pickles written atomically (temp file + ``os.replace``);
a corrupt or truncated entry is treated as a miss and deleted.  The
directory defaults to ``~/.cache/repro-scenarios`` and is overridable
via ``$REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs import get_logger, metric_inc

_log = get_logger("perf.cache")

#: Environment override for the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment default for whether builders use the cache (``cache=None``).
CACHE_ENV = "REPRO_CACHE"

_DEFAULT_DIR = "~/.cache/repro-scenarios"
_FORMAT_VERSION = 1

_TRUTHY = ("1", "true", "yes", "on")


def resolve_cache_flag(cache: Optional[bool] = None) -> bool:
    """Effective cache switch: explicit value, else ``$REPRO_CACHE``, else off."""
    if cache is None:
        return os.environ.get(CACHE_ENV, "").strip().lower() in _TRUTHY
    return bool(cache)


_fingerprint_cache: Dict[Path, str] = {}


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package."""
    package_root = Path(__file__).resolve().parents[1]
    cached = _fingerprint_cache.get(package_root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _fingerprint_cache[package_root] = fingerprint
    return fingerprint


def _canonical(value) -> str:
    """Stable structural encoding of a parameter value."""
    if isinstance(value, dict):
        items = ", ".join(
            f"{_canonical(key)}: {_canonical(val)}" for key, val in sorted(value.items())
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_canonical(item) for item in value) + "]"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{field.name}={_canonical(getattr(value, field.name))}"
            for field in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    return repr(value)


@dataclass
class CacheStats:
    """Counters for one cache-like component.

    Shared by :class:`ScenarioCache`,
    :class:`repro.stream.checkpoint.CheckpointStore` and
    :class:`repro.serve.registry.ArtifactRegistry` so introspection
    (:func:`iter_component_stats`, ``repro serve --status``) renders
    every component the same way.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (stable key order)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
            "evictions": self.evictions,
        }


class ScenarioCache:
    """Content-addressed pickle store for built scenarios."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        raw = directory or os.environ.get(CACHE_DIR_ENV) or _DEFAULT_DIR
        self.directory = Path(raw).expanduser()
        self.stats = CacheStats()

    def key(self, builder: str, params: dict) -> str:
        """The content address of ``builder`` called with ``params``."""
        material = "\n".join(
            (str(_FORMAT_VERSION), builder, code_fingerprint(), _canonical(params))
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _path_for(self, builder: str, key: str) -> Path:
        return self.directory / f"{builder}-{key[:32]}.pkl"

    def get(self, builder: str, key: str):
        """The cached scenario for ``key``, or ``None`` on a miss."""
        path = self._path_for(builder, key)
        try:
            with path.open("rb") as stream:
                payload = pickle.load(stream)
            if payload.get("key") != key:  # truncated prefix collision
                raise ValueError("key mismatch")
            scenario = payload["scenario"]
        except FileNotFoundError:
            self.stats.misses += 1
            metric_inc("cache.misses", builder=builder, reason="absent")
            _log.debug("cache miss", extra={"builder": builder, "key": key[:12]})
            return None
        except Exception:
            # Corrupt/incompatible entry: safe to drop, rebuild will re-put.
            self.stats.misses += 1
            self.stats.errors += 1
            path.unlink(missing_ok=True)
            metric_inc("cache.misses", builder=builder, reason="corrupt")
            _log.warning(
                "corrupt cache entry dropped",
                extra={"builder": builder, "key": key[:12]},
            )
            return None
        self.stats.hits += 1
        metric_inc("cache.hits", builder=builder)
        _log.info("cache hit", extra={"builder": builder, "key": key[:12]})
        return scenario

    def put(self, builder: str, key: str, scenario) -> bool:
        """Store ``scenario`` under ``key``; False when unpicklable."""
        path = self._path_for(builder, key)
        temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with temp.open("wb") as stream:
                pickle.dump(
                    {"key": key, "scenario": scenario},
                    stream,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(temp, path)
        except Exception:
            self.stats.errors += 1
            temp.unlink(missing_ok=True)
            metric_inc("cache.put_errors", builder=builder)
            _log.warning(
                "cache put failed (unpicklable scenario?)",
                extra={"builder": builder, "key": key[:12]},
            )
            return False
        self.stats.puts += 1
        metric_inc("cache.puts", builder=builder)
        _log.info("cache put", extra={"builder": builder, "key": key[:12]})
        return True

    def clear(self) -> int:
        """Delete every cache entry (only ``*.pkl`` files); returns the count."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScenarioCache({str(self.directory)!r}, stats={self.stats})"


_instances: Dict[Path, ScenarioCache] = {}


def get_scenario_cache(directory: Optional[os.PathLike] = None) -> ScenarioCache:
    """Per-process singleton cache for a directory (default: env/ ~/.cache)."""
    cache = ScenarioCache(directory)
    return _instances.setdefault(cache.directory, cache)


def iter_cache_stats():
    """Yield ``(directory, CacheStats)`` for every live singleton cache.

    The CLI and the ``--telemetry`` dump use this to surface hit/miss
    counts that the builders accumulate internally.
    """
    for directory, cache in _instances.items():
        yield directory, cache.stats


#: Component stats row: ``(component kind, identity, CacheStats)``.
StatsRow = Tuple[str, str, CacheStats]

_stats_providers: List[Callable[[], Iterable[StatsRow]]] = []


def register_stats_provider(provider: Callable[[], Iterable[StatsRow]]):
    """Register a callable yielding :data:`StatsRow` tuples.

    Other cache-like components (checkpoint stores, artifact
    registries) hook themselves into :func:`iter_component_stats` with
    this — the serving status view and telemetry dumps then see every
    component through one protocol.  Idempotent per callable; returns
    ``provider`` so it can be used as a decorator.
    """
    if provider not in _stats_providers:
        _stats_providers.append(provider)
    return provider


def iter_component_stats() -> Iterator[StatsRow]:
    """Yield ``(component, identity, CacheStats)`` for every component.

    Scenario caches report first, then every registered provider in
    registration order (checkpoint stores, artifact registries, ...).
    """
    for directory, stats in iter_cache_stats():
        yield "scenario-cache", str(directory), stats
    for provider in list(_stats_providers):
        for row in provider():
            yield row


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "CacheStats",
    "ScenarioCache",
    "code_fingerprint",
    "get_scenario_cache",
    "iter_cache_stats",
    "iter_component_stats",
    "register_stats_provider",
    "resolve_cache_flag",
]
