"""Opt-in per-stage cProfile dumps for the benchmark harness.

Setting ``REPRO_PROFILE=1`` makes every stage wrapped in
:func:`maybe_profile` run under :mod:`cProfile` and drop two artifacts
per stage under ``benchmarks/results/`` (override the directory with
``REPRO_PROFILE_DIR``):

* ``profile_<stage>.pstats`` — the raw stats, for ``snakeviz`` /
  ``pstats`` digging, and
* ``profile_<stage>.txt`` — the top cumulative-time lines, readable
  without tooling.

With the variable unset (or ``0``/``false``/``off``) the context
manager is a no-op, so call sites can wrap stages unconditionally.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import re
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional

#: Environment switch: truthy values enable per-stage profiling.
PROFILE_ENV = "REPRO_PROFILE"

#: Environment override for where profile artifacts land.
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

#: Default artifact directory, relative to the repository root.
DEFAULT_PROFILE_DIR = Path("benchmarks") / "results"

_FALSEY = ("", "0", "false", "no", "off")


def profiling_enabled() -> bool:
    """Whether ``$REPRO_PROFILE`` asks for per-stage profiles."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() not in _FALSEY


def profile_dir() -> Path:
    """Directory receiving profile artifacts (created on demand)."""
    override = os.environ.get(PROFILE_DIR_ENV, "").strip()
    if override:
        return Path(override)
    return _repo_root() / DEFAULT_PROFILE_DIR


def _repo_root() -> Path:
    # Checkout root in a repo, CWD for an installed package — never a
    # site-packages ancestor (see repro.perf.timing.repo_root).
    from repro.perf.timing import repo_root

    return repo_root()


def _slug(stage: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", stage).strip("_") or "stage"


@contextmanager
def maybe_profile(stage: str, top: int = 40) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block when ``$REPRO_PROFILE`` is set.

    Yields the active :class:`cProfile.Profile` (or ``None`` when
    disabled) and writes ``profile_<stage>.pstats`` plus a human-readable
    ``profile_<stage>.txt`` (top ``top`` cumulative entries) on exit.
    """
    if not profiling_enabled():
        yield None
        return
    directory = profile_dir()
    directory.mkdir(parents=True, exist_ok=True)
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        slug = _slug(stage)
        profile.dump_stats(directory / f"profile_{slug}.pstats")
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        (directory / f"profile_{slug}.txt").write_text(buffer.getvalue())


__all__ = [
    "DEFAULT_PROFILE_DIR",
    "PROFILE_DIR_ENV",
    "PROFILE_ENV",
    "maybe_profile",
    "profile_dir",
    "profiling_enabled",
]
