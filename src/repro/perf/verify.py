"""Field-for-field scenario comparison — the determinism contract's teeth.

``workers=N`` builds must be bit-identical to serial builds, and a cache
round-trip must return an equal scenario.  These helpers compare every
observable field of the two scenario types (ground-truth timelines,
probe data, association datasets, plan state) and report *which* field
diverged, which is far more actionable than a bare ``assert a == b``.

Deliberately not compared: object identities, RNG internals, and the
CDN classifier's lookup caches (a warm cache is an optimization, not an
observable).

The same contract applies to the analysis engines:
:func:`analysis_engine_diffs` compares every report-layer artifact
(Table 1/2, Figures 1/5, duration populations) computed by the columnar
NumPy engine against the pure-Python reference, field by field — and
:func:`streaming_replay_diffs` holds the streaming layer to it too:
chunk-by-chunk replay (any chunk size, with or without a mid-stream
checkpoint/restore) must be bit-identical to the batch np report.
:func:`store_diffs` extends the contract to the out-of-core sharded
memmap store: shard-by-shard analysis must match the in-RAM np path
artifact for artifact, at every shard count.  :func:`fused_engine_diffs`
holds the fused single-pass engine (:mod:`repro.core.fused`) to the
same bar: ``engine="fused"`` must be bit-identical to both ``"np"`` and
``"py"`` across every report artifact, including after an arena
save/memmap round-trip of the buffer-backed pack.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads import AtlasScenario, CdnScenario


def atlas_scenario_diffs(a: AtlasScenario, b: AtlasScenario) -> List[str]:
    """Human-readable differences between two Atlas scenarios ([] if equal)."""
    diffs: List[str] = []
    if a.end_hour != b.end_hour:
        diffs.append(f"end_hour: {a.end_hour} != {b.end_hour}")
    if sorted(a.isps) != sorted(b.isps):
        diffs.append(f"isps: {sorted(a.isps)} != {sorted(b.isps)}")
        return diffs
    for name, isp_a in a.isps.items():
        isp_b = b.isps[name]
        if isp_a.config != isp_b.config:
            diffs.append(f"isps[{name}].config differs")
        if isp_a.v4_plan.in_use_count != isp_b.v4_plan.in_use_count:
            diffs.append(
                f"isps[{name}].v4_plan.in_use_count: "
                f"{isp_a.v4_plan.in_use_count} != {isp_b.v4_plan.in_use_count}"
            )
        count_a = isp_a.v6_plan.in_use_count if isp_a.v6_plan is not None else None
        count_b = isp_b.v6_plan.in_use_count if isp_b.v6_plan is not None else None
        if count_a != count_b:
            diffs.append(f"isps[{name}].v6_plan.in_use_count: {count_a} != {count_b}")
    if a.timelines != b.timelines:
        diffs.append("timelines differ")
    if a.raw_probes != b.raw_probes:
        diffs.append("raw_probes differ")
    if a.probes != b.probes:
        diffs.append("probes differ")
    if a.report != b.report:
        diffs.append(f"report: {a.report} != {b.report}")
    return diffs


def cdn_scenario_diffs(a: CdnScenario, b: CdnScenario) -> List[str]:
    """Human-readable differences between two CDN scenarios ([] if equal)."""
    diffs: List[str] = []
    for field in ("days", "featured_asns", "fixed_asns", "mobile_asns"):
        if getattr(a, field) != getattr(b, field):
            diffs.append(f"{field}: {getattr(a, field)} != {getattr(b, field)}")
    dataset_a, dataset_b = a.dataset, b.dataset
    if dataset_a.total_collected != dataset_b.total_collected:
        diffs.append(
            f"dataset.total_collected: "
            f"{dataset_a.total_collected} != {dataset_b.total_collected}"
        )
    if dataset_a.discarded_asn_mismatch != dataset_b.discarded_asn_mismatch:
        diffs.append(
            f"dataset.discarded_asn_mismatch: "
            f"{dataset_a.discarded_asn_mismatch} != {dataset_b.discarded_asn_mismatch}"
        )
    if sorted(dataset_a.triples_by_asn) != sorted(dataset_b.triples_by_asn):
        diffs.append(
            f"dataset ASNs: {sorted(dataset_a.triples_by_asn)} != "
            f"{sorted(dataset_b.triples_by_asn)}"
        )
        return diffs
    for asn, triples_a in dataset_a.triples_by_asn.items():
        if triples_a != dataset_b.triples_by_asn[asn]:
            diffs.append(f"dataset.triples_by_asn[{asn}] differs")
    return diffs


def analysis_engine_diffs(probes: Sequence, table=None, triples=None) -> List[str]:
    """Artifact-by-artifact py-vs-np engine differences ([] if equal).

    Runs every report-layer entry point over ``probes`` under both
    engines and names each artifact that diverges.  ``table`` (a
    :class:`~repro.bgp.table.RoutingTable`) additionally enables the
    Table 2 comparison; ``triples`` (CDN association triples) the
    Figure 3 box-stats comparison.
    """
    from repro.core import report
    from repro.core.associations import association_box_stats
    from repro.core.delegation import inferred_plen_distribution_for_probes

    artifacts = [
        (
            "table1_row",
            lambda engine: report.table1_row("AS", 0, "XX", probes, engine=engine),
        ),
        ("as_durations", lambda engine: report.as_durations(probes, engine=engine)),
        (
            "figure1_for_as",
            lambda engine: report.figure1_for_as("AS", probes, engine=engine),
        ),
        ("figure5_for_as", lambda engine: report.figure5_for_as(probes, engine=engine)),
        (
            "periodic_networks",
            lambda engine: report.periodic_networks({"AS": probes}, engine=engine),
        ),
        (
            "inferred_plen_distribution",
            lambda engine: inferred_plen_distribution_for_probes(probes, engine=engine),
        ),
    ]
    if table is not None:
        artifacts.append(
            ("table2_row", lambda engine: report.table2_row(probes, table, engine=engine))
        )
    if triples is not None:
        materialized = list(triples)
        artifacts.append(
            (
                "association_box_stats",
                lambda engine: association_box_stats(materialized, engine=engine),
            )
        )
    diffs: List[str] = []
    for label, compute in artifacts:
        reference = compute("py")
        columnar = compute("np")
        if reference != columnar:
            diffs.append(f"{label}: np engine diverges from py reference")
    return diffs


def assert_analysis_engines_equal(probes: Sequence, table=None, triples=None) -> None:
    """Raise AssertionError naming every py-vs-np diverging artifact."""
    diffs = analysis_engine_diffs(probes, table, triples)
    if diffs:
        raise AssertionError("analysis engines differ: " + "; ".join(diffs))


def fused_engine_diffs(
    scenario: "AtlasScenario" = None,
    probes_per_as: int = 4,
    years: float = 0.5,
    seed: int = 0,
    min_probes: int = 2,
    arena_dir=None,
) -> List[str]:
    """Fused-engine parity differences ([] if bit-identical).

    The fused-parity contract, at two levels:

    1. **Scenario level** — ``engine="fused"`` must reproduce every
       ``analyze_atlas_scenario`` artifact and the periodicity result of
       both ``"np"`` and ``"py"`` bit-identically (a small scenario is
       built when none is supplied).
    2. **Report-entry level** — each report entry point called with
       ``engine="fused"`` over the scenario's probes must match the
       ``"py"`` reference.

    With ``arena_dir`` set, a buffer round-trip is verified too: the
    global pack is saved as an arena file, reopened memory-mapped, and
    the fused artifacts recomputed from the mapped pack must match.
    """
    from repro.core import report
    from repro.workloads import (
        analyze_atlas_scenario,
        build_atlas_scenario,
        periodicity_for_scenario,
    )

    if scenario is None:
        scenario = build_atlas_scenario(
            probes_per_as=probes_per_as, years=years, seed=seed, cache=False
        )
    results = {}
    for engine in ("py", "np", "fused"):
        analysis = analyze_atlas_scenario(scenario, engine=engine)
        periods = periodicity_for_scenario(
            scenario, min_probes=min_probes, engine=engine
        )
        results[engine] = (analysis, periods)
    diffs: List[str] = []
    fused_analysis, fused_periods = results["fused"]
    for other in ("np", "py"):
        other_analysis, other_periods = results[other]
        for artifact in ("table1", "table2", "figure1", "figure5"):
            if getattr(fused_analysis, artifact) != getattr(other_analysis, artifact):
                diffs.append(f"{artifact}: fused diverges from {other}")
        if fused_periods != other_periods:
            diffs.append(f"periodicity: fused diverges from {other}")

    probes = scenario.probes
    entry_points = [
        (
            "table1_row",
            lambda engine: report.table1_row("AS", 0, "XX", probes, engine=engine),
        ),
        ("as_durations", lambda engine: report.as_durations(probes, engine=engine)),
        (
            "figure1_for_as",
            lambda engine: report.figure1_for_as("AS", probes, engine=engine),
        ),
        ("figure5_for_as", lambda engine: report.figure5_for_as(probes, engine=engine)),
        (
            "table2_row",
            lambda engine: report.table2_row(probes, scenario.table, engine=engine),
        ),
        (
            "periodic_networks",
            lambda engine: report.periodic_networks(
                {"AS": probes}, min_probes=min_probes, engine=engine
            ),
        ),
    ]
    for label, compute in entry_points:
        if compute("fused") != compute("py"):
            diffs.append(f"{label}: fused entry point diverges from py reference")

    if arena_dir is not None:
        try:
            from pathlib import Path

            from repro.core.analysis_np import ProbeColumns
            from repro.core.fused import fused_analysis_artifacts
        except ImportError:
            return diffs
        columns = scenario.analysis_columns(None, engine="fused")
        if columns is None:
            diffs.append("arena: no columnar pack available for the round-trip")
            return diffs
        groups = [
            (name, isp.asn, isp.config.country)
            for name, isp in scenario.isps.items()
        ]
        direct = fused_analysis_artifacts(columns, groups, scenario.table)
        path = columns.save_arena(Path(arena_dir) / "fused-verify.arena")
        mapped = ProbeColumns.from_arena(path)
        reopened = fused_analysis_artifacts(mapped, groups, scenario.table)
        if direct != reopened:
            diffs.append("arena: memmapped pack artifacts diverge from in-memory pack")
    return diffs


def assert_fused_engines_equal(
    scenario: "AtlasScenario" = None,
    probes_per_as: int = 4,
    years: float = 0.5,
    seed: int = 0,
    min_probes: int = 2,
    arena_dir=None,
) -> None:
    """Raise AssertionError naming every fused-engine divergence."""
    diffs = fused_engine_diffs(
        scenario,
        probes_per_as=probes_per_as,
        years=years,
        seed=seed,
        min_probes=min_probes,
        arena_dir=arena_dir,
    )
    if diffs:
        raise AssertionError("fused engine differs: " + "; ".join(diffs))


def _streaming_result_diffs(result, batch, periods, label: str) -> List[str]:
    """Artifact-level streamed-vs-batch differences for one streaming pass."""
    diffs: List[str] = []
    if result is None:
        return [f"{label}: streaming pass did not complete"]
    analysis = result.analysis
    for artifact in ("table1", "table2", "figure1", "figure5"):
        if getattr(analysis, artifact) != getattr(batch, artifact):
            diffs.append(f"{label}: {artifact} diverges from batch np report")
    if (result.v4_periods, result.v6_periods) != periods:
        diffs.append(f"{label}: periodicity diverges from batch np report")
    return diffs


def streaming_replay_diffs(
    scenario: AtlasScenario,
    chunk_hours: Sequence[int] = (256, 2048),
    min_probes: int = 3,
    checkpoint_dir=None,
) -> List[str]:
    """Streamed-vs-batch artifact differences ([] if bit-identical).

    The replay-parity contract: streaming ``scenario`` chunk-by-chunk
    (each size in ``chunk_hours``) must reproduce the batch
    ``engine="np"`` artifacts bit-identically.  When ``checkpoint_dir``
    is given, a kill/checkpoint/resume pass (stopped halfway, resumed
    from its persisted state) is verified too.
    """
    from repro.workloads import (
        analyze_atlas_scenario,
        periodicity_for_scenario,
        stream_analyze_atlas_scenario,
    )

    batch = analyze_atlas_scenario(scenario, engine="np")
    periods = periodicity_for_scenario(scenario, min_probes=min_probes, engine="np")
    diffs: List[str] = []
    for hours in chunk_hours:
        result = stream_analyze_atlas_scenario(
            scenario, chunk_hours=hours, min_probes=min_probes
        )
        diffs.extend(
            _streaming_result_diffs(result, batch, periods, f"chunk_hours={hours}")
        )
    if checkpoint_dir is not None and chunk_hours:
        hours = chunk_hours[0]
        total = max(1, -(-scenario.end_hour // hours))
        killed = stream_analyze_atlas_scenario(
            scenario,
            chunk_hours=hours,
            min_probes=min_probes,
            checkpoint=checkpoint_dir,
            stop_after_chunks=max(1, total // 2),
        )
        if killed is not None:
            diffs.append("kill/resume: stopped pass unexpectedly completed")
        resumed = stream_analyze_atlas_scenario(
            scenario,
            chunk_hours=hours,
            min_probes=min_probes,
            checkpoint=checkpoint_dir,
            resume=True,
        )
        diffs.extend(_streaming_result_diffs(resumed, batch, periods, "kill/resume"))
        if resumed is not None and resumed.stats.resumed_from_chunk is None:
            diffs.append("kill/resume: resume did not load the persisted state")
    return diffs


def assert_streaming_replay_equal(
    scenario: AtlasScenario,
    chunk_hours: Sequence[int] = (256, 2048),
    min_probes: int = 3,
    checkpoint_dir=None,
) -> None:
    """Raise AssertionError naming every streamed-vs-batch divergence."""
    diffs = streaming_replay_diffs(
        scenario, chunk_hours=chunk_hours, min_probes=min_probes,
        checkpoint_dir=checkpoint_dir,
    )
    if diffs:
        raise AssertionError("streaming replay differs: " + "; ".join(diffs))


def store_diffs(
    triples: Sequence,
    directory,
    shards: Sequence[int] = (1, 4),
    chunk_days: int = 7,
) -> List[str]:
    """Out-of-core-vs-in-RAM artifact differences ([] if bit-identical).

    The store-parity contract: building a sharded memmap store from
    ``triples`` and analyzing it shard-by-shard
    (:func:`repro.store.analyze_store`) must reproduce every in-RAM
    ``engine="np"`` Section-5 artifact — duration multiset and box
    stats, both degree structures, degree-one fraction, the Figure-7
    trailing-zero profile — and the store-driven streaming pass must
    match the in-memory chunked stream.  Each shard count in ``shards``
    is verified independently (1 exercises the degenerate single-shard
    merge, >1 the k-way pivot merge).  Build-mode digest parity is
    checked too: the parallel segment build and a compaction of two
    incrementally built halves must both produce byte-identical stores
    (same ``digest()``) to the serial single-pass build.  ``directory``
    holds the temporary stores (one subdirectory per shard count).
    """
    from pathlib import Path

    from repro.core.associations import fraction_degree_one
    from repro.core.associations_np import (
        association_durations_np,
        box_stats_np,
        columns_from_triples,
        unpack_v6_degree_keys,
        v4_degree_counts_np,
        v6_degree_counts_np,
    )
    from repro.core.delegation import trailing_zero_profile
    from repro.ip.prefix import IPv6Prefix
    from repro.store import analyze_store, build_store_from_triples
    from repro.stream.associations import (
        run_association_stream,
        run_association_stream_over_store,
    )

    materialized = list(triples)
    days, v4_keys, v6_keys = columns_from_triples(materialized)
    durations = association_durations_np(days, v4_keys, v6_keys)
    from collections import Counter

    ref_durations = Counter(int(d) for d in durations)
    ref_box = box_stats_np(durations, empty_ok=True)
    ref_v4_unique, ref_v4_hits = v4_degree_counts_np(v4_keys, v6_keys)
    ref_v6 = unpack_v6_degree_keys(v6_degree_counts_np(v4_keys, v6_keys))
    ref_fraction = fraction_degree_one(ref_v6)
    ref_profile = trailing_zero_profile(
        IPv6Prefix(key, 64) for key in sorted({t[2] for t in materialized})
    )
    ref_stream = run_association_stream(iter(materialized), chunk_days=chunk_days)

    diffs: List[str] = []
    for count in shards:
        label = f"shards={count}"
        store = build_store_from_triples(
            iter(materialized), Path(directory) / f"store-{count}", shards=count
        )
        if sorted(store.iter_triples()) != sorted(materialized):
            diffs.append(f"{label}: round-tripped triples diverge")
            continue
        analysis = analyze_store(store)
        if analysis.duration_counts != dict(ref_durations):
            diffs.append(f"{label}: duration multiset diverges from in-RAM np")
        if analysis.box != ref_box:
            diffs.append(f"{label}: box stats diverge from in-RAM np")
        got_unique, got_hits = analysis.v4_degree_dicts()
        if got_unique != ref_v4_unique or got_hits != ref_v4_hits:
            diffs.append(f"{label}: v4 degree counts diverge from in-RAM np")
        if analysis.v6_degree_dict() != ref_v6:
            diffs.append(f"{label}: v6 degree counts diverge from in-RAM np")
        if analysis.fraction_v6_degree_one != ref_fraction:
            diffs.append(f"{label}: degree-one fraction diverges from in-RAM np")
        if analysis.delegation != ref_profile:
            diffs.append(f"{label}: trailing-zero profile diverges from reference")
        streamed = run_association_stream_over_store(store, chunk_days=chunk_days)
        if streamed != ref_stream:
            diffs.append(f"{label}: store-driven stream diverges from chunked stream")

    # Build-mode parity: every path that finalizes a store — serial
    # writer, parallel segment build + compaction, incremental two-half
    # merge — must emit byte-identical shards (same digest()) for the
    # same triple multiset.
    from repro.store import compact_stores, parallel_build_store
    from repro.store.triples import triple_column_batches

    count = shards[-1] if shards else 4
    serial = build_store_from_triples(
        iter(materialized), Path(directory) / "parity-serial", shards=count
    )
    segment_rows = max(1, len(materialized) // 3)
    parallel = parallel_build_store(
        triple_column_batches(iter(materialized)),
        Path(directory) / "parity-parallel",
        shards=count,
        workers=2,
        segment_rows=segment_rows,
    )
    if parallel.digest() != serial.digest():
        diffs.append("parallel segment build digest diverges from serial build")
    half = len(materialized) // 2
    first = build_store_from_triples(
        iter(materialized[:half]), Path(directory) / "parity-half-a", shards=count
    )
    second = build_store_from_triples(
        iter(materialized[half:]), Path(directory) / "parity-half-b", shards=count
    )
    merged = compact_stores(
        [first, second], Path(directory) / "parity-merged", shards=count
    )
    if merged.digest() != serial.digest():
        diffs.append(
            "compacting two incrementally built stores diverges from a "
            "single-pass build"
        )
    return diffs


def assert_store_equal(
    triples: Sequence, directory, shards: Sequence[int] = (1, 4), chunk_days: int = 7
) -> None:
    """Raise AssertionError naming every out-of-core divergence."""
    diffs = store_diffs(triples, directory, shards=shards, chunk_days=chunk_days)
    if diffs:
        raise AssertionError("store analysis differs: " + "; ".join(diffs))


def telemetry_invariance_diffs(
    probes_per_as: int = 6, years: float = 1.1, seed: int = 0, workers: int = 1
) -> List[str]:
    """Telemetry-on-vs-off artifact differences ([] if bit-identical).

    The zero-perturbation contract: enabling spans + metrics must not
    touch RNG draw order or any artifact byte.  Builds and analyzes the
    same small scenario with telemetry off and on and compares scenario
    fields and every report artifact.

    ``workers > 1`` additionally runs the fused analysis through the
    process pool under both telemetry states, so cross-process span
    propagation and stitching (``pool/task`` wrappers, shipped span
    buffers, worker metric deltas) are themselves proven
    artifact-invariant.  ``os.cpu_count`` is widened for the fan-out so
    the pool path actually runs even on single-core CI hosts — this is
    a correctness probe, not a perf measurement.
    """
    import os as os_module

    from repro.obs import telemetry
    from repro.workloads import (
        analyze_atlas_scenario,
        build_atlas_scenario,
        periodicity_for_scenario,
    )

    params = dict(probes_per_as=probes_per_as, years=years, seed=seed, cache=False)

    def _fan_out(scenario):
        if workers <= 1:
            return None
        real_cpu_count = os_module.cpu_count
        os_module.cpu_count = lambda: max(workers, real_cpu_count() or 1)
        try:
            return analyze_atlas_scenario(scenario, engine="fused", workers=workers)
        finally:
            os_module.cpu_count = real_cpu_count

    with telemetry(False):
        plain = build_atlas_scenario(**params)
        plain_analysis = analyze_atlas_scenario(plain)
        plain_fused = analyze_atlas_scenario(plain, engine="fused")
        plain_pooled = _fan_out(plain)
        plain_periods = periodicity_for_scenario(plain)
    with telemetry(True, reset=True):
        traced = build_atlas_scenario(**params)
        traced_analysis = analyze_atlas_scenario(traced)
        traced_fused = analyze_atlas_scenario(traced, engine="fused")
        traced_pooled = _fan_out(traced)
        traced_periods = periodicity_for_scenario(traced)
    diffs = [
        f"telemetry: {diff}" for diff in atlas_scenario_diffs(plain, traced)
    ]
    for artifact in ("table1", "table2", "figure1", "figure5"):
        if getattr(plain_analysis, artifact) != getattr(traced_analysis, artifact):
            diffs.append(f"telemetry: {artifact} diverges with telemetry enabled")
        if getattr(plain_fused, artifact) != getattr(traced_fused, artifact):
            diffs.append(
                f"telemetry: fused {artifact} diverges with telemetry enabled"
            )
        if plain_pooled is not None and (
            getattr(plain_pooled, artifact) != getattr(traced_pooled, artifact)
        ):
            diffs.append(
                f"telemetry: pooled fused {artifact} diverges with telemetry "
                f"enabled (workers={workers})"
            )
    if plain_periods != traced_periods:
        diffs.append("telemetry: periodicity diverges with telemetry enabled")
    return diffs


def assert_telemetry_invariant(
    probes_per_as: int = 6, years: float = 1.1, seed: int = 0, workers: int = 1
) -> None:
    """Raise AssertionError naming every telemetry-induced divergence."""
    diffs = telemetry_invariance_diffs(probes_per_as, years, seed, workers=workers)
    if diffs:
        raise AssertionError("telemetry perturbs results: " + "; ".join(diffs))


def serve_diffs(
    scenario: "AtlasScenario" = None,
    probes_per_as: int = 4,
    years: float = 0.5,
    seed: int = 0,
    max_prefixes: int = 4,
    budget: int = 8,
) -> List[str]:
    """Served-vs-direct parity differences ([] if bit-identical).

    The serving contract: every answer out of
    :class:`repro.serve.engine.QueryEngine` — batched *or* sequential —
    must be bit-identical to
    :func:`repro.serve.engine.compute_direct`, the pure-Python
    per-probe walk through the same :mod:`repro.core.report` /
    periodicity kernels that ``workloads.analyze_atlas_scenario``'s
    ``"py"`` engine runs.  Queries are harvested from the scenario
    itself so all four families are exercised on observed targets (plus
    deliberately unobserved prefixes for the empty-membership path, and
    shorter-than-/64 supernets for the multi-group batch path).
    """
    from repro.ip import parse_prefix
    from repro.serve.engine import QueryEngine, compute_direct, observed_prefixes
    from repro.serve.queries import (
        DualStackQuery,
        HitlistQuery,
        LifetimeQuery,
        StabilityQuery,
    )
    from repro.workloads import build_atlas_scenario

    if scenario is None:
        scenario = build_atlas_scenario(
            probes_per_as=probes_per_as, years=years, seed=seed, cache=False
        )
    queries = []
    v4_prefixes = observed_prefixes(scenario, 4, 24, limit=max_prefixes)
    v6_prefixes = observed_prefixes(scenario, 6, 64, limit=max_prefixes)
    for prefix in v4_prefixes + v6_prefixes:
        queries.append(StabilityQuery(prefix))
        queries.append(DualStackQuery(prefix))
    for prefix in v6_prefixes:
        queries.append(HitlistQuery(prefix, budget=budget, seed=seed))
        queries.append(StabilityQuery(prefix.supernet(56)))
    for name in scenario.isps:
        queries.append(LifetimeQuery(name))
    queries.append(StabilityQuery(parse_prefix("198.51.100.0/24")))
    queries.append(DualStackQuery(parse_prefix("2001:db8::/64")))

    engine = QueryEngine(scenario)
    batched = engine.run_batch(queries)
    sequential = [engine.run(query) for query in queries]
    diffs: List[str] = []
    for query, served, single in zip(queries, batched, sequential):
        label = (
            f"{type(query).__name__}"
            f"({getattr(query, 'prefix', getattr(query, 'network', ''))})"
        )
        if served != single:
            diffs.append(f"{label}: batched result diverges from sequential")
        direct = compute_direct(scenario, query)
        if served != direct:
            diffs.append(f"{label}: served result diverges from direct computation")
    return diffs


def assert_serve_equal(
    scenario: "AtlasScenario" = None,
    probes_per_as: int = 4,
    years: float = 0.5,
    seed: int = 0,
) -> None:
    """Raise AssertionError naming every served-query divergence."""
    diffs = serve_diffs(
        scenario, probes_per_as=probes_per_as, years=years, seed=seed
    )
    if diffs:
        raise AssertionError("served queries differ: " + "; ".join(diffs))


def assert_atlas_scenarios_equal(a: AtlasScenario, b: AtlasScenario) -> None:
    """Raise AssertionError naming every diverging Atlas scenario field."""
    diffs = atlas_scenario_diffs(a, b)
    if diffs:
        raise AssertionError("Atlas scenarios differ: " + "; ".join(diffs))


def assert_cdn_scenarios_equal(a: CdnScenario, b: CdnScenario) -> None:
    """Raise AssertionError naming every diverging CDN scenario field."""
    diffs = cdn_scenario_diffs(a, b)
    if diffs:
        raise AssertionError("CDN scenarios differ: " + "; ".join(diffs))


__all__ = [
    "analysis_engine_diffs",
    "assert_analysis_engines_equal",
    "assert_atlas_scenarios_equal",
    "assert_cdn_scenarios_equal",
    "assert_fused_engines_equal",
    "assert_serve_equal",
    "assert_store_equal",
    "assert_streaming_replay_equal",
    "assert_telemetry_invariant",
    "atlas_scenario_diffs",
    "cdn_scenario_diffs",
    "fused_engine_diffs",
    "serve_diffs",
    "store_diffs",
    "streaming_replay_diffs",
    "telemetry_invariance_diffs",
]
