"""Lightweight stage timers and the ``BENCH_baseline.json`` artifact.

:class:`StageTimer` accumulates named wall-clock stages (a stage used
twice accumulates).  :func:`write_baseline` merges a named section into
the repo-root ``BENCH_baseline.json``, the repository's perf trajectory
artifact: the benchmark session records scenario *build* and per-test
*analysis* timings there, and ``scripts/bench_baseline.py`` records the
serial-vs-parallel build baseline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional

def repo_root() -> Path:
    """The repository checkout root, or the CWD outside a checkout.

    ``src/repro/perf/timing.py`` is three levels below the repo root in
    a checkout, but when the package is installed (site-packages) that
    ancestor is a Python prefix that artifacts must never be written
    into — so the ancestor only counts when it actually looks like this
    repository (has a ``pyproject.toml``); otherwise artifacts land in
    the current working directory.
    """
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "pyproject.toml").is_file():
        return candidate
    return Path.cwd()


#: Repo-root perf artifact (CWD when installed outside a checkout).
DEFAULT_BASELINE_PATH = repo_root() / "BENCH_baseline.json"

#: Append-only run log kept next to the baseline artifact.
DEFAULT_HISTORY_PATH = DEFAULT_BASELINE_PATH.with_name("BENCH_history.jsonl")


class StageTimer:
    """Accumulate wall-clock seconds per named stage, in first-use order."""

    def __init__(self) -> None:
        self._stages: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (re-entry accumulates)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage ``name``."""
        if seconds < 0:
            raise ValueError("stage duration must be non-negative")
        self._stages[name] = self._stages.get(name, 0.0) + float(seconds)

    def __getitem__(self, name: str) -> float:
        return self._stages[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    @property
    def total(self) -> float:
        return sum(self._stages.values())

    def as_dict(self, digits: int = 4) -> Dict[str, float]:
        """Stage -> seconds mapping, rounded for stable artifacts."""
        return {name: round(seconds, digits) for name, seconds in self._stages.items()}


def current_rss_bytes() -> Optional[int]:
    """This process's resident set size in bytes (``None`` if unknown).

    Reads ``VmRSS`` from ``/proc/self/status`` where available (Linux),
    falling back to ``resource.getrusage`` — whose ``ru_maxrss`` is the
    lifetime *peak* in kilobytes on Linux, so the fallback overstates
    the instantaneous value but still bounds it.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, ValueError):
        return None
    # Linux reports kilobytes; macOS reports bytes.
    return peak * 1024 if os.uname().sysname == "Linux" else peak


class RssSampler:
    """Background thread tracking peak resident memory over a region.

    Use as a context manager around the stage being measured; the
    ``peak_bytes`` property holds the largest RSS sample observed
    (``None`` when RSS could not be read on this platform).  Sampling
    happens on a daemon thread so the measured code needs no hooks, at
    the cost of granularity: a short-lived spike between samples can be
    missed.  The default 20 ms interval is fine for chunk-scale work.
    """

    def __init__(self, interval: float = 0.02) -> None:
        self.interval = float(interval)
        self.peak_bytes: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample(self) -> None:
        """Take one sample immediately (also called by the thread)."""
        rss = current_rss_bytes()
        if rss is not None and (self.peak_bytes is None or rss > self.peak_bytes):
            self.peak_bytes = rss

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def __enter__(self) -> "RssSampler":
        self.sample()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.sample()


def read_baseline(path: Optional[os.PathLike] = None) -> dict:
    """The current ``BENCH_baseline.json`` contents ({} when absent/corrupt)."""
    target = Path(path or DEFAULT_BASELINE_PATH)
    try:
        data = json.loads(target.read_text())
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def write_baseline(section: str, payload: dict, path: Optional[os.PathLike] = None) -> dict:
    """Merge ``payload`` under ``section`` into the baseline artifact.

    Other sections are preserved, so the benchmark harness and the
    bench-baseline script can each own their part of the file.  Returns
    the full merged document.
    """
    target = Path(path or DEFAULT_BASELINE_PATH)
    data = read_baseline(target)
    data[section] = payload
    data["updated"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    temp = target.with_name(f"{target.name}.tmp{os.getpid()}")
    temp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    os.replace(temp, target)
    return data


def append_history(
    section: str, payload: dict, path: Optional[os.PathLike] = None
) -> Path:
    """Append one run's payload as a JSON line to ``BENCH_history.jsonl``.

    Where :func:`write_baseline` keeps only the latest run per section,
    the history file accumulates every run, so perf trends over time
    stay inspectable.  Returns the history file path.
    """
    target = Path(path or DEFAULT_HISTORY_PATH)
    record = {
        "section": section,
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **payload,
    }
    with target.open("a") as stream:
        stream.write(json.dumps(record, sort_keys=True) + "\n")
    return target


__all__ = [
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_HISTORY_PATH",
    "RssSampler",
    "StageTimer",
    "append_history",
    "current_rss_bytes",
    "read_baseline",
    "repo_root",
    "write_baseline",
]
