"""The performance engine: parallel fan-out, scenario cache, stage timing.

See ``docs/architecture.md`` ("Performance engine") for the determinism
contract and the ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` environment
knobs.
"""

from repro.perf.cache import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    ScenarioCache,
    code_fingerprint,
    get_scenario_cache,
    resolve_cache_flag,
)
from repro.perf.parallel import (
    WORKERS_ENV,
    collect_associations,
    effective_workers,
    resolve_workers,
    run_isp_simulations,
)
from repro.perf.profiling import PROFILE_DIR_ENV, PROFILE_ENV, maybe_profile
from repro.perf.timing import (
    DEFAULT_BASELINE_PATH,
    RssSampler,
    StageTimer,
    current_rss_bytes,
    read_baseline,
    write_baseline,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "DEFAULT_BASELINE_PATH",
    "PROFILE_DIR_ENV",
    "PROFILE_ENV",
    "RssSampler",
    "ScenarioCache",
    "StageTimer",
    "WORKERS_ENV",
    "code_fingerprint",
    "collect_associations",
    "current_rss_bytes",
    "effective_workers",
    "get_scenario_cache",
    "maybe_profile",
    "read_baseline",
    "resolve_cache_flag",
    "resolve_workers",
    "run_isp_simulations",
    "write_baseline",
]
