"""The performance engine: parallel fan-out, scenario cache, stage timing.

See ``docs/architecture.md`` ("Performance engine") for the determinism
contract and the ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` environment
knobs.
"""

from repro.perf.cache import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    ScenarioCache,
    code_fingerprint,
    get_scenario_cache,
    resolve_cache_flag,
)
from repro.perf.parallel import (
    WORKERS_ENV,
    collect_associations,
    resolve_workers,
    run_isp_simulations,
)
from repro.perf.timing import (
    DEFAULT_BASELINE_PATH,
    StageTimer,
    read_baseline,
    write_baseline,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "DEFAULT_BASELINE_PATH",
    "ScenarioCache",
    "StageTimer",
    "WORKERS_ENV",
    "code_fingerprint",
    "collect_associations",
    "get_scenario_cache",
    "read_baseline",
    "resolve_cache_flag",
    "resolve_workers",
    "run_isp_simulations",
    "write_baseline",
]
