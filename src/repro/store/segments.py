"""Parallel segment writers and k-way compaction for triple stores.

The serial :class:`~repro.store.triples.TripleStoreWriter` appends every
chunk to every shard in one process, so at paper scale ingest — not
analysis — dominates wall clock.  This module parallelizes the build
the way the CDN-log literature does (partitioned ingest, deterministic
merge):

1. **Segment write** (:func:`write_segment`, fanned out via
   :func:`repro.perf.parallel.map_streamed`): the input column stream
   is re-chunked into ~``segment_rows``-row slabs and each worker
   shard-scatters its slab into a private *segment* directory — the
   same ``shard-NNNN.<column>`` file layout as a store, per-shard
   checksums in a ``segment.json`` seal, but rows unsorted and no store
   manifest, so a half-written segment can never masquerade as data.
2. **Compaction** (:func:`compact_stores` /
   :func:`parallel_build_store`): one pass per *output* shard gathers
   that shard's rows from every source (segments or finalized stores),
   k-way merges them through the canonical ``(v6, day, v4)`` lexsort of
   :func:`repro.store.triples.write_shard_columns`, and checksums the
   sorted columns in memory.  Because the serial writer finalizes
   through the same sort-and-write primitive, a parallel build compacts
   to a **byte-identical** store — same :meth:`TripleStore.digest` — as
   a serial build of the same input, which is what keeps
   digest-addressed streaming checkpoints valid across build modes.

The same compaction entry point merges multiple finalized stores
(incremental append-then-compact) and re-shards when the source and
target shard counts differ, re-hashing each row with
:func:`~repro.store.triples.shard_of_v4`.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import get_logger, metric_inc, span
from repro.store.triples import (
    COLUMN_DTYPES,
    COLUMNS,
    StoreCorruptError,
    TripleStore,
    _checksum_of_arrays,
    _shard_file,
    normalize_columns,
    shard_of_v4,
    write_shard_columns,
    write_store_manifest,
)

_log = get_logger("store.segments")

SEGMENT_FORMAT = "repro-triple-segment"
SEGMENT_FORMAT_VERSION = 1

SEGMENT_MANIFEST_NAME = "segment.json"

#: Rows per segment slab handed to one worker (~56 MiB of pickled
#: columns at 14 bytes/row — big enough to amortize IPC, small enough
#: that a handful of in-flight slabs stay comfortably in RAM).
DEFAULT_SEGMENT_ROWS = 1 << 22


@dataclass(frozen=True)
class ShardSource:
    """One sealed shard-file directory feeding a compaction pass.

    Both finalized stores and sealed segments qualify — they share the
    ``shard-NNNN.<column>`` layout, which is what lets one merge core
    serve parallel builds and incremental store merges alike.  Plain
    data, so it pickles cheaply into pool workers.
    """

    directory: str
    shards: int
    shard_rows: Tuple[int, ...]


def write_segment(
    directory, days: np.ndarray, v4_keys: np.ndarray, v6_keys: np.ndarray,
    shards: int,
) -> dict:
    """Shard-scatter one column slab into a sealed segment directory.

    Rows are written **unsorted** (compaction owns the canonical sort),
    one scatter pass like the serial writer's ``append_columns``.  The
    ``segment.json`` seal — format, per-shard row counts and per-shard
    checksums — is written atomically last, so torn segments are
    detectable.  Returns the seal metadata.
    """
    directory = Path(directory).expanduser()
    day_col, v4_col, v6_col = normalize_columns(days, v4_keys, v6_keys)
    directory.mkdir(parents=True)
    shard_rows = [0] * shards
    checksums = [""] * shards
    empty = (
        np.empty(0, dtype=np.uint16),
        np.empty(0, dtype=np.uint32),
        np.empty(0, dtype=np.uint64),
    )
    scattered = {}
    if len(day_col):
        shard_ids = shard_of_v4(v4_col, shards)
        order = np.argsort(shard_ids, kind="stable")
        sorted_ids = shard_ids[order]
        present, starts = np.unique(sorted_ids, return_index=True)
        bounds = np.append(starts, len(sorted_ids))
        for position, shard in enumerate(present):
            select = order[bounds[position] : bounds[position + 1]]
            scattered[int(shard)] = (
                day_col[select], v4_col[select], v6_col[select]
            )
    for shard in range(shards):
        shard_days, shard_v4, shard_v6 = scattered.get(shard, empty)
        for column, array in (
            ("day", shard_days), ("v4", shard_v4), ("v6", shard_v6)
        ):
            array.tofile(_shard_file(directory, shard, column))
        shard_rows[shard] = len(shard_days)
        checksums[shard] = _checksum_of_arrays(shard_days, shard_v4, shard_v6)
    seal = {
        "format": SEGMENT_FORMAT,
        "version": SEGMENT_FORMAT_VERSION,
        "shards": int(shards),
        "dtypes": dict(COLUMN_DTYPES),
        "shard_rows": shard_rows,
        "shard_checksums": checksums,
        "rows": len(day_col),
    }
    temp = directory / f"{SEGMENT_MANIFEST_NAME}.tmp{os.getpid()}"
    temp.write_text(json.dumps(seal, sort_keys=True, indent=1) + "\n")
    os.replace(temp, directory / SEGMENT_MANIFEST_NAME)
    metric_inc("store.segments_written")
    metric_inc("store.segment_rows", value=len(day_col))
    return seal


def load_segment(directory, verify: bool = False) -> ShardSource:
    """Open a sealed segment as a compaction source, validating it.

    Structural checks (seal shape, file sizes vs recorded row counts)
    always run; ``verify=True`` additionally re-hashes every shard
    against the seal checksums.  Raises :class:`StoreCorruptError` on
    any damage — an unsealed or torn segment never feeds a merge.
    """
    directory = Path(directory).expanduser()
    seal_path = directory / SEGMENT_MANIFEST_NAME
    try:
        seal = json.loads(seal_path.read_text())
    except FileNotFoundError as exc:
        raise StoreCorruptError(f"no segment seal in {directory}") from exc
    except (OSError, ValueError) as exc:
        raise StoreCorruptError(
            f"unreadable segment seal in {directory}: {exc}"
        ) from exc
    try:
        if seal["format"] != SEGMENT_FORMAT:
            raise StoreCorruptError(f"not a {SEGMENT_FORMAT} directory: {directory}")
        if seal["version"] != SEGMENT_FORMAT_VERSION:
            raise StoreCorruptError(
                f"unsupported segment version {seal['version']!r}"
            )
        shards = int(seal["shards"])
        rows = [int(count) for count in seal["shard_rows"]]
        checksums = list(seal["shard_checksums"])
        if shards < 1 or len(rows) != shards or len(checksums) != shards:
            raise StoreCorruptError("segment seal shard bookkeeping inconsistent")
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreCorruptError(
            f"malformed segment seal in {directory}: {exc}"
        ) from exc
    for shard in range(shards):
        for column in COLUMNS:
            path = _shard_file(directory, shard, column)
            expected = rows[shard] * np.dtype(COLUMN_DTYPES[column]).itemsize
            try:
                actual = path.stat().st_size
            except FileNotFoundError as exc:
                raise StoreCorruptError(
                    f"missing segment shard file {path.name}"
                ) from exc
            if actual != expected:
                raise StoreCorruptError(
                    f"{path.name}: {actual} bytes on disk, seal says {expected}"
                )
    if verify:
        source = ShardSource(str(directory), shards, tuple(rows))
        for shard in range(shards):
            days, v4, v6 = _read_source_shard(source, shard)
            if _checksum_of_arrays(days, v4, v6) != checksums[shard]:
                raise StoreCorruptError(
                    f"segment shard {shard} checksum mismatch"
                )
    return ShardSource(str(directory), shards, tuple(rows))


# ---------------------------------------------------------------------------
# Compaction: k-way merge of shard sources into a finalized store
# ---------------------------------------------------------------------------


def _read_source_shard(
    source: ShardSource, shard: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One source shard's columns, read fully into RAM."""
    rows = source.shard_rows[shard]
    if rows == 0:
        return (
            np.empty(0, dtype=np.uint16),
            np.empty(0, dtype=np.uint32),
            np.empty(0, dtype=np.uint64),
        )
    directory = Path(source.directory)
    columns = {
        column: np.fromfile(
            _shard_file(directory, shard, column), dtype=COLUMN_DTYPES[column]
        )
        for column in COLUMNS
    }
    return columns["day"], columns["v4"], columns["v6"]


def compact_shard(
    index: int,
    sources: Sequence[ShardSource],
    out_shards: int,
    out_directory: str,
) -> dict:
    """Merge one output shard from every source and write it canonically.

    Sources whose shard count matches the target contribute their
    ``index``-th shard directly (the hash assignment is identical);
    mismatched sources are re-hashed row-by-row with
    :func:`shard_of_v4`.  The gathered rows go through the same
    sort-and-write primitive as the serial writer's finalize, so the
    output bytes depend only on the merged row multiset.  Runs inside
    pool workers (module-level, pickles by reference).
    """
    parts_day: List[np.ndarray] = []
    parts_v4: List[np.ndarray] = []
    parts_v6: List[np.ndarray] = []
    for source in sources:
        if source.shards == out_shards:
            days, v4, v6 = _read_source_shard(source, index)
            if len(days):
                parts_day.append(days)
                parts_v4.append(v4)
                parts_v6.append(v6)
            continue
        for shard in range(source.shards):
            days, v4, v6 = _read_source_shard(source, shard)
            if not len(days):
                continue
            mask = shard_of_v4(v4, out_shards) == index
            if mask.any():
                parts_day.append(days[mask])
                parts_v4.append(v4[mask])
                parts_v6.append(v6[mask])
    if parts_day:
        days = np.concatenate(parts_day)
        v4 = np.concatenate(parts_v4)
        v6 = np.concatenate(parts_v6)
    else:
        days = np.empty(0, dtype=np.uint16)
        v4 = np.empty(0, dtype=np.uint32)
        v6 = np.empty(0, dtype=np.uint64)
    checksum = write_shard_columns(Path(out_directory), index, days, v4, v6)
    metric_inc("store.compact_merges")
    metric_inc("store.compact_rows", value=len(days))
    return {
        "shard": index,
        "rows": len(days),
        "checksum": checksum,
        "day_min": int(days.min()) if len(days) else None,
        "day_max": int(days.max()) if len(days) else None,
    }


def compact_sources(
    sources: Sequence[ShardSource],
    directory,
    shards: int,
    workers: Optional[int] = None,
    source: Optional[dict] = None,
) -> TripleStore:
    """K-way merge shard sources into a new finalized store directory.

    Fans :func:`compact_shard` out over the output shards via
    :func:`repro.perf.parallel.map_streamed` (each merge is
    independent), then writes the store manifest from the per-shard
    results.  The output directory must not exist yet — like the serial
    writer, a killed compaction leaves no manifest and therefore no
    openable store.
    """
    from repro.perf.parallel import map_streamed

    directory = Path(directory).expanduser()
    if directory.exists():
        raise FileExistsError(f"store directory already exists: {directory}")
    directory.mkdir(parents=True)
    with span("store/compact", sources=len(sources), shards=shards):
        task = partial(
            compact_shard,
            sources=tuple(sources),
            out_shards=shards,
            out_directory=str(directory),
        )
        results = list(
            map_streamed(task, range(shards), workers=workers, kind="store_compact")
        )
    day_mins = [meta["day_min"] for meta in results if meta["day_min"] is not None]
    day_maxs = [meta["day_max"] for meta in results if meta["day_max"] is not None]
    write_store_manifest(
        directory,
        shards,
        [meta["rows"] for meta in results],
        [meta["checksum"] for meta in results],
        sum(meta["rows"] for meta in results),
        min(day_mins) if day_mins else None,
        max(day_maxs) if day_maxs else None,
        source,
    )
    _log.info(
        "store compacted",
        extra={
            "dir": str(directory),
            "sources": len(sources),
            "rows": sum(meta["rows"] for meta in results),
        },
    )
    return TripleStore.open(directory)


def compact_stores(
    stores: Sequence[Union[TripleStore, str, Path]],
    directory,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    source: Optional[dict] = None,
) -> TripleStore:
    """Merge finalized stores into one — the incremental-append workflow.

    ``stores`` are open :class:`TripleStore` instances or directory
    paths; ``shards`` defaults to the first store's count (pass a
    different count to re-shard while merging).  Because every build
    path finalizes in canonical row order, compacting stores built from
    input halves is bit-identical — same :meth:`TripleStore.digest` —
    to a single-pass build over the concatenated input.
    """
    opened = [
        store if isinstance(store, TripleStore) else TripleStore.open(store)
        for store in stores
    ]
    if not opened:
        raise ValueError("compact_stores needs at least one store")
    out_shards = int(shards) if shards is not None else opened[0].shards
    if out_shards < 1:
        raise ValueError(f"shards must be >= 1, got {out_shards}")
    sources = [
        ShardSource(str(store.directory), store.shards, tuple(store.shard_rows))
        for store in opened
    ]
    return compact_sources(
        sources, directory, out_shards, workers=workers, source=source
    )


# ---------------------------------------------------------------------------
# Parallel build: stream -> segment writers -> compaction
# ---------------------------------------------------------------------------


def _write_segment_unit(unit, base: str, shards: int) -> dict:
    """Pool task: write slab ``unit`` as segment ``index`` under ``base``."""
    index, days, v4_keys, v6_keys = unit
    directory = Path(base) / f"segment-{index:04d}"
    seal = write_segment(directory, days, v4_keys, v6_keys, shards)
    return {"directory": str(directory), "shard_rows": seal["shard_rows"]}


def _slab_units(
    batches: Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    segment_rows: int,
) -> Iterator[Tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
    """Re-chunk a column-batch stream into ~``segment_rows``-row slabs.

    Validates and narrows each batch parent-side (so workers never see
    malformed input and the pickled slabs carry the compact on-disk
    dtypes), then accumulates until a slab is full.  Yields
    ``(index, days, v4, v6)`` units for :func:`_write_segment_unit`.
    """
    buffer: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    buffered = 0
    index = 0
    for days, v4_keys, v6_keys in batches:
        columns = normalize_columns(days, v4_keys, v6_keys)
        if not len(columns[0]):
            continue
        buffer.append(columns)
        buffered += len(columns[0])
        if buffered >= segment_rows:
            yield (
                index,
                np.concatenate([part[0] for part in buffer]),
                np.concatenate([part[1] for part in buffer]),
                np.concatenate([part[2] for part in buffer]),
            )
            index += 1
            buffer = []
            buffered = 0
    if buffer:
        yield (
            index,
            np.concatenate([part[0] for part in buffer]),
            np.concatenate([part[1] for part in buffer]),
            np.concatenate([part[2] for part in buffer]),
        )


def parallel_build_store(
    batches: Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    directory,
    shards: int = 16,
    workers: Optional[int] = None,
    segment_rows: Optional[int] = None,
    source: Optional[dict] = None,
) -> TripleStore:
    """Segment-writer fan-out + compaction build from columnar batches.

    The input stream is re-chunked into ``segment_rows``-row slabs and
    fanned out to segment writers (bounded in-flight, so generation
    overlaps writing); the sealed segments are then k-way compacted per
    shard into the finalized store and the staging directory is
    removed.  Always runs the segment pipeline — with one effective
    worker both stages simply execute serially — and compacts to the
    byte-identical store a serial ``build_store_from_columns`` of the
    same input would produce.
    """
    directory = Path(directory).expanduser()
    if directory.exists():
        raise FileExistsError(f"store directory already exists: {directory}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    rows_per_segment = (
        int(segment_rows) if segment_rows is not None else DEFAULT_SEGMENT_ROWS
    )
    if rows_per_segment < 1:
        raise ValueError(f"segment_rows must be >= 1, got {rows_per_segment}")
    from repro.perf.parallel import map_streamed

    directory.parent.mkdir(parents=True, exist_ok=True)
    staging = Path(
        tempfile.mkdtemp(
            prefix=f".{directory.name}-segments-", dir=directory.parent
        )
    )
    try:
        with span("store/parallel_build", shards=shards):
            task = partial(_write_segment_unit, base=str(staging), shards=shards)
            metas = list(
                map_streamed(
                    task,
                    _slab_units(batches, rows_per_segment),
                    workers=workers,
                    kind="store_segment",
                )
            )
            sources = [
                ShardSource(
                    meta["directory"], shards, tuple(meta["shard_rows"])
                )
                for meta in metas
            ]
            _log.debug(
                "segments written, compacting",
                extra={"segments": len(sources), "shards": shards},
            )
            return compact_sources(
                sources, directory, shards, workers=workers, source=source
            )
    finally:
        shutil.rmtree(staging, ignore_errors=True)


__all__ = [
    "DEFAULT_SEGMENT_ROWS",
    "SEGMENT_FORMAT",
    "SEGMENT_FORMAT_VERSION",
    "SEGMENT_MANIFEST_NAME",
    "ShardSource",
    "compact_shard",
    "compact_sources",
    "compact_stores",
    "load_segment",
    "parallel_build_store",
    "write_segment",
]
