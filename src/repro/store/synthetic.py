"""Deterministic synthetic CDN triple feeds for out-of-core benchmarks.

The bench harness needs a tuple volume no fixture CSV can supply
(ISSUE: ≥100M rows) with association structure worth analyzing: each
/64 keeps a mostly-stable /24 partner that occasionally switches, so
durations, degrees and trailing-zero delegation all come out non-trivial.
Batches are columnar (ready for
:meth:`repro.store.TripleStoreWriter.append_columns`) and fully
determined by ``(seed, total, batch_rows)`` — the same parameters
always replay the same feed, which the parity checks rely on.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

#: Documentation-range IPv6 base (2001:db8::/32) for synthetic /64 keys.
_V6_BASE = np.uint64(0x20010DB8) << np.uint64(32)

_HASH_A = np.uint64(0x9E3779B97F4A7C15)


def _stable_partner(v6_ids: np.ndarray, v4_pool: int) -> np.ndarray:
    """Each /64's preferred /24, as a deterministic hash of its id."""
    mixed = (v6_ids * _HASH_A) >> np.uint64(33)
    return (mixed % np.uint64(v4_pool)).astype(np.uint64)


def synthetic_triple_batches(
    total: int,
    batch_rows: int = 1 << 20,
    seed: int = 0,
    days: int = 120,
    v4_pool: int = 200_000,
    v6_pool: int = 2_000_000,
    switch_prob: float = 0.1,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(days, v4_keys, v6_upper_keys)`` batches, ``total`` rows overall.

    Each row picks a /64 uniformly; with probability ``1 - switch_prob``
    it reports its stable /24 partner, otherwise a random one (an
    address reassignment).  /64 keys vary their trailing-zero nibbles
    (id shifted by 0/4/8/12 bits) so the Figure-7 delegation profile has
    mass at several boundaries.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    rng = np.random.default_rng(seed)
    emitted = 0
    while emitted < total:
        n = min(batch_rows, total - emitted)
        day = rng.integers(0, days, size=n, dtype=np.int64)
        v6_ids = rng.integers(0, v6_pool, size=n, dtype=np.uint64)
        partner = _stable_partner(v6_ids, v4_pool)
        switched = rng.random(n) < switch_prob
        random_partner = rng.integers(0, v4_pool, size=n, dtype=np.uint64)
        v4_ids = np.where(switched, random_partner, partner)
        v4_keys = v4_ids << np.uint64(8)  # distinct /24 network addresses
        # Nibble-shift per /64 (deterministic in the id) varies trailing zeros.
        shift = ((v6_ids * _HASH_A) >> np.uint64(61)) % np.uint64(4)
        v6_keys = _V6_BASE | (v6_ids << (shift * np.uint64(4)))
        yield day, v4_keys, v6_keys
        emitted += n


__all__ = ["synthetic_triple_batches"]
