"""Out-of-core association/degree/delegation kernels over a triple store.

The in-RAM path feeds one giant columnar array into
:mod:`repro.core.associations_np`.  Here the same Section-5 artifacts
are computed shard by shard so peak memory tracks the largest *shard*,
not the store:

1. **Per-shard pass** (:func:`sort_shard_to_scratch`, fanned out via
   :func:`repro.perf.parallel.map_store_shards`): memmap one shard,
   lexsort it ``(v6, day, v4)`` into scratch column files, and drop the
   shard's degree partials next to them.  Because rows are sharded by
   /24, per-/24 degree partials are *complete* (a /24 never spans
   shards) and per-/64 partials count disjoint ``(v6, v4)`` pair sets —
   both merge with a concatenate-and-sort, no re-counting.
2. **Streamed k-way merge** (:func:`merged_duration_histogram`): the
   sorted scratch runs are memmapped and consumed in blocks bounded by
   a *pivot* — the smallest ``v6`` value at any shard's candidate block
   end.  Taking every row with ``v6 <= pivot`` from every shard (a
   ``searchsorted`` per shard) guarantees each block holds only
   **complete /64 groups**, so the stock
   :func:`~repro.core.associations_np.association_durations_np` kernel
   runs per block with no carry state, and durations accumulate into a
   bounded histogram (days are uint16, so durations fit in <=65537
   buckets).
3. **Reduction**: exact box stats from the histogram
   (:func:`~repro.core.associations_np.box_stats_from_counts`), degree
   arrays from the merged partials, and the Figure-7 trailing-zero
   profile from the global distinct-/64 key set — all bit-identical to
   the in-RAM ``engine="np"`` artifacts (enforced by
   :func:`repro.perf.verify.store_diffs`).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.associations import BoxStats
from repro.core.associations_np import (
    association_durations_np,
    box_stats_from_counts,
    degree_count_arrays,
)
from repro.core.delegation import TrailingZeroProfile, trailing_zero_profile_np
from repro.obs import get_logger, metric_inc, metric_observe, span
from repro.store.triples import TripleStore

_log = get_logger("store.kernels")

#: Default merge block size (rows per shard per merge step).
DEFAULT_BLOCK_ROWS = 1 << 20

_SCRATCH_DTYPES = {"day": "<u2", "v4": "<u4", "v6": "<u8", "count": "<i8"}


def _scratch_file(scratch: Path, kind: str, shard: int, column: str) -> Path:
    return scratch / f"{kind}-{shard:04d}.{column}"


def _write_scratch(
    scratch: Path, kind: str, shard: int, column: str, array: np.ndarray
) -> None:
    array.astype(_SCRATCH_DTYPES[column]).tofile(
        _scratch_file(scratch, kind, shard, column)
    )
    metric_inc("store.spill_events")


def _read_scratch(
    scratch: Path, kind: str, shard: int, column: str, rows: int
) -> np.ndarray:
    if rows == 0:
        return np.empty(0, dtype=_SCRATCH_DTYPES[column])
    return np.memmap(
        _scratch_file(scratch, kind, shard, column),
        dtype=_SCRATCH_DTYPES[column],
        mode="r",
        shape=(rows,),
    )


def sort_shard_to_scratch(store: TripleStore, index: int, scratch: str) -> dict:
    """Per-shard pass: sorted run + degree partials, written to scratch.

    Runs inside pool workers (module-level, so it pickles by
    reference via :func:`functools.partial`).  Returns only row counts
    — the arrays themselves stay on disk for the parent to memmap.

    For **canonical** stores (format v2, rows finalized in the
    ``(v6, day, v4)`` order this pass would impose) the sort and the
    scratch copy of the run are skipped entirely — the merge reads the
    shard's own memmapped columns as the sorted run, saving a full
    lexsort plus one store's worth of scratch writes per analysis.
    """
    kernel_start = time.perf_counter()
    scratch_dir = Path(scratch)
    shard = store.shard(index)
    rows = len(shard)
    if rows == 0:
        return {"shard": index, "rows": 0, "v4_groups": 0, "v6_groups": 0}
    if not store.canonical:
        order = np.lexsort((shard.v4, shard.days, shard.v6))
        _write_scratch(
            scratch_dir, "sorted", index, "day", np.asarray(shard.days)[order]
        )
        _write_scratch(scratch_dir, "sorted", index, "v4", np.asarray(shard.v4)[order])
        _write_scratch(scratch_dir, "sorted", index, "v6", np.asarray(shard.v6)[order])

    v4_keys, v4_unique, v4_hits = degree_count_arrays(
        np.asarray(shard.v4), np.asarray(shard.v6)
    )
    _write_scratch(scratch_dir, "v4deg", index, "v4", v4_keys)
    _write_scratch(scratch_dir, "v4deg", index, "count", v4_unique)
    _write_scratch(scratch_dir, "v4hit", index, "count", v4_hits)

    v6_keys, v6_unique, _v6_hits = degree_count_arrays(
        np.asarray(shard.v6), np.asarray(shard.v4)
    )
    _write_scratch(scratch_dir, "v6deg", index, "v6", v6_keys)
    _write_scratch(scratch_dir, "v6deg", index, "count", v6_unique)
    metric_observe("store.shard.seconds", time.perf_counter() - kernel_start)
    return {
        "shard": index,
        "rows": rows,
        "v4_groups": len(v4_keys),
        "v6_groups": len(v6_keys),
    }


def merged_duration_histogram(
    store: TripleStore,
    scratch: Path,
    shard_rows: List[int],
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """Streamed pivot merge of the sorted runs into a duration histogram.

    ``histogram[d]`` counts association runs lasting exactly ``d`` days.
    Each merge step picks ``pivot = min`` over active shards of the
    ``v6`` value ``block_rows`` ahead, then drains **all** rows with
    ``v6 <= pivot`` from every shard — at least one row per step (the
    pivot shard's), and never a split /64 group, so the in-RAM duration
    kernel applies per block unchanged.

    Canonical stores skip the scratch runs: their shard files *are*
    ``(v6, day, v4)``-sorted, so the merge consumes the store's own
    memmapped columns directly.
    """
    day_max = store.day_max if store.day_max is not None else 0
    histogram = np.zeros(day_max + 2, dtype=np.int64)
    if store.canonical:
        shard_columns = [store.shard(index) for index in range(len(shard_rows))]
        v6_runs = [columns.v6 for columns in shard_columns]
        day_runs = [columns.days for columns in shard_columns]
        v4_runs = [columns.v4 for columns in shard_columns]
    else:
        v6_runs = [
            _read_scratch(scratch, "sorted", shard, "v6", rows)
            for shard, rows in enumerate(shard_rows)
        ]
        day_runs = [
            _read_scratch(scratch, "sorted", shard, "day", rows)
            for shard, rows in enumerate(shard_rows)
        ]
        v4_runs = [
            _read_scratch(scratch, "sorted", shard, "v4", rows)
            for shard, rows in enumerate(shard_rows)
        ]
    offsets = [0] * len(shard_rows)
    while True:
        active = [s for s in range(len(shard_rows)) if offsets[s] < shard_rows[s]]
        if not active:
            break
        pivot = min(
            v6_runs[s][min(offsets[s] + block_rows, shard_rows[s]) - 1] for s in active
        )
        parts_day: List[np.ndarray] = []
        parts_v4: List[np.ndarray] = []
        parts_v6: List[np.ndarray] = []
        for s in active:
            take = int(
                np.searchsorted(v6_runs[s][offsets[s] :], pivot, side="right")
            )
            if take == 0:
                continue
            stop = offsets[s] + take
            parts_day.append(np.asarray(day_runs[s][offsets[s] : stop]))
            parts_v4.append(np.asarray(v4_runs[s][offsets[s] : stop]))
            parts_v6.append(np.asarray(v6_runs[s][offsets[s] : stop]))
            offsets[s] = stop
        block_days = np.concatenate(parts_day).astype(np.int64)
        block_v4 = np.concatenate(parts_v4)
        block_v6 = np.concatenate(parts_v6)
        durations = association_durations_np(block_days, block_v4, block_v6)
        histogram += np.bincount(durations, minlength=len(histogram))
        metric_inc("store.merge_blocks")
    return histogram


def _merge_v4_partials(
    scratch: Path, results: List[dict]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-shard /24 partials — /24 key sets are disjoint."""
    keys: List[np.ndarray] = []
    unique: List[np.ndarray] = []
    hits: List[np.ndarray] = []
    for meta in results:
        groups = meta["v4_groups"]
        if not groups:
            continue
        keys.append(np.asarray(_read_scratch(scratch, "v4deg", meta["shard"], "v4", groups)))
        unique.append(
            np.asarray(_read_scratch(scratch, "v4deg", meta["shard"], "count", groups))
        )
        hits.append(
            np.asarray(_read_scratch(scratch, "v4hit", meta["shard"], "count", groups))
        )
    if not keys:
        empty = np.empty(0, dtype=np.uint32)
        return empty, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    all_keys = np.concatenate(keys)
    order = np.argsort(all_keys)
    return all_keys[order], np.concatenate(unique)[order], np.concatenate(hits)[order]


def _merge_v6_partials(
    scratch: Path, results: List[dict]
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum per-shard /64 partials by key.

    A /64 appears in several shards only when it associated with /24s
    living in different shards; those shards count *disjoint* distinct-
    /24 sets, so summing the partials per key is exact.
    """
    keys: List[np.ndarray] = []
    unique: List[np.ndarray] = []
    for meta in results:
        groups = meta["v6_groups"]
        if not groups:
            continue
        keys.append(np.asarray(_read_scratch(scratch, "v6deg", meta["shard"], "v6", groups)))
        unique.append(
            np.asarray(_read_scratch(scratch, "v6deg", meta["shard"], "count", groups))
        )
    if not keys:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    all_keys = np.concatenate(keys)
    all_unique = np.concatenate(unique)
    order = np.argsort(all_keys, kind="stable")
    sorted_keys = all_keys[order]
    sorted_unique = all_unique[order]
    new_key = np.empty(len(sorted_keys), dtype=bool)
    new_key[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_key[1:])
    starts = np.flatnonzero(new_key)
    return sorted_keys[starts], np.add.reduceat(sorted_unique, starts)


@dataclass
class StoreAnalysis:
    """Section-5 artifacts computed out-of-core from a triple store."""

    total_triples: int
    shards: int
    #: duration (days) -> run count; only non-zero buckets.
    duration_counts: Dict[int, int]
    box: Optional[BoxStats]
    v4_keys: np.ndarray
    v4_unique: np.ndarray
    v4_hits: np.ndarray
    v6_keys: np.ndarray  # packed upper-64-bit /64 keys
    v6_unique: np.ndarray
    fraction_v6_degree_one: float
    delegation: TrailingZeroProfile

    @property
    def duration_count(self) -> int:
        return sum(self.duration_counts.values())

    def v4_degree_dicts(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """``(unique, hits)`` dicts matching ``v4_degree_counts``."""
        keys = [int(k) for k in self.v4_keys]
        return (
            dict(zip(keys, (int(c) for c in self.v4_unique))),
            dict(zip(keys, (int(c) for c in self.v4_hits))),
        )

    def v6_degree_dict(self) -> Dict[int, int]:
        """Full-128-bit-keyed dict matching ``v6_degree_counts``."""
        return {
            int(k) << 64: int(c) for k, c in zip(self.v6_keys, self.v6_unique)
        }

    def summary(self) -> dict:
        """JSON-friendly digest (CLI output / bench payloads)."""
        return {
            "total_triples": self.total_triples,
            "shards": self.shards,
            "associations": self.duration_count,
            "box": None
            if self.box is None
            else {
                "p5": self.box.p5,
                "q1": self.box.q1,
                "median": self.box.median,
                "q3": self.box.q3,
                "p95": self.box.p95,
                "count": self.box.count,
            },
            "distinct_v4": len(self.v4_keys),
            "distinct_v6": len(self.v6_keys),
            "fraction_v6_degree_one": self.fraction_v6_degree_one,
            "delegation": {
                "total": self.delegation.total,
                "inferable_pct": self.delegation.inferable_pct,
                "by_boundary": {
                    str(k): v for k, v in self.delegation.by_boundary.items()
                },
            },
        }


def analyze_store(
    store: TripleStore,
    workers: Optional[int] = None,
    scratch_dir=None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> StoreAnalysis:
    """Compute all Section-5 store artifacts shard-by-shard out-of-core.

    ``scratch_dir`` (default: a fresh temp directory, removed on exit)
    holds the sorted runs and degree partials; its peak size is about
    one store's worth of columns plus the partials.  ``workers`` fans
    the per-shard pass out via
    :func:`repro.perf.parallel.map_store_shards`.
    """
    from repro.perf.parallel import map_store_shards

    own_scratch = scratch_dir is None
    scratch = Path(tempfile.mkdtemp(prefix="repro-store-")) if own_scratch else Path(scratch_dir)
    if not own_scratch:
        scratch.mkdir(parents=True, exist_ok=True)
    try:
        with span("store/analyze", shards=store.shards, rows=store.total_triples):
            task = partial(sort_shard_to_scratch, scratch=str(scratch))
            results = map_store_shards(task, store, workers=workers, scratch=scratch)
            results.sort(key=lambda meta: meta["shard"])
            shard_rows = [meta["rows"] for meta in results]

            histogram = merged_duration_histogram(
                store, scratch, shard_rows, block_rows=block_rows
            )
            durations = np.flatnonzero(histogram)
            box = box_stats_from_counts(durations, histogram[durations], empty_ok=True)
            duration_counts = {
                int(d): int(histogram[d]) for d in durations
            }

            v4_keys, v4_unique, v4_hits = _merge_v4_partials(scratch, results)
            v6_keys, v6_unique = _merge_v6_partials(scratch, results)
            fraction_one = (
                int(np.count_nonzero(v6_unique == 1)) / len(v6_unique)
                if len(v6_unique)
                else 0.0
            )
            delegation = trailing_zero_profile_np(v6_keys)
        _log.info(
            "store analyzed",
            extra={
                "rows": store.total_triples,
                "shards": store.shards,
                "associations": int(histogram.sum()),
            },
        )
        return StoreAnalysis(
            total_triples=store.total_triples,
            shards=store.shards,
            duration_counts=duration_counts,
            box=box,
            v4_keys=v4_keys,
            v4_unique=v4_unique,
            v4_hits=v4_hits,
            v6_keys=v6_keys,
            v6_unique=v6_unique,
            fraction_v6_degree_one=fraction_one,
            delegation=delegation,
        )
    finally:
        if own_scratch:
            shutil.rmtree(scratch, ignore_errors=True)


__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "StoreAnalysis",
    "analyze_store",
    "merged_duration_histogram",
    "sort_shard_to_scratch",
]
