"""Out-of-core sharded memmap triple store (ROADMAP item 2).

``repro.store`` persists (day, v4 /24, v6 /64) association triples as
hash-sharded struct-of-arrays column files and re-derives the paper's
Section-5 artifacts shard-by-shard, so billion-row populations are
bounded by disk, not RAM.  See :mod:`repro.store.triples` for the
on-disk format and :mod:`repro.store.kernels` for the out-of-core
analysis (bit-identical to the in-RAM ``engine="np"`` path).
"""

from repro.store.kernels import (
    DEFAULT_BLOCK_ROWS,
    StoreAnalysis,
    analyze_store,
    merged_duration_histogram,
    sort_shard_to_scratch,
)
from repro.store.synthetic import synthetic_triple_batches
from repro.store.triples import (
    COLUMN_DTYPES,
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_FORMAT_VERSION,
    ShardColumns,
    StoreCorruptError,
    TripleStore,
    TripleStoreWriter,
    build_store_from_columns,
    build_store_from_triples,
    load_triple_store,
    shard_of_v4,
)

__all__ = [
    "COLUMN_DTYPES",
    "DEFAULT_BLOCK_ROWS",
    "MANIFEST_NAME",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "ShardColumns",
    "StoreAnalysis",
    "StoreCorruptError",
    "TripleStore",
    "TripleStoreWriter",
    "analyze_store",
    "build_store_from_columns",
    "build_store_from_triples",
    "load_triple_store",
    "merged_duration_histogram",
    "shard_of_v4",
    "sort_shard_to_scratch",
    "synthetic_triple_batches",
]
