"""Out-of-core sharded memmap triple store (ROADMAP item 2).

``repro.store`` persists (day, v4 /24, v6 /64) association triples as
hash-sharded struct-of-arrays column files and re-derives the paper's
Section-5 artifacts shard-by-shard, so billion-row populations are
bounded by disk, not RAM.  See :mod:`repro.store.triples` for the
on-disk format and :mod:`repro.store.kernels` for the out-of-core
analysis (bit-identical to the in-RAM ``engine="np"`` path).
"""

from repro.store.kernels import (
    DEFAULT_BLOCK_ROWS,
    StoreAnalysis,
    analyze_store,
    merged_duration_histogram,
    sort_shard_to_scratch,
)
from repro.store.segments import (
    DEFAULT_SEGMENT_ROWS,
    SEGMENT_FORMAT,
    SEGMENT_FORMAT_VERSION,
    SEGMENT_MANIFEST_NAME,
    ShardSource,
    compact_shard,
    compact_sources,
    compact_stores,
    load_segment,
    parallel_build_store,
    write_segment,
)
from repro.store.synthetic import synthetic_triple_batches
from repro.store.triples import (
    COLUMN_DTYPES,
    MANIFEST_NAME,
    ROW_ORDER,
    STORE_FORMAT,
    STORE_FORMAT_VERSION,
    ShardColumns,
    StoreCorruptError,
    TripleStore,
    TripleStoreWriter,
    build_store_from_columns,
    build_store_from_triples,
    canonical_order,
    load_triple_store,
    normalize_columns,
    shard_of_v4,
    triple_column_batches,
    write_shard_columns,
    write_store_manifest,
)

__all__ = [
    "COLUMN_DTYPES",
    "DEFAULT_BLOCK_ROWS",
    "DEFAULT_SEGMENT_ROWS",
    "MANIFEST_NAME",
    "ROW_ORDER",
    "SEGMENT_FORMAT",
    "SEGMENT_FORMAT_VERSION",
    "SEGMENT_MANIFEST_NAME",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "ShardColumns",
    "ShardSource",
    "StoreAnalysis",
    "StoreCorruptError",
    "TripleStore",
    "TripleStoreWriter",
    "analyze_store",
    "build_store_from_columns",
    "build_store_from_triples",
    "canonical_order",
    "compact_shard",
    "compact_sources",
    "compact_stores",
    "load_segment",
    "merged_duration_histogram",
    "normalize_columns",
    "parallel_build_store",
    "shard_of_v4",
    "sort_shard_to_scratch",
    "synthetic_triple_batches",
    "triple_column_batches",
    "write_segment",
    "write_shard_columns",
    "write_store_manifest",
]
