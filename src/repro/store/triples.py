"""Sharded, memory-mapped columnar store for CDN association triples.

The paper's CDN feed is 32.7B ``(day, v4 /24, v6 /64)`` tuples — far
beyond what the in-RAM list-of-triples representation can hold.  This
module persists a triple population as struct-of-arrays column shards:

* ``day``  — ``uint16`` (the paper's windows are months, not decades);
* ``v4``   — ``uint32`` /24 network address;
* ``v6``   — ``uint64`` *upper 64 bits* of the /64 network address
  (a bijection for /64s, matching
  :func:`repro.core.associations_np.columns_from_triples`).

Rows are **hash-sharded by the /24 key** (multiplicative hashing), so
every report about one /24 lands in exactly one shard — the property
that makes the per-/24 degree kernels embarrassingly shard-local and
keeps per-/64 state mergeable (a /64 only spans shards when it
associated with /24s in different shards, i.e. when its degree > 1).

Each shard is three raw little-endian column files next to a
``manifest.json`` naming the format version, per-shard row counts and
per-shard SHA-256 checksums — the same content-addressing discipline as
:class:`repro.stream.checkpoint.CheckpointStore`: a truncated, corrupt
or stale store is *detected* at open (size check always, checksums via
``verify=True``) and :func:`load_triple_store` deletes it and reports a
miss so the caller rebuilds instead of silently analyzing garbage.

Readers memory-map the column files (``np.memmap``), so analysis
kernels and worker processes page in only what they touch and share
clean pages through the OS cache — the zero-copy handoff used by
:func:`repro.perf.parallel.map_store_shards`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.associations import Triple
from repro.obs import get_logger, metric_inc, span

_log = get_logger("store")

STORE_FORMAT = "repro-triple-store"
STORE_FORMAT_VERSION = 2

MANIFEST_NAME = "manifest.json"

#: Canonical per-shard row order (lexsort key, most significant first).
#: Version 2 finalizes every shard in this order, which makes the store
#: digest a pure function of the triple multiset: serial builds,
#: parallel segment builds and compactions of the same input all
#: produce byte-identical shards.
ROW_ORDER = "v6,day,v4"

#: Column name -> little-endian on-disk dtype.
COLUMN_DTYPES: Dict[str, str] = {"day": "<u2", "v4": "<u4", "v6": "<u8"}
COLUMNS: Tuple[str, ...] = ("day", "v4", "v6")

_ROW_BYTES = sum(np.dtype(d).itemsize for d in COLUMN_DTYPES.values())

#: Knuth's multiplicative hash constant (2^32 / phi), for /24 sharding.
_HASH_MULTIPLIER = np.uint64(0x9E3779B1)


class StoreCorruptError(Exception):
    """A store directory failed validation (missing/truncated/corrupt)."""


def shard_of_v4(v4_keys: np.ndarray, shards: int) -> np.ndarray:
    """Shard index of each /24 key (vectorized multiplicative hash).

    Reduces the *high* half of the 32-bit product: /24 keys are network
    addresses whose low 8 bits are always zero, so a low-bits reduction
    would send every key to shard 0 whenever ``shards`` is a power of
    two.  The top 16 bits are well mixed for any key alignment.
    """
    hashed = (v4_keys.astype(np.uint64) * _HASH_MULTIPLIER) & np.uint64(0xFFFFFFFF)
    return ((hashed >> np.uint64(16)) % np.uint64(shards)).astype(np.int64)


def canonical_order(days: np.ndarray, v4: np.ndarray, v6: np.ndarray) -> np.ndarray:
    """The canonical per-shard permutation: lexsort by ``(v6, day, v4)``.

    This is the same key :func:`repro.store.kernels.sort_shard_to_scratch`
    merges by, so canonically ordered shards double as pre-sorted runs
    for the analysis merge.  Because the key covers every column, equal
    rows are interchangeable — any builder that ends with this sort
    emits byte-identical shard files for the same row multiset.
    """
    return np.lexsort((v4, days, v6))


def _shard_file(directory: Path, shard: int, column: str) -> Path:
    return directory / f"shard-{shard:04d}.{column}"


def _shard_checksum(directory: Path, shard: int) -> str:
    """SHA-256 over the shard's column files, in canonical column order."""
    digest = hashlib.sha256()
    for column in COLUMNS:
        path = _shard_file(directory, shard, column)
        with path.open("rb") as stream:
            for block in iter(lambda: stream.read(1 << 20), b""):
                digest.update(block)
    return digest.hexdigest()


def _checksum_of_arrays(days: np.ndarray, v4: np.ndarray, v6: np.ndarray) -> str:
    """The shard checksum computed from in-RAM columns.

    Column files are the raw little-endian array bytes concatenated in
    :data:`COLUMNS` order, so hashing the arrays directly is identical
    to :func:`_shard_checksum` over the written files — writers use
    this to checksum while the sorted columns are still in memory
    instead of re-reading what they just wrote.
    """
    digest = hashlib.sha256()
    for column, array in (("day", days), ("v4", v4), ("v6", v6)):
        digest.update(
            np.ascontiguousarray(array.astype(COLUMN_DTYPES[column], copy=False))
            .tobytes()
        )
    return digest.hexdigest()


def write_shard_columns(
    directory: Path, shard: int, days: np.ndarray, v4: np.ndarray, v6: np.ndarray
) -> str:
    """Write one shard's columns in canonical row order; return checksum.

    The single sort-and-write primitive shared by the serial writer's
    finalize and segment compaction — both paths emitting the same
    bytes for the same row multiset is what makes build-mode digest
    parity structural rather than coincidental.
    """
    order = canonical_order(days, v4, v6)
    sorted_columns = {
        "day": days[order].astype(COLUMN_DTYPES["day"], copy=False),
        "v4": v4[order].astype(COLUMN_DTYPES["v4"], copy=False),
        "v6": v6[order].astype(COLUMN_DTYPES["v6"], copy=False),
    }
    for column in COLUMNS:
        sorted_columns[column].tofile(_shard_file(directory, shard, column))
    return _checksum_of_arrays(
        sorted_columns["day"], sorted_columns["v4"], sorted_columns["v6"]
    )


def write_store_manifest(
    directory: Path,
    shards: int,
    shard_rows: Sequence[int],
    checksums: Sequence[str],
    total_rows: int,
    day_min: Optional[int],
    day_max: Optional[int],
    source: Optional[dict] = None,
) -> None:
    """Atomically write a version-2 store manifest (tmp + rename).

    Shared by the serial writer and the compactor so every finalized
    store records the same fields — including ``row_order``, the marker
    readers use to trust shards as pre-sorted runs.
    """
    manifest = {
        "format": STORE_FORMAT,
        "version": STORE_FORMAT_VERSION,
        "row_order": ROW_ORDER,
        "shards": int(shards),
        "dtypes": dict(COLUMN_DTYPES),
        "shard_rows": [int(rows) for rows in shard_rows],
        "shard_checksums": list(checksums),
        "total_triples": int(total_rows),
        "day_min": day_min,
        "day_max": day_max,
        "source": dict(source) if source else {},
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    temp = directory / f"{MANIFEST_NAME}.tmp{os.getpid()}"
    temp.write_text(json.dumps(manifest, sort_keys=True, indent=1) + "\n")
    os.replace(temp, directory / MANIFEST_NAME)


@dataclass
class ShardColumns:
    """One shard's memory-mapped columns (empty arrays for empty shards)."""

    index: int
    days: np.ndarray  # uint16
    v4: np.ndarray  # uint32
    v6: np.ndarray  # uint64

    def __len__(self) -> int:
        return len(self.days)

    @property
    def nbytes(self) -> int:
        return self.days.nbytes + self.v4.nbytes + self.v6.nbytes


def normalize_columns(
    days: np.ndarray, v4_keys: np.ndarray, v6_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate one columnar batch and narrow it to the on-disk dtypes.

    Shared by the serial writer and the segment writers so both reject
    the same malformed input the same way: arrays must be 1-D and
    equal-length, days must fit ``uint16`` and /24 keys ``uint32``.
    Non-contiguous or misaligned inputs are fine — ``astype`` copies
    into fresh contiguous arrays.  Returns ``(day, v4, v6)`` columns.
    """
    days = np.asarray(days)
    v4_keys = np.asarray(v4_keys)
    v6_keys = np.asarray(v6_keys)
    if days.ndim != 1 or v4_keys.ndim != 1 or v6_keys.ndim != 1:
        raise ValueError("column batch arrays must be one-dimensional")
    if not (len(days) == len(v4_keys) == len(v6_keys)):
        raise ValueError("column batch arrays must have equal length")
    if len(days) == 0:
        return (
            np.empty(0, dtype=np.uint16),
            np.empty(0, dtype=np.uint32),
            np.empty(0, dtype=np.uint64),
        )
    if days.min() < 0 or days.max() > np.iinfo(np.uint16).max:
        raise ValueError("day out of uint16 range")
    if v4_keys.min() < 0 or int(v4_keys.max()) > np.iinfo(np.uint32).max:
        raise ValueError("v4 key out of uint32 range")
    return (
        days.astype(np.uint16),
        v4_keys.astype(np.uint32),
        v6_keys.astype(np.uint64),
    )


def triple_column_batches(
    triples: Iterable[Triple], batch_rows: int = 1 << 16
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Batch python ``(day, v4, v6)`` triples into columnar arrays.

    The v6 key is narrowed to its upper 64 bits (the /64 bijection used
    throughout the store).  Consumes the iterable lazily — this is the
    shared triples→columns adapter for both the serial writer and the
    parallel segment build.
    """
    days: List[int] = []
    v4s: List[int] = []
    v6s: List[int] = []
    for day, v4_key, v6_key in triples:
        days.append(day)
        v4s.append(v4_key)
        v6s.append(v6_key >> 64)
        if len(days) >= batch_rows:
            yield (
                np.array(days, dtype=np.int64),
                np.array(v4s, dtype=np.uint64),
                np.array(v6s, dtype=np.uint64),
            )
            days, v4s, v6s = [], [], []
    if days:
        yield (
            np.array(days, dtype=np.int64),
            np.array(v4s, dtype=np.uint64),
            np.array(v6s, dtype=np.uint64),
        )


class TripleStoreWriter:
    """Append-only builder for a :class:`TripleStore` directory.

    Rows accumulate in per-shard RAM buffers and spill to the column
    files whenever a shard's buffer exceeds ``spill_rows`` (each spill
    is counted in ``store.spill_events``), so peak memory is bounded by
    ``shards * spill_rows`` rows regardless of how many triples pass
    through.  :meth:`finalize` flushes everything, checksums the shards
    and writes the manifest — until then the directory has no manifest
    and :func:`load_triple_store` treats it as corrupt (a killed build
    can never masquerade as a finished store).
    """

    def __init__(
        self,
        directory,
        shards: int = 16,
        spill_rows: int = 1 << 18,
        source: Optional[dict] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if spill_rows < 1:
            raise ValueError(f"spill_rows must be >= 1, got {spill_rows}")
        self.directory = Path(directory).expanduser()
        self.shards = int(shards)
        self.spill_rows = int(spill_rows)
        self.source = dict(source) if source else {}
        self.total_rows = 0
        self.spill_events = 0
        self._finalized = False
        self._day_min: Optional[int] = None
        self._day_max: Optional[int] = None
        self._buffers: List[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
            [] for _ in range(self.shards)
        ]
        self._buffered_rows = [0] * self.shards
        self._shard_rows = [0] * self.shards
        if self.directory.exists():
            raise FileExistsError(f"store directory already exists: {self.directory}")
        self.directory.mkdir(parents=True)
        for shard in range(self.shards):
            for column in COLUMNS:
                _shard_file(self.directory, shard, column).touch()

    # -- appending ----------------------------------------------------------

    def append_columns(
        self, days: np.ndarray, v4_keys: np.ndarray, v6_keys: np.ndarray
    ) -> int:
        """Append one columnar batch (``v6_keys`` already upper-64-bit).

        Values are range-checked against the on-disk dtypes; the batch
        is scattered to shard buffers with one argsort, not per-row.
        """
        if self._finalized:
            raise ValueError("writer already finalized")
        day_col, v4_col, v6_col = normalize_columns(days, v4_keys, v6_keys)
        if len(day_col) == 0:
            return 0

        lo, hi = int(day_col.min()), int(day_col.max())
        self._day_min = lo if self._day_min is None else min(self._day_min, lo)
        self._day_max = hi if self._day_max is None else max(self._day_max, hi)

        shard_ids = shard_of_v4(v4_col, self.shards)
        order = np.argsort(shard_ids, kind="stable")
        sorted_ids = shard_ids[order]
        present, starts = np.unique(sorted_ids, return_index=True)
        bounds = np.append(starts, len(sorted_ids))
        for position, shard in enumerate(present):
            select = order[bounds[position] : bounds[position + 1]]
            self._buffer(int(shard), day_col[select], v4_col[select], v6_col[select])
        self.total_rows += len(day_col)
        metric_inc("store.triples_appended", value=len(day_col))
        return len(day_col)

    def extend(self, triples: Iterable[Triple], batch_rows: int = 1 << 16) -> int:
        """Append python ``(day, v4_key, v6_key)`` triples (full 128-bit v6).

        The iterable is consumed lazily in ``batch_rows``-sized batches,
        so arbitrarily long feeds (e.g. ``read_association_csv``) never
        materialize.
        """
        appended = 0
        for days, v4_keys, v6_keys in triple_column_batches(triples, batch_rows):
            appended += self.append_columns(days, v4_keys, v6_keys)
        return appended

    def _buffer(
        self, shard: int, days: np.ndarray, v4: np.ndarray, v6: np.ndarray
    ) -> None:
        self._buffers[shard].append((days, v4, v6))
        self._buffered_rows[shard] += len(days)
        if self._buffered_rows[shard] >= self.spill_rows:
            self._spill(shard)

    def _spill(self, shard: int) -> None:
        if not self._buffers[shard]:
            return
        days = np.concatenate([chunk[0] for chunk in self._buffers[shard]])
        v4 = np.concatenate([chunk[1] for chunk in self._buffers[shard]])
        v6 = np.concatenate([chunk[2] for chunk in self._buffers[shard]])
        for column, array in (("day", days), ("v4", v4), ("v6", v6)):
            with _shard_file(self.directory, shard, column).open("ab") as stream:
                array.astype(COLUMN_DTYPES[column]).tofile(stream)
        self._shard_rows[shard] += len(days)
        self._buffers[shard] = []
        self._buffered_rows[shard] = 0
        self.spill_events += 1
        metric_inc("store.spill_events")

    # -- finalize -----------------------------------------------------------

    def _canonicalize_shard(self, shard: int) -> str:
        """Rewrite one spilled shard in canonical row order; return checksum.

        Peak memory is one shard's columns — the same bound the
        analysis kernels already live under.
        """
        rows = self._shard_rows[shard]
        if rows == 0:
            return _checksum_of_arrays(
                np.empty(0, dtype=np.uint16),
                np.empty(0, dtype=np.uint32),
                np.empty(0, dtype=np.uint64),
            )
        columns = {
            column: np.fromfile(
                _shard_file(self.directory, shard, column),
                dtype=COLUMN_DTYPES[column],
            )
            for column in COLUMNS
        }
        return write_shard_columns(
            self.directory, shard, columns["day"], columns["v4"], columns["v6"]
        )

    def finalize(self) -> "TripleStore":
        """Flush buffers, canonical-sort and checksum shards, write the manifest.

        Each shard is rewritten in :data:`ROW_ORDER` before hashing, so
        the finalized bytes (and hence :meth:`TripleStore.digest`)
        depend only on the triple multiset, never on append order.
        """
        if self._finalized:
            raise ValueError("writer already finalized")
        with span("store/finalize", shards=self.shards, rows=self.total_rows):
            for shard in range(self.shards):
                self._spill(shard)
            checksums = [
                self._canonicalize_shard(shard) for shard in range(self.shards)
            ]
            write_store_manifest(
                self.directory,
                self.shards,
                self._shard_rows,
                checksums,
                self.total_rows,
                self._day_min,
                self._day_max,
                self.source,
            )
        self._finalized = True
        _log.info(
            "store finalized",
            extra={"dir": str(self.directory), "rows": self.total_rows},
        )
        return TripleStore.open(self.directory)

    def __enter__(self) -> "TripleStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._finalized:
            self.finalize()


class TripleStore:
    """Read view of a finalized store directory (memmapped shards)."""

    def __init__(self, directory: Path, manifest: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.shards: int = manifest["shards"]
        self.shard_rows: List[int] = list(manifest["shard_rows"])
        self.total_triples: int = manifest["total_triples"]
        self.day_min: Optional[int] = manifest["day_min"]
        self.day_max: Optional[int] = manifest["day_max"]

    # -- opening / validation ------------------------------------------------

    @classmethod
    def open(cls, directory, verify: bool = False) -> "TripleStore":
        """Open a store, raising :class:`StoreCorruptError` on any damage.

        The cheap structural checks (manifest shape, file sizes vs the
        recorded row counts) always run; ``verify=True`` additionally
        re-hashes every shard against the manifest checksums — a full
        read, so reserve it for durability-sensitive callers.
        """
        directory = Path(directory).expanduser()
        manifest_path = directory / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError as exc:
            raise StoreCorruptError(f"no manifest in {directory}") from exc
        except (OSError, ValueError) as exc:
            raise StoreCorruptError(f"unreadable manifest in {directory}: {exc}") from exc
        try:
            if manifest["format"] != STORE_FORMAT:
                raise StoreCorruptError(f"not a {STORE_FORMAT} directory: {directory}")
            if manifest["version"] != STORE_FORMAT_VERSION:
                raise StoreCorruptError(
                    f"unsupported store version {manifest['version']!r}"
                )
            if manifest["dtypes"] != COLUMN_DTYPES:
                raise StoreCorruptError("store dtypes do not match this build")
            shards = int(manifest["shards"])
            rows = [int(count) for count in manifest["shard_rows"]]
            checksums = list(manifest["shard_checksums"])
            if shards < 1 or len(rows) != shards or len(checksums) != shards:
                raise StoreCorruptError("manifest shard bookkeeping inconsistent")
            if sum(rows) != int(manifest["total_triples"]):
                raise StoreCorruptError("manifest row counts do not sum to total")
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptError(f"malformed manifest in {directory}: {exc}") from exc
        for shard in range(shards):
            for column in COLUMNS:
                path = _shard_file(directory, shard, column)
                expected = rows[shard] * np.dtype(COLUMN_DTYPES[column]).itemsize
                try:
                    actual = path.stat().st_size
                except FileNotFoundError as exc:
                    raise StoreCorruptError(f"missing shard file {path.name}") from exc
                if actual != expected:
                    raise StoreCorruptError(
                        f"{path.name}: {actual} bytes on disk, manifest says {expected}"
                    )
        if verify:
            for shard in range(shards):
                if _shard_checksum(directory, shard) != checksums[shard]:
                    raise StoreCorruptError(f"shard {shard} checksum mismatch")
        return cls(directory, manifest)

    def verify(self) -> None:
        """Re-hash every shard against the manifest (raises on mismatch)."""
        for shard in range(self.shards):
            if _shard_checksum(self.directory, shard) != self.manifest[
                "shard_checksums"
            ][shard]:
                raise StoreCorruptError(f"shard {shard} checksum mismatch")

    def digest(self) -> str:
        """Content hash of the manifest (shard checksums included) — the
        store's stream identity for checkpoint addressing."""
        canonical = json.dumps(
            {
                key: self.manifest[key]
                for key in ("format", "version", "shards", "shard_rows",
                            "shard_checksums", "total_triples")
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- reading -------------------------------------------------------------

    @property
    def canonical(self) -> bool:
        """Whether shard rows are in the canonical ``(v6, day, v4)`` order.

        Version-2 manifests always record :data:`ROW_ORDER`; readers
        use this to treat shards as pre-sorted runs (skipping the
        analysis-side lexsort entirely).
        """
        return self.manifest.get("row_order") == ROW_ORDER

    @property
    def nbytes(self) -> int:
        """Total on-disk column bytes across all shards."""
        return self.total_triples * _ROW_BYTES

    def shard(self, index: int) -> ShardColumns:
        """Memory-map one shard's columns (zero-copy; empty shards OK)."""
        rows = self.shard_rows[index]
        if rows == 0:
            return ShardColumns(
                index,
                np.empty(0, dtype=np.uint16),
                np.empty(0, dtype=np.uint32),
                np.empty(0, dtype=np.uint64),
            )
        columns = {}
        for column in COLUMNS:
            columns[column] = np.memmap(
                _shard_file(self.directory, index, column),
                dtype=COLUMN_DTYPES[column],
                mode="r",
                shape=(rows,),
            )
        shard = ShardColumns(index, columns["day"], columns["v4"], columns["v6"])
        metric_inc("store.shards_read")
        metric_inc("store.bytes_mapped", value=shard.nbytes)
        return shard

    def iter_shards(self) -> Iterator[ShardColumns]:
        """Every shard in index order (memmapped)."""
        for index in range(self.shards):
            yield self.shard(index)

    def iter_triples(self) -> Iterator[Triple]:
        """Lazily yield python triples ``(day, v4_key, v6_key<<64)``.

        Shard order, *not* day order — use :meth:`day_window_columns`
        for the canonical day-ordered stream.
        """
        for shard in self.iter_shards():
            for day, v4_key, v6_key in zip(
                shard.days.tolist(), shard.v4.tolist(), shard.v6.tolist()
            ):
                yield (day, v4_key, v6_key << 64)

    def day_window_columns(
        self, start_day: int, end_day: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All rows with ``start_day <= day < end_day``, canonically sorted.

        Gathers the window from every shard (memmap mask reads) and
        sorts it ``(day, v4, v6)`` — the batch scan order of
        :func:`repro.stream.chunks.triple_chunks`.  Memory is bounded by
        the window's row count.
        """
        parts_day: List[np.ndarray] = []
        parts_v4: List[np.ndarray] = []
        parts_v6: List[np.ndarray] = []
        for shard in self.iter_shards():
            if not len(shard):
                continue
            mask = (shard.days >= start_day) & (shard.days < end_day)
            if mask.any():
                parts_day.append(np.asarray(shard.days[mask]))
                parts_v4.append(np.asarray(shard.v4[mask]))
                parts_v6.append(np.asarray(shard.v6[mask]))
        if not parts_day:
            empty = np.empty(0, dtype=np.uint16)
            return empty, np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.uint64)
        days = np.concatenate(parts_day)
        v4 = np.concatenate(parts_v4)
        v6 = np.concatenate(parts_v6)
        order = np.lexsort((v6, v4, days))
        return days[order], v4[order], v6[order]


def load_triple_store(directory, verify: bool = False) -> Optional[TripleStore]:
    """Open a store, or treat damage as a miss (corrupt → delete + ``None``).

    Mirrors the checkpoint store's corrupt→miss+delete contract: an
    unreadable/truncated/stale store directory is removed so the caller
    rebuilds from source instead of resuming over garbage.  A missing
    directory is a plain miss (nothing to delete).
    """
    directory = Path(directory).expanduser()
    if not directory.exists():
        metric_inc("store.misses", reason="absent")
        return None
    try:
        store = TripleStore.open(directory, verify=verify)
    except StoreCorruptError as exc:
        shutil.rmtree(directory, ignore_errors=True)
        metric_inc("store.misses", reason="corrupt")
        _log.warning("corrupt store dropped", extra={"dir": str(directory), "why": str(exc)})
        return None
    metric_inc("store.hits")
    return store


def build_store_from_triples(
    triples: Iterable[Triple],
    directory,
    shards: int = 16,
    spill_rows: int = 1 << 18,
    source: Optional[dict] = None,
    workers: Optional[int] = None,
    segment_rows: Optional[int] = None,
) -> TripleStore:
    """One-call build: stream python triples into a finalized store.

    ``workers`` > 1 (on a multi-core host) routes through the parallel
    segment build (:func:`repro.store.segments.parallel_build_store`),
    which compacts to the byte-identical store the serial path writes.
    """
    return build_store_from_columns(
        triple_column_batches(triples),
        directory,
        shards=shards,
        spill_rows=spill_rows,
        source=source,
        workers=workers,
        segment_rows=segment_rows,
    )


def build_store_from_columns(
    batches: Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    directory,
    shards: int = 16,
    spill_rows: int = 1 << 18,
    source: Optional[dict] = None,
    workers: Optional[int] = None,
    segment_rows: Optional[int] = None,
) -> TripleStore:
    """One-call build from columnar ``(days, v4, v6_upper)`` batches.

    ``workers`` > 1 (on a multi-core host) fans the stream out to
    segment writers and k-way compacts; serial otherwise.  Both paths
    finalize in canonical row order, so they produce the same
    :meth:`TripleStore.digest` for the same input.
    """
    from repro.perf.parallel import effective_workers, resolve_workers

    if effective_workers(resolve_workers(workers), units=1 << 30) > 1:
        from repro.store.segments import parallel_build_store

        return parallel_build_store(
            batches,
            directory,
            shards=shards,
            workers=workers,
            segment_rows=segment_rows,
            source=source,
        )
    with span("store/build", shards=shards):
        writer = TripleStoreWriter(
            directory, shards=shards, spill_rows=spill_rows, source=source
        )
        for days, v4_keys, v6_keys in batches:
            writer.append_columns(days, v4_keys, v6_keys)
        return writer.finalize()


__all__ = [
    "COLUMN_DTYPES",
    "MANIFEST_NAME",
    "ROW_ORDER",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "ShardColumns",
    "StoreCorruptError",
    "TripleStore",
    "TripleStoreWriter",
    "build_store_from_columns",
    "build_store_from_triples",
    "canonical_order",
    "load_triple_store",
    "normalize_columns",
    "shard_of_v4",
    "triple_column_batches",
    "write_shard_columns",
    "write_store_manifest",
]
