"""BGP substrate: synthetic RIR/AS registry, routing tables, pfx2as I/O.

The paper uses the Routeviews pfx2as dataset to map each observed
address to its routed BGP prefix and origin ASN (Appendix A.1, Table 2,
Section 4.1's ASN-mismatch filter).  This package provides the same
interface over synthetic-but-realistic contents:

* :mod:`repro.bgp.registry` — five RIRs handing out address blocks to
  autonomous systems, with per-AS announcement plans (possibly
  fragmented in IPv4, contiguous in IPv6);
* :mod:`repro.bgp.table` — longest-prefix-match routing tables built on
  the Patricia trie;
* :mod:`repro.bgp.routeviews` — reader/writer for the pfx2as text format.
"""

from repro.bgp.registry import RIR, ASInfo, Registry
from repro.bgp.routeviews import read_pfx2as, write_pfx2as
from repro.bgp.table import Route, RoutingTable

__all__ = [
    "RIR",
    "ASInfo",
    "Registry",
    "Route",
    "RoutingTable",
    "read_pfx2as",
    "write_pfx2as",
]
