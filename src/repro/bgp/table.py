"""Routing tables with longest-prefix match, in the pfx2as role.

A :class:`RoutingTable` answers the questions the paper's pipeline needs:

* which routed BGP prefix covers this address / /64?  (Table 2,
  Section 5.1 "same BGP prefix" tests)
* which origin ASN announced it?  (Appendix A.1 sanitization and the
  Section 4.1 ASN-mismatch filter)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.ip.addr import IPAddress
from repro.ip.prefix import IPPrefix, IPv4Prefix, IPv6Prefix
from repro.ip.trie import PrefixTrie


@dataclass(frozen=True)
class Route:
    """One announced prefix and its origin ASN."""

    prefix: IPPrefix
    origin_asn: int

    def __post_init__(self) -> None:
        if self.origin_asn <= 0:
            raise ValueError(f"origin ASN must be positive, got {self.origin_asn}")


class RoutingTable:
    """A dual-family BGP routing table supporting longest-prefix match."""

    def __init__(self, routes: Optional[Iterable[Route]] = None) -> None:
        self._v4 = PrefixTrie(IPv4Prefix)
        self._v6 = PrefixTrie(IPv6Prefix)
        if routes is not None:
            for route in routes:
                self.announce(route.prefix, route.origin_asn)

    def __len__(self) -> int:
        return len(self._v4) + len(self._v6)

    def _trie_for(self, item: Union[IPAddress, IPPrefix]) -> PrefixTrie:
        family = item.family
        return self._v4 if family == 4 else self._v6

    def announce(self, prefix: IPPrefix, origin_asn: int) -> None:
        """Install ``prefix`` with the given origin (overwrites on re-announce)."""
        if origin_asn <= 0:
            raise ValueError(f"origin ASN must be positive, got {origin_asn}")
        self._trie_for(prefix).insert(prefix, origin_asn)

    def withdraw(self, prefix: IPPrefix) -> None:
        """Remove ``prefix``; raises ``KeyError`` when not announced."""
        self._trie_for(prefix).remove(prefix)

    def routed_prefix(self, address: IPAddress) -> Optional[IPPrefix]:
        """The most specific announced prefix covering ``address``."""
        match = self._trie_for(address).longest_match(address)
        return None if match is None else match[0]

    def routed_prefix_of_prefix(self, prefix: IPPrefix) -> Optional[IPPrefix]:
        """The most specific announced prefix covering all of ``prefix``.

        Used for /64s and /24s, whose covering BGP prefix is what the
        paper compares across assignment changes.
        """
        match = self._trie_for(prefix).covering(prefix)
        return None if match is None else match[0]

    def origin_asn(self, item: Union[IPAddress, IPPrefix]) -> Optional[int]:
        """Origin ASN for an address or (fully covered) prefix, or ``None``."""
        if isinstance(item, IPPrefix):
            match = self._trie_for(item).covering(item)
        else:
            match = self._trie_for(item).longest_match(item)
        return None if match is None else match[1]

    def same_bgp_prefix(
        self,
        a: Union[IPAddress, IPPrefix],
        b: Union[IPAddress, IPPrefix],
    ) -> bool:
        """True when both arguments resolve to the same announced prefix.

        Unrouted items never compare equal.
        """
        route_a = (
            self.routed_prefix_of_prefix(a) if isinstance(a, IPPrefix) else self.routed_prefix(a)
        )
        if route_a is None:
            return False
        route_b = (
            self.routed_prefix_of_prefix(b) if isinstance(b, IPPrefix) else self.routed_prefix(b)
        )
        return route_a == route_b

    def routes(self) -> Iterator[Route]:
        """All installed routes, IPv4 first, in address order."""
        for prefix, asn in self._v4.items():
            yield Route(prefix, asn)
        for prefix, asn in self._v6.items():
            yield Route(prefix, asn)


__all__ = ["Route", "RoutingTable"]
