"""Reader/writer for the Routeviews pfx2as text format.

The CAIDA Routeviews prefix-to-AS files are tab-separated lines::

    <network> <TAB> <prefix-length> <TAB> <origin>

where ``origin`` is an ASN, an AS-set (``{1,2}``), or a multi-origin
sequence (``1_2``).  The paper uses these files to resolve BGP prefixes
(Appendix A.1); we support reading both IPv4 and IPv6 flavours and
collapse multi-origin entries to their first ASN, which matches common
measurement practice.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, TextIO, Union

from repro.bgp.table import Route
from repro.ip.addr import AddressError
from repro.ip.prefix import IPv4Prefix, IPv6Prefix


class Pfx2asFormatError(ValueError):
    """Raised on malformed pfx2as input."""


def _parse_origin(text: str) -> int:
    """First ASN from an origin field (plain, AS-set, or multi-origin)."""
    text = text.strip().lstrip("{").rstrip("}")
    for sep in (",", "_"):
        if sep in text:
            text = text.split(sep, 1)[0]
    if not text.isdigit() or int(text) <= 0:
        raise Pfx2asFormatError(f"invalid origin field {text!r}")
    return int(text)


def read_pfx2as(source: Union[str, TextIO]) -> Iterator[Route]:
    """Yield :class:`Route` objects from pfx2as text (string or file object).

    Blank lines and ``#`` comments are skipped.  Malformed lines raise
    :class:`Pfx2asFormatError` with the offending line number.
    """
    stream = io.StringIO(source) if isinstance(source, str) else source
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t") if "\t" in line else line.split()
        if len(fields) != 3:
            raise Pfx2asFormatError(f"line {lineno}: expected 3 fields, got {len(fields)}")
        network, plen_text, origin_text = fields
        if not plen_text.isdigit():
            raise Pfx2asFormatError(f"line {lineno}: bad prefix length {plen_text!r}")
        prefix_cls = IPv6Prefix if ":" in network else IPv4Prefix
        try:
            prefix = prefix_cls.parse(f"{network}/{plen_text}")
        except AddressError as exc:
            raise Pfx2asFormatError(f"line {lineno}: {exc}") from exc
        yield Route(prefix, _parse_origin(origin_text))


def write_pfx2as(routes: Iterable[Route], stream: TextIO) -> int:
    """Write routes in pfx2as format; returns the number of lines written."""
    count = 0
    for route in routes:
        stream.write(f"{route.prefix.network}\t{route.prefix.plen}\t{route.origin_asn}\n")
        count += 1
    return count


__all__ = ["Pfx2asFormatError", "read_pfx2as", "write_pfx2as"]
