"""Synthetic RIR / autonomous-system registry.

The registry plays the role of IANA + the five RIRs: it owns disjoint
top-level IPv4 and IPv6 super-blocks per RIR and carves allocations out
of them for autonomous systems.  Allocations are deterministic given
the order of requests, so a seeded scenario always produces the same
address plan.

IPv4 allocations may be fragmented (several disjoint blocks), matching
the scarcity-driven fragmentation the paper highlights; IPv6 allocations
are single large blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ip.addr import AddressError
from repro.ip.prefix import IPv4Prefix, IPv6Prefix


class RIR(enum.Enum):
    """The five regional Internet registries."""

    ARIN = "ARIN"
    RIPE = "RIPE"
    APNIC = "APNIC"
    LACNIC = "LACNIC"
    AFRINIC = "AFRINIC"


class AccessKind(enum.Enum):
    """Coarse service classification used by the CDN analyses."""

    FIXED = "fixed"
    MOBILE = "mobile"
    TRANSIT = "transit"


#: Top-level IPv4 super-blocks, one /8-equivalent region per RIR.  These are
#: synthetic (drawn from documentation-adjacent space) but disjoint and stable.
_V4_SUPERBLOCKS = {
    RIR.ARIN: IPv4Prefix.parse("23.0.0.0/8"),
    RIR.RIPE: IPv4Prefix.parse("31.0.0.0/8"),
    RIR.APNIC: IPv4Prefix.parse("27.0.0.0/8"),
    RIR.LACNIC: IPv4Prefix.parse("45.0.0.0/8"),
    RIR.AFRINIC: IPv4Prefix.parse("41.0.0.0/8"),
}

#: Top-level IPv6 super-blocks, one /16 region per RIR (mirroring how IANA
#: delegates from 2000::/3).
_V6_SUPERBLOCKS = {
    RIR.ARIN: IPv6Prefix.parse("2600::/16"),
    RIR.RIPE: IPv6Prefix.parse("2a00::/16"),
    RIR.APNIC: IPv6Prefix.parse("2400::/16"),
    RIR.LACNIC: IPv6Prefix.parse("2800::/16"),
    RIR.AFRINIC: IPv6Prefix.parse("2c00::/16"),
}


@dataclass
class ASInfo:
    """An autonomous system and its address holdings."""

    asn: int
    name: str
    country: str
    rir: RIR
    kind: AccessKind = AccessKind.FIXED
    v4_blocks: List[IPv4Prefix] = field(default_factory=list)
    v6_block: Optional[IPv6Prefix] = None

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")


class Registry:
    """Allocate IPv4/IPv6 blocks to ASes out of per-RIR super-blocks."""

    def __init__(self) -> None:
        self._ases: Dict[int, ASInfo] = {}
        self._v4_cursor: Dict[RIR, int] = {rir: 0 for rir in RIR}
        self._v4_allocated: Dict[RIR, List[IPv4Prefix]] = {rir: [] for rir in RIR}
        # IPv6 cursor counts /24-grid slots inside the RIR super-block.
        self._v6_cursor: Dict[RIR, int] = {rir: 0 for rir in RIR}

    def register(
        self,
        asn: int,
        name: str,
        country: str,
        rir: RIR,
        kind: AccessKind = AccessKind.FIXED,
    ) -> ASInfo:
        """Create an AS with no allocations yet."""
        if asn in self._ases:
            raise ValueError(f"AS{asn} already registered")
        info = ASInfo(asn=asn, name=name, country=country, rir=rir, kind=kind)
        self._ases[asn] = info
        return info

    def get(self, asn: int) -> ASInfo:
        """The AS registered under ``asn`` (KeyError when unknown)."""
        return self._ases[asn]

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def ases(self) -> List[ASInfo]:
        """All registered ASes, in registration order."""
        return list(self._ases.values())

    def allocate_v4(self, asn: int, plen: int, count: int = 1) -> List[IPv4Prefix]:
        """Allocate ``count`` disjoint IPv4 /plen blocks to ``asn``.

        Deliberately non-contiguous when ``count > 1``: consecutive
        requests are interleaved across the RIR's super-block so an AS's
        holdings are fragmented, as in the real IPv4 Internet.
        """
        info = self._ases[asn]
        if not 8 <= plen <= 32:
            raise AddressError(f"IPv4 allocation plen must be 8..32, got {plen}")
        superblock = _V4_SUPERBLOCKS[info.rir]
        total = superblock.num_subprefixes(plen)
        allocated = self._v4_allocated[info.rir]
        blocks: List[IPv4Prefix] = []
        while len(blocks) < count:
            cursor = self._v4_cursor[info.rir]
            if cursor >= total:
                raise AddressError(f"RIR {info.rir.value} IPv4 space exhausted at /{plen}")
            self._v4_cursor[info.rir] = cursor + 1
            # Stride through the super-block (odd multiplier is coprime with
            # the power-of-two slot count, so this is a permutation) so that
            # blocks allocated to one AS land far apart: IPv4 fragmentation.
            index = (cursor * 2654435761) % total
            candidate = superblock.nth_subprefix(plen, index)
            if any(
                candidate.contains_prefix(existing) or existing.contains_prefix(candidate)
                for existing in allocated
            ):
                continue
            allocated.append(candidate)
            blocks.append(candidate)
        info.v4_blocks.extend(blocks)
        return blocks

    def allocate_v6(self, asn: int, plen: int) -> IPv6Prefix:
        """Allocate one contiguous IPv6 /plen block to ``asn``."""
        info = self._ases[asn]
        if info.v6_block is not None:
            raise AddressError(f"AS{asn} already holds an IPv6 allocation")
        if not 16 <= plen <= 64:
            raise AddressError(f"IPv6 allocation plen must be 16..64, got {plen}")
        superblock = _V6_SUPERBLOCKS[info.rir]
        # Allocations are placed on a /24 grid.  A /plen shorter than /24
        # consumes an aligned run of grid slots; a /plen of 24 or longer is
        # carved from the start of a single slot.  Every slot is consumed at
        # most once, so allocations of mixed lengths never overlap.
        cursor = self._v6_cursor[info.rir]
        slots = 1 << (24 - plen) if plen < 24 else 1
        index = -(-cursor // slots) * slots  # round up to the required alignment
        if index + slots > superblock.num_subprefixes(24):
            raise AddressError(f"RIR {info.rir.value} IPv6 space exhausted")
        self._v6_cursor[info.rir] = index + slots
        slot = superblock.nth_subprefix(24, index)
        block = slot.supernet(plen) if plen < 24 else IPv6Prefix(slot.network, plen)
        info.v6_block = block
        return block

    def rir_of_v6(self, prefix: IPv6Prefix) -> Optional[RIR]:
        """Which RIR's super-block contains ``prefix`` (None if outside all)."""
        for rir, superblock in _V6_SUPERBLOCKS.items():
            if superblock.contains_prefix(prefix):
                return rir
        return None

    def rir_of_v4(self, prefix: IPv4Prefix) -> Optional[RIR]:
        """Which RIR's super-block contains ``prefix`` (None if outside all)."""
        for rir, superblock in _V4_SUPERBLOCKS.items():
            if superblock.contains_prefix(prefix):
                return rir
        return None


__all__ = ["AccessKind", "ASInfo", "RIR", "Registry"]
