"""Chunked stream sources for the incremental analysis engine.

The streaming layer consumes *run events* — completed echo runs ordered
by their first observed hour — in bounded-size chunks.  Each chunk
covers a half-open hour window ``[k*chunk_hours, (k+1)*chunk_hours)``
and carries every run whose ``first`` falls inside it.  Because run
firsts are strictly increasing within one (probe, family) track, the
global ``(first, probe, family)`` order preserves every per-track run
sequence, which is all the incremental state machines need.

Sources:

* :class:`ScenarioRunSource` — windows the sanitized runs of an
  in-memory :class:`~repro.workloads.AtlasScenario`.
* :class:`JsonlRunSource` — lazily re-scans a stream file written by
  :func:`write_run_stream` (a JSON manifest line followed by standard
  ``write_echo_runs`` lines keyed by probe *index*), so arbitrarily
  long feeds are consumed in bounded memory.
* :class:`RunAssembler` + :func:`record_chunks` — the live-collection
  path: fold hour-ordered *hourly records* into runs incrementally,
  reproducing :func:`repro.atlas.echo.runs_from_hourly` exactly while
  exposing open-run extents so dual-stack classification can proceed
  before a run closes.

Association triples stream analogously through :func:`triple_chunks`
(day windows over the lazy ``read_association_csv`` iterator).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.atlas.echo import EchoRecord, EchoRun
from repro.core.associations import Triple
from repro.io.records import (
    RecordFormatError,
    parse_echo_run_line,
    read_association_csv,
    write_echo_runs,
)

STREAM_FORMAT = "repro-stream"
STREAM_FORMAT_VERSION = 1

#: One run event: ``(first, probe_ref, family, value_int, last)``.
#: ``probe_ref`` indexes the manifest's probe list; ``value_int`` is the
#: full integer address (128-bit for IPv6).
RunEvent = Tuple[int, int, int, int, int]


# -- manifest -----------------------------------------------------------------


@dataclass(frozen=True)
class NetworkInfo:
    """One featured network (Table 1 identity columns)."""

    name: str
    asn: int
    country: str


@dataclass(frozen=True)
class ProbeInfo:
    """One sanitized probe's stream identity.

    ``probe_id`` is the sanitizer's (string) probe id; the stream itself
    refers to probes by their *index* in the manifest list, which keeps
    the run-line format identical to ``write_echo_runs``.
    """

    probe_id: str
    asn: int
    dual_stack: bool


@dataclass(frozen=True)
class StreamManifest:
    """Header of a run stream: who is measured, and for how long."""

    end_hour: int
    networks: Tuple[NetworkInfo, ...]
    probes: Tuple[ProbeInfo, ...]

    def to_json(self) -> str:
        """The manifest's canonical single-line JSON form."""
        return json.dumps(
            {
                "format": STREAM_FORMAT,
                "version": STREAM_FORMAT_VERSION,
                "end_hour": self.end_hour,
                "networks": [[n.name, n.asn, n.country] for n in self.networks],
                "probes": [
                    [p.probe_id, p.asn, 1 if p.dual_stack else 0] for p in self.probes
                ],
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "StreamManifest":
        """Parse a manifest line (raises ``RecordFormatError`` if invalid)."""
        try:
            data = json.loads(line)
            if data.get("format") != STREAM_FORMAT:
                raise ValueError(f"not a {STREAM_FORMAT} manifest")
            if int(data.get("version", -1)) != STREAM_FORMAT_VERSION:
                raise ValueError(f"unsupported stream version {data.get('version')!r}")
            return cls(
                end_hour=int(data["end_hour"]),
                networks=tuple(
                    NetworkInfo(str(name), int(asn), str(country))
                    for name, asn, country in data["networks"]
                ),
                probes=tuple(
                    ProbeInfo(str(pid), int(asn), bool(dual))
                    for pid, asn, dual in data["probes"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RecordFormatError(f"bad stream manifest: {exc}") from exc

    def digest(self) -> str:
        """Stable content hash of the manifest (part of stream identity)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def manifest_from_scenario(scenario) -> StreamManifest:
    """Build the stream manifest of an :class:`~repro.workloads.AtlasScenario`."""
    return StreamManifest(
        end_hour=scenario.end_hour,
        networks=tuple(
            NetworkInfo(name, isp.asn, isp.config.country)
            for name, isp in scenario.isps.items()
        ),
        probes=tuple(
            ProbeInfo(probe.probe_id, probe.asn, probe.dual_stack)
            for probe in scenario.probes
        ),
    )


# -- chunks -------------------------------------------------------------------


@dataclass
class RunChunk:
    """One hour window's worth of run events.

    ``open_v6``/``open_v4``/``frontier`` are only populated on the
    live-record path: ``open_v6`` maps probe refs to the current extent
    of a still-open IPv6 address run (it contributes dual-stack coverage
    before the run closes), ``open_v4`` maps probe refs to the first
    hour of a still-open IPv4 run (so coverage that run may later need
    is retained), and ``frontier`` maps probe refs to the first hour at
    which a *new* v6 observation could still appear (defaults to
    ``end_hour`` when absent — correct for complete-run streams).
    """

    index: int
    start_hour: int
    end_hour: int
    events: List[RunEvent]
    open_v6: Optional[Dict[int, Tuple[int, int]]] = None
    open_v4: Optional[Dict[int, int]] = None
    frontier: Optional[Dict[int, int]] = None


def _chunk_count(end_hour: int, chunk_hours: int) -> int:
    if chunk_hours < 1:
        raise ValueError("chunk_hours must be >= 1")
    return max(1, -(-end_hour // chunk_hours))


def _window_events(
    events: Iterable[RunEvent],
    chunk_hours: int,
    start_chunk: int,
    min_chunks: int,
) -> Iterator[RunChunk]:
    """Window first-hour-ordered events into consecutive chunks.

    Events before the resume point (``start_chunk``) are skipped; empty
    windows are emitted so the chunk index always equals
    ``first // chunk_hours`` and a resumed scan lines up with the
    original one.
    """
    index = start_chunk
    lo = start_chunk * chunk_hours
    buffer: List[RunEvent] = []
    prev_first: Optional[int] = None
    for event in events:
        first = event[0]
        if prev_first is not None and first < prev_first:
            raise RecordFormatError(
                f"run stream not sorted: first hour {first} after {prev_first}"
            )
        prev_first = first
        if first < lo:
            continue  # before the resume point
        while first >= lo + chunk_hours:
            yield RunChunk(index, lo, lo + chunk_hours, buffer)
            buffer = []
            index += 1
            lo += chunk_hours
        buffer.append(event)
    if buffer or index < min_chunks:
        yield RunChunk(index, lo, lo + chunk_hours, buffer)
        index += 1
        lo += chunk_hours
    while index < min_chunks:
        yield RunChunk(index, lo, lo + chunk_hours, [])
        index += 1
        lo += chunk_hours


class ScenarioRunSource:
    """Run events of an in-memory scenario, sorted once at construction."""

    def __init__(self, manifest: StreamManifest, events: Sequence[RunEvent]) -> None:
        self.manifest = manifest
        self._events: List[RunEvent] = sorted(events)
        digest = hashlib.sha256(manifest.to_json().encode("utf-8"))
        for event in self._events:
            digest.update(repr(event).encode("utf-8"))
        self.stream_id = digest.hexdigest()

    @classmethod
    def from_scenario(cls, scenario) -> "ScenarioRunSource":
        manifest = manifest_from_scenario(scenario)
        events: List[RunEvent] = []
        for ref, probe in enumerate(scenario.probes):
            for run in probe.v4_runs:
                events.append((run.first, ref, 4, int(run.value), run.last))
            for run in probe.v6_runs:
                events.append((run.first, ref, 6, int(run.value), run.last))
        return cls(manifest, events)

    def __len__(self) -> int:
        return len(self._events)

    def chunks(self, chunk_hours: int, start_chunk: int = 0) -> Iterator[RunChunk]:
        """Window the events into chunks, resuming at ``start_chunk``."""
        min_chunks = _chunk_count(self.manifest.end_hour, chunk_hours)
        return _window_events(self._events, chunk_hours, start_chunk, min_chunks)


class JsonlRunSource:
    """Run events lazily re-read from a :func:`write_run_stream` file.

    Every :meth:`chunks` call re-scans the file from the top (skipping
    already-consumed windows on resume), so memory stays bounded by the
    largest single chunk regardless of stream length.  A truncated final
    line — the signature of a killed writer — is tolerated and counted
    in :attr:`truncated_lines`; malformed lines *followed by* well-formed
    ones still raise.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        with self.path.open() as stream:
            header = stream.readline()
        self.manifest = StreamManifest.from_json(header)
        size = self.path.stat().st_size
        self.stream_id = hashlib.sha256(
            f"jsonl\n{header.strip()}\n{size}".encode("utf-8")
        ).hexdigest()
        self.truncated_lines = 0

    def _events(self) -> Iterator[RunEvent]:
        with self.path.open() as stream:
            stream.readline()  # manifest
            pending_error: Optional[RecordFormatError] = None
            for lineno, line in enumerate(stream, start=2):
                line = line.strip()
                if not line:
                    continue
                if pending_error is not None:
                    raise pending_error
                try:
                    run = parse_echo_run_line(line, lineno)
                except RecordFormatError as exc:
                    pending_error = exc  # tolerated only as the final line
                    continue
                yield (run.first, run.probe_id, run.family, int(run.value), run.last)
            if pending_error is not None:
                self.truncated_lines += 1

    def chunks(self, chunk_hours: int, start_chunk: int = 0) -> Iterator[RunChunk]:
        """Re-scan the file and window it, resuming at ``start_chunk``."""
        min_chunks = _chunk_count(self.manifest.end_hour, chunk_hours)
        return _window_events(self._events(), chunk_hours, start_chunk, min_chunks)


def write_run_stream(scenario, stream: TextIO) -> int:
    """Serialize a scenario as a run stream: manifest line + sorted runs.

    Run lines reuse the ``write_echo_runs`` JSONL schema with ``prb_id``
    set to the probe's *index* in the manifest (sanitized probe ids are
    strings and virtual probes can share raw ids, so the index is the
    only stable integer key).  Returns the number of run lines written.
    """
    manifest = manifest_from_scenario(scenario)
    stream.write(manifest.to_json() + "\n")
    keyed = []
    for ref, probe in enumerate(scenario.probes):
        for run in probe.v4_runs:
            keyed.append((run.first, ref, run.family, run))
        for run in probe.v6_runs:
            keyed.append((run.first, ref, run.family, run))
    keyed.sort(key=lambda item: item[:3])
    return write_echo_runs(
        (replace(run, probe_id=ref) for _first, ref, _family, run in keyed), stream
    )


# -- live-record assembly ------------------------------------------------------


class RunAssembler:
    """Incremental :func:`repro.atlas.echo.runs_from_hourly` over a feed.

    Feed hour-ordered hourly records (interleaved across probes and
    families); completed runs come back as they close, and still-open
    runs are visible through :meth:`open_v6_extents` /
    :meth:`flush`.  The assembled run sequence per (probe, family) track
    is identical to batch ``runs_from_hourly`` on that track's records.
    """

    def __init__(self) -> None:
        self._open: Dict[Tuple[int, int], dict] = {}
        self._hour = -1

    @property
    def processed_hour(self) -> int:
        """The highest record hour folded so far (-1 before any)."""
        return self._hour

    def feed(self, records: Iterable[EchoRecord]) -> List[EchoRun]:
        """Fold hour-ordered records; returns the runs that just closed."""
        completed: List[EchoRun] = []
        for record in records:
            key = (record.probe_id, record.family)
            state = self._open.get(key)
            if state is not None and record.hour <= state["last"]:
                raise ValueError(
                    f"records out of order: hour {record.hour} after {state['last']}"
                )
            if state is not None and record.client_ip == state["value"]:
                gap = record.hour - state["last"] - 1
                if gap > state["max_gap"]:
                    state["max_gap"] = gap
                state["last"] = record.hour
                state["observed"] += 1
            else:
                if state is not None:
                    completed.append(self._close(state))
                self._open[key] = {
                    "probe_id": record.probe_id,
                    "family": record.family,
                    "value": record.client_ip,
                    "first": record.hour,
                    "last": record.hour,
                    "observed": 1,
                    "max_gap": 0,
                }
            if record.hour > self._hour:
                self._hour = record.hour
        return completed

    def flush(self) -> List[EchoRun]:
        """Close and return every still-open run (end of stream)."""
        closed = [self._close(state) for _key, state in sorted(self._open.items())]
        self._open.clear()
        return closed

    def open_v6_extents(self) -> Dict[int, Tuple[int, int]]:
        """Current (first, last) extent of each open IPv6 address run."""
        return {
            probe: (state["first"], state["last"])
            for (probe, family), state in self._open.items()
            if family == 6
        }

    def open_v4_firsts(self) -> Dict[int, int]:
        """First hour of each still-open IPv4 run."""
        return {
            probe: state["first"]
            for (probe, family), state in self._open.items()
            if family == 4
        }

    @staticmethod
    def _close(state: dict) -> EchoRun:
        return EchoRun(
            probe_id=state["probe_id"],
            family=state["family"],
            value=state["value"],
            first=state["first"],
            last=state["last"],
            observed=state["observed"],
            max_gap=state["max_gap"],
        )

    def state_dict(self) -> dict:
        """Picklable snapshot of the open-run state (checkpointing)."""
        return {
            "hour": self._hour,
            "open": {key: dict(state) for key, state in self._open.items()},
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (checkpoint resume)."""
        self._hour = state["hour"]
        self._open = {key: dict(value) for key, value in state["open"].items()}


def record_chunks(
    records: Iterable[EchoRecord],
    chunk_hours: int,
    assembler: Optional[RunAssembler] = None,
    end_hour: Optional[int] = None,
) -> Iterator[RunChunk]:
    """Window an hour-ordered record feed into engine-ready chunks.

    Each chunk carries the runs that *closed* during its hour window
    plus the open-v6 extents and per-probe frontiers the engine needs to
    classify dual-stack coverage before runs close.  The final chunk
    flushes the assembler, so folding every chunk reproduces batch runs
    exactly.
    """
    assembler = assembler if assembler is not None else RunAssembler()
    min_chunks = _chunk_count(end_hour, chunk_hours) if end_hour else 1
    index = 0
    lo = 0
    buffer: List[EchoRecord] = []
    prev_hour: Optional[int] = None

    def close_chunk(closing_runs: List[EchoRun], final: bool) -> RunChunk:
        events = sorted(
            (run.first, run.probe_id, run.family, int(run.value), run.last)
            for run in closing_runs
        )
        extents = {} if final else assembler.open_v6_extents()
        return RunChunk(
            index,
            lo,
            lo + chunk_hours,
            events,
            open_v6=extents,
            open_v4={} if final else assembler.open_v4_firsts(),
            frontier={ref: extent[1] + 1 for ref, extent in extents.items()},
        )

    for record in records:
        if prev_hour is not None and record.hour < prev_hour:
            raise RecordFormatError(
                f"record stream not sorted: hour {record.hour} after {prev_hour}"
            )
        prev_hour = record.hour
        while record.hour >= lo + chunk_hours:
            buffer.sort(key=lambda r: (r.hour, r.probe_id, r.family))
            yield close_chunk(assembler.feed(buffer), final=False)
            buffer = []
            index += 1
            lo += chunk_hours
        buffer.append(record)
    buffer.sort(key=lambda r: (r.hour, r.probe_id, r.family))
    closed = assembler.feed(buffer)
    while index < min_chunks - 1:
        yield close_chunk(closed, final=False)
        closed = []
        index += 1
        lo += chunk_hours
    closed.extend(assembler.flush())
    yield close_chunk(closed, final=True)


# -- association triples -------------------------------------------------------


@dataclass
class TripleChunk:
    """One day window's worth of association triples, canonically sorted."""

    index: int
    start_day: int
    end_day: int
    triples: List[Triple]


def triple_chunks(
    triples: Iterable[Triple],
    chunk_days: int,
    start_chunk: int = 0,
    min_days: int = 0,
) -> Iterator[TripleChunk]:
    """Window a day-ordered triple feed into consecutive day chunks.

    Days may arrive in any order *within* a window (each chunk is sorted
    ``(day, v4, v6)`` before it is yielded — the batch scan order), but
    a triple whose day precedes the current window raises.
    """
    if chunk_days < 1:
        raise ValueError("chunk_days must be >= 1")
    min_chunks = max(1, -(-min_days // chunk_days)) if min_days else 1
    index = start_chunk
    lo = start_chunk * chunk_days
    buffer: List[Triple] = []
    for triple in triples:
        day = triple[0]
        if day < lo and index == start_chunk:
            continue  # before the resume point
        if day < lo:
            raise RecordFormatError(
                f"association stream not day-ordered: day {day} in window >= {lo}"
            )
        while day >= lo + chunk_days:
            buffer.sort()
            yield TripleChunk(index, lo, lo + chunk_days, buffer)
            buffer = []
            index += 1
            lo += chunk_days
        buffer.append(triple)
    if buffer or index < min_chunks:
        buffer.sort()
        yield TripleChunk(index, lo, lo + chunk_days, buffer)
        index += 1
        lo += chunk_days
    while index < min_chunks:
        yield TripleChunk(index, lo, lo + chunk_days, [])
        index += 1
        lo += chunk_days


def stream_triples_from_csv(path) -> Iterator[Triple]:
    """Lazily stream triples from a ``write_association_csv`` file."""
    with Path(path).open() as stream:
        yield from read_association_csv(stream)


__all__ = [
    "JsonlRunSource",
    "NetworkInfo",
    "ProbeInfo",
    "RunAssembler",
    "RunChunk",
    "RunEvent",
    "ScenarioRunSource",
    "StreamManifest",
    "TripleChunk",
    "manifest_from_scenario",
    "record_chunks",
    "stream_triples_from_csv",
    "triple_chunks",
    "write_run_stream",
]
