"""Chunked, checkpointable, incremental analysis (the streaming layer).

This subsystem processes echo runs/records and CDN association triples
in bounded-size chunks, maintaining per-probe incremental state that
folds each chunk through the existing ``analysis_np`` kernels.  A full
streaming pass is **bit-identical** to the batch ``engine="np"`` report
for any chunk size, with or without a mid-stream checkpoint/restore —
see :func:`repro.perf.verify.streaming_replay_diffs`.

Layout:

* :mod:`repro.stream.chunks` — stream sources, the on-disk run-stream
  format, the incremental run assembler, and triple chunking;
* :mod:`repro.stream.engine` — the Atlas engine and its driver;
* :mod:`repro.stream.associations` — the CDN association engine;
* :mod:`repro.stream.checkpoint` — the content-addressed checkpoint
  store (lives under the :mod:`repro.perf.cache` directory).
"""

from repro.stream.associations import (
    AssociationStreamEngine,
    AssociationStreamResult,
    run_association_stream,
    run_association_stream_over_store,
)
from repro.stream.checkpoint import CheckpointStore, default_checkpoint_dir
from repro.stream.chunks import (
    JsonlRunSource,
    NetworkInfo,
    ProbeInfo,
    RunAssembler,
    RunChunk,
    ScenarioRunSource,
    StreamManifest,
    TripleChunk,
    manifest_from_scenario,
    record_chunks,
    stream_triples_from_csv,
    triple_chunks,
    write_run_stream,
)
from repro.stream.engine import (
    AtlasStreamEngine,
    AtlasStreamResult,
    StreamStats,
    run_atlas_stream,
)

__all__ = [
    "AssociationStreamEngine",
    "AssociationStreamResult",
    "AtlasStreamEngine",
    "AtlasStreamResult",
    "CheckpointStore",
    "JsonlRunSource",
    "NetworkInfo",
    "ProbeInfo",
    "RunAssembler",
    "RunChunk",
    "ScenarioRunSource",
    "StreamManifest",
    "StreamStats",
    "TripleChunk",
    "default_checkpoint_dir",
    "manifest_from_scenario",
    "record_chunks",
    "run_association_stream",
    "run_association_stream_over_store",
    "run_atlas_stream",
    "stream_triples_from_csv",
    "triple_chunks",
    "write_run_stream",
]
