"""Incremental CDN association analysis over day-chunked triples.

Mirrors :mod:`repro.core.associations` exactly: per-/64 association runs
(a run ends when the reported /24 changes), the Figure 3 five-number
summary over run durations, and the Figure 4 degree structures.  Because
the batch scan sorts each /64's reports by ``(day, v4_key)``, streaming
triples in canonical ``(day, v4, v6)`` chunk order visits every /64's
reports in the same sequence — so the incremental state (one open run
per /64 plus degree dictionaries) reproduces the batch artifacts
bit-identically.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.associations import BoxStats, box_stats, fraction_degree_one
from repro.stream.chunks import TripleChunk

#: Version of the association engine's checkpoint payload layout.
STATE_VERSION = 1


@dataclass
class AssociationStreamResult:
    """Everything a finished association streaming pass produces."""

    durations: Counter  # duration (days) -> count
    box: Optional[BoxStats]  # None when no triples were seen
    v4_unique: Dict[int, int]  # /24 -> distinct /64s
    v4_hits: Dict[int, int]  # /24 -> total reports
    v6_degrees: Dict[int, int]  # /64 -> distinct /24s
    fraction_v6_degree_one: float
    triples_seen: int
    chunks_folded: int


class AssociationStreamEngine:
    """Foldable, checkpointable equivalent of the Section 4 analyses."""

    def __init__(self) -> None:
        self._next_chunk = 0
        self._triples_seen = 0
        # v6 -> [current v4, run start day, last day]
        self._open: Dict[int, List[int]] = {}
        self._durations: Counter = Counter()
        self._v4_unique: Dict[int, set] = {}
        self._v4_hits: Counter = Counter()
        self._v6_partners: Dict[int, set] = {}

    @property
    def next_chunk(self) -> int:
        return self._next_chunk

    @property
    def triples_seen(self) -> int:
        return self._triples_seen

    def fold_chunk(self, chunk: TripleChunk) -> None:
        """Fold one day-window of triples into the incremental state."""
        for day, v4_key, v6_key in chunk.triples:
            run = self._open.get(v6_key)
            if run is None:
                self._open[v6_key] = [v4_key, day, day]
            elif v4_key != run[0]:
                self._durations[run[2] - run[1] + 1] += 1
                run[0] = v4_key
                run[1] = day
                run[2] = day
            else:
                run[2] = day
            self._v4_unique.setdefault(v4_key, set()).add(v6_key)
            self._v4_hits[v4_key] += 1
            self._v6_partners.setdefault(v6_key, set()).add(v4_key)
        self._triples_seen += len(chunk.triples)
        self._next_chunk = chunk.index + 1

    def fold_columns(self, days, v4_keys, v6_keys, chunk_index: Optional[int] = None) -> None:
        """Vectorized fold of one day-window given as columnar arrays.

        ``v6_keys`` are packed upper-64-bit /64 keys (the triple-store
        layout); state keys stay full 128-bit ints, so the resulting
        engine state — and every downstream artifact, including
        :meth:`state_dict` snapshots compared by value — equals
        :meth:`fold_chunk` over the same window's sorted triples
        exactly.  The work per call is a few lexsorts plus
        per-*unique-key* (not per-row) dictionary updates: within one
        window every /64's rows sort to the same ``(day, v4)`` sequence
        the scalar fold visits, and runs of equal ``(v6, v4)`` collapse
        to segment endpoints before touching python state.
        """
        import numpy as np

        n = len(days)
        if n != len(v4_keys) or n != len(v6_keys):
            raise ValueError("column arrays must have equal length")
        if chunk_index is not None:
            self._next_chunk = chunk_index + 1
        if n == 0:
            return
        order = np.lexsort((np.asarray(v4_keys), np.asarray(days), np.asarray(v6_keys)))
        day_sorted = np.asarray(days)[order].astype(np.int64)
        v4_sorted = np.asarray(v4_keys)[order]
        v6_sorted = np.asarray(v6_keys)[order]

        new_v6 = np.empty(n, dtype=bool)
        new_v6[0] = True
        np.not_equal(v6_sorted[1:], v6_sorted[:-1], out=new_v6[1:])
        new_seg = new_v6.copy()
        new_seg[1:] |= v4_sorted[1:] != v4_sorted[:-1]

        seg_starts = np.flatnonzero(new_seg)
        seg_ends = np.empty_like(seg_starts)
        seg_ends[:-1] = seg_starts[1:] - 1
        seg_ends[-1] = n - 1
        seg_v4 = v4_sorted[seg_starts]
        seg_first = day_sorted[seg_starts]
        seg_last = day_sorted[seg_ends]

        # Group segments by /64: the first segment of each group is where
        # new_v6 held at the segment's start row.
        group_first_seg = np.flatnonzero(new_v6[seg_starts])
        group_last_seg = np.empty_like(group_first_seg)
        group_last_seg[:-1] = group_first_seg[1:] - 1
        group_last_seg[-1] = len(seg_starts) - 1

        # Middle segments (neither first nor last of their group) close
        # unconditionally — their durations never interact with the open
        # run, so they accumulate straight into the counter.
        middle = np.ones(len(seg_starts), dtype=bool)
        middle[group_first_seg] = False
        middle[group_last_seg] = False
        if middle.any():
            mid_durations = seg_last[middle] - seg_first[middle] + 1
            values, counts = np.unique(mid_durations, return_counts=True)
            for value, count in zip(values.tolist(), counts.tolist()):
                self._durations[value] += count

        # First/last segments need the open-run state; one iteration per
        # /64 seen this window.
        group_v6 = v6_sorted[seg_starts[group_first_seg]]
        for position, v6_packed in enumerate(group_v6.tolist()):
            key = v6_packed << 64
            first_seg = group_first_seg[position]
            last_seg = group_last_seg[position]
            first_v4 = int(seg_v4[first_seg])
            start = int(seg_first[first_seg])
            run = self._open.get(key)
            if run is not None:
                if run[0] == first_v4:
                    start = run[1]  # the open run continues into this window
                else:
                    self._durations[run[2] - run[1] + 1] += 1
            if first_seg == last_seg:
                self._open[key] = [first_v4, start, int(seg_last[first_seg])]
            else:
                self._durations[int(seg_last[first_seg]) - start + 1] += 1
                self._open[key] = [
                    int(seg_v4[last_seg]),
                    int(seg_first[last_seg]),
                    int(seg_last[last_seg]),
                ]

        # Degree state: one update per distinct (v4, v6) pair and per
        # distinct v4 — again per-key, not per-row.
        pair_order = np.lexsort((v6_sorted, v4_sorted))
        pair_v4 = v4_sorted[pair_order]
        pair_v6 = v6_sorted[pair_order]
        new_pair = np.empty(n, dtype=bool)
        new_pair[0] = True
        new_pair[1:] = (pair_v4[1:] != pair_v4[:-1]) | (pair_v6[1:] != pair_v6[:-1])
        pair_starts = np.flatnonzero(new_pair)
        for v4_key, v6_packed in zip(
            pair_v4[pair_starts].tolist(), pair_v6[pair_starts].tolist()
        ):
            v6_full = v6_packed << 64
            self._v4_unique.setdefault(v4_key, set()).add(v6_full)
            self._v6_partners.setdefault(v6_full, set()).add(v4_key)
        hit_keys, hit_counts = np.unique(v4_sorted, return_counts=True)
        for v4_key, count in zip(hit_keys.tolist(), hit_counts.tolist()):
            self._v4_hits[v4_key] += count
        self._triples_seen += n

    def state_dict(self) -> dict:
        """Snapshot (references live containers — pickle before folding on)."""
        return {
            "state_version": STATE_VERSION,
            "next_chunk": self._next_chunk,
            "triples_seen": self._triples_seen,
            "open": {key: list(run) for key, run in self._open.items()},
            "durations": dict(self._durations),
            "v4_unique": {key: sorted(members) for key, members in self._v4_unique.items()},
            "v4_hits": dict(self._v4_hits),
            "v6_partners": {
                key: sorted(members) for key, members in self._v6_partners.items()
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (checkpoint resume)."""
        version = state.get("state_version")
        if version != STATE_VERSION:
            raise ValueError(f"unsupported association state version {version!r}")
        self._next_chunk = state["next_chunk"]
        self._triples_seen = state["triples_seen"]
        self._open = {key: list(run) for key, run in state["open"].items()}
        self._durations = Counter(state["durations"])
        self._v4_unique = {key: set(members) for key, members in state["v4_unique"].items()}
        self._v4_hits = Counter(state["v4_hits"])
        self._v6_partners = {
            key: set(members) for key, members in state["v6_partners"].items()
        }

    def finalize(self, chunks_folded: int = 0) -> AssociationStreamResult:
        """Close every open run and assemble the batch-identical artifacts.

        State is left untouched, so the pass can be extended afterwards.
        """
        durations = Counter(self._durations)
        for _v4, start, last in self._open.values():
            durations[last - start + 1] += 1
        expanded: List[float] = []
        for value in sorted(durations):
            expanded.extend([float(value)] * durations[value])
        v6_degrees = {key: len(members) for key, members in self._v6_partners.items()}
        return AssociationStreamResult(
            durations=durations,
            box=box_stats(expanded) if expanded else None,
            v4_unique={key: len(members) for key, members in self._v4_unique.items()},
            v4_hits=dict(self._v4_hits),
            v6_degrees=v6_degrees,
            fraction_v6_degree_one=fraction_degree_one(v6_degrees),
            triples_seen=self._triples_seen,
            chunks_folded=chunks_folded,
        )


def run_association_stream(
    triples,
    chunk_days: int,
    stream_id: Optional[str] = None,
    store=None,
    resume: bool = False,
    checkpoint_every: int = 1,
    stop_after_chunks: Optional[int] = None,
    min_days: int = 0,
) -> Optional[AssociationStreamResult]:
    """Stream day-ordered triples through an :class:`AssociationStreamEngine`.

    Same driver contract as :func:`repro.stream.engine.run_atlas_stream`:
    checkpoints every ``checkpoint_every`` chunks when ``store`` (and a
    ``stream_id``) is given, resumes from the latest matching checkpoint,
    and returns ``None`` when ``stop_after_chunks`` aborts the pass.
    """
    from repro.stream.chunks import triple_chunks

    engine = AssociationStreamEngine()
    key = None
    if store is not None:
        if stream_id is None:
            raise ValueError("checkpointing an association stream requires stream_id")
        key = store.key("association-stream", stream_id, {"chunk_days": chunk_days})
        if resume:
            state = store.load("association-stream", key)
            if state is not None:
                engine.load_state(state)
    folded = 0
    for chunk in triple_chunks(
        triples, chunk_days, start_chunk=engine.next_chunk, min_days=min_days
    ):
        engine.fold_chunk(chunk)
        folded += 1
        at_checkpoint = (
            store is not None and checkpoint_every and folded % checkpoint_every == 0
        )
        if at_checkpoint:
            store.save("association-stream", key, engine.state_dict())
        if stop_after_chunks is not None and folded >= stop_after_chunks:
            if store is not None and not at_checkpoint:
                store.save("association-stream", key, engine.state_dict())
            return None
    result = engine.finalize(chunks_folded=folded)
    if store is not None:
        store.save("association-stream", key, engine.state_dict())
    return result


def run_association_stream_over_store(
    triple_store,
    chunk_days: int,
    store=None,
    resume: bool = False,
    checkpoint_every: int = 1,
    stop_after_chunks: Optional[int] = None,
    min_days: int = 0,
) -> Optional[AssociationStreamResult]:
    """Out-of-core :func:`run_association_stream` over a sharded triple store.

    Day windows are gathered straight off the memmapped shards
    (:meth:`repro.store.TripleStore.day_window_columns`) and folded with
    the vectorized :meth:`AssociationStreamEngine.fold_columns`, so
    neither the triples nor any per-row python objects ever materialize.
    The window schedule matches :func:`repro.stream.chunks.triple_chunks`
    — ``[k*chunk_days, (k+1)*chunk_days)``, empty windows included — so
    results and resume points line up with the CSV path exactly.
    Checkpoint identity comes from the store's content digest.
    """
    if chunk_days < 1:
        raise ValueError("chunk_days must be >= 1")
    engine = AssociationStreamEngine()
    key = None
    if store is not None:
        key = store.key(
            "association-stream",
            triple_store.digest(),
            {"chunk_days": chunk_days},
        )
        if resume:
            state = store.load("association-stream", key)
            if state is not None:
                engine.load_state(state)
    last_day = triple_store.day_max if triple_store.day_max is not None else 0
    min_chunks = max(1, -(-min_days // chunk_days)) if min_days else 1
    total_chunks = max(last_day // chunk_days + 1, min_chunks)
    folded = 0
    for index in range(engine.next_chunk, total_chunks):
        lo = index * chunk_days
        days, v4_keys, v6_keys = triple_store.day_window_columns(lo, lo + chunk_days)
        engine.fold_columns(days, v4_keys, v6_keys, chunk_index=index)
        folded += 1
        at_checkpoint = (
            store is not None and checkpoint_every and folded % checkpoint_every == 0
        )
        if at_checkpoint:
            store.save("association-stream", key, engine.state_dict())
        if stop_after_chunks is not None and folded >= stop_after_chunks:
            if store is not None and not at_checkpoint:
                store.save("association-stream", key, engine.state_dict())
            return None
    result = engine.finalize(chunks_folded=folded)
    if store is not None:
        store.save("association-stream", key, engine.state_dict())
    return result


__all__ = [
    "STATE_VERSION",
    "AssociationStreamEngine",
    "AssociationStreamResult",
    "run_association_stream",
    "run_association_stream_over_store",
]
