"""Incremental CDN association analysis over day-chunked triples.

Mirrors :mod:`repro.core.associations` exactly: per-/64 association runs
(a run ends when the reported /24 changes), the Figure 3 five-number
summary over run durations, and the Figure 4 degree structures.  Because
the batch scan sorts each /64's reports by ``(day, v4_key)``, streaming
triples in canonical ``(day, v4, v6)`` chunk order visits every /64's
reports in the same sequence — so the incremental state (one open run
per /64 plus degree dictionaries) reproduces the batch artifacts
bit-identically.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.associations import BoxStats, box_stats, fraction_degree_one
from repro.stream.chunks import TripleChunk

#: Version of the association engine's checkpoint payload layout.
STATE_VERSION = 1


@dataclass
class AssociationStreamResult:
    """Everything a finished association streaming pass produces."""

    durations: Counter  # duration (days) -> count
    box: Optional[BoxStats]  # None when no triples were seen
    v4_unique: Dict[int, int]  # /24 -> distinct /64s
    v4_hits: Dict[int, int]  # /24 -> total reports
    v6_degrees: Dict[int, int]  # /64 -> distinct /24s
    fraction_v6_degree_one: float
    triples_seen: int
    chunks_folded: int


class AssociationStreamEngine:
    """Foldable, checkpointable equivalent of the Section 4 analyses."""

    def __init__(self) -> None:
        self._next_chunk = 0
        self._triples_seen = 0
        # v6 -> [current v4, run start day, last day]
        self._open: Dict[int, List[int]] = {}
        self._durations: Counter = Counter()
        self._v4_unique: Dict[int, set] = {}
        self._v4_hits: Counter = Counter()
        self._v6_partners: Dict[int, set] = {}

    @property
    def next_chunk(self) -> int:
        return self._next_chunk

    @property
    def triples_seen(self) -> int:
        return self._triples_seen

    def fold_chunk(self, chunk: TripleChunk) -> None:
        """Fold one day-window of triples into the incremental state."""
        for day, v4_key, v6_key in chunk.triples:
            run = self._open.get(v6_key)
            if run is None:
                self._open[v6_key] = [v4_key, day, day]
            elif v4_key != run[0]:
                self._durations[run[2] - run[1] + 1] += 1
                run[0] = v4_key
                run[1] = day
                run[2] = day
            else:
                run[2] = day
            self._v4_unique.setdefault(v4_key, set()).add(v6_key)
            self._v4_hits[v4_key] += 1
            self._v6_partners.setdefault(v6_key, set()).add(v4_key)
        self._triples_seen += len(chunk.triples)
        self._next_chunk = chunk.index + 1

    def state_dict(self) -> dict:
        """Snapshot (references live containers — pickle before folding on)."""
        return {
            "state_version": STATE_VERSION,
            "next_chunk": self._next_chunk,
            "triples_seen": self._triples_seen,
            "open": {key: list(run) for key, run in self._open.items()},
            "durations": dict(self._durations),
            "v4_unique": {key: sorted(members) for key, members in self._v4_unique.items()},
            "v4_hits": dict(self._v4_hits),
            "v6_partners": {
                key: sorted(members) for key, members in self._v6_partners.items()
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (checkpoint resume)."""
        version = state.get("state_version")
        if version != STATE_VERSION:
            raise ValueError(f"unsupported association state version {version!r}")
        self._next_chunk = state["next_chunk"]
        self._triples_seen = state["triples_seen"]
        self._open = {key: list(run) for key, run in state["open"].items()}
        self._durations = Counter(state["durations"])
        self._v4_unique = {key: set(members) for key, members in state["v4_unique"].items()}
        self._v4_hits = Counter(state["v4_hits"])
        self._v6_partners = {
            key: set(members) for key, members in state["v6_partners"].items()
        }

    def finalize(self, chunks_folded: int = 0) -> AssociationStreamResult:
        """Close every open run and assemble the batch-identical artifacts.

        State is left untouched, so the pass can be extended afterwards.
        """
        durations = Counter(self._durations)
        for _v4, start, last in self._open.values():
            durations[last - start + 1] += 1
        expanded: List[float] = []
        for value in sorted(durations):
            expanded.extend([float(value)] * durations[value])
        v6_degrees = {key: len(members) for key, members in self._v6_partners.items()}
        return AssociationStreamResult(
            durations=durations,
            box=box_stats(expanded) if expanded else None,
            v4_unique={key: len(members) for key, members in self._v4_unique.items()},
            v4_hits=dict(self._v4_hits),
            v6_degrees=v6_degrees,
            fraction_v6_degree_one=fraction_degree_one(v6_degrees),
            triples_seen=self._triples_seen,
            chunks_folded=chunks_folded,
        )


def run_association_stream(
    triples,
    chunk_days: int,
    stream_id: Optional[str] = None,
    store=None,
    resume: bool = False,
    checkpoint_every: int = 1,
    stop_after_chunks: Optional[int] = None,
    min_days: int = 0,
) -> Optional[AssociationStreamResult]:
    """Stream day-ordered triples through an :class:`AssociationStreamEngine`.

    Same driver contract as :func:`repro.stream.engine.run_atlas_stream`:
    checkpoints every ``checkpoint_every`` chunks when ``store`` (and a
    ``stream_id``) is given, resumes from the latest matching checkpoint,
    and returns ``None`` when ``stop_after_chunks`` aborts the pass.
    """
    from repro.stream.chunks import triple_chunks

    engine = AssociationStreamEngine()
    key = None
    if store is not None:
        if stream_id is None:
            raise ValueError("checkpointing an association stream requires stream_id")
        key = store.key("association-stream", stream_id, {"chunk_days": chunk_days})
        if resume:
            state = store.load("association-stream", key)
            if state is not None:
                engine.load_state(state)
    folded = 0
    for chunk in triple_chunks(
        triples, chunk_days, start_chunk=engine.next_chunk, min_days=min_days
    ):
        engine.fold_chunk(chunk)
        folded += 1
        at_checkpoint = (
            store is not None and checkpoint_every and folded % checkpoint_every == 0
        )
        if at_checkpoint:
            store.save("association-stream", key, engine.state_dict())
        if stop_after_chunks is not None and folded >= stop_after_chunks:
            if store is not None and not at_checkpoint:
                store.save("association-stream", key, engine.state_dict())
            return None
    result = engine.finalize(chunks_folded=folded)
    if store is not None:
        store.save("association-stream", key, engine.state_dict())
    return result


__all__ = [
    "STATE_VERSION",
    "AssociationStreamEngine",
    "AssociationStreamResult",
    "run_association_stream",
]
