"""Versioned on-disk checkpoints for streaming engine state.

Checkpoints live alongside the scenario cache (a ``checkpoints/``
subdirectory of the :mod:`repro.perf.cache` directory, so
``$REPRO_CACHE_DIR`` relocates both) and are content-addressed the same
way: the key hashes the checkpoint format version, the engine kind, the
``repro`` code fingerprint, the *stream identity* (manifest digest +
data extent), and the canonicalized engine parameters.  Any code or
parameter change makes old checkpoints unaddressable instead of subtly
wrong — a resumed run either continues the exact same computation or
starts fresh.

Payloads are pickles written atomically (temp file + ``os.replace``);
corrupt, truncated, or mismatched entries load as ``None`` (a miss).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Dict, Optional

from repro.obs import get_logger, metric_inc
from repro.perf.cache import (
    CACHE_DIR_ENV,
    _DEFAULT_DIR,
    CacheStats,
    code_fingerprint,
    register_stats_provider,
)

_log = get_logger("stream.checkpoint")

#: Shared per-directory counters — every :class:`CheckpointStore`
#: pointed at the same directory accumulates into one
#: :class:`repro.perf.cache.CacheStats`, reported through
#: :func:`repro.perf.cache.iter_component_stats`.
_stats_by_directory: Dict[Path, CacheStats] = {}


@register_stats_provider
def _checkpoint_stats_rows():
    for directory, stats in _stats_by_directory.items():
        yield "checkpoint-store", str(directory), stats

#: Version of the checkpoint container format (not the engine payloads,
#: which carry their own ``state_version``).
CHECKPOINT_FORMAT_VERSION = 1


def default_checkpoint_dir() -> Path:
    """``<scenario cache dir>/checkpoints`` (honors ``$REPRO_CACHE_DIR``)."""
    raw = os.environ.get(CACHE_DIR_ENV) or _DEFAULT_DIR
    return Path(raw).expanduser() / "checkpoints"


class CheckpointStore:
    """Content-addressed pickle store for engine ``state_dict`` payloads."""

    def __init__(self, directory=None) -> None:
        self.directory = (
            Path(directory).expanduser() if directory else default_checkpoint_dir()
        )
        self.stats = _stats_by_directory.setdefault(self.directory, CacheStats())

    def key(self, kind: str, stream_id: str, params: dict) -> str:
        """Checkpoint address of one (engine kind, stream, parameters)."""
        canonical = json.dumps(params, sort_keys=True, default=str)
        material = "\n".join(
            (
                str(CHECKPOINT_FORMAT_VERSION),
                kind,
                code_fingerprint(),
                stream_id,
                canonical,
            )
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, key: str) -> Path:
        """The on-disk path of the ``(kind, key)`` checkpoint."""
        return self.directory / f"{kind}-{key}.pkl"

    def save(self, kind: str, key: str, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``; returns the path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(kind, key)
        temp = path.with_name(path.name + f".tmp{os.getpid()}")
        envelope = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        with temp.open("wb") as stream:
            pickle.dump(envelope, stream, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)
        self.stats.puts += 1
        metric_inc("checkpoint.saves", kind=kind)
        _log.debug("checkpoint saved", extra={"kind": kind, "key": key[:12]})
        return path

    def load(self, kind: str, key: str) -> Optional[dict]:
        """The payload stored under ``key``, or ``None`` on any miss.

        Corrupt pickles and version/key mismatches are deleted and
        treated as misses — a half-written checkpoint from a killed run
        must never poison a resume.
        """
        path = self.path_for(kind, key)
        try:
            with path.open("rb") as stream:
                envelope = pickle.load(stream)
            if (
                envelope.get("format_version") != CHECKPOINT_FORMAT_VERSION
                or envelope.get("kind") != kind
                or envelope.get("key") != key
            ):
                raise ValueError("checkpoint envelope mismatch")
            self.stats.hits += 1
            metric_inc("checkpoint.hits", kind=kind)
            _log.info("checkpoint hit", extra={"kind": kind, "key": key[:12]})
            return envelope["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            metric_inc("checkpoint.misses", kind=kind, reason="absent")
            _log.debug("checkpoint miss", extra={"kind": kind, "key": key[:12]})
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, KeyError, ValueError):
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            self.stats.errors += 1
            metric_inc("checkpoint.misses", kind=kind, reason="corrupt")
            _log.warning(
                "corrupt checkpoint dropped", extra={"kind": kind, "key": key[:12]}
            )
            return None

    def delete(self, kind: str, key: str) -> None:
        """Remove the ``(kind, key)`` checkpoint (missing is fine)."""
        try:
            self.path_for(kind, key).unlink()
        except FileNotFoundError:
            pass


__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "default_checkpoint_dir",
]
